#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// White-box tests of the Section 2.3.4 NodePSNList construction: "the
/// PSN value stored in the first log record written for P by each
/// transaction [run] that updated P" — one entry per transaction run, not
/// per update, and only for records at or after the page's RedoLSN.
class PsnListBuildTest : public ::testing::Test {
 protected:
  PsnListBuildTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(PsnListBuildTest, OneEntryPerTransactionRun) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  // Client txn 1: psn 0->3 (three updates, ONE run).
  ASSERT_OK_AND_ASSIGN(TxnId t1, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(t1, pid, "a"));
  ASSERT_OK(client_->Update(t1, rid, "b"));
  ASSERT_OK(client_->Update(t1, rid, "c"));
  ASSERT_OK(client_->Commit(t1));
  // Client txn 2: psn 3->4 (a second run of the same node).
  ASSERT_OK_AND_ASSIGN(TxnId t2, client_->Begin());
  ASSERT_OK(client_->Update(t2, rid, "d"));
  ASSERT_OK(client_->Commit(t2));

  PsnListReply reply;
  ASSERT_OK(client_->HandleBuildPsnList(owner_->id(), {pid}, false, &reply));
  ASSERT_EQ(reply.per_page.size(), 1u);
  ASSERT_EQ(reply.per_page[0].size(), 2u);  // Two runs, not four updates.
  EXPECT_EQ(reply.per_page[0][0].psn, 0u);  // First record of run 1.
  EXPECT_EQ(reply.per_page[0][1].psn, 3u);  // First record of run 2.
  EXPECT_GT(reply.records_scanned, 0u);
}

TEST_F(PsnListBuildTest, InterleavedTransactionsAlternateRuns) {
  // With record locking, two local txns interleave on one page; their
  // alternating records create alternating runs.
  TempDir fresh;
  ClusterOptions opts;
  opts.dir = fresh.path();
  opts.node_defaults.local_record_locking = true;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* worker = *cluster.AddNode();
  PageId pid = *owner->AllocatePage();
  TxnId seed = *worker->Begin();
  RecordId r0 = *worker->Insert(seed, pid, "r0");   // psn 0
  RecordId r1 = *worker->Insert(seed, pid, "r1");   // psn 1
  ASSERT_OK(worker->Commit(seed));

  TxnId a = *worker->Begin();
  TxnId b = *worker->Begin();
  ASSERT_OK(worker->Update(a, r0, "a1"));  // psn 2
  ASSERT_OK(worker->Update(b, r1, "b1"));  // psn 3
  ASSERT_OK(worker->Update(a, r0, "a2"));  // psn 4
  ASSERT_OK(worker->Commit(a));
  ASSERT_OK(worker->Commit(b));

  PsnListReply reply;
  ASSERT_OK(worker->HandleBuildPsnList(owner->id(), {pid}, false, &reply));
  ASSERT_EQ(reply.per_page.size(), 1u);
  // Runs: seed(0), a(2), b(3), a(4) — txn boundaries, per the paper's
  // "transaction that wrote the log record is not the same as the
  // transaction that wrote the [previous] log record".
  std::vector<Psn> psns;
  for (const auto& e : reply.per_page[0]) psns.push_back(e.psn);
  EXPECT_EQ(psns, (std::vector<Psn>{0, 2, 3, 4}));
}

TEST_F(PsnListBuildTest, PagesWithoutDptEntryContributeNothing) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId untouched, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "x").status());
  ASSERT_OK(client_->Commit(txn));

  PsnListReply reply;
  ASSERT_OK(client_->HandleBuildPsnList(owner_->id(), {pid, untouched}, false,
                                        &reply));
  ASSERT_EQ(reply.per_page.size(), 2u);
  EXPECT_FALSE(reply.per_page[0].empty());
  EXPECT_TRUE(reply.per_page[1].empty());
}

TEST_F(PsnListBuildTest, RecordsBeforeRedoLsnExcluded) {
  // Updates whose effects are already on disk (entry dropped, then the
  // page re-dirtied) must not reappear in the list: the scan starts at
  // the CURRENT RedoLSN.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t1, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(t1, pid, "old"));
  ASSERT_OK(client_->Commit(t1));
  // Ship + force: the client's entry drops.
  ASSERT_OK(const_cast<BufferPool&>(client_->pool()).Evict(pid));
  ASSERT_OK(owner_->HandleFlushRequest(client_->id(), pid));
  ASSERT_FALSE(client_->dpt().Contains(pid));
  // Re-dirty: fresh entry with RedoLSN after the old records.
  ASSERT_OK_AND_ASSIGN(TxnId t2, client_->Begin());
  ASSERT_OK(client_->Update(t2, rid, "new"));
  ASSERT_OK(client_->Commit(t2));

  PsnListReply reply;
  ASSERT_OK(client_->HandleBuildPsnList(owner_->id(), {pid}, false, &reply));
  ASSERT_EQ(reply.per_page[0].size(), 1u);
  EXPECT_EQ(reply.per_page[0][0].psn, 1u);  // Only the post-force run.
}

TEST_F(PsnListBuildTest, ClrRecordsParticipateInRuns) {
  // An aborted transaction's CLRs are redo records too; they must appear
  // in the list so the rolled-back state is reproducible.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t1, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(t1, pid, "keep"));
  ASSERT_OK(client_->Commit(t1));
  ASSERT_OK_AND_ASSIGN(TxnId t2, client_->Begin());
  ASSERT_OK(client_->Update(t2, rid, "scrap"));   // psn 1->2
  ASSERT_OK(client_->Abort(t2));                  // CLR: psn 2->3

  PsnListReply reply;
  ASSERT_OK(client_->HandleBuildPsnList(owner_->id(), {pid}, false, &reply));
  // Runs: t1(0), t2(1) — t2's CLR continues its own run.
  ASSERT_EQ(reply.per_page[0].size(), 2u);
  EXPECT_EQ(reply.per_page[0][0].psn, 0u);
  EXPECT_EQ(reply.per_page[0][1].psn, 1u);
}

}  // namespace
}  // namespace clog
