#include <gtest/gtest.h>

#include "common/random.h"
#include "core/heap_table.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class HeapTableTest : public ::testing::Test {
 protected:
  HeapTableTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 32;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(HeapTableTest, CatalogEntryRoundTrip) {
  PageId pid{3, 77};
  std::string enc = EncodeCatalogEntry(pid);
  ASSERT_OK_AND_ASSIGN(PageId out, DecodeCatalogEntry(enc));
  EXPECT_EQ(out, pid);
  EXPECT_TRUE(DecodeCatalogEntry("xx").status().IsCorruption());
}

TEST_F(HeapTableTest, InsertAndScan) {
  ASSERT_OK_AND_ASSIGN(HeapTable table,
                       HeapTable::Create(cluster_.get(), owner_->id()));
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    for (int i = 0; i < 10; ++i) {
      CLOG_RETURN_IF_ERROR(
          table.Insert(txn, "row" + std::to_string(i)).status());
    }
    return Status::OK();
  }));
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(std::size_t n, table.Count(txn));
    EXPECT_EQ(n, 10u);
    CLOG_ASSIGN_OR_RETURN(auto rows, table.Scan(txn));
    EXPECT_EQ(rows.front(), "row0");
    return Status::OK();
  }));
}

TEST_F(HeapTableTest, GrowsAcrossPages) {
  ASSERT_OK_AND_ASSIGN(HeapTable table,
                       HeapTable::Create(cluster_.get(), owner_->id()));
  // ~4 KiB pages, 500-byte rows: 100 rows span 13+ pages.
  std::string row(500, 'g');
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    for (int i = 0; i < 100; ++i) {
      CLOG_RETURN_IF_ERROR(table.Insert(txn, row).status());
    }
    return Status::OK();
  }));
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(auto pages, table.DataPages(txn));
    EXPECT_GE(pages.size(), 13u);
    CLOG_ASSIGN_OR_RETURN(std::size_t n, table.Count(txn));
    EXPECT_EQ(n, 100u);
    return Status::OK();
  }));
}

TEST_F(HeapTableTest, RemoteClientUsesTable) {
  // The table lives at the owner; a client inserts/scans through its own
  // cache and local log, extending the table when needed.
  ASSERT_OK_AND_ASSIGN(HeapTable table,
                       HeapTable::Create(cluster_.get(), owner_->id()));
  std::string row(700, 'c');
  ASSERT_OK(cluster_->RunTransaction(client_->id(), [&](TxnHandle& txn) {
    for (int i = 0; i < 20; ++i) {
      CLOG_RETURN_IF_ERROR(table.Insert(txn, row).status());
    }
    return Status::OK();
  }));
  // Owner sees everything after the callbacks pull pages home.
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(std::size_t n, table.Count(txn));
    EXPECT_EQ(n, 20u);
    return Status::OK();
  }));
}

TEST_F(HeapTableTest, AbortUnlinksExtension) {
  ASSERT_OK_AND_ASSIGN(HeapTable table,
                       HeapTable::Create(cluster_.get(), owner_->id()));
  // Abort a transaction that grew the table: the catalog entries (and so
  // the rows) must vanish atomically.
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  TxnHandle handle(owner_, txn);
  std::string row(900, 'a');
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(table.Insert(handle, row).status());
  }
  ASSERT_OK(owner_->Abort(txn));

  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& check) {
    CLOG_ASSIGN_OR_RETURN(std::size_t n, table.Count(check));
    EXPECT_EQ(n, 0u);
    CLOG_ASSIGN_OR_RETURN(auto pages, check.ScanPage(table.catalog()));
    EXPECT_TRUE(pages.empty());
    return Status::OK();
  }));
}

TEST_F(HeapTableTest, SurvivesOwnerCrash) {
  ASSERT_OK_AND_ASSIGN(HeapTable table,
                       HeapTable::Create(cluster_.get(), owner_->id()));
  std::string row(400, 's');
  ASSERT_OK(cluster_->RunTransaction(client_->id(), [&](TxnHandle& txn) {
    for (int i = 0; i < 30; ++i) {
      CLOG_RETURN_IF_ERROR(table.Insert(txn, row).status());
    }
    return Status::OK();
  }));
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));

  ASSERT_OK_AND_ASSIGN(HeapTable reopened,
                       HeapTable::Open(cluster_.get(), table.catalog()));
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(std::size_t n, reopened.Count(txn));
    EXPECT_EQ(n, 30u);
    return Status::OK();
  }));
}

TEST_F(HeapTableTest, UpdateAndDeleteViaStableRecordIds) {
  ASSERT_OK_AND_ASSIGN(HeapTable table,
                       HeapTable::Create(cluster_.get(), owner_->id()));
  RecordId target;
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(target, table.Insert(txn, "original"));
    CLOG_RETURN_IF_ERROR(table.Insert(txn, "other").status());
    return Status::OK();
  }));
  ASSERT_OK(cluster_->RunTransaction(client_->id(), [&](TxnHandle& txn) {
    return txn.Update(target, "updated");
  }));
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(std::string v, txn.Read(target));
    EXPECT_EQ(v, "updated");
    return txn.Delete(target);
  }));
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& txn) {
    CLOG_ASSIGN_OR_RETURN(std::size_t n, table.Count(txn));
    EXPECT_EQ(n, 1u);
    return Status::OK();
  }));
}

}  // namespace
}  // namespace clog
