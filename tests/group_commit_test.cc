#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/workload.h"
#include "tests/test_util.h"

/// \file
/// Group commit (GroupCommitPolicy): commit-force coalescing. The contract
/// under test is twofold. Performance: with N committers sharing a force,
/// the commit path charges well under one force per transaction. Safety:
/// a transaction is never acknowledged before its commit record is
/// durable — a parked, unacknowledged commit may be rolled back by a
/// crash, an acknowledged one never is.

namespace clog {
namespace {

using testing::TempDir;

class GroupCommitTest : public ::testing::Test {
 protected:
  void Start(std::size_t max_group_size, std::uint64_t window_ns,
             int num_nodes = 1) {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 64;
    opts.logging_policy.WithGroupCommitWindow(window_ns, max_group_size);
    cluster_ = std::make_unique<Cluster>(opts);
    for (int i = 0; i < num_nodes; ++i) {
      Result<Node*> n = cluster_->AddNode();
      ASSERT_OK(n.status());
      nodes_.push_back(*n);
    }
  }

  std::uint64_t NodeCounter(Node* n, const std::string& name) {
    return n->metrics().CounterValue(name);
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<Node*> nodes_;
};

TEST_F(GroupCommitTest, FullGroupCoalescesToOneForce) {
  // Four concurrent committers on one node, group size four: the fourth
  // CommitRequest leads a single force that covers all four commit
  // records. Forces per committed transaction = 0.25 — the acceptance bar
  // is < 1.0.
  Start(/*max_group_size=*/4, /*window_ns=*/1'000'000);
  Node* n = nodes_[0];

  std::vector<TxnId> txns;
  std::vector<RecordId> rids;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId pid, n->AllocatePage());
    ASSERT_OK_AND_ASSIGN(TxnId txn, n->Begin());
    ASSERT_OK_AND_ASSIGN(RecordId rid,
                         n->Insert(txn, pid, "v" + std::to_string(i)));
    txns.push_back(txn);
    rids.push_back(rid);
  }

  const std::uint64_t forces_before = n->log().forces();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK_AND_ASSIGN(bool done, n->CommitRequest(txns[i]));
    EXPECT_FALSE(done) << "committer " << i << " should park";
    EXPECT_EQ(n->log().forces(), forces_before) << "no force while parked";
  }
  // The fourth committer fills the group and leads the shared force.
  ASSERT_OK_AND_ASSIGN(bool done, n->CommitRequest(txns[3]));
  EXPECT_TRUE(done);
  EXPECT_EQ(n->log().forces(), forces_before + 1);

  // Every member of the group is fully committed and visible.
  EXPECT_EQ(NodeCounter(n, "gc.parked"), 4u);
  EXPECT_EQ(NodeCounter(n, "gc.group_forces"), 1u);
  EXPECT_EQ(NodeCounter(n, "gc.completed"), 4u);
  EXPECT_EQ(NodeCounter(n, "txn.commits"), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(bool acked, n->PollCommit(txns[i]));
    EXPECT_TRUE(acked);
  }
  ASSERT_OK_AND_ASSIGN(TxnId reader, n->Begin());
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string v, n->Read(reader, rids[i]));
    EXPECT_EQ(v, "v" + std::to_string(i));
  }
  ASSERT_OK(n->Commit(reader));
}

TEST_F(GroupCommitTest, WindowExpiryAcksOnlyAfterDurable) {
  // A lone committer parks; polling inside the window must not
  // acknowledge it (its commit record is still volatile). Once simulated
  // time passes the window, the poll forces and only then acknowledges.
  Start(/*max_group_size=*/8, /*window_ns=*/2'000'000);
  Node* n = nodes_[0];

  ASSERT_OK_AND_ASSIGN(PageId pid, n->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, n->Begin());
  ASSERT_OK(n->Insert(txn, pid, "windowed").status());

  const Lsn flushed_before = n->log().flushed_lsn();
  ASSERT_OK_AND_ASSIGN(bool done, n->CommitRequest(txn));
  ASSERT_FALSE(done);

  ASSERT_OK_AND_ASSIGN(bool early, n->PollCommit(txn));
  EXPECT_FALSE(early);
  EXPECT_EQ(n->log().flushed_lsn(), flushed_before)
      << "nothing forced inside the window";

  cluster_->clock().Advance(2'000'000);
  ASSERT_OK_AND_ASSIGN(bool late, n->PollCommit(txn));
  EXPECT_TRUE(late);
  EXPECT_GT(n->log().flushed_lsn(), flushed_before)
      << "the ack implies the commit record is durable";
  EXPECT_EQ(NodeCounter(n, "txn.commits"), 1u);
}

TEST_F(GroupCommitTest, CheckpointDrainsGroupAndAckSurvivesCrash) {
  // The checkpoint/ATT interaction: a checkpoint settles the commit group
  // before snapshotting the active-transaction table, so the parked
  // commit is completed (and acknowledgeable) and — the part a crash
  // would expose — restart analysis must treat it as a winner. An
  // acknowledged group commit must survive any later crash.
  Start(/*max_group_size=*/8, /*window_ns=*/10'000'000);
  Node* n = nodes_[0];

  ASSERT_OK_AND_ASSIGN(PageId pid, n->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, n->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, n->Insert(txn, pid, "acked"));
  ASSERT_OK_AND_ASSIGN(bool done, n->CommitRequest(txn));
  ASSERT_FALSE(done);

  // The checkpoint's group drain completes the parked commit as a side
  // effect — an "absorbed" force: the commit path itself never forces.
  ASSERT_OK(n->Checkpoint());
  ASSERT_OK_AND_ASSIGN(bool acked, n->PollCommit(txn));
  EXPECT_TRUE(acked);
  EXPECT_EQ(NodeCounter(n, "gc.completed"), 1u);

  ASSERT_OK(cluster_->CrashNode(n->id()));
  ASSERT_OK(cluster_->RestartNode(n->id()));
  ASSERT_OK_AND_ASSIGN(TxnId reader, n->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, n->Read(reader, rid));
  EXPECT_EQ(v, "acked");
  ASSERT_OK(n->Commit(reader));
}

TEST_F(GroupCommitTest, CrashWhileParkedRollsBackOnlyUnacked) {
  // No phantom commits in either direction. Transaction A parks and is
  // acknowledged (an explicit drain forces the group); transaction B
  // parks afterwards and is never acknowledged. A crash then destroys the
  // volatile log tail. After restart A's update must be present and B's
  // must not — B was indeterminate, and losing it is exactly the
  // all-or-nothing outcome the never-ACK-before-durable rule permits.
  Start(/*max_group_size=*/8, /*window_ns=*/10'000'000);
  Node* n = nodes_[0];

  ASSERT_OK_AND_ASSIGN(PageId pa, n->AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId pb, n->AllocatePage());

  ASSERT_OK_AND_ASSIGN(TxnId ta, n->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId ra, n->Insert(ta, pa, "A-durable"));
  ASSERT_OK_AND_ASSIGN(bool done_a, n->CommitRequest(ta));
  ASSERT_FALSE(done_a);
  ASSERT_OK(n->FlushCommitGroup());
  ASSERT_OK_AND_ASSIGN(bool acked_a, n->PollCommit(ta));
  ASSERT_TRUE(acked_a);  // A is acknowledged: it must survive anything.

  ASSERT_OK_AND_ASSIGN(TxnId tb, n->Begin());
  ASSERT_OK(n->Insert(tb, pb, "B-volatile").status());
  ASSERT_OK_AND_ASSIGN(bool done_b, n->CommitRequest(tb));
  ASSERT_FALSE(done_b);  // B parks and is never polled to completion.

  ASSERT_OK(cluster_->CrashNode(n->id()));
  ASSERT_OK(cluster_->RestartNode(n->id()));

  ASSERT_OK_AND_ASSIGN(TxnId reader, n->Begin());
  ASSERT_OK_AND_ASSIGN(std::string va, n->Read(reader, ra));
  EXPECT_EQ(va, "A-durable");
  // B's record never became durable; its page has no committed image.
  ASSERT_OK_AND_ASSIGN(std::vector<std::string> pb_rows,
                       n->ScanPage(reader, pb));
  EXPECT_TRUE(pb_rows.empty()) << "unacked parked commit must roll back";
  ASSERT_OK(n->Commit(reader));
}

TEST_F(GroupCommitTest, PlainCommitStillSynchronousUnderPolicy) {
  // Node::Commit keeps its blocking contract with the policy on: it
  // parks, immediately leads the group force, and returns with the
  // transaction durable — so existing callers observe no semantic change.
  Start(/*max_group_size=*/8, /*window_ns=*/10'000'000);
  Node* n = nodes_[0];

  ASSERT_OK_AND_ASSIGN(PageId pid, n->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, n->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, n->Insert(txn, pid, "sync"));
  const Lsn flushed_before = n->log().flushed_lsn();
  ASSERT_OK(n->Commit(txn));
  EXPECT_GT(n->log().flushed_lsn(), flushed_before);
  EXPECT_EQ(NodeCounter(n, "txn.commits"), 1u);

  ASSERT_OK(cluster_->CrashNode(n->id()));
  ASSERT_OK(cluster_->RestartNode(n->id()));
  ASSERT_OK_AND_ASSIGN(TxnId reader, n->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, n->Read(reader, rid));
  EXPECT_EQ(v, "sync");
  ASSERT_OK(n->Commit(reader));
}

TEST_F(GroupCommitTest, DriverRunParksAndStaysDeterministic) {
  // The workload driver's park/poll loop: four sessions on one node over
  // disjoint pages, coalescing window wide enough that commits genuinely
  // park. The run must complete every transaction, charge fewer forces
  // than commits, and replay bit-identically from the same seed.
  WorkloadStats first;
  std::uint64_t first_forces = 0, first_commit_records = 0;
  for (int run = 0; run < 2; ++run) {
    TempDir fresh;
    ClusterOptions opts;
    opts.dir = fresh.path();
    opts.node_defaults.buffer_frames = 64;
    opts.logging_policy.WithGroupCommitWindow(2'000'000, 4);
    Cluster cluster(opts);
    Result<Node*> n = cluster.AddNode();
    ASSERT_OK(n.status());

    ASSERT_OK_AND_ASSIGN(
        std::vector<PageId> pages,
        AllocatePopulatedPages(&cluster, (*n)->id(), /*count=*/4,
                               /*records=*/8, /*payload_bytes=*/64,
                               /*seed=*/99));
    std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
    for (int s = 0; s < 4; ++s) {
      sessions.push_back({(*n)->id(), {pages[s]}});
    }
    WorkloadConfig config;
    config.seed = 4242;
    config.txns_per_session = 12;
    config.ops_per_txn = 4;
    config.records_per_page = 8;
    WorkloadDriver driver(&cluster, config, sessions);
    ASSERT_OK(driver.Run());

    const WorkloadStats& stats = driver.stats();
    EXPECT_EQ(stats.committed, 4u * 12u);
    EXPECT_GT(stats.commit_parks, 0u) << "coalescing path never ran";
    // The perf claim: shared forces beat one-force-per-commit. Population
    // and checkpoint forces are included, so this bound is conservative.
    const std::uint64_t forces = (*n)->log().forces();
    const std::uint64_t commits = (*n)->metrics().CounterValue("txn.commits");
    EXPECT_LT(forces, commits) << "forces=" << forces
                               << " commits=" << commits;

    if (run == 0) {
      first = stats;
      first_forces = forces;
      first_commit_records = commits;
    } else {
      EXPECT_EQ(stats.committed, first.committed);
      EXPECT_EQ(stats.commit_parks, first.commit_parks);
      EXPECT_EQ(stats.group_waits, first.group_waits);
      EXPECT_EQ(stats.ops, first.ops);
      EXPECT_EQ(stats.sim_ns, first.sim_ns);
      EXPECT_EQ(forces, first_forces);
      EXPECT_EQ(commits, first_commit_records);
    }
  }
}

}  // namespace
}  // namespace clog
