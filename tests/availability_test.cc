#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/cluster.h"
#include "core/workload.h"
#include "fault/fault_injector.h"
#include "net/failure_detector.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// The availability layer (docs/availability.md): the retry envelope's
/// backoff schedule, the heartbeat failure detector's three peer states,
/// request parking against recovering owners, crash-during-recovery
/// restartability, and the end-to-end liveness guarantee — a seeded
/// crash/restart of the owner mid-workload ends with zero NodeDown-caused
/// permanent aborts.

// --- Backoff schedule --------------------------------------------------

TEST(BackoffTest, DeterministicFromSeed) {
  RetryPolicy policy;
  Random a(42), b(42);
  for (int attempt = 1; attempt <= 12; ++attempt) {
    EXPECT_EQ(BackoffNanos(policy, attempt, &a),
              BackoffNanos(policy, attempt, &b))
        << "attempt " << attempt;
  }
  // A different jitter seed diverges somewhere in the schedule.
  Random c(43);
  bool diverged = false;
  Random a2(42);
  for (int attempt = 1; attempt <= 12; ++attempt) {
    if (BackoffNanos(policy, attempt, &a2) !=
        BackoffNanos(policy, attempt, &c)) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(BackoffTest, ExponentialUntilCapWithoutJitter) {
  RetryPolicy policy;
  policy.backoff_base_ns = 100;
  policy.backoff_cap_ns = 1'000;
  policy.jitter = 0.0;
  EXPECT_EQ(BackoffNanos(policy, 1, nullptr), 100u);
  EXPECT_EQ(BackoffNanos(policy, 2, nullptr), 200u);
  EXPECT_EQ(BackoffNanos(policy, 3, nullptr), 400u);
  EXPECT_EQ(BackoffNanos(policy, 4, nullptr), 800u);
  EXPECT_EQ(BackoffNanos(policy, 5, nullptr), 1'000u);  // Capped.
  EXPECT_EQ(BackoffNanos(policy, 12, nullptr), 1'000u);
  // Shift overflow collapses to the cap instead of wrapping.
  EXPECT_EQ(BackoffNanos(policy, 200, nullptr), 1'000u);
}

TEST(BackoffTest, JitterBoundedByCapTimesJitterFraction) {
  RetryPolicy policy;
  Random rng(7);
  std::uint64_t bound = policy.backoff_cap_ns +
      static_cast<std::uint64_t>(static_cast<double>(policy.backoff_cap_ns) *
                                 policy.jitter);
  for (int attempt = 1; attempt <= 64; ++attempt) {
    std::uint64_t ns = BackoffNanos(policy, attempt, &rng);
    EXPECT_GE(ns, policy.backoff_base_ns);
    EXPECT_LE(ns, bound) << "attempt " << attempt;
  }
}

// --- Shared fixture helpers --------------------------------------------

struct TestCluster {
  explicit TestCluster(const std::string& dir, FaultInjector* injector,
                       bool retries_on = true) {
    ClusterOptions opts;
    opts.dir = dir;
    opts.fault_injector = injector;
    opts.retry_policy.enabled = retries_on;
    cluster = std::make_unique<Cluster>(opts);
    owner = *cluster->AddNode();
    client = *cluster->AddNode();
  }

  std::unique_ptr<Cluster> cluster;
  Node* owner = nullptr;
  Node* client = nullptr;
};

Result<RecordId> SeedRecord(TestCluster* tc, PageId* out_pid) {
  CLOG_ASSIGN_OR_RETURN(PageId pid, tc->owner->AllocatePage());
  CLOG_ASSIGN_OR_RETURN(TxnId txn, tc->owner->Begin());
  CLOG_ASSIGN_OR_RETURN(RecordId rid, tc->owner->Insert(txn, pid, "seed"));
  CLOG_RETURN_IF_ERROR(tc->owner->Commit(txn));
  if (out_pid != nullptr) *out_pid = pid;
  return rid;
}

Status ReadOnce(Node* n, RecordId rid) {
  CLOG_ASSIGN_OR_RETURN(TxnId txn, n->Begin());
  Result<std::string> got = n->Read(txn, rid);
  if (!got.ok()) {
    (void)n->Abort(txn);
    return got.status();
  }
  return n->Commit(txn);
}

Status UpdateOnce(Node* n, RecordId rid, const std::string& val) {
  CLOG_ASSIGN_OR_RETURN(TxnId txn, n->Begin());
  Status st = n->Update(txn, rid, val);
  if (!st.ok()) {
    (void)n->Abort(txn);
    return st;
  }
  return n->Commit(txn);
}

// --- Retry envelope ----------------------------------------------------

TEST(RetryEnvelopeTest, ExhaustionSurfacesTheOriginalError) {
  TempDir dir;
  FaultInjector injector(11);
  FaultConfig cfg;
  cfg.net_drop_p = 1.0;  // Every remote admission fails.
  injector.set_config(cfg);
  injector.set_enabled(false);
  TestCluster tc(dir.path(), &injector);
  ASSERT_OK_AND_ASSIGN(RecordId rid, SeedRecord(&tc, nullptr));

  injector.set_enabled(true);
  Status st = ReadOnce(tc.client, rid);
  injector.set_enabled(false);

  // The budget ran dry and the caller sees the original admission error,
  // not a retry-layer artifact.
  ASSERT_TRUE(st.IsNodeDown()) << st.ToString();
  EXPECT_NE(st.ToString().find("dropped"), std::string::npos)
      << st.ToString();
  const Metrics& m = tc.cluster->network().metrics();
  EXPECT_GE(m.CounterValue("rpc.retry_exhausted"), 1u);
  EXPECT_GE(m.CounterValue("rpc.retries"),
            static_cast<std::uint64_t>(
                tc.cluster->network().retry_policy().max_attempts - 1));
  EXPECT_GT(m.CounterValue("rpc.backoff_ns"), 0u);
}

TEST(RetryEnvelopeTest, TransientDropsAreAbsorbed) {
  TempDir dir;
  FaultInjector injector(23);
  FaultConfig cfg;
  cfg.net_drop_p = 0.3;
  injector.set_config(cfg);
  injector.set_enabled(false);
  TestCluster tc(dir.path(), &injector);
  ASSERT_OK_AND_ASSIGN(RecordId rid, SeedRecord(&tc, nullptr));

  // Alternating writers keep the page bouncing between nodes, so every
  // iteration crosses the lossy wire (locks, callbacks, page ships).
  injector.set_enabled(true);
  int successes = 0;
  for (int i = 0; i < 40; ++i) {
    Node* writer = (i % 2 == 0) ? tc.client : tc.owner;
    if (UpdateOnce(writer, rid, "v" + std::to_string(i)).ok()) ++successes;
  }
  injector.set_enabled(false);

  // With a 0.3 drop rate and a 4-attempt budget almost every operation
  // rides through; the envelope must have absorbed real drops.
  EXPECT_GE(successes, 35);
  const Metrics& m = tc.cluster->network().metrics();
  EXPECT_GE(m.CounterValue("rpc.retry_success"), 1u);
  EXPECT_GT(m.CounterValue("rpc.retries"), 0u);
}

TEST(RetryEnvelopeTest, DisabledPolicyFailsFast) {
  TempDir dir;
  FaultInjector injector(31);
  FaultConfig cfg;
  cfg.net_drop_p = 1.0;
  injector.set_config(cfg);
  injector.set_enabled(false);
  TestCluster tc(dir.path(), &injector, /*retries_on=*/false);
  ASSERT_OK_AND_ASSIGN(RecordId rid, SeedRecord(&tc, nullptr));

  injector.set_enabled(true);
  Status st = ReadOnce(tc.client, rid);
  injector.set_enabled(false);

  ASSERT_TRUE(st.IsNodeDown()) << st.ToString();
  EXPECT_EQ(tc.cluster->network().metrics().CounterValue("rpc.retries"), 0u);
}

// --- Failure detector ---------------------------------------------------

TEST(FailureDetectorTest, ProbeReportsUpDownAndRecovering) {
  TempDir dir;
  TestCluster tc(dir.path(), nullptr);
  ASSERT_OK_AND_ASSIGN(RecordId rid, SeedRecord(&tc, nullptr));
  (void)rid;
  Network& net = tc.cluster->network();
  NodeId owner_id = tc.owner->id();
  NodeId client_id = tc.client->id();

  EXPECT_EQ(net.ProbePeer(client_id, owner_id), PeerHealth::kUp);

  ASSERT_OK(tc.cluster->CrashNode(owner_id));
  EXPECT_EQ(net.ProbePeer(client_id, owner_id), PeerHealth::kDown);

  // Observe the recovering state from inside restart, at a phase boundary.
  std::vector<PeerHealth> seen;
  tc.cluster->set_recovery_phase_hook(
      [&](NodeId id, RecoveryPhase phase) {
        if (id == owner_id && phase == RecoveryPhase::kAnalyzed) {
          seen.push_back(net.ProbePeer(client_id, owner_id));
        }
      });
  ASSERT_OK(tc.cluster->RestartNode(owner_id));
  tc.cluster->set_recovery_phase_hook(nullptr);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], PeerHealth::kRecovering);

  EXPECT_EQ(net.ProbePeer(client_id, owner_id), PeerHealth::kUp);
}

TEST(FailureDetectorTest, FreshProbesAreCached) {
  TempDir dir;
  TestCluster tc(dir.path(), nullptr);
  Network& net = tc.cluster->network();
  NodeId owner_id = tc.owner->id();
  NodeId client_id = tc.client->id();

  std::uint64_t probes0 = net.metrics().CounterValue("hb.probes");
  EXPECT_EQ(net.ProbePeer(client_id, owner_id), PeerHealth::kUp);
  std::uint64_t probes1 = net.metrics().CounterValue("hb.probes");
  EXPECT_EQ(probes1, probes0 + 1);

  // Same simulated instant: the cached view answers, no wire traffic.
  EXPECT_EQ(net.ProbePeer(client_id, owner_id), PeerHealth::kUp);
  EXPECT_EQ(net.metrics().CounterValue("hb.probes"), probes1);
  EXPECT_GE(net.metrics().CounterValue("hb.probe_cached"), 1u);

  // Past the heartbeat interval the view is stale and re-probed.
  tc.cluster->clock().Advance(net.retry_policy().heartbeat_interval_ns + 1);
  EXPECT_EQ(net.ProbePeer(client_id, owner_id), PeerHealth::kUp);
  EXPECT_EQ(net.metrics().CounterValue("hb.probes"), probes1 + 1);
}

// --- Parking against a recovering owner ---------------------------------

TEST(ParkingTest, RecoveringOwnerParksThenResumes) {
  TempDir dir;
  TestCluster tc(dir.path(), nullptr);
  ASSERT_OK_AND_ASSIGN(RecordId rid, SeedRecord(&tc, nullptr));
  NodeId owner_id = tc.owner->id();

  ASSERT_OK(tc.cluster->CrashNode(owner_id));

  // A request issued while the owner is mid-recovery is parked: the caller
  // gets Unavailable (not NodeDown) and the owner is remembered.
  std::vector<Status> during;
  tc.cluster->set_recovery_phase_hook(
      [&](NodeId id, RecoveryPhase phase) {
        if (id == owner_id && phase == RecoveryPhase::kExchanged) {
          during.push_back(ReadOnce(tc.client, rid));
        }
      });
  ASSERT_OK(tc.cluster->RestartNode(owner_id));
  tc.cluster->set_recovery_phase_hook(nullptr);

  ASSERT_EQ(during.size(), 1u);
  EXPECT_TRUE(during[0].IsUnavailable()) << during[0].ToString();
  EXPECT_GE(tc.client->metrics().CounterValue("avail.parked"), 1u);

  // The NodeRecovered broadcast unparked the owner; traffic flows again.
  EXPECT_GE(tc.client->metrics().CounterValue("avail.resumed"), 1u);
  EXPECT_OK(ReadOnce(tc.client, rid));
}

// --- Crash during recovery ----------------------------------------------

TEST(CrashDuringRecoveryTest, EveryPhaseBoundaryIsRestartable) {
  for (int boundary = 0; boundary <= 2; ++boundary) {
    TempDir dir;
    TestCluster tc(dir.path(), nullptr);
    ASSERT_OK_AND_ASSIGN(RecordId rid, SeedRecord(&tc, nullptr));
    NodeId owner_id = tc.owner->id();

    // Make the client hold the page so recovery has real peer state.
    ASSERT_OK(ReadOnce(tc.client, rid));
    ASSERT_OK(tc.cluster->CrashNode(owner_id));

    int fired = 0;
    tc.cluster->set_recovery_phase_hook(
        [&](NodeId id, RecoveryPhase phase) {
          if (id == owner_id && static_cast<int>(phase) == boundary) {
            ++fired;
            ASSERT_OK(tc.cluster->CrashNode(id));
          }
        });
    // The phase-boundary crash abandons this round (fail-stop, not error).
    ASSERT_OK(tc.cluster->RestartNode(owner_id));
    tc.cluster->set_recovery_phase_hook(nullptr);
    ASSERT_EQ(fired, 1) << "boundary " << boundary;
    ASSERT_EQ(tc.owner->state(), NodeState::kDown) << "boundary " << boundary;

    // Re-entry from scratch completes and the data is intact.
    ASSERT_OK(tc.cluster->RestartNode(owner_id));
    ASSERT_EQ(tc.owner->state(), NodeState::kUp) << "boundary " << boundary;
    ASSERT_OK(tc.owner->CheckInvariants(/*deep=*/true));
    EXPECT_OK(ReadOnce(tc.client, rid));
    EXPECT_OK(ReadOnce(tc.owner, rid));
  }
}

// --- End-to-end liveness ------------------------------------------------

TEST(AvailabilityLivenessTest, WorkloadRidesThroughOwnerCrashAndRestart) {
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  opts.retry_policy.enabled = true;
  opts.node_defaults.buffer_frames = 10;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  ASSERT_OK_AND_ASSIGN(
      std::vector<PageId> pages,
      AllocatePopulatedPages(&cluster, owner->id(), 4, 6, 40, 99));

  WorkloadConfig config;
  config.seed = 99;
  config.txns_per_session = 12;
  config.ops_per_txn = 4;
  config.records_per_page = 6;
  config.payload_bytes = 40;
  WorkloadDriver driver(&cluster, config,
                        {{owner->id(), pages}, {client->id(), pages}});

  // Kill the owner mid-workload, restart it a stretch later: the driver
  // must treat the outage as waiting, not failure.
  NodeId owner_id = owner->id();
  driver.set_round_hook([&](std::uint64_t round) {
    if (round == 20) ASSERT_OK(cluster.CrashNode(owner_id));
    if (round == 45) ASSERT_OK(cluster.RestartNode(owner_id));
  });
  ASSERT_OK(driver.Run());

  const WorkloadStats& stats = driver.stats();
  // Liveness: every transaction eventually committed; the crash caused
  // transparent re-runs, never a permanent NodeDown abort.
  EXPECT_EQ(stats.committed, 2 * config.txns_per_session);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_GT(stats.aborted_availability, 0u);
  EXPECT_GT(stats.down_waits, 0u);
  EXPECT_EQ(cluster.SumCounter("workload.aborted_availability"),
            stats.aborted_availability);

  // Everything still consistent after the dust settles.
  for (NodeId id : cluster.NodeIds()) {
    ASSERT_OK(cluster.node(id)->CheckInvariants(/*deep=*/false));
  }
}

TEST(AvailabilityLivenessTest, ContentionAndAvailabilityCountedSeparately) {
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  opts.retry_policy.enabled = true;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  ASSERT_OK_AND_ASSIGN(
      std::vector<PageId> pages,
      AllocatePopulatedPages(&cluster, owner->id(), 2, 8, 60, 5));

  WorkloadConfig config;
  config.seed = 5;
  config.txns_per_session = 10;
  config.ops_per_txn = 6;
  config.records_per_page = 8;
  config.payload_bytes = 60;
  WorkloadDriver driver(&cluster, config,
                        {{owner->id(), pages}, {client->id(), pages}});
  ASSERT_OK(driver.Run());

  // No crash happened: every abort in this run is contention, none is
  // availability — the two counters must not bleed into each other.
  EXPECT_EQ(driver.stats().aborted_availability, 0u);
  EXPECT_EQ(cluster.SumCounter("workload.aborted_availability"), 0u);
  EXPECT_EQ(cluster.SumCounter("workload.aborted_contention"),
            driver.stats().aborted_deadlock);
}

}  // namespace
}  // namespace clog
