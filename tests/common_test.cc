#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/lock_mode.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/types.h"
#include "tests/test_util.h"

namespace clog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, CodesAndMessages) {
  Status st = Status::NotFound("page 7");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "not found: page 7");
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Deadlock().IsDeadlock());
  EXPECT_TRUE(Status::LogFull().IsLogFull());
  EXPECT_TRUE(Status::NodeDown().IsNodeDown());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::Aborted().IsAborted());
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    CLOG_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool good) -> Result<int> {
    if (good) return 7;
    return Status::Busy("later");
  };
  auto use = [&](bool good) -> Status {
    CLOG_ASSIGN_OR_RETURN(int v, make(good));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_OK(use(true));
  EXPECT_TRUE(use(false).IsBusy());
}

TEST(TypesTest, TxnIdEncodesNode) {
  TxnId id = MakeTxnId(13, 99);
  EXPECT_EQ(TxnNode(id), 13u);
  EXPECT_EQ(id & 0xFFFFFFFFFFFFull, 99u);
}

TEST(TypesTest, PageIdPackUnpackRoundTrip) {
  PageId pid{3, 0xDEADBEEF};
  EXPECT_EQ(PageId::Unpack(pid.Pack()), pid);
  EXPECT_EQ(pid.ToString(), "3:3735928559");
  EXPECT_TRUE(pid.Valid());
  EXPECT_FALSE(kInvalidPageId.Valid());
}

TEST(TypesTest, PageIdOrderingAndHash) {
  PageId a{1, 5}, b{1, 6}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_NE(std::hash<PageId>()(a), std::hash<PageId>()(b));
}

TEST(LockModeTest, CompatibilityMatrix) {
  EXPECT_TRUE(Compatible(LockMode::kShared, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kShared, LockMode::kExclusive));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kShared));
  EXPECT_FALSE(Compatible(LockMode::kExclusive, LockMode::kExclusive));
  EXPECT_TRUE(Compatible(LockMode::kNone, LockMode::kExclusive));
}

TEST(Crc32cTest, KnownValueAndExtend) {
  // CRC-32C of "123456789" is the classic check value 0xE3069283.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  std::uint32_t split = crc32c::Extend(0, "12345", 5);
  // Extend is not plain concatenation of independent CRCs; recomputing the
  // full range must match Value.
  EXPECT_EQ(crc32c::Value("12345", 5), split);
}

TEST(Crc32cTest, DetectsBitFlip) {
  std::string data(100, 'a');
  std::uint32_t before = crc32c::Value(data.data(), data.size());
  data[50] ^= 1;
  EXPECT_NE(before, crc32c::Value(data.data(), data.size()));
}

TEST(CodecTest, FixedWidthRoundTrip) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU8(0xAB);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  Decoder dec(buf);
  std::uint8_t v8;
  std::uint16_t v16;
  std::uint32_t v32;
  std::uint64_t v64;
  ASSERT_OK(dec.GetU8(&v8));
  ASSERT_OK(dec.GetU16(&v16));
  ASSERT_OK(dec.GetU32(&v32));
  ASSERT_OK(dec.GetU64(&v64));
  EXPECT_EQ(v8, 0xAB);
  EXPECT_EQ(v16, 0xBEEF);
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(dec.Done());
}

TEST(CodecTest, VarintRoundTripBoundaries) {
  std::string buf;
  Encoder enc(&buf);
  std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384, ~0ull};
  for (std::uint64_t v : values) enc.PutVarint64(v);
  Decoder dec(buf);
  for (std::uint64_t v : values) {
    std::uint64_t got;
    ASSERT_OK(dec.GetVarint64(&got));
    EXPECT_EQ(got, v);
  }
}

TEST(CodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutLengthPrefixed("hello");
  enc.PutLengthPrefixed("");
  enc.PutLengthPrefixed(std::string(1000, 'x'));
  Decoder dec(buf);
  std::string a, b, c;
  ASSERT_OK(dec.GetLengthPrefixed(&a));
  ASSERT_OK(dec.GetLengthPrefixed(&b));
  ASSERT_OK(dec.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(CodecTest, TruncatedInputIsCorruption) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU64(7);
  Decoder dec(Slice(buf.data(), 3));  // Cut short.
  std::uint64_t v;
  EXPECT_TRUE(dec.GetU64(&v).IsCorruption());
}

TEST(CodecTest, OverlongVarintIsCorruption) {
  std::string buf(11, '\x80');  // Never terminates within 64 bits.
  Decoder dec(buf);
  std::uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    std::uint64_t r = rng.Range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
  }
}

TEST(RandomTest, SkewedPrefersHotSet) {
  Random rng(11);
  int hot = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Skewed(100) < 20) ++hot;
  }
  // ~80% by construction plus uniform spill; allow slack.
  EXPECT_GT(hot, kDraws * 7 / 10);
}

TEST(RandomTest, BytesHasRequestedLength) {
  Random rng(3);
  EXPECT_EQ(rng.Bytes(0).size(), 0u);
  EXPECT_EQ(rng.Bytes(257).size(), 257u);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.Advance(100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowNanos(), 150u);
  clock.Reset();
  EXPECT_EQ(clock.NowNanos(), 0u);
}

TEST(MetricsTest, CountersAccumulate) {
  Metrics m;
  m.GetCounter("a").Add(3);
  m.GetCounter("a").Add(4);
  EXPECT_EQ(m.CounterValue("a"), 7u);
  EXPECT_EQ(m.CounterValue("missing"), 0u);
  m.Reset();
  EXPECT_EQ(m.CounterValue("a"), 0u);
}

TEST(MetricsTest, SnapshotSortedByName) {
  Metrics m;
  m.GetCounter("z").Add(1);
  m.GetCounter("a").Add(2);
  auto snap = m.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "z");
}

TEST(MetricsTest, HistogramStats) {
  Metrics m;
  Histogram& h = m.GetHistogram("lat");
  for (std::uint64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_GT(h.Quantile(0.99), h.Quantile(0.01));
}

TEST(SliceTest, ComparisonAndConversion) {
  std::string s = "abc";
  Slice a(s), b("abc"), c("abd");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.ToString(), "abc");
  EXPECT_TRUE(Slice().empty());
}

}  // namespace
}  // namespace clog
