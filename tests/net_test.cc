#include <gtest/gtest.h>

#include "core/cluster.h"
#include "net/message.h"
#include "net/network.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Minimal NodeService that counts calls; isolates Network mechanics from
/// the real node engine.
class StubService : public NodeService {
 public:
  Status HandleLockPage(NodeId, PageId, LockMode, bool want_page,
                        LockPageReply* reply) override {
    ++lock_calls;
    reply->granted = true;
    if (want_page) {
      reply->page = std::make_shared<Page>();
      reply->page->Format(PageId{0, 0}, PageType::kData, 0);
      reply->page->SealChecksum();
    }
    return Status::OK();
  }
  Status HandleCallback(NodeId, PageId, LockMode, CallbackReply* r) override {
    r->complied = true;
    return Status::OK();
  }
  Status HandleUnlockNotice(NodeId, PageId) override { return Status::OK(); }
  Status HandlePageShip(NodeId, const Page&) override {
    ++ships;
    return Status::OK();
  }
  Status HandleFlushRequest(NodeId, PageId) override { return Status::OK(); }
  void HandleFlushNotify(NodeId, PageId, Psn) override { ++notifies; }
  Status HandleLogShip(NodeId, const std::vector<LogRecord>& recs,
                       bool) override {
    shipped_records += recs.size();
    return Status::OK();
  }
  Status HandleRecoveryQuery(NodeId, RecoveryQueryReply*) override {
    return Status::OK();
  }
  Status HandleFetchCachedPage(NodeId, PageId,
                               std::shared_ptr<Page>* page) override {
    page->reset();
    return Status::NotFound("");
  }
  Status HandleBuildPsnList(NodeId, const std::vector<PageId>& pages, bool,
                            PsnListReply* reply) override {
    reply->per_page.resize(pages.size());
    return Status::OK();
  }
  Status HandleRecoverPage(NodeId, PageId, const Page&, bool, Psn,
                           RecoverPageReply*) override {
    return Status::OK();
  }
  Status HandleDptShip(NodeId, const std::vector<DptEntry>&,
                       const std::vector<PageId>&) override {
    return Status::OK();
  }
  void HandleNodeRecovered(NodeId) override {}
  Status HandleLogLossNotice(NodeId,
                             const std::vector<PageId>& pages) override {
    log_loss_pages += static_cast<int>(pages.size());
    return Status::OK();
  }

  int lock_calls = 0;
  int log_loss_pages = 0;
  int ships = 0;
  int notifies = 0;
  std::size_t shipped_records = 0;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(&clock_, CostModel{}) {
    net_.RegisterNode(1, &a_);
    net_.RegisterNode(2, &b_);
  }
  SimClock clock_;
  Network net_;
  StubService a_, b_;
};

TEST_F(NetworkTest, RoutesToRegisteredNode) {
  LockPageReply reply;
  ASSERT_OK(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                          &reply));
  EXPECT_EQ(b_.lock_calls, 1);
  EXPECT_EQ(a_.lock_calls, 0);
  EXPECT_TRUE(reply.granted);
}

TEST_F(NetworkTest, UnknownNodeIsNotFound) {
  LockPageReply reply;
  EXPECT_TRUE(net_.LockPage(1, 9, PageId{9, 0}, LockMode::kShared, false,
                            &reply)
                  .IsNotFound());
}

TEST_F(NetworkTest, DownNodeIsNodeDown) {
  net_.SetNodeUp(2, false);
  LockPageReply reply;
  EXPECT_TRUE(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                            &reply)
                  .IsNodeDown());
  EXPECT_EQ(b_.lock_calls, 0);
  net_.SetNodeUp(2, true);
  ASSERT_OK(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                          &reply));
  EXPECT_EQ(b_.lock_calls, 1);
}

TEST_F(NetworkTest, CountsMessagesPerTypeAndTotal) {
  LockPageReply reply;
  ASSERT_OK(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, true,
                          &reply));
  // Request + reply are two wire messages.
  EXPECT_EQ(net_.metrics().CounterValue("msg.lock_page_request"), 1u);
  EXPECT_EQ(net_.metrics().CounterValue("msg.lock_page_reply"), 1u);
  EXPECT_EQ(net_.metrics().CounterValue("msg.total"), 2u);
  // Page transfer counts page-sized bytes.
  EXPECT_GE(net_.metrics().CounterValue("bytes.total"), kPageSize);
}

TEST_F(NetworkTest, ChargesSimulatedTime) {
  std::uint64_t before = clock_.NowNanos();
  Page page;
  page.Format(PageId{2, 1}, PageType::kData, 0);
  page.SealChecksum();
  ASSERT_OK(net_.PageShip(1, 2, page));
  // One message with a page payload: at least the fixed hop cost plus the
  // per-byte cost of a page.
  CostModel cost;
  EXPECT_GE(clock_.NowNanos() - before,
            cost.network_msg_ns + kPageSize * cost.network_byte_ns);
}

TEST_F(NetworkTest, BusyTimeAccruesOnBothEndpoints) {
  LockPageReply reply;
  ASSERT_OK(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                          &reply));
  EXPECT_GT(net_.BusyNanos(1), 0u);
  EXPECT_GT(net_.BusyNanos(2), 0u);
  EXPECT_EQ(net_.MaxBusyNanos(),
            std::max(net_.BusyNanos(1), net_.BusyNanos(2)));
  net_.ResetBusy();
  EXPECT_EQ(net_.MaxBusyNanos(), 0u);
}

TEST_F(NetworkTest, OperationalNodesExcludesDownAndSelf) {
  EXPECT_EQ(net_.AllNodes().size(), 2u);
  EXPECT_EQ(net_.OperationalNodes().size(), 2u);
  EXPECT_EQ(net_.OperationalNodes(1).size(), 1u);
  net_.SetNodeUp(2, false);
  EXPECT_EQ(net_.OperationalNodes().size(), 1u);
  EXPECT_TRUE(net_.OperationalNodes(1).empty());
}

TEST_F(NetworkTest, LogShipBytesScaleWithRecords) {
  std::vector<LogRecord> few(1), many(10);
  for (auto* batch : {&few, &many}) {
    for (LogRecord& rec : *batch) {
      rec.type = LogRecordType::kUpdate;
      rec.redo_image = std::string(100, 'r');
    }
  }
  ASSERT_OK(net_.LogShip(1, 2, few, false));
  std::uint64_t after_few = net_.metrics().CounterValue("bytes.total");
  ASSERT_OK(net_.LogShip(1, 2, many, false));
  std::uint64_t after_many = net_.metrics().CounterValue("bytes.total");
  EXPECT_GT(after_many - after_few, (after_few)*5);
  EXPECT_EQ(b_.shipped_records, 11u);
}

TEST_F(NetworkTest, CrashedNodeIsNodeDownForEveryMsgType) {
  net_.SetNodeUp(2, false);
  std::uint64_t msgs_before = net_.metrics().CounterValue("msg.total");
  std::uint64_t bytes_before = net_.metrics().CounterValue("bytes.total");

  Page page;
  page.Format(PageId{2, 1}, PageType::kData, 0);
  page.SealChecksum();
  std::vector<LogRecord> recs(1);
  recs[0].type = LogRecordType::kUpdate;
  LockPageReply lock_reply;
  CallbackReply cb_reply;
  RecoveryQueryReply rq_reply;
  PsnListReply psn_reply;
  RecoverPageReply rec_reply;
  std::shared_ptr<Page> fetched;

  EXPECT_TRUE(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, true,
                            &lock_reply)
                  .IsNodeDown());
  EXPECT_TRUE(net_.Callback(1, 2, PageId{2, 0}, LockMode::kNone, &cb_reply)
                  .IsNodeDown());
  EXPECT_TRUE(net_.UnlockNotice(1, 2, PageId{2, 0}).IsNodeDown());
  EXPECT_TRUE(net_.PageShip(1, 2, page).IsNodeDown());
  EXPECT_TRUE(net_.FlushRequest(1, 2, PageId{2, 0}).IsNodeDown());
  EXPECT_TRUE(net_.FlushNotify(1, 2, PageId{2, 0}, 1).IsNodeDown());
  EXPECT_TRUE(net_.LogShip(1, 2, recs, true).IsNodeDown());
  EXPECT_TRUE(net_.RecoveryQuery(1, 2, &rq_reply).IsNodeDown());
  EXPECT_TRUE(net_.FetchCachedPage(1, 2, PageId{2, 0}, &fetched)
                  .IsNodeDown());
  EXPECT_TRUE(net_.BuildPsnList(1, 2, {PageId{2, 0}}, false, &psn_reply)
                  .IsNodeDown());
  EXPECT_TRUE(net_.RecoverPage(1, 2, PageId{2, 0}, page, false, 0, &rec_reply)
                  .IsNodeDown());
  EXPECT_TRUE(net_.DptShip(1, 2, {}, {}).IsNodeDown());
  EXPECT_TRUE(net_.NodeRecovered(1, 2, 1).IsNodeDown());

  // No handler ever ran, and refused requests are not charged to the wire.
  EXPECT_EQ(b_.lock_calls, 0);
  EXPECT_EQ(b_.ships, 0);
  EXPECT_EQ(b_.notifies, 0);
  EXPECT_EQ(b_.shipped_records, 0u);
  EXPECT_EQ(net_.metrics().CounterValue("msg.total"), msgs_before);
  EXPECT_EQ(net_.metrics().CounterValue("bytes.total"), bytes_before);
}

TEST_F(NetworkTest, ReRegistrationResetsProcessAccountingKeepsWireCounters) {
  LockPageReply reply;
  ASSERT_OK(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                          &reply));
  std::uint64_t requests = net_.metrics().CounterValue("msg.lock_page_request");
  std::uint64_t bytes = net_.metrics().CounterValue("bytes.total");
  EXPECT_GT(net_.BusyNanos(2), 0u);

  // Crash and restart: the node comes back by re-registering its endpoint.
  net_.SetNodeUp(2, false);
  EXPECT_TRUE(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                            &reply)
                  .IsNodeDown());
  net_.RegisterNode(2, &b_);
  EXPECT_TRUE(net_.IsUp(2));

  // The restarted process starts with fresh busy-time accounting, while
  // cluster-lifetime per-type message/byte counters are neither cleared
  // nor double-counted: the refused call added nothing, and traffic
  // resumes exactly where it left off.
  EXPECT_EQ(net_.BusyNanos(2), 0u);
  EXPECT_EQ(net_.metrics().CounterValue("msg.lock_page_request"), requests);
  EXPECT_EQ(net_.metrics().CounterValue("bytes.total"), bytes);
  ASSERT_OK(net_.LockPage(1, 2, PageId{2, 0}, LockMode::kShared, false,
                          &reply));
  EXPECT_EQ(net_.metrics().CounterValue("msg.lock_page_request"),
            requests + 1);
  EXPECT_GT(net_.metrics().CounterValue("bytes.total"), bytes);
  EXPECT_GT(net_.BusyNanos(2), 0u);
}

TEST(MsgTypeTest, AllNamesDistinct) {
  std::set<std::string_view> names;
  for (int t = 0; t <= static_cast<int>(MsgType::kNodeRecovered); ++t) {
    names.insert(MsgTypeName(static_cast<MsgType>(t)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(MsgType::kNodeRecovered) + 1);
  EXPECT_FALSE(names.contains("unknown"));
}

}  // namespace
}  // namespace clog
