#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class NodeTest : public ::testing::Test {
 protected:
  NodeTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 16;
    cluster_ = std::make_unique<Cluster>(opts);
    auto node = cluster_->AddNode();
    EXPECT_TRUE(node.ok());
    node_ = *node;
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* node_ = nullptr;
};

TEST_F(NodeTest, AllocatePageIsDurableAndSeeded) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  EXPECT_EQ(pid.owner, node_->id());
  ASSERT_OK_AND_ASSIGN(Psn psn, node_->DiskPsn(pid));
  EXPECT_EQ(psn, 0u);
  ASSERT_OK_AND_ASSIGN(PageId pid2, node_->AllocatePage());
  EXPECT_NE(pid.page_no, pid2.page_no);
}

TEST_F(NodeTest, InsertReadUpdateDeleteWithinTxn) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "v1"));
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(txn, rid));
  EXPECT_EQ(v, "v1");
  ASSERT_OK(node_->Update(txn, rid, "v2"));
  ASSERT_OK_AND_ASSIGN(std::string v2, node_->Read(txn, rid));
  EXPECT_EQ(v2, "v2");
  ASSERT_OK(node_->Delete(txn, rid));
  EXPECT_TRUE(node_->Read(txn, rid).status().IsNotFound());
  ASSERT_OK(node_->Commit(txn));
}

TEST_F(NodeTest, CommitIsVisibleToNextTxn) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t1, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(t1, pid, "hello"));
  ASSERT_OK(node_->Commit(t1));
  ASSERT_OK_AND_ASSIGN(TxnId t2, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(t2, rid));
  EXPECT_EQ(v, "hello");
  ASSERT_OK(node_->Commit(t2));
}

TEST_F(NodeTest, AbortRollsBackAllOps) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t1, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId keep, node_->Insert(t1, pid, "keep"));
  ASSERT_OK(node_->Commit(t1));

  ASSERT_OK_AND_ASSIGN(TxnId t2, node_->Begin());
  ASSERT_OK(node_->Update(t2, keep, "clobbered"));
  ASSERT_OK_AND_ASSIGN(RecordId extra, node_->Insert(t2, pid, "extra"));
  ASSERT_OK(node_->Delete(t2, keep));
  ASSERT_OK(node_->Abort(t2));

  ASSERT_OK_AND_ASSIGN(TxnId t3, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(t3, keep));
  EXPECT_EQ(v, "keep");
  EXPECT_TRUE(node_->Read(t3, extra).status().IsNotFound());
  ASSERT_OK(node_->Commit(t3));
}

TEST_F(NodeTest, SavepointPartialRollback) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId before, node_->Insert(txn, pid, "before"));
  ASSERT_OK(node_->SetSavepoint(txn, "sp"));
  ASSERT_OK_AND_ASSIGN(RecordId after, node_->Insert(txn, pid, "after"));
  ASSERT_OK(node_->Update(txn, before, "mutated"));
  ASSERT_OK(node_->RollbackToSavepoint(txn, "sp"));
  // Work after the savepoint is gone, work before it survives, and the
  // transaction is still active (Section 2.2).
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(txn, before));
  EXPECT_EQ(v, "before");
  EXPECT_TRUE(node_->Read(txn, after).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(RecordId more, node_->Insert(txn, pid, "more"));
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK(node_->Read(check, more).status());
  ASSERT_OK(node_->Commit(check));
}

TEST_F(NodeTest, UnknownSavepointFails) {
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  EXPECT_TRUE(node_->RollbackToSavepoint(txn, "nope").IsNotFound());
  ASSERT_OK(node_->Abort(txn));
}

TEST_F(NodeTest, CommitSendsNoMessages) {
  // The paper's headline property: commit is entirely local.
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  std::uint64_t msgs_before =
      cluster_->network().metrics().CounterValue("msg.total");
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "x").status());
  ASSERT_OK(node_->Commit(txn));
  EXPECT_EQ(cluster_->network().metrics().CounterValue("msg.total"),
            msgs_before);
  EXPECT_GE(node_->log().forces(), 1u);
}

TEST_F(NodeTest, PsnIncrementsPerUpdate) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "a").status());
  ASSERT_OK(node_->Insert(txn, pid, "b").status());
  ASSERT_OK(node_->Commit(txn));
  const DirtyPageInfo* info = node_->dpt().Find(pid);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->psn, 0u);
  EXPECT_EQ(info->curr_psn, 2u);
}

TEST_F(NodeTest, DptEntryRemovedWhenOwnPageForced) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "a").status());
  ASSERT_OK(node_->Commit(txn));
  EXPECT_TRUE(node_->dpt().Contains(pid));
  ASSERT_OK(node_->HandleFlushRequest(node_->id(), pid));
  EXPECT_FALSE(node_->dpt().Contains(pid));
  ASSERT_OK_AND_ASSIGN(Psn disk_psn, node_->DiskPsn(pid));
  EXPECT_EQ(disk_psn, 1u);
}

TEST_F(NodeTest, CheckpointLogsDptAndAdvancesMaster) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "x").status());
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK_AND_ASSIGN(Lsn master, node_->log().LoadMaster());
  ASSERT_NE(master, kNullLsn);
  LogRecord ckpt;
  ASSERT_OK(node_->log().ReadRecord(master, &ckpt));
  EXPECT_EQ(ckpt.type, LogRecordType::kCheckpointEnd);
  ASSERT_EQ(ckpt.dpt.size(), 1u);
  EXPECT_EQ(ckpt.dpt[0].pid, pid);
  EXPECT_TRUE(ckpt.att.empty());
}

TEST_F(NodeTest, CheckpointSendsNoMessages) {
  std::uint64_t msgs_before =
      cluster_->network().metrics().CounterValue("msg.total");
  ASSERT_OK(node_->Checkpoint());
  EXPECT_EQ(cluster_->network().metrics().CounterValue("msg.total"),
            msgs_before);
}

TEST_F(NodeTest, EvictionWritesOwnPagesInPlace) {
  // More pages than buffer frames forces steal-policy evictions; dirty own
  // pages are written back and their DPT entries dropped.
  std::vector<PageId> pages;
  for (int i = 0; i < 24; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
    pages.push_back(pid);
  }
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  for (PageId pid : pages) {
    ASSERT_OK(node_->Insert(txn, pid, "data").status());
  }
  ASSERT_OK(node_->Commit(txn));
  EXPECT_GT(node_->disk().writes(), 24u);  // Allocations + evictions.
  // Everything is still readable.
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  for (PageId pid : pages) {
    ASSERT_OK_AND_ASSIGN(auto records, node_->ScanPage(check, pid));
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0], "data");
  }
  ASSERT_OK(node_->Commit(check));
}

TEST_F(NodeTest, FreePageRecordsPsnSeed) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "a").status());
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->HandleFlushRequest(node_->id(), pid));
  // Owner still holds the cached node lock from the transaction above.
  ASSERT_OK(node_->FreePage(pid));
  ASSERT_OK_AND_ASSIGN(PageId reused, node_->AllocatePage());
  EXPECT_EQ(reused.page_no, pid.page_no);
  ASSERT_OK_AND_ASSIGN(Psn psn, node_->DiskPsn(reused));
  EXPECT_GE(psn, 2u);  // Seeded past the prior life (ARIES/CSA).
}

TEST_F(NodeTest, OperationsOnUnknownTxnFail) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  EXPECT_TRUE(node_->Insert(999, pid, "x").status().IsNotFound());
  EXPECT_TRUE(node_->Commit(999).IsNotFound());
  EXPECT_TRUE(node_->Abort(999).IsNotFound());
}

TEST_F(NodeTest, RecordTooLargeRejected) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  std::string huge(kPageSize, 'x');
  EXPECT_FALSE(node_->Insert(txn, pid, huge).ok());
  ASSERT_OK(node_->Abort(txn));
}

}  // namespace
}  // namespace clog
