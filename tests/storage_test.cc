#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/slotted_page.h"
#include "storage/space_map.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

TEST(PageTest, FormatSetsHeader) {
  Page page;
  page.Format(PageId{2, 9}, PageType::kData, 41);
  EXPECT_EQ(page.id(), (PageId{2, 9}));
  EXPECT_EQ(page.psn(), 41u);
  EXPECT_EQ(page.type(), PageType::kData);
  EXPECT_EQ(page.page_lsn(), kNullLsn);
}

TEST(PageTest, PsnBumpsByOne) {
  Page page;
  page.Format(PageId{0, 0}, PageType::kData, 0);
  page.BumpPsn();
  page.BumpPsn();
  EXPECT_EQ(page.psn(), 2u);
}

TEST(PageTest, ChecksumRoundTrip) {
  Page page;
  page.Format(PageId{1, 1}, PageType::kData, 0);
  page.body()[10] = 'x';
  page.SealChecksum();
  EXPECT_OK(page.VerifyChecksum());
  page.body()[10] = 'y';  // Corrupt after sealing.
  EXPECT_TRUE(page.VerifyChecksum().IsCorruption());
}

TEST(PageTest, CopyFromIsDeep) {
  Page a, b;
  a.Format(PageId{1, 2}, PageType::kData, 7);
  a.body()[0] = 'q';
  b.CopyFrom(a);
  EXPECT_EQ(b.id(), a.id());
  EXPECT_EQ(b.psn(), 7u);
  EXPECT_EQ(b.body()[0], 'q');
  a.body()[0] = 'z';
  EXPECT_EQ(b.body()[0], 'q');
}

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) {
    page_.Format(PageId{0, 1}, PageType::kData, 0);
    sp_.InitBody();
  }
  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, InsertAndRead) {
  ASSERT_OK_AND_ASSIGN(SlotId s, sp_.Insert("hello"));
  EXPECT_EQ(s, 0);
  ASSERT_OK_AND_ASSIGN(Slice v, sp_.Read(s));
  EXPECT_EQ(v.ToString(), "hello");
  EXPECT_EQ(sp_.LiveRecords(), 1);
}

TEST_F(SlottedPageTest, PeekMatchesInsert) {
  EXPECT_EQ(sp_.PeekInsertSlot(), 0);
  ASSERT_OK_AND_ASSIGN(SlotId a, sp_.Insert("a"));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(sp_.PeekInsertSlot(), 1);
  ASSERT_OK(sp_.Delete(0));
  EXPECT_EQ(sp_.PeekInsertSlot(), 0);  // Dead slot reused first.
}

TEST_F(SlottedPageTest, DeleteFreesSlotForReuse) {
  ASSERT_OK_AND_ASSIGN(SlotId a, sp_.Insert("one"));
  ASSERT_OK_AND_ASSIGN(SlotId b, sp_.Insert("two"));
  ASSERT_OK(sp_.Delete(a));
  EXPECT_FALSE(sp_.IsLive(a));
  EXPECT_TRUE(sp_.IsLive(b));
  ASSERT_OK_AND_ASSIGN(SlotId c, sp_.Insert("three"));
  EXPECT_EQ(c, a);  // Reused.
  EXPECT_TRUE(sp_.Read(99).status().IsNotFound());
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  ASSERT_OK_AND_ASSIGN(SlotId s, sp_.Insert("abcdef"));
  ASSERT_OK(sp_.Update(s, "xy"));
  ASSERT_OK_AND_ASSIGN(Slice v1, sp_.Read(s));
  EXPECT_EQ(v1.ToString(), "xy");
  ASSERT_OK(sp_.Update(s, std::string(200, 'k')));
  ASSERT_OK_AND_ASSIGN(Slice v2, sp_.Read(s));
  EXPECT_EQ(v2.size(), 200u);
}

TEST_F(SlottedPageTest, InsertAtSpecificSlot) {
  ASSERT_OK(sp_.InsertAt(3, "late"));
  EXPECT_EQ(sp_.SlotCount(), 4);
  EXPECT_FALSE(sp_.IsLive(0));
  EXPECT_TRUE(sp_.IsLive(3));
  EXPECT_TRUE(sp_.InsertAt(3, "again").code() ==
              StatusCode::kFailedPrecondition);
  // Undo-of-delete pattern: delete then reinstate at the same slot.
  ASSERT_OK(sp_.Delete(3));
  ASSERT_OK(sp_.InsertAt(3, "back"));
  ASSERT_OK_AND_ASSIGN(Slice v, sp_.Read(3));
  EXPECT_EQ(v.ToString(), "back");
}

TEST_F(SlottedPageTest, FillsUntilFullThenCompacts) {
  // Fill with 100-byte records.
  std::vector<SlotId> slots;
  while (sp_.MaxInsertSize() >= 100) {
    ASSERT_OK_AND_ASSIGN(SlotId s, sp_.Insert(std::string(100, 'r')));
    slots.push_back(s);
  }
  EXPECT_GT(slots.size(), 30u);
  Result<SlotId> overflow = sp_.Insert(std::string(4000, 'x'));
  EXPECT_FALSE(overflow.ok());
  // Delete every other record, then insert one that only fits after
  // compaction.
  for (std::size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_OK(sp_.Delete(slots[i]));
  }
  std::size_t big = sp_.MaxInsertSize();
  EXPECT_GE(big, 100u);
  ASSERT_OK_AND_ASSIGN(SlotId s2, sp_.Insert(std::string(big, 'c')));
  ASSERT_OK_AND_ASSIGN(Slice v, sp_.Read(s2));
  EXPECT_EQ(v.size(), big);
  // Survivors intact after compaction.
  for (std::size_t i = 1; i < slots.size(); i += 2) {
    ASSERT_OK_AND_ASSIGN(Slice kept, sp_.Read(slots[i]));
    EXPECT_EQ(kept.ToString(), std::string(100, 'r'));
  }
}

TEST(DiskManagerTest, WriteReadRoundTrip) {
  TempDir dir;
  DiskManager disk;
  ASSERT_OK(disk.Open(dir.path() + "/db"));
  Page page;
  page.Format(PageId{0, 3}, PageType::kData, 5);
  page.body()[0] = 'd';
  ASSERT_OK(disk.WritePage(3, &page, /*sync=*/true));
  Page readback;
  ASSERT_OK(disk.ReadPage(3, &readback));
  EXPECT_EQ(readback.psn(), 5u);
  EXPECT_EQ(readback.body()[0], 'd');
  ASSERT_OK_AND_ASSIGN(std::uint32_t pages, disk.NumPages());
  EXPECT_EQ(pages, 4u);  // Pages 0..3 exist (0..2 as zero-fill holes).
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.writes(), 1u);
  ASSERT_OK(disk.Close());
}

TEST(DiskManagerTest, ReadPastEndIsNotFound) {
  TempDir dir;
  DiskManager disk;
  ASSERT_OK(disk.Open(dir.path() + "/db"));
  Page page;
  EXPECT_TRUE(disk.ReadPage(0, &page).IsNotFound());
}

TEST(DiskManagerTest, DetectsTornPage) {
  TempDir dir;
  DiskManager disk;
  ASSERT_OK(disk.Open(dir.path() + "/db"));
  Page page;
  page.Format(PageId{0, 0}, PageType::kData, 0);
  ASSERT_OK(disk.WritePage(0, &page, true));
  ASSERT_OK(disk.Close());
  // Corrupt a byte in the middle of the page on disk.
  FILE* f = std::fopen((dir.path() + "/db").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 2000, SEEK_SET);
  std::fputc('!', f);
  std::fclose(f);
  DiskManager reopened;
  ASSERT_OK(reopened.Open(dir.path() + "/db"));
  EXPECT_TRUE(reopened.ReadPage(0, &page).IsCorruption());
}

TEST(SpaceMapTest, AllocateSequentially) {
  TempDir dir;
  SpaceMap map;
  ASSERT_OK(map.Open(dir.path() + "/map"));
  ASSERT_OK_AND_ASSIGN(std::uint32_t a, map.Allocate());
  ASSERT_OK_AND_ASSIGN(std::uint32_t b, map.Allocate());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_TRUE(map.IsAllocated(a));
  EXPECT_EQ(map.AllocatedCount(), 2u);
  EXPECT_EQ(map.PsnSeed(a), 0u);
}

TEST(SpaceMapTest, PsnSeedSurvivesReuse) {
  // The ARIES/CSA seeding the paper adopts: a reallocated page continues
  // its PSN sequence, keeping per-page PSNs monotone across lives.
  TempDir dir;
  SpaceMap map;
  ASSERT_OK(map.Open(dir.path() + "/map"));
  ASSERT_OK_AND_ASSIGN(std::uint32_t a, map.Allocate());
  ASSERT_OK(map.Free(a, /*last_psn=*/41));
  EXPECT_FALSE(map.IsAllocated(a));
  ASSERT_OK_AND_ASSIGN(std::uint32_t b, map.Allocate());
  EXPECT_EQ(b, a);  // Lowest free page is reused.
  EXPECT_EQ(map.PsnSeed(b), 42u);
}

TEST(SpaceMapTest, PersistsAcrossReopen) {
  TempDir dir;
  {
    SpaceMap map;
    ASSERT_OK(map.Open(dir.path() + "/map"));
    ASSERT_OK(map.Allocate().status());
    ASSERT_OK(map.Allocate().status());
    ASSERT_OK(map.Free(0, 10));
  }
  SpaceMap map;
  ASSERT_OK(map.Open(dir.path() + "/map"));
  EXPECT_FALSE(map.IsAllocated(0));
  EXPECT_TRUE(map.IsAllocated(1));
  EXPECT_EQ(map.PsnSeed(0), 11u);
  ASSERT_OK_AND_ASSIGN(std::uint32_t next, map.Allocate());
  EXPECT_EQ(next, 0u);
}

TEST(SpaceMapTest, FreeUnallocatedFails) {
  TempDir dir;
  SpaceMap map;
  ASSERT_OK(map.Open(dir.path() + "/map"));
  EXPECT_TRUE(map.Free(3, 0).IsNotFound());
}

}  // namespace
}  // namespace clog
