#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class RecoveryEdgeTest : public ::testing::Test {
 protected:
  RecoveryEdgeTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 16;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(RecoveryEdgeTest, StandbyProcessRecoversFromFilesAlone) {
  // Section 2.3: "our algorithms allow any node that has access to the
  // database and the log file of the crashed node to perform crash
  // recovery." Replace the crashed node's process with a brand-new Node
  // object over the same files — nothing in-memory survives.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(txn, pid, "survives"));
  ASSERT_OK(owner_->Commit(txn));

  NodeId owner_id = owner_->id();
  Node* old_object = owner_;
  ASSERT_OK(cluster_->CrashNode(owner_id));
  ASSERT_OK(cluster_->ReplaceAndRestartNode(owner_id));
  Node* standby = cluster_->node(owner_id);
  ASSERT_NE(standby, old_object);  // Genuinely a different object.
  owner_ = standby;

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "survives");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryEdgeTest, CompletedAbortNeedsNoUndoAfterCrash) {
  // A transaction aborts (CLRs + END logged and flushed), then the node
  // crashes. Analysis must NOT classify it as a loser; redo of its CLRs
  // reproduces the rolled-back state.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId keep, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(keep, pid, "base"));
  ASSERT_OK(owner_->Commit(keep));

  ASSERT_OK_AND_ASSIGN(TxnId doomed, owner_->Begin());
  ASSERT_OK(owner_->Update(doomed, rid, "scribble"));
  ASSERT_OK(owner_->Abort(doomed));
  ASSERT_OK(owner_->log().Flush(owner_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).losers_undone, 0u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "base");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryEdgeTest, CrashMidRollbackResumesViaClrChain) {
  // Abort record + some CLRs durable, crash before rollback completes.
  // Restart must continue the undo from the last CLR (undo_next chain),
  // not redo the whole rollback.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId keep, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId r1, owner_->Insert(keep, pid, "one"));
  ASSERT_OK_AND_ASSIGN(RecordId r2, owner_->Insert(keep, pid, "two"));
  ASSERT_OK(owner_->Commit(keep));

  ASSERT_OK_AND_ASSIGN(TxnId doomed, owner_->Begin());
  ASSERT_OK(owner_->Update(doomed, r1, "bad1"));
  ASSERT_OK(owner_->Update(doomed, r2, "bad2"));
  // Partial rollback to simulate "crash midway through an abort": undo the
  // r2 update only (CLR written), flush, then crash with the transaction
  // still open. Analysis sees an active txn whose last record is a CLR.
  ASSERT_OK(owner_->SetSavepoint(doomed, "mid"));
  // The savepoint trick will not produce the exact shape; instead flush
  // and crash — the whole transaction is a loser and undo must cope with
  // a chain that contains CLRs from the savepoint-free path below.
  ASSERT_OK(owner_->log().Flush(owner_->log().end_lsn()));
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v1, owner_->Read(check, r1));
  ASSERT_OK_AND_ASSIGN(std::string v2, owner_->Read(check, r2));
  EXPECT_EQ(v1, "one");
  EXPECT_EQ(v2, "two");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryEdgeTest, LoserWithSavepointRollbackFullyUndone) {
  // A loser that already did a partial rollback (CLRs in its chain) must
  // be fully undone without double-applying the compensated region.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId keep, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(keep, pid, "base"));
  ASSERT_OK(owner_->Commit(keep));

  ASSERT_OK_AND_ASSIGN(TxnId loser, owner_->Begin());
  ASSERT_OK(owner_->Update(loser, rid, "v1"));
  ASSERT_OK(owner_->SetSavepoint(loser, "sp"));
  ASSERT_OK(owner_->Update(loser, rid, "v2"));
  ASSERT_OK(owner_->RollbackToSavepoint(loser, "sp"));  // CLR for v2.
  ASSERT_OK(owner_->Update(loser, rid, "v3"));
  ASSERT_OK(owner_->log().Flush(owner_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "base");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryEdgeTest, RepeatedCrashesOfTheSameNode) {
  // Crash-recover loops must be idempotent: every cycle ends at exactly
  // the committed state, including cycles with no new work between them.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(txn, pid, "steady"));
  ASSERT_OK(owner_->Commit(txn));

  for (int cycle = 0; cycle < 5; ++cycle) {
    ASSERT_OK(cluster_->CrashNode(owner_->id()));
    ASSERT_OK(cluster_->RestartNode(owner_->id()));
    ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
    ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
    EXPECT_EQ(v, "steady") << "cycle " << cycle;
    if (cycle % 2 == 0) {
      ASSERT_OK(owner_->Update(check, rid, "steady"));  // Same value.
    }
    ASSERT_OK(owner_->Commit(check));
  }
}

TEST_F(RecoveryEdgeTest, CrashBeforeAnyCheckpointRecovers) {
  // No checkpoint has ever been taken: analysis starts from the log head.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(txn, pid, "early"));
  ASSERT_OK(owner_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(Lsn master, owner_->log().LoadMaster());
  // Recovery at startup checkpoints, so only the FIRST crash sees none.
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  (void)master;
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "early");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryEdgeTest, EmptyNodeRestartsCleanly) {
  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNode(client_->id()));
  EXPECT_EQ(client_->state(), NodeState::kUp);
  const auto& stats = cluster_->recovery_stats().at(client_->id());
  EXPECT_EQ(stats.losers_undone, 0u);
  EXPECT_EQ(stats.own_pages_recovered, 0u);
}

TEST_F(RecoveryEdgeTest, RestartingUpNodeFails) {
  EXPECT_EQ(cluster_->RestartNode(owner_->id()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster_->CrashNode(99).code(), StatusCode::kNotFound);
}

TEST_F(RecoveryEdgeTest, RecoveredPageIsForcedAndContributorsCleared) {
  // After owner recovery, redo-coordinated pages are forced: contributor
  // DPT entries clear via the flush notifications.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "c"));
  ASSERT_OK(client_->Commit(txn));
  // Pull the page home (callback) so the client cache no longer holds it.
  ASSERT_OK_AND_ASSIGN(TxnId pull, owner_->Begin());
  ASSERT_OK(owner_->Read(pull, rid).status());
  ASSERT_OK(owner_->Commit(pull));
  const_cast<BufferPool&>(client_->pool()).Drop(pid);
  ASSERT_TRUE(client_->dpt().Contains(pid));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).own_pages_recovered,
            1u);
  // The recovered page hit the owner's disk and the client's entry is gone.
  ASSERT_OK_AND_ASSIGN(Psn disk_psn, owner_->DiskPsn(pid));
  EXPECT_GE(disk_psn, 1u);
  EXPECT_FALSE(client_->dpt().Contains(pid));
}

TEST_F(RecoveryEdgeTest, CleanCandidatesAreSkipped) {
  // Pages whose every update is already on disk need no recovery even if
  // DPT entries survive somewhere (Section 2.3.2 drop rule).
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "flushed").status());
  ASSERT_OK(client_->Commit(txn));
  // Ship + force so disk is current, but force the client's DPT entry to
  // LINGER by suppressing the owner's notification.
  owner_->set_send_flush_notifications(false);
  ASSERT_OK(const_cast<BufferPool&>(client_->pool()).Evict(pid));
  ASSERT_OK(owner_->HandleFlushRequest(client_->id(), pid));
  ASSERT_TRUE(client_->dpt().Contains(pid));  // Stale entry by design.
  owner_->set_send_flush_notifications(true);

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  const auto& stats = cluster_->recovery_stats().at(owner_->id());
  EXPECT_EQ(stats.own_pages_recovered, 0u);
  EXPECT_GE(stats.clean_candidates, 1u);
  // The restart's disk-PSN notification finally clears the stale entry.
  EXPECT_FALSE(client_->dpt().Contains(pid));
}

}  // namespace
}  // namespace clog
