#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "lock/deadlock_detector.h"
#include "tests/test_util.h"
#include "wal/log_record.h"

namespace clog {
namespace {

/// Parameterized round-trip sweep over every log record type × payload
/// size: encode/decode must be the identity on every field.
struct RecordSweepParam {
  LogRecordType type;
  std::size_t payload;
};

class LogRecordSweepTest
    : public ::testing::TestWithParam<RecordSweepParam> {};

TEST_P(LogRecordSweepTest, EncodeDecodeIdentity) {
  Random rng(static_cast<std::uint64_t>(GetParam().payload) * 31 +
             static_cast<std::uint64_t>(GetParam().type));
  LogRecord rec;
  rec.type = GetParam().type;
  rec.txn = MakeTxnId(3, rng.Next() & 0xFFFF);
  rec.prev_lsn = rng.Next() & 0xFFFFFF;
  switch (rec.type) {
    case LogRecordType::kUpdate:
    case LogRecordType::kClr:
      rec.page = PageId{2, static_cast<std::uint32_t>(rng.Uniform(1000))};
      rec.psn_before = rng.Next() & 0xFFFFF;
      rec.op = static_cast<RecordOp>(1 + rng.Uniform(3));
      rec.slot = static_cast<SlotId>(rng.Uniform(200));
      rec.redo_image = rng.Bytes(GetParam().payload);
      rec.undo_image = rng.Bytes(GetParam().payload / 2);
      if (rec.type == LogRecordType::kClr) {
        rec.undo_next_lsn = rng.Next() & 0xFFFFFF;
      }
      break;
    case LogRecordType::kSavepoint:
      rec.savepoint_name = rng.Bytes(GetParam().payload % 50 + 1);
      break;
    case LogRecordType::kCheckpointEnd:
      rec.checkpoint_begin_lsn = rng.Next() & 0xFFFFFF;
      for (std::size_t i = 0; i < GetParam().payload % 20; ++i) {
        rec.dpt.push_back(DptEntry{
            PageId{static_cast<NodeId>(rng.Uniform(4)),
                   static_cast<std::uint32_t>(rng.Uniform(100))},
            rng.Next() & 0xFFFF, rng.Next() & 0xFFFF, rng.Next() & 0xFFFFF});
        rec.att.push_back(
            AttEntry{MakeTxnId(1, i + 1), rng.Next() & 0xFFFFF});
      }
      break;
    default:
      break;
  }
  std::string body;
  rec.EncodeTo(&body);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.type, rec.type);
  EXPECT_EQ(out.txn, rec.txn);
  EXPECT_EQ(out.prev_lsn, rec.prev_lsn);
  EXPECT_EQ(out.page, rec.page);
  EXPECT_EQ(out.psn_before, rec.psn_before);
  EXPECT_EQ(out.slot, rec.slot);
  EXPECT_EQ(out.redo_image, rec.redo_image);
  EXPECT_EQ(out.undo_image, rec.undo_image);
  EXPECT_EQ(out.undo_next_lsn, rec.undo_next_lsn);
  EXPECT_EQ(out.savepoint_name, rec.savepoint_name);
  EXPECT_EQ(out.checkpoint_begin_lsn, rec.checkpoint_begin_lsn);
  EXPECT_EQ(out.dpt, rec.dpt);
  EXPECT_EQ(out.att, rec.att);
}

std::vector<RecordSweepParam> AllRecordSweeps() {
  std::vector<RecordSweepParam> out;
  for (LogRecordType t :
       {LogRecordType::kBegin, LogRecordType::kCommit, LogRecordType::kAbort,
        LogRecordType::kEnd, LogRecordType::kUpdate, LogRecordType::kClr,
        LogRecordType::kSavepoint, LogRecordType::kCheckpointBegin,
        LogRecordType::kCheckpointEnd}) {
    for (std::size_t payload : {0u, 1u, 64u, 1000u}) {
      out.push_back(RecordSweepParam{t, payload});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllTypes, LogRecordSweepTest,
                         ::testing::ValuesIn(AllRecordSweeps()));

/// Property: the waits-for detector agrees with a brute-force reference
/// cycle search on random graphs.
class DeadlockFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

namespace {

/// Reference: DFS over an adjacency map looking for a cycle through `t`.
bool ReferenceCycle(const std::map<TxnId, std::set<TxnId>>& graph, TxnId t) {
  std::set<TxnId> visited;
  std::vector<TxnId> stack;
  auto it = graph.find(t);
  if (it == graph.end()) return false;
  for (TxnId n : it->second) stack.push_back(n);
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == t) return true;
    if (!visited.insert(cur).second) continue;
    auto cit = graph.find(cur);
    if (cit == graph.end()) continue;
    for (TxnId n : cit->second) stack.push_back(n);
  }
  return false;
}

}  // namespace

TEST_P(DeadlockFuzzTest, MatchesReferenceOnRandomGraphs) {
  Random rng(GetParam());
  DeadlockDetector dd;
  std::map<TxnId, std::set<TxnId>> reference;
  const TxnId kTxns = 12;
  for (int step = 0; step < 600; ++step) {
    std::uint64_t dice = rng.Uniform(100);
    TxnId t = 1 + rng.Uniform(kTxns);
    if (dice < 55) {
      // Add a wait edge (batched like real usage).
      std::vector<TxnId> holders;
      std::size_t n = 1 + rng.Uniform(3);
      for (std::size_t i = 0; i < n; ++i) {
        holders.push_back(1 + rng.Uniform(kTxns));
      }
      dd.AddWaits(t, holders);
      for (TxnId h : holders) {
        if (h != t) reference[t].insert(h);
      }
    } else if (dice < 75) {
      dd.ClearWaits(t);
      reference.erase(t);
    } else if (dice < 90) {
      dd.RemoveTxn(t);
      reference.erase(t);
      for (auto& [_, targets] : reference) targets.erase(t);
    } else {
      // Probe every transaction against the reference.
      for (TxnId probe = 1; probe <= kTxns; ++probe) {
        ASSERT_EQ(dd.CyclesThrough(probe), ReferenceCycle(reference, probe))
            << "step " << step << " probe " << probe;
      }
    }
  }
  for (TxnId probe = 1; probe <= kTxns; ++probe) {
    EXPECT_EQ(dd.CyclesThrough(probe), ReferenceCycle(reference, probe));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlockFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace clog
