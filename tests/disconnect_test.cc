#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Paper Section 1.2: orderly disconnection is not a crash. A
/// disconnected node keeps its cache, locks, and active transactions, and
/// keeps committing durably against its local log; peers simply cannot
/// reach it. Reconnection needs no recovery.
class DisconnectTest : public ::testing::Test {
 protected:
  DisconnectTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    office_ = *cluster_->AddNode();
    notebook_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* office_ = nullptr;
  Node* notebook_ = nullptr;
};

TEST_F(DisconnectTest, DisconnectedNodeKeepsCommittingLocally) {
  ASSERT_OK_AND_ASSIGN(PageId pid, office_->AllocatePage());
  // Check the customer data out before leaving the office.
  ASSERT_OK_AND_ASSIGN(TxnId checkout, notebook_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, notebook_->Insert(checkout, pid, "v0"));
  ASSERT_OK(notebook_->Commit(checkout));

  ASSERT_OK(cluster_->DisconnectNode(notebook_->id()));
  // In the field: many durable transactions, zero office contact.
  std::uint64_t msgs = cluster_->network().metrics().CounterValue("msg.total");
  for (int i = 1; i <= 5; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, notebook_->Begin());
    ASSERT_OK(notebook_->Update(txn, rid, "v" + std::to_string(i)));
    ASSERT_OK(notebook_->Commit(txn));
  }
  EXPECT_EQ(cluster_->network().metrics().CounterValue("msg.total"), msgs);

  // Office cannot reach the checked-out data meanwhile.
  ASSERT_OK_AND_ASSIGN(TxnId blocked, office_->Begin());
  Status st = office_->Read(blocked, rid).status();
  EXPECT_TRUE(st.IsBusy()) << st.ToString();
  ASSERT_OK(office_->Abort(blocked));

  // Reconnect: NO recovery; the office's read pulls the newest version.
  ASSERT_OK(cluster_->ReconnectNode(notebook_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, office_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, office_->Read(check, rid));
  EXPECT_EQ(v, "v5");
  ASSERT_OK(office_->Commit(check));
}

TEST_F(DisconnectTest, CrashWhileDisconnectedStillRecovers) {
  ASSERT_OK_AND_ASSIGN(PageId pid, office_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId checkout, notebook_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       notebook_->Insert(checkout, pid, "field-data"));
  ASSERT_OK(notebook_->Commit(checkout));
  ASSERT_OK(cluster_->DisconnectNode(notebook_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId txn, notebook_->Begin());
  ASSERT_OK(notebook_->Update(txn, rid, "field-commit"));
  ASSERT_OK(notebook_->Commit(txn));
  // The notebook is dropped in a puddle while offline.
  ASSERT_OK(cluster_->CrashNode(notebook_->id()));
  ASSERT_OK(cluster_->RestartNode(notebook_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, notebook_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, notebook_->Read(check, rid));
  EXPECT_EQ(v, "field-commit");
  ASSERT_OK(notebook_->Commit(check));
}

TEST_F(DisconnectTest, UncachedDataUnavailableWhileDisconnected) {
  ASSERT_OK_AND_ASSIGN(PageId pid, office_->AllocatePage());
  ASSERT_OK(cluster_->DisconnectNode(notebook_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId txn, notebook_->Begin());
  // Never fetched: the disconnected node cannot get it now.
  Status st = notebook_->Insert(txn, pid, "x").status();
  EXPECT_TRUE(st.IsNodeDown()) << st.ToString();
  ASSERT_OK(notebook_->Abort(txn));
  ASSERT_OK(cluster_->ReconnectNode(notebook_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId txn2, notebook_->Begin());
  ASSERT_OK(notebook_->Insert(txn2, pid, "x").status());
  ASSERT_OK(notebook_->Commit(txn2));
}

TEST_F(DisconnectTest, StateValidation) {
  EXPECT_TRUE(cluster_->DisconnectNode(99).IsNotFound());
  ASSERT_OK(cluster_->CrashNode(notebook_->id()));
  EXPECT_EQ(cluster_->DisconnectNode(notebook_->id()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster_->ReconnectNode(notebook_->id()).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_OK(cluster_->RestartNode(notebook_->id()));
  ASSERT_OK(cluster_->DisconnectNode(notebook_->id()));
  ASSERT_OK(cluster_->ReconnectNode(notebook_->id()));
}

}  // namespace
}  // namespace clog
