#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Fine-granularity extension (paper Section 4 / EDBT'96 follow-up):
/// record-level locking among local transactions, page-level between
/// nodes. These tests pin down the concurrency gains and the invariants
/// that must not regress (PSN order, callbacks, recovery).
class RecordLockingTest : public ::testing::Test {
 protected:
  RecordLockingTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.local_record_locking = true;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
    pid_ = *owner_->AllocatePage();
    // Two seed records.
    TxnId seed = *owner_->Begin();
    r0_ = *owner_->Insert(seed, pid_, "zero");
    r1_ = *owner_->Insert(seed, pid_, "one");
    EXPECT_OK(owner_->Commit(seed));
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
  PageId pid_;
  RecordId r0_, r1_;
};

TEST_F(RecordLockingTest, TwoLocalWritersOnDifferentRecords) {
  // The whole point of the extension: page-level locking would block this.
  ASSERT_OK_AND_ASSIGN(TxnId t1, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId t2, owner_->Begin());
  ASSERT_OK(owner_->Update(t1, r0_, "t1-was-here"));
  ASSERT_OK(owner_->Update(t2, r1_, "t2-was-here"));  // No conflict.
  ASSERT_OK(owner_->Commit(t1));
  ASSERT_OK(owner_->Commit(t2));

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v0, owner_->Read(check, r0_));
  ASSERT_OK_AND_ASSIGN(std::string v1, owner_->Read(check, r1_));
  EXPECT_EQ(v0, "t1-was-here");
  EXPECT_EQ(v1, "t2-was-here");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecordLockingTest, SameRecordStillConflicts) {
  ASSERT_OK_AND_ASSIGN(TxnId t1, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId t2, owner_->Begin());
  ASSERT_OK(owner_->Update(t1, r0_, "first"));
  Status st = owner_->Update(t2, r0_, "second");
  EXPECT_TRUE(st.IsBusy());
  EXPECT_EQ(owner_->LastBlockers(t2), std::vector<TxnId>{t1});
  // Reader of the SAME record also blocks; reader of the other one not.
  EXPECT_TRUE(owner_->Read(t2, r0_).status().IsBusy());
  ASSERT_OK(owner_->Read(t2, r1_).status());
  ASSERT_OK(owner_->Commit(t1));
  ASSERT_OK(owner_->Update(t2, r0_, "second"));
  ASSERT_OK(owner_->Commit(t2));
}

TEST_F(RecordLockingTest, PageScanConflictsWithRecordWriter) {
  // ScanPage takes a page-granularity S lock: phantom protection against
  // concurrent record writers.
  ASSERT_OK_AND_ASSIGN(TxnId writer, owner_->Begin());
  ASSERT_OK(owner_->Update(writer, r0_, "w"));
  ASSERT_OK_AND_ASSIGN(TxnId scanner, owner_->Begin());
  EXPECT_TRUE(owner_->ScanPage(scanner, pid_).status().IsBusy());
  ASSERT_OK(owner_->Commit(writer));
  ASSERT_OK(owner_->ScanPage(scanner, pid_).status());
  // And the reverse: a record writer blocks behind an active page scan.
  ASSERT_OK_AND_ASSIGN(TxnId writer2, owner_->Begin());
  EXPECT_TRUE(owner_->Update(writer2, r1_, "x").IsBusy());
  ASSERT_OK(owner_->Commit(scanner));
  ASSERT_OK(owner_->Update(writer2, r1_, "x"));
  ASSERT_OK(owner_->Commit(writer2));
}

TEST_F(RecordLockingTest, ConcurrentInsertsGetDistinctSlots) {
  ASSERT_OK_AND_ASSIGN(TxnId t1, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId t2, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId a, owner_->Insert(t1, pid_, "from-t1"));
  ASSERT_OK_AND_ASSIGN(RecordId b, owner_->Insert(t2, pid_, "from-t2"));
  EXPECT_NE(a.slot, b.slot);
  // t1 aborts: its insert vanishes, t2's survives.
  ASSERT_OK(owner_->Abort(t1));
  ASSERT_OK(owner_->Commit(t2));
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  EXPECT_TRUE(owner_->Read(check, a).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, b));
  EXPECT_EQ(v, "from-t2");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecordLockingTest, InterleavedAbortUndoesOnlyItsOwnRecords) {
  // Two local txns interleave updates on one page; one commits, one
  // aborts. Undo (record-level CLRs) must not touch the winner's work.
  ASSERT_OK_AND_ASSIGN(TxnId winner, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId loser, owner_->Begin());
  ASSERT_OK(owner_->Update(winner, r0_, "w1"));
  ASSERT_OK(owner_->Update(loser, r1_, "l1"));
  ASSERT_OK(owner_->Update(winner, r0_, "w2"));
  ASSERT_OK(owner_->Update(loser, r1_, "l2"));
  ASSERT_OK(owner_->Abort(loser));
  ASSERT_OK(owner_->Commit(winner));

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v0, owner_->Read(check, r0_));
  ASSERT_OK_AND_ASSIGN(std::string v1, owner_->Read(check, r1_));
  EXPECT_EQ(v0, "w2");
  EXPECT_EQ(v1, "one");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecordLockingTest, CallbackBlockedByAnyRecordHolder) {
  // Inter-node granularity is still the page: a remote request must wait
  // for ALL local record users, exactly as with page locks.
  ASSERT_OK_AND_ASSIGN(TxnId local, owner_->Begin());
  ASSERT_OK(owner_->Update(local, r0_, "local"));
  ASSERT_OK_AND_ASSIGN(TxnId remote, client_->Begin());
  Status st = client_->Update(remote, r1_, "remote");
  EXPECT_TRUE(st.IsBusy());  // Page X callback refused by the r0_ holder.
  EXPECT_EQ(client_->LastBlockers(remote), std::vector<TxnId>{local});
  ASSERT_OK(owner_->Commit(local));
  ASSERT_OK(client_->Update(remote, r1_, "remote"));
  ASSERT_OK(client_->Commit(remote));
}

TEST_F(RecordLockingTest, CrashWithInterleavedSamePageTxns) {
  // Winner + loser interleaved on one page at crash time: redo replays
  // both in PSN order, undo then strips only the loser — the PSN total
  // order survives intra-page concurrency because inter-node locking is
  // still page-granular.
  ASSERT_OK_AND_ASSIGN(TxnId winner, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId loser, owner_->Begin());
  ASSERT_OK(owner_->Update(winner, r0_, "committed-w1"));
  ASSERT_OK(owner_->Update(loser, r1_, "uncommitted-l1"));
  ASSERT_OK(owner_->Update(winner, r0_, "committed-w2"));
  ASSERT_OK(owner_->Commit(winner));
  ASSERT_OK(owner_->Update(loser, r1_, "uncommitted-l2"));
  ASSERT_OK(owner_->log().Flush(owner_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v0, owner_->Read(check, r0_));
  ASSERT_OK_AND_ASSIGN(std::string v1, owner_->Read(check, r1_));
  EXPECT_EQ(v0, "committed-w2");
  EXPECT_EQ(v1, "one");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecordLockingTest, RemoteAccessUnaffectedByGranularity) {
  // End-to-end sanity: client transactions against the owner's page work
  // exactly as before (callbacks, caching, zero-message commits).
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Update(txn, r0_, "remote-write"));
  std::uint64_t msgs =
      cluster_->network().metrics().CounterValue("msg.total");
  ASSERT_OK(client_->Commit(txn));
  EXPECT_EQ(cluster_->network().metrics().CounterValue("msg.total"), msgs);
}

TEST_F(RecordLockingTest, DisabledByDefaultPreservesPageSemantics) {
  TempDir fresh;
  ClusterOptions opts;
  opts.dir = fresh.path();
  Cluster cluster(opts);
  Node* node = *cluster.AddNode();
  PageId pid = *node->AllocatePage();
  TxnId seed = *node->Begin();
  RecordId a = *node->Insert(seed, pid, "a");
  RecordId b = *node->Insert(seed, pid, "b");
  ASSERT_OK(node->Commit(seed));

  TxnId t1 = *node->Begin();
  TxnId t2 = *node->Begin();
  ASSERT_OK(node->Update(t1, a, "x"));
  // Page-granularity baseline: different records still conflict.
  EXPECT_TRUE(node->Update(t2, b, "y").IsBusy());
  ASSERT_OK(node->Commit(t1));
  ASSERT_OK(node->Update(t2, b, "y"));
  ASSERT_OK(node->Commit(t2));
}

}  // namespace
}  // namespace clog
