#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cluster.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Six-node stress: two owners, four clients, cross-ownership
/// transactions, randomized crash subsets — the Figure 1 topology pushed
/// harder than the targeted tests.
class BigClusterTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BigClusterTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 12;  // Real cache pressure.
    cluster_ = std::make_unique<Cluster>(opts);
    for (int i = 0; i < 6; ++i) nodes_.push_back(*cluster_->AddNode());
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  std::vector<Node*> nodes_;
};

TEST_P(BigClusterTest, MixedWorkloadWithRandomCrashSubsets) {
  Random rng(GetParam());
  // Owners 0 and 1 host 6 pages each; everyone touches everything.
  std::vector<PageId> pages;
  for (int o = 0; o < 2; ++o) {
    auto owned = *AllocatePopulatedPages(cluster_.get(), nodes_[o]->id(), 6,
                                         6, 48, GetParam() + o);
    pages.insert(pages.end(), owned.begin(), owned.end());
  }

  auto run_mix = [&](std::uint64_t seed) {
    WorkloadConfig config;
    config.seed = seed;
    config.txns_per_session = 6;
    config.ops_per_txn = 4;
    config.records_per_page = 6;
    config.payload_bytes = 48;
    std::vector<std::pair<NodeId, std::vector<PageId>>> sessions;
    for (Node* n : nodes_) {
      if (n->state() == NodeState::kUp) sessions.emplace_back(n->id(), pages);
    }
    WorkloadDriver driver(cluster_.get(), config, sessions);
    ASSERT_OK(driver.Run());
    EXPECT_GT(driver.stats().committed, 0u);
  };

  run_mix(rng.Next());

  for (int round = 0; round < 3; ++round) {
    // Crash a random non-empty subset of up to 3 nodes.
    std::vector<NodeId> victims;
    std::size_t count = 1 + rng.Uniform(3);
    std::set<std::size_t> picked;
    while (picked.size() < count) picked.insert(rng.Uniform(nodes_.size()));
    for (std::size_t idx : picked) {
      ASSERT_OK(cluster_->CrashNode(nodes_[idx]->id()));
      victims.push_back(nodes_[idx]->id());
    }
    ASSERT_OK(cluster_->RestartNodes(victims));
    run_mix(rng.Next());
  }

  // Global audit: every page scannable from every node, and all nodes
  // agree on the contents.
  std::vector<std::vector<std::string>> reference;
  ASSERT_OK_AND_ASSIGN(TxnId ref_txn, nodes_[5]->Begin());
  for (PageId pid : pages) {
    ASSERT_OK_AND_ASSIGN(auto records, nodes_[5]->ScanPage(ref_txn, pid));
    reference.push_back(records);
  }
  ASSERT_OK(nodes_[5]->Commit(ref_txn));
  for (Node* n : nodes_) {
    ASSERT_OK_AND_ASSIGN(TxnId check, n->Begin());
    for (std::size_t p = 0; p < pages.size(); ++p) {
      ASSERT_OK_AND_ASSIGN(auto records, n->ScanPage(check, pages[p]));
      EXPECT_EQ(records, reference[p])
          << "node " << n->id() << " page " << pages[p].ToString();
    }
    ASSERT_OK(n->Commit(check));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigClusterTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(TwoOwnersTest, CrossOwnershipTransaction) {
  // One transaction updates pages of two different owners; commit is
  // still one local log force (contrast: shared-nothing would need 2PC).
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  Cluster cluster(opts);
  Node* owner_a = *cluster.AddNode();
  Node* owner_b = *cluster.AddNode();
  Node* worker = *cluster.AddNode();
  PageId pa = *owner_a->AllocatePage();
  PageId pb = *owner_b->AllocatePage();

  std::uint64_t forces_before = worker->log().forces();
  TxnId txn = *worker->Begin();
  RecordId ra = *worker->Insert(txn, pa, "debit");
  RecordId rb = *worker->Insert(txn, pb, "credit");
  std::uint64_t msgs_before =
      cluster.network().metrics().CounterValue("msg.total");
  ASSERT_OK(worker->Commit(txn));
  EXPECT_EQ(cluster.network().metrics().CounterValue("msg.total"),
            msgs_before);                             // Zero-message commit.
  EXPECT_EQ(worker->log().forces(), forces_before + 1);  // One force.

  // Atomicity across both owners after the worker crashes.
  ASSERT_OK(cluster.CrashNode(worker->id()));
  ASSERT_OK(cluster.RestartNode(worker->id()));
  TxnId check = *worker->Begin();
  ASSERT_OK_AND_ASSIGN(std::string va, worker->Read(check, ra));
  ASSERT_OK_AND_ASSIGN(std::string vb, worker->Read(check, rb));
  EXPECT_EQ(va, "debit");
  EXPECT_EQ(vb, "credit");
  ASSERT_OK(worker->Commit(check));
}

TEST(TwoOwnersTest, CrossOwnershipLoserUndoneOnBothOwners) {
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  Cluster cluster(opts);
  Node* owner_a = *cluster.AddNode();
  Node* owner_b = *cluster.AddNode();
  Node* worker = *cluster.AddNode();
  PageId pa = *owner_a->AllocatePage();
  PageId pb = *owner_b->AllocatePage();

  TxnId seed = *worker->Begin();
  RecordId ra = *worker->Insert(seed, pa, "A");
  RecordId rb = *worker->Insert(seed, pb, "B");
  ASSERT_OK(worker->Commit(seed));

  TxnId loser = *worker->Begin();
  ASSERT_OK(worker->Update(loser, ra, "A-dirty"));
  ASSERT_OK(worker->Update(loser, rb, "B-dirty"));
  ASSERT_OK(worker->log().Flush(worker->log().end_lsn()));
  ASSERT_OK(cluster.CrashNode(worker->id()));
  ASSERT_OK(cluster.RestartNode(worker->id()));

  TxnId check = *worker->Begin();
  ASSERT_OK_AND_ASSIGN(std::string va, worker->Read(check, ra));
  ASSERT_OK_AND_ASSIGN(std::string vb, worker->Read(check, rb));
  EXPECT_EQ(va, "A");
  EXPECT_EQ(vb, "B");
  ASSERT_OK(worker->Commit(check));
}

}  // namespace
}  // namespace clog
