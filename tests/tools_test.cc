#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/cluster.h"
#include "tests/test_util.h"
#include "trace/trace_sink.h"

#ifndef CLOG_BINDIR
#define CLOG_BINDIR "."
#endif

namespace clog {
namespace {

using testing::TempDir;

/// Smoke tests for the inspection tools: run the real binaries against a
/// real node directory and check the output mentions what it must.
class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    node_ = *cluster_->AddNode();
  }

  /// Runs a command, captures stdout, returns (exit_code, output).
  std::pair<int, std::string> Run(const std::string& cmd) {
    std::string full = cmd + " 2>&1";
    FILE* pipe = ::popen(full.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
    int rc = ::pclose(pipe);
    return {WEXITSTATUS(rc), out};
  }

  std::string Tool(const char* name) {
    return std::string(CLOG_BINDIR) + "/tools/" + name;
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* node_ = nullptr;
};

TEST_F(ToolsTest, LogdumpShowsRecordsAndCheckpoint) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "tooled").status());
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(node_->log().Flush(node_->log().end_lsn()));

  auto [rc, out] =
      Run(Tool("clog_logdump") + " " + dir_.path() + "/node0/node.log");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("BEGIN"), std::string::npos);
  EXPECT_NE(out.find("UPDATE"), std::string::npos);
  EXPECT_NE(out.find("COMMIT"), std::string::npos);
  EXPECT_NE(out.find("CKPT_END"), std::string::npos);
  EXPECT_NE(out.find("psn_before=0"), std::string::npos);
  EXPECT_NE(out.find("dpt " + pid.ToString()), std::string::npos);
}

TEST_F(ToolsTest, LogdumpPageFilter) {
  ASSERT_OK_AND_ASSIGN(PageId p1, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId p2, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, p1, "one").status());
  ASSERT_OK(node_->Insert(txn, p2, "two").status());
  ASSERT_OK(node_->Commit(txn));

  auto [rc, out] = Run(Tool("clog_logdump") + " " + dir_.path() +
                       "/node0/node.log --page " + p1.ToString());
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("page=" + p1.ToString()), std::string::npos);
  EXPECT_EQ(out.find("page=" + p2.ToString()), std::string::npos);
}

TEST_F(ToolsTest, PagedumpShowsSlots) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "visible-payload").status());
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->HandleFlushRequest(node_->id(), pid));  // To disk.

  auto [rc, out] =
      Run(Tool("clog_pagedump") + " " + dir_.path() + "/node0/node.db");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("psn=1"), std::string::npos);
  EXPECT_NE(out.find("visible-payload"), std::string::npos);
  EXPECT_NE(out.find("checksum=ok"), std::string::npos);
}

TEST_F(ToolsTest, PagedumpVerifyScrubsWholeFile) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "scrub-me").status());
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->HandleFlushRequest(node_->id(), pid));  // To disk.
  std::string db = dir_.path() + "/node0/node.db";

  // Clean file: PASS, exit 0.
  auto [rc_ok, out_ok] = Run(Tool("clog_pagedump") + " --verify " + db);
  EXPECT_EQ(rc_ok, 0) << out_ok;
  EXPECT_NE(out_ok.find("PASS"), std::string::npos);

  // Flip a byte in the page body: the scrubber must name the bad page and
  // exit non-zero.
  {
    FILE* f = std::fopen(db.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    long off = static_cast<long>(pid.page_no) * kPageSize + 1024;
    std::fseek(f, off, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, off, SEEK_SET);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);
  }
  auto [rc_bad, out_bad] = Run(Tool("clog_pagedump") + " --verify " + db);
  EXPECT_EQ(rc_bad, 1) << out_bad;
  EXPECT_NE(out_bad.find("BAD"), std::string::npos);
  EXPECT_NE(out_bad.find("FAIL"), std::string::npos);

  // Missing operand is a usage error.
  auto [rc_usage, out_usage] = Run(Tool("clog_pagedump") + " --verify");
  EXPECT_EQ(rc_usage, 2) << out_usage;
}

TEST_F(ToolsTest, PagedumpVerifyAcceptsArchiveFiles) {
  // The archive image file uses the identical page format, so the same
  // scrubber doubles as the archive-device health check in the media
  // recovery drill (docs/RECOVERY_WALKTHROUGH.md).
  TempDir adir;
  {
    ClusterOptions opts;
    opts.dir = adir.path();
    opts.node_defaults.logging_policy.WithArchiveEvery(1);
    Cluster archived(opts);
    Node* n = *archived.AddNode();
    PageId pid = *n->AllocatePage();
    TxnId txn = *n->Begin();
    ASSERT_OK(n->Insert(txn, pid, "kept-safe").status());
    ASSERT_OK(n->Commit(txn));
    ASSERT_OK(n->Checkpoint());  // Seals the archive pass.
    ASSERT_GT(n->archive().seq(), 0u);
  }
  auto [rc, out] = Run(Tool("clog_pagedump") + " --verify " + adir.path() +
                       "/node0/node.archive");
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("PASS"), std::string::npos);
}

TEST_F(ToolsTest, ToolsRejectMissingFiles) {
  auto [rc1, out1] = Run(Tool("clog_logdump") + " /nonexistent/log");
  EXPECT_NE(rc1, 0);
  auto [rc2, out2] = Run(Tool("clog_pagedump"));
  EXPECT_EQ(rc2, 2);  // Usage error.
  auto [rc3, out3] = Run(Tool("tracedump"));
  EXPECT_EQ(rc3, 2);  // Usage error.
  auto [rc4, out4] = Run(Tool("tracedump") + " /nonexistent/trace.bin");
  EXPECT_NE(rc4, 0);
}

TEST_F(ToolsTest, TracedumpShowsEvents) {
  // Capture a real trace: a second cluster with a sink attached, one
  // committed transaction, then dump the binary file with the tool.
  TempDir tdir;
  TraceSink sink;
  {
    ClusterOptions opts;
    opts.dir = tdir.path();
    opts.trace_sink = &sink;
    Cluster traced(opts);
    Node* n = *traced.AddNode();
    PageId pid = *n->AllocatePage();
    TxnHandle txn = *TxnHandle::Begin(n);
    ASSERT_OK(txn.Insert(pid, "traced").status());
    ASSERT_OK(txn.Commit());
  }
  ASSERT_GT(sink.total_emitted(), 0u);
  std::string path = tdir.path() + "/trace.bin";
  ASSERT_OK(sink.WriteBinaryFile(path));

  auto [rc, out] = Run(Tool("tracedump") + " " + path);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("TXN_BEGIN"), std::string::npos);
  EXPECT_NE(out.find("TXN_COMMIT"), std::string::npos);
  EXPECT_NE(out.find("LOG_FORCE"), std::string::npos);
  EXPECT_NE(out.find("node 0:"), std::string::npos);
  EXPECT_NE(out.find("total events="), std::string::npos);

  auto [rc_tail, out_tail] = Run(Tool("tracedump") + " " + path + " --tail=1");
  EXPECT_EQ(rc_tail, 0) << out_tail;
  EXPECT_EQ(out_tail.find("TXN_BEGIN"), std::string::npos);

  auto [rc_json, json] = Run(Tool("tracedump") + " " + path + " --chrome");
  EXPECT_EQ(rc_json, 0) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
}

}  // namespace
}  // namespace clog
