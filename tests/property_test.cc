#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/random.h"
#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Randomized crash-recovery property test: a shadow model tracks the
/// expected committed value of every record; after arbitrary sequences of
/// transactions, aborts, checkpoints, crashes, and recoveries, the
/// database must agree with the model exactly (durability of committed
/// work, atomicity of everything else).
class CrashFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {
 protected:
  struct Model {
    // Committed value per record; nullopt = deleted/never existed.
    std::map<RecordId, std::optional<std::string>> committed;
  };

  void Build(LoggingMode mode, std::size_t buffer_frames) {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = buffer_frames;
    opts.node_defaults.logging_mode = mode;
    opts.node_defaults.local_record_locking = std::get<1>(GetParam());
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  void VerifyAgainstModel(Node* reader, const Model& model) {
    ASSERT_OK_AND_ASSIGN(TxnId check, reader->Begin());
    for (const auto& [rid, expect] : model.committed) {
      Result<std::string> got = reader->Read(check, rid);
      if (expect.has_value()) {
        ASSERT_TRUE(got.ok()) << rid.ToString() << ": " << got.status().ToString();
        EXPECT_EQ(*got, *expect) << rid.ToString();
      } else {
        EXPECT_TRUE(got.status().IsNotFound()) << rid.ToString();
      }
    }
    ASSERT_OK(reader->Commit(check));
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_P(CrashFuzzTest, CommittedStateSurvivesArbitraryCrashes) {
  Random rng(std::get<0>(GetParam()));
  Build(LoggingMode::kClientLocal, /*buffer_frames=*/8);

  // Fixed record population: 4 pages x 4 records.
  Model model;
  std::vector<RecordId> rids;
  for (int p = 0; p < 4; ++p) {
    ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
    ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
    for (int r = 0; r < 4; ++r) {
      std::string v = rng.Bytes(30);
      ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(txn, pid, v));
      rids.push_back(rid);
      model.committed[rid] = v;
    }
    ASSERT_OK(owner_->Commit(txn));
  }

  Node* nodes[2] = {owner_, client_};
  for (int step = 0; step < 60; ++step) {
    std::uint64_t dice = rng.Uniform(100);
    Node* actor = nodes[rng.Uniform(2)];
    if (actor->state() != NodeState::kUp) {
      ASSERT_OK(cluster_->RestartNode(actor->id()));
      continue;
    }
    if (dice < 8) {
      // Crash + immediate restart of one node.
      ASSERT_OK(cluster_->CrashNode(actor->id()));
      ASSERT_OK(cluster_->RestartNode(actor->id()));
    } else if (dice < 12) {
      ASSERT_OK(actor->Checkpoint());
    } else {
      // A transaction touching 1-4 random records; commit, abort, or be
      // interrupted by a crash mid-flight.
      Result<TxnId> txn_r = actor->Begin();
      if (!txn_r.ok()) continue;
      TxnId txn = *txn_r;
      std::map<RecordId, std::optional<std::string>> staged;
      bool gave_up = false;
      std::size_t ops = 1 + rng.Uniform(4);
      for (std::size_t i = 0; i < ops && !gave_up; ++i) {
        RecordId rid = rids[rng.Uniform(rids.size())];
        std::string v = rng.Bytes(30);
        Status st = actor->Update(txn, rid, v);
        if (st.ok()) {
          staged[rid] = v;
        } else if (st.IsBusy() || st.IsNodeDown()) {
          gave_up = true;  // Lock fenced by a crashed peer etc.
        } else if (st.IsNotFound()) {
          continue;  // Record currently deleted in some variants.
        } else {
          FAIL() << st.ToString();
        }
      }
      std::uint64_t outcome = rng.Uniform(100);
      if (gave_up || outcome < 25) {
        ASSERT_OK(actor->Abort(txn));
      } else if (outcome < 85) {
        Status st = actor->Commit(txn);
        if (st.ok()) {
          for (auto& [rid, v] : staged) model.committed[rid] = v;
        }
      } else {
        // Crash mid-transaction: the transaction is a loser; nothing of it
        // may survive.
        ASSERT_OK(cluster_->CrashNode(actor->id()));
        ASSERT_OK(cluster_->RestartNode(actor->id()));
      }
    }
    ASSERT_OK(owner_->CheckInvariants());
    ASSERT_OK(client_->CheckInvariants());
  }

  // Everything settled: verify from both sides.
  for (Node* n : nodes) {
    if (n->state() != NodeState::kUp) {
      ASSERT_OK(cluster_->RestartNode(n->id()));
    }
  }
  ASSERT_OK(owner_->CheckInvariants(/*deep=*/true));
  ASSERT_OK(client_->CheckInvariants(/*deep=*/true));
  VerifyAgainstModel(owner_, model);
  VerifyAgainstModel(client_, model);

  // Final full crash of both nodes and joint recovery; still consistent.
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNodes({owner_->id(), client_->id()}));
  VerifyAgainstModel(client_, model);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CrashFuzzTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                       ::testing::Bool()));

TEST(PsnMonotonicityTest, PsnNeverDecreasesAcrossLifecycles) {
  // Property: the PSN of a page is monotone over its whole history,
  // including crashes, recoveries, frees, and reallocation (the space-map
  // seeding). This is the invariant distributed redo ordering rests on.
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  Cluster cluster(opts);
  Node* node = *cluster.AddNode();
  Random rng(99);

  ASSERT_OK_AND_ASSIGN(PageId pid, node->AllocatePage());
  Psn watermark = 0;
  for (int round = 0; round < 5; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, node->Begin());
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK(node->Insert(txn, pid, rng.Bytes(16)).status());
    }
    if (rng.Bernoulli(0.5)) {
      ASSERT_OK(node->Commit(txn));
    } else {
      ASSERT_OK(node->Abort(txn));  // Undo also bumps PSNs.
    }
    ASSERT_OK(cluster.CrashNode(node->id()));
    ASSERT_OK(cluster.RestartNode(node->id()));
    ASSERT_OK_AND_ASSIGN(Psn now, node->DiskPsn(pid));
    EXPECT_GE(now, watermark);
    watermark = now;
  }
}

}  // namespace
}  // namespace clog
