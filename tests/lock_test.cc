#include <gtest/gtest.h>

#include "lock/deadlock_detector.h"
#include "lock/lock_cache.h"
#include "lock/lock_manager.h"
#include "tests/test_util.h"

namespace clog {
namespace {

PageId P(std::uint32_t n) { return PageId{0, n}; }

TEST(GlobalLockTableTest, SharedGrantsCoexist) {
  GlobalLockTable table;
  EXPECT_TRUE(table.TryGrant(P(1), 1, LockMode::kShared).granted);
  EXPECT_TRUE(table.TryGrant(P(1), 2, LockMode::kShared).granted);
  EXPECT_EQ(table.HeldBy(P(1), 1), LockMode::kShared);
  EXPECT_EQ(table.HoldersOf(P(1)).size(), 2u);
}

TEST(GlobalLockTableTest, ExclusiveConflictsReported) {
  GlobalLockTable table;
  EXPECT_TRUE(table.TryGrant(P(1), 1, LockMode::kExclusive).granted);
  GrantOutcome out = table.TryGrant(P(1), 2, LockMode::kShared);
  EXPECT_FALSE(out.granted);
  ASSERT_EQ(out.conflicting.size(), 1u);
  EXPECT_EQ(out.conflicting[0], 1u);
  // Nothing was recorded for the loser.
  EXPECT_EQ(table.HeldBy(P(1), 2), LockMode::kNone);
}

TEST(GlobalLockTableTest, SoleHolderUpgrades) {
  GlobalLockTable table;
  EXPECT_TRUE(table.TryGrant(P(1), 1, LockMode::kShared).granted);
  EXPECT_TRUE(table.TryGrant(P(1), 1, LockMode::kExclusive).granted);
  EXPECT_EQ(table.HeldBy(P(1), 1), LockMode::kExclusive);
}

TEST(GlobalLockTableTest, UpgradeBlockedByOtherSharers) {
  GlobalLockTable table;
  EXPECT_TRUE(table.TryGrant(P(1), 1, LockMode::kShared).granted);
  EXPECT_TRUE(table.TryGrant(P(1), 2, LockMode::kShared).granted);
  GrantOutcome out = table.TryGrant(P(1), 1, LockMode::kExclusive);
  EXPECT_FALSE(out.granted);
  EXPECT_EQ(out.conflicting, std::vector<NodeId>{2});
}

TEST(GlobalLockTableTest, DowngradeAndRelease) {
  GlobalLockTable table;
  EXPECT_TRUE(table.TryGrant(P(1), 1, LockMode::kExclusive).granted);
  table.Downgrade(P(1), 1);
  EXPECT_EQ(table.HeldBy(P(1), 1), LockMode::kShared);
  EXPECT_TRUE(table.TryGrant(P(1), 2, LockMode::kShared).granted);
  table.Release(P(1), 1);
  EXPECT_EQ(table.HeldBy(P(1), 1), LockMode::kNone);
  EXPECT_TRUE(table.TryGrant(P(1), 2, LockMode::kExclusive).granted);
}

TEST(GlobalLockTableTest, CrashHandlingReleasesSharedKeepsExclusive) {
  // Section 2.3.3: shared locks of the crashed node are released,
  // exclusive ones retained to fence unrecovered pages.
  GlobalLockTable table;
  EXPECT_TRUE(table.TryGrant(P(1), 7, LockMode::kShared).granted);
  EXPECT_TRUE(table.TryGrant(P(2), 7, LockMode::kExclusive).granted);
  EXPECT_TRUE(table.TryGrant(P(3), 8, LockMode::kShared).granted);
  table.ReleaseSharedOf(7);
  EXPECT_EQ(table.HeldBy(P(1), 7), LockMode::kNone);
  EXPECT_EQ(table.HeldBy(P(2), 7), LockMode::kExclusive);
  EXPECT_EQ(table.HeldBy(P(3), 8), LockMode::kShared);
  auto x_locks = table.ExclusiveLocksOf(7);
  ASSERT_EQ(x_locks.size(), 1u);
  EXPECT_EQ(x_locks[0].pid, P(2));
}

TEST(GlobalLockTableTest, LocksOfAndInstall) {
  GlobalLockTable table;
  table.Install(P(1), 3, LockMode::kShared);
  table.Install(P(2), 3, LockMode::kExclusive);
  table.Install(P(2), 4, LockMode::kNone);  // Ignored.
  auto locks = table.LocksOf(3);
  EXPECT_EQ(locks.size(), 2u);
  EXPECT_EQ(table.HeldBy(P(2), 4), LockMode::kNone);
  table.ReleaseAllOf(3);
  EXPECT_TRUE(table.LocksOf(3).empty());
}

// --- Requester-side lock cache ---

TEST(LockCacheTest, NeedsNodeLockFirst) {
  LockCache cache;
  LocalAcquire r = cache.AcquireForTxn(1, P(1), LockMode::kShared);
  EXPECT_EQ(r.outcome, LocalAcquire::Outcome::kNeedNodeLock);
  cache.RecordNodeLock(P(1), LockMode::kShared);
  r = cache.AcquireForTxn(1, P(1), LockMode::kShared);
  EXPECT_EQ(r.outcome, LocalAcquire::Outcome::kGranted);
  EXPECT_EQ(cache.TxnMode(1, P(1)), LockMode::kShared);
}

TEST(LockCacheTest, InterTransactionCaching) {
  // The defining behaviour (Section 2.1): node locks survive transaction
  // ends; the next transaction acquires locally with no owner round trip.
  LockCache cache;
  cache.RecordNodeLock(P(1), LockMode::kExclusive);
  EXPECT_EQ(cache.AcquireForTxn(1, P(1), LockMode::kExclusive).outcome,
            LocalAcquire::Outcome::kGranted);
  cache.ReleaseTxnLocks(1);
  EXPECT_EQ(cache.NodeMode(P(1)), LockMode::kExclusive);
  EXPECT_EQ(cache.AcquireForTxn(2, P(1), LockMode::kExclusive).outcome,
            LocalAcquire::Outcome::kGranted);
}

TEST(LockCacheTest, LocalWriteWriteConflict) {
  LockCache cache;
  cache.RecordNodeLock(P(1), LockMode::kExclusive);
  EXPECT_EQ(cache.AcquireForTxn(1, P(1), LockMode::kExclusive).outcome,
            LocalAcquire::Outcome::kGranted);
  LocalAcquire r = cache.AcquireForTxn(2, P(1), LockMode::kExclusive);
  EXPECT_EQ(r.outcome, LocalAcquire::Outcome::kLocalConflict);
  EXPECT_EQ(r.blockers, std::vector<TxnId>{1});
  // Shared readers coexist.
  cache.ReleaseTxnLocks(1);
  EXPECT_EQ(cache.AcquireForTxn(2, P(1), LockMode::kShared).outcome,
            LocalAcquire::Outcome::kGranted);
  EXPECT_EQ(cache.AcquireForTxn(3, P(1), LockMode::kShared).outcome,
            LocalAcquire::Outcome::kGranted);
}

TEST(LockCacheTest, CallbackBlockedByActiveUser) {
  LockCache cache;
  cache.RecordNodeLock(P(1), LockMode::kExclusive);
  EXPECT_EQ(cache.AcquireForTxn(1, P(1), LockMode::kExclusive).outcome,
            LocalAcquire::Outcome::kGranted);
  CallbackDecision dec = cache.CanComply(P(1), LockMode::kNone);
  EXPECT_FALSE(dec.can_comply);
  EXPECT_EQ(dec.blocking_txns, std::vector<TxnId>{1});
  // A demotion callback is blocked only by X users.
  dec = cache.CanComply(P(1), LockMode::kShared);
  EXPECT_FALSE(dec.can_comply);
  cache.ReleaseTxnLocks(1);
  EXPECT_TRUE(cache.CanComply(P(1), LockMode::kNone).can_comply);
}

TEST(LockCacheTest, DemotionCallbackAllowsActiveReaders) {
  LockCache cache;
  cache.RecordNodeLock(P(1), LockMode::kExclusive);
  EXPECT_EQ(cache.AcquireForTxn(1, P(1), LockMode::kShared).outcome,
            LocalAcquire::Outcome::kGranted);
  CallbackDecision dec = cache.CanComply(P(1), LockMode::kShared);
  EXPECT_TRUE(dec.can_comply);  // Reader keeps reading after demotion.
  cache.ApplyCallback(P(1), LockMode::kShared);
  EXPECT_EQ(cache.NodeMode(P(1)), LockMode::kShared);
}

TEST(LockCacheTest, ReleaseCallbackDropsEntry) {
  LockCache cache;
  cache.RecordNodeLock(P(1), LockMode::kExclusive);
  cache.ApplyCallback(P(1), LockMode::kNone);
  EXPECT_EQ(cache.NodeMode(P(1)), LockMode::kNone);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(LockCacheTest, NodeLocksFilterByOwner) {
  LockCache cache;
  cache.RecordNodeLock(PageId{1, 1}, LockMode::kShared);
  cache.RecordNodeLock(PageId{2, 1}, LockMode::kExclusive);
  EXPECT_EQ(cache.NodeLocks().size(), 2u);
  auto of1 = cache.NodeLocks(NodeId{1});
  ASSERT_EQ(of1.size(), 1u);
  EXPECT_EQ(of1[0].pid, (PageId{1, 1}));
  EXPECT_EQ(of1[0].mode, LockMode::kShared);
}

// --- Deadlock detection ---

TEST(DeadlockDetectorTest, DirectCycle) {
  DeadlockDetector dd;
  dd.AddWaits(1, {2});
  EXPECT_FALSE(dd.CyclesThrough(1));
  dd.AddWaits(2, {1});
  EXPECT_TRUE(dd.CyclesThrough(2));
  EXPECT_TRUE(dd.CyclesThrough(1));
}

TEST(DeadlockDetectorTest, LongCycleAndBreaking) {
  DeadlockDetector dd;
  dd.AddWaits(1, {2});
  dd.AddWaits(2, {3});
  dd.AddWaits(3, {4});
  EXPECT_FALSE(dd.CyclesThrough(1));
  dd.AddWaits(4, {1});
  EXPECT_TRUE(dd.CyclesThrough(4));
  dd.RemoveTxn(3);  // Victim dies; cycle broken.
  EXPECT_FALSE(dd.CyclesThrough(4));
  EXPECT_FALSE(dd.CyclesThrough(1));
}

TEST(DeadlockDetectorTest, SelfEdgesIgnored) {
  DeadlockDetector dd;
  dd.AddWaits(1, {1});
  EXPECT_FALSE(dd.CyclesThrough(1));
  EXPECT_EQ(dd.EdgeCount(), 0u);
}

TEST(DeadlockDetectorTest, ClearWaitsOnGrant) {
  DeadlockDetector dd;
  dd.AddWaits(1, {2, 3});
  EXPECT_EQ(dd.EdgeCount(), 2u);
  dd.ClearWaits(1);
  EXPECT_EQ(dd.EdgeCount(), 0u);
  dd.AddWaits(2, {1});
  EXPECT_FALSE(dd.CyclesThrough(2));
}

}  // namespace
}  // namespace clog
