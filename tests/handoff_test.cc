#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Elastic membership unit drills (docs/PROTOCOLS.md, "Membership &
/// ownership handoff"): the four-phase handoff protocol, its crash
/// re-entry at every phase boundary on either endpoint, graceful leaves,
/// and joins — in both execution modes, since the ledger re-entry path
/// must behave identically whether handlers run inline (simulation) or on
/// per-node worker threads.

/// A three-node cluster with one page per node and one committed record
/// per page ("home<i>").
struct Rig {
  explicit Rig(const std::string& dir,
               ExecutionMode mode = ExecutionMode::kSimulation) {
    ClusterOptions opts;
    opts.dir = dir;
    opts.execution_mode = mode;
    cluster = std::make_unique<Cluster>(opts);
    for (int i = 0; i < 3; ++i) {
      Node* n = *cluster->AddNode();
      PageId pid;
      EXPECT_OK(cluster->Execute(n->id(), [&] {
        Result<PageId> r = n->AllocatePage();
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (r.ok()) pid = *r;
      }));
      pages.push_back(pid);
      EXPECT_OK(cluster->RunTransaction(i, [&](TxnHandle& txn) -> Status {
        return txn.Insert(pid, "home" + std::to_string(i)).status();
      }));
    }
  }

  /// Scans `pid` through a fresh transaction on `reader`.
  std::vector<std::string> Scan(NodeId reader, PageId pid) {
    std::vector<std::string> records;
    Status st = cluster->RunTransaction(
        reader,
        [&](TxnHandle& txn) -> Status {
          CLOG_ASSIGN_OR_RETURN(records, txn.ScanPage(pid));
          return Status::OK();
        },
        /*max_attempts=*/16);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return records;
  }

  /// Durable owner claims on `pid` over live members: home node claims by
  /// an un-ceded home slot, every other node by an adoption record. The
  /// protocol invariant is exactly one, always.
  int Claims(PageId pid) {
    int claims = 0;
    for (NodeId id : cluster->NodeIds()) {
      Node* n = cluster->node(id);
      if (n->state() != NodeState::kUp) continue;
      bool claim = false;
      EXPECT_OK(cluster->Execute(id, [&] {
        claim = pid.owner == id ? !n->handoff().IsCeded(pid)
                                : n->handoff().IsAdopted(pid);
      }));
      claims += claim ? 1 : 0;
    }
    return claims;
  }

  std::unique_ptr<Cluster> cluster;
  std::vector<PageId> pages;
};

TEST(HandoffTest, MovesOwnershipAndServesCommittedData) {
  TempDir dir;
  Rig rig(dir.path());
  PageId pid = rig.pages[0];
  ASSERT_OK(rig.cluster->HandoffPage(pid, 1));
  EXPECT_EQ(rig.cluster->CurrentOwner(pid), 1u);
  EXPECT_EQ(rig.Claims(pid), 1);
  // The record is served by the new owner, and a third node's reads route
  // to it through the directory.
  EXPECT_EQ(rig.Scan(1, pid), std::vector<std::string>{"home0"});
  EXPECT_EQ(rig.Scan(2, pid), std::vector<std::string>{"home0"});
  // New updates land at the new owner and stay readable.
  ASSERT_OK(rig.cluster->RunTransaction(2, [&](TxnHandle& txn) -> Status {
    return txn.Insert(pid, "after-move").status();
  }));
  EXPECT_EQ(rig.Scan(0, pid),
            (std::vector<std::string>{"home0", "after-move"}));
}

TEST(HandoffTest, ReturnsHomeAndReclaimsTheHomeSlot) {
  TempDir dir;
  Rig rig(dir.path());
  PageId pid = rig.pages[0];
  ASSERT_OK(rig.cluster->HandoffPage(pid, 2));
  ASSERT_OK(rig.cluster->RunTransaction(1, [&](TxnHandle& txn) -> Status {
    return txn.Insert(pid, "while-away").status();
  }));
  ASSERT_OK(rig.cluster->HandoffPage(pid, 0));
  EXPECT_EQ(rig.cluster->CurrentOwner(pid), 0u);
  EXPECT_EQ(rig.Claims(pid), 1);
  EXPECT_EQ(rig.Scan(1, pid),
            (std::vector<std::string>{"home0", "while-away"}));
}

TEST(HandoffTest, RefusedWhileALocalTransactionHoldsThePage) {
  TempDir dir;
  Rig rig(dir.path());
  PageId pid = rig.pages[0];
  Node* n = rig.cluster->node(0);
  ASSERT_OK_AND_ASSIGN(TxnHandle txn, TxnHandle::Begin(n));
  ASSERT_OK(txn.Insert(pid, "uncommitted").status());
  Status st = rig.cluster->HandoffPage(pid, 1);
  EXPECT_TRUE(st.IsBusy()) << st.ToString();
  ASSERT_OK(txn.Abort());
  // Fully retryable after the transaction ends.
  ASSERT_OK(rig.cluster->HandoffPage(pid, 1));
  EXPECT_EQ(rig.Claims(pid), 1);
}

TEST(HandoffTest, LeaveDrainsPagesAndJoinReceivesThem) {
  TempDir dir;
  Rig rig(dir.path());
  // Node 2 caches a lock on node 0's page first, so the leave must also
  // hand that residue back (a departed node never answers callbacks).
  ASSERT_OK(rig.cluster->RunTransaction(2, [&](TxnHandle& txn) -> Status {
    return txn.Insert(rig.pages[0], "from-leaver").status();
  }));
  ASSERT_OK(rig.cluster->LeaveNode(2));
  EXPECT_TRUE(rig.cluster->IsDeparted(2));
  // 2's own page moved to a survivor; 0's page is not stuck behind 2's
  // departed lock.
  NodeId new_owner = rig.cluster->CurrentOwner(rig.pages[2]);
  EXPECT_NE(new_owner, 2u);
  EXPECT_EQ(rig.Scan(new_owner, rig.pages[2]),
            std::vector<std::string>{"home2"});
  EXPECT_EQ(rig.Scan(1, rig.pages[0]),
            (std::vector<std::string>{"home0", "from-leaver"}));
  // A newcomer can adopt the orphaned page.
  ASSERT_OK_AND_ASSIGN(Node * joined, rig.cluster->JoinNode());
  ASSERT_OK(rig.cluster->HandoffPage(rig.pages[2], joined->id()));
  EXPECT_EQ(rig.cluster->CurrentOwner(rig.pages[2]), joined->id());
  EXPECT_EQ(rig.Scan(joined->id(), rig.pages[2]),
            std::vector<std::string>{"home2"});
}

/// The kill-and-re-enter drill: for every phase boundary and either
/// endpoint, crash the victim exactly there, restart it, resolve, and
/// require exactly one durable owner and the committed record intact at
/// whoever owns the page now. This is the unit-sized version of the
/// torture harness's --crash-during-handoff mode.
void RunKillAndReEnterDrill(ExecutionMode mode) {
  for (int boundary = 0; boundary < 4; ++boundary) {
    for (bool crash_target : {false, true}) {
      SCOPED_TRACE("boundary=" + std::to_string(boundary) +
                   " crash_target=" + std::to_string(crash_target));
      TempDir dir;
      Rig rig(dir.path(), mode);
      PageId pid = rig.pages[0];
      const NodeId victim = crash_target ? 1 : 0;
      bool crashed = false;
      rig.cluster->set_handoff_phase_hook(
          [&](PageId hook_pid, HandoffPhase phase) {
            if (hook_pid != pid || static_cast<int>(phase) != boundary) {
              return;
            }
            crashed = rig.cluster->CrashNode(victim).ok();
          });
      Status st = rig.cluster->HandoffPage(pid, 1);
      rig.cluster->set_handoff_phase_hook(nullptr);
      ASSERT_TRUE(crashed);
      // The driver dies with its endpoint at every boundary except the
      // last, where the protocol had already finished.
      if (boundary < 3) {
        EXPECT_FALSE(st.ok()) << st.ToString();
      }
      ASSERT_OK(rig.cluster->RestartNodes({victim}));
      ASSERT_OK(rig.cluster->ResolveHandoffs());
      EXPECT_EQ(rig.Claims(pid), 1);
      // Wherever the page ended up — aborted home or adopted at the
      // target — the committed record survived the interrupted transfer.
      NodeId owner = rig.cluster->CurrentOwner(pid);
      EXPECT_EQ(rig.Scan(owner, pid), std::vector<std::string>{"home0"});
      EXPECT_EQ(rig.Scan(2, pid), std::vector<std::string>{"home0"});
      // No ledger record may stay in flight once both endpoints resolved.
      for (NodeId id : rig.cluster->NodeIds()) {
        Node* n = rig.cluster->node(id);
        std::vector<PageId> inflight;
        EXPECT_OK(rig.cluster->Execute(
            id, [&] { inflight = n->handoff().InflightPages(); }));
        EXPECT_TRUE(inflight.empty())
            << "node " << id << " still has an in-flight handoff";
      }
    }
  }
}

TEST(HandoffTest, KillAndReEnterAtEveryBoundarySim) {
  RunKillAndReEnterDrill(ExecutionMode::kSimulation);
}

TEST(HandoffTest, KillAndReEnterAtEveryBoundaryRealThreads) {
  RunKillAndReEnterDrill(ExecutionMode::kRealThreads);
}

}  // namespace
}  // namespace clog
