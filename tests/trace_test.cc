// Tests for the deterministic structured-event tracing layer
// (src/trace/) and its wiring: ring-buffer semantics, trace-hash
// determinism across whole torture schedules (including crash/restart),
// zero-emission when no sink is attached, latency histogram population,
// and the text/Chrome/binary exporters.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "fault/torture.h"
#include "net/message.h"
#include "tests/test_util.h"
#include "trace/trace_export.h"
#include "trace/trace_sink.h"

namespace clog {
namespace {

using testing::TempDir;

// ---------------------------------------------------------------------------
// TraceSink unit behavior
// ---------------------------------------------------------------------------

TEST(TraceSinkTest, RingWrapKeepsNewestEvents) {
  TraceSink sink(/*capacity_per_node=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    sink.Emit(0, TraceEventType::kTxnBegin, /*a=*/i);
  }
  EXPECT_EQ(sink.emitted(0), 10u);
  std::vector<TraceEvent> events = sink.Events(0);
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first within the retained window: events 6,7,8,9 survive.
  for (std::size_t k = 0; k < events.size(); ++k) {
    EXPECT_EQ(events[k].a, 6u + k);
    EXPECT_EQ(events[k].seq, 6u + k);
  }
}

TEST(TraceSinkTest, HashCoversOverwrittenEvents) {
  // Two sinks emit the same first 4 events; one then wraps past them. The
  // hash must diverge even though the retained windows could coincide.
  TraceSink a(/*capacity_per_node=*/2);
  TraceSink b(/*capacity_per_node=*/2);
  for (std::uint64_t i = 0; i < 4; ++i) {
    a.Emit(0, TraceEventType::kLogAppend, i);
    b.Emit(0, TraceEventType::kLogAppend, i);
  }
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Emit(0, TraceEventType::kLogAppend, 99);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(TraceSinkTest, PerNodeStreamsAndCombinedHash) {
  TraceSink sink;
  sink.Emit(2, TraceEventType::kTxnBegin, 1);
  sink.Emit(0, TraceEventType::kTxnBegin, 2);
  sink.Emit(2, TraceEventType::kTxnCommit, 1);
  std::vector<NodeId> nodes = sink.Nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0], 0u);
  EXPECT_EQ(nodes[1], 2u);
  EXPECT_EQ(sink.emitted(2), 2u);
  EXPECT_EQ(sink.total_emitted(), 3u);
  EXPECT_NE(sink.Hash(), 0u);
  EXPECT_NE(sink.Hash(0), sink.Hash(2));
  // Per-node sequence numbers are independent and monotonic.
  EXPECT_EQ(sink.Events(2)[0].seq, 0u);
  EXPECT_EQ(sink.Events(2)[1].seq, 1u);
  EXPECT_EQ(sink.Events(0)[0].seq, 0u);
}

// ---------------------------------------------------------------------------
// Cluster wiring: emission, determinism, zero-overhead off
// ---------------------------------------------------------------------------

/// Runs a fixed little workload (insert/update/commit/abort + crash and
/// restart of the client) and returns the cluster's metrics-visible state.
struct DrivenRun {
  std::uint64_t trace_hash = 0;
  std::uint64_t events = 0;
  std::uint64_t schedule_marker = 0;  ///< txn.commits on the client node.
};

DrivenRun DriveWorkload(const std::string& dir, TraceSink* sink) {
  ClusterOptions opts;
  opts.dir = dir;
  opts.node_defaults.buffer_frames = 4;
  opts.trace_sink = sink;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();

  PageId pid = *owner->AllocatePage();
  std::vector<RecordId> rids;
  for (int i = 0; i < 4; ++i) {
    TxnHandle txn = *TxnHandle::Begin(client);
    rids.push_back(*txn.Insert(pid, "v" + std::to_string(i)));
    EXPECT_TRUE(txn.Commit().ok());
  }
  {
    TxnHandle txn = *TxnHandle::Begin(client);
    EXPECT_TRUE(txn.Update(rids[0], "updated").ok());
    EXPECT_TRUE(txn.Abort().ok());
  }
  EXPECT_TRUE(cluster.CrashNode(client->id()).ok());
  EXPECT_TRUE(cluster.RestartNode(client->id()).ok());
  client = cluster.node(client->id());
  {
    TxnHandle txn = *TxnHandle::Begin(client);
    EXPECT_EQ(*txn.Read(rids[0]), "v0");
    EXPECT_TRUE(txn.Commit().ok());
  }

  DrivenRun out;
  out.schedule_marker = client->metrics().CounterValue("txn.commits");
  if (sink != nullptr) {
    out.trace_hash = sink->Hash();
    out.events = sink->total_emitted();
  }
  return out;
}

TEST(TraceClusterTest, SameScheduleSameTraceHash) {
  TempDir d1, d2;
  TraceSink s1, s2;
  DrivenRun r1 = DriveWorkload(d1.path(), &s1);
  DrivenRun r2 = DriveWorkload(d2.path(), &s2);
  EXPECT_GT(r1.events, 0u);
  EXPECT_NE(r1.trace_hash, 0u);
  EXPECT_EQ(r1.trace_hash, r2.trace_hash);
  EXPECT_EQ(r1.events, r2.events);
}

TEST(TraceClusterTest, AttachingSinkDoesNotPerturbSchedule) {
  TempDir d1, d2;
  TraceSink sink;
  DrivenRun with = DriveWorkload(d1.path(), &sink);
  DrivenRun without = DriveWorkload(d2.path(), nullptr);
  EXPECT_EQ(with.schedule_marker, without.schedule_marker);
  EXPECT_EQ(without.events, 0u);
  EXPECT_EQ(without.trace_hash, 0u);
}

TEST(TraceClusterTest, DetachedSinkSeesNothing) {
  TempDir dir;
  TraceSink unattached;
  DriveWorkload(dir.path(), nullptr);
  EXPECT_EQ(unattached.total_emitted(), 0u);
  EXPECT_TRUE(unattached.Nodes().empty());
  EXPECT_EQ(unattached.Hash(), 0u);
}

TEST(TraceClusterTest, EventTaxonomyShowsUp) {
  TempDir dir;
  TraceSink sink;
  DriveWorkload(dir.path(), &sink);
  bool saw_begin = false, saw_commit = false, saw_abort = false;
  bool saw_append = false, saw_force = false, saw_crash = false;
  bool saw_recovery = false;
  for (NodeId node : sink.Nodes()) {
    for (const TraceEvent& e : sink.Events(node)) {
      switch (e.type) {
        case TraceEventType::kTxnBegin: saw_begin = true; break;
        case TraceEventType::kTxnCommit: saw_commit = true; break;
        case TraceEventType::kTxnAbort: saw_abort = true; break;
        case TraceEventType::kLogAppend: saw_append = true; break;
        case TraceEventType::kLogForce: saw_force = true; break;
        case TraceEventType::kNodeCrash: saw_crash = true; break;
        case TraceEventType::kRecoveryPhase: saw_recovery = true; break;
        default: break;
      }
    }
  }
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_commit);
  EXPECT_TRUE(saw_abort);
  EXPECT_TRUE(saw_append);
  EXPECT_TRUE(saw_force);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_recovery);
}

TEST(TraceClusterTest, LatencyHistogramsPopulated) {
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  PageId pid = *owner->AllocatePage();
  for (int i = 0; i < 3; ++i) {
    TxnHandle txn = *TxnHandle::Begin(client);
    ASSERT_TRUE(txn.Insert(pid, "payload").ok());
    ASSERT_TRUE(txn.Commit().ok());
  }
  HistogramStat commit = client->metrics().HistogramValue("commit.latency_ns");
  EXPECT_EQ(commit.count, 3u);
  EXPECT_GT(commit.mean, 0.0);
  EXPECT_GE(commit.p99, commit.p50);
  HistogramStat force = client->metrics().HistogramValue("force.latency_ns");
  EXPECT_GT(force.count, 0u);
  // The client fetched the owner's page over the wire at least once.
  HistogramStat rtt =
      cluster.network().metrics().HistogramValue("rpc.rtt_ns");
  EXPECT_GT(rtt.count, 0u);
  EXPECT_GT(rtt.max, 0u);
  // The quantiles fold into the printable report.
  std::string report = client->metrics().ToString();
  EXPECT_NE(report.find("commit.latency_ns"), std::string::npos);
  EXPECT_NE(report.find("p99"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Torture integration: full crash/restart schedules
// ---------------------------------------------------------------------------

TEST(TraceTortureTest, SameSeedSameTraceHash) {
  TortureOptions opts;
  opts.seed = 11;
  opts.steps = 30;
  opts.keep_events = false;
  TortureReport r1 = RunTortureSchedule(opts);
  TortureReport r2 = RunTortureSchedule(opts);
  ASSERT_TRUE(r1.ok) << r1.failure;
  ASSERT_TRUE(r2.ok) << r2.failure;
  EXPECT_NE(r1.trace_hash, 0u);
  EXPECT_EQ(r1.trace_hash, r2.trace_hash);
  EXPECT_EQ(r1.schedule_hash, r2.schedule_hash);
}

TEST(TraceTortureTest, DifferentSeedsDifferentTraceHash) {
  TortureOptions opts;
  opts.steps = 20;
  opts.keep_events = false;
  opts.seed = 3;
  TortureReport r1 = RunTortureSchedule(opts);
  opts.seed = 4;
  TortureReport r2 = RunTortureSchedule(opts);
  ASSERT_TRUE(r1.ok) << r1.failure;
  ASSERT_TRUE(r2.ok) << r2.failure;
  EXPECT_NE(r1.trace_hash, r2.trace_hash);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(TraceExportTest, TextFormatAndTail) {
  TraceSink sink(/*capacity_per_node=*/8);
  sink.Emit(0, TraceEventType::kTxnBegin, MakeTxnId(0, 1));
  sink.Emit(0, TraceEventType::kTxnCommit, MakeTxnId(0, 1));
  sink.Emit(1, TraceEventType::kDeadlock, MakeTxnId(1, 9));
  std::string text = FormatTrace(sink);
  EXPECT_NE(text.find("TXN_BEGIN"), std::string::npos);
  EXPECT_NE(text.find("TXN_COMMIT"), std::string::npos);
  EXPECT_NE(text.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(text.find("node 0:"), std::string::npos);
  EXPECT_NE(text.find("node 1:"), std::string::npos);
  // tail=1 keeps only the newest event per node.
  std::string tail = FormatTrace(sink, /*tail=*/1);
  EXPECT_EQ(tail.find("TXN_BEGIN"), std::string::npos);
  EXPECT_NE(tail.find("TXN_COMMIT"), std::string::npos);
}

TEST(TraceExportTest, MsgNameResolverUsed) {
  TraceSink sink;
  sink.Emit(0, TraceEventType::kRpcSend, /*a=*/1, /*b=*/64,
            static_cast<std::uint32_t>(MsgType::kPageShip));
  TraceFormatOptions fmt;
  fmt.msg_name = [](std::uint32_t t) {
    return MsgTypeName(static_cast<MsgType>(t));
  };
  std::string with = FormatTrace(sink, 0, fmt);
  EXPECT_NE(with.find("page_ship"), std::string::npos) << with;
  std::string without = FormatTrace(sink);
  EXPECT_NE(without.find("msg#"), std::string::npos) << without;
}

TEST(TraceExportTest, ChromeJsonSpans) {
  TempDir dir;
  TraceSink sink;
  DriveWorkload(dir.path(), &sink);
  std::string json = ChromeTraceJson(sink);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);  // txn span open
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);  // txn span close
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // recovery phase
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);     // per-node pid
}

TEST(TraceExportTest, BinaryRoundTrip) {
  TempDir dir;
  TraceSink sink(/*capacity_per_node=*/4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    sink.Emit(0, TraceEventType::kLogAppend, i, i * 10, 3);
  }
  sink.Emit(1, TraceEventType::kNodeCrash);
  std::string path = dir.path() + "/trace.bin";
  ASSERT_TRUE(sink.WriteBinaryFile(path).ok());

  TraceSink loaded;
  ASSERT_TRUE(loaded.ReadBinaryFile(path).ok());
  EXPECT_EQ(loaded.capacity_per_node(), sink.capacity_per_node());
  EXPECT_EQ(loaded.Hash(), sink.Hash());
  EXPECT_EQ(loaded.emitted(0), sink.emitted(0));
  std::vector<TraceEvent> a = sink.Events(0);
  std::vector<TraceEvent> b = loaded.Events(0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].seq, b[k].seq);
    EXPECT_EQ(a[k].a, b[k].a);
    EXPECT_EQ(a[k].type, b[k].type);
  }
}

TEST(TraceExportTest, BinaryRejectsGarbage) {
  TempDir dir;
  std::string path = dir.path() + "/garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace file at all";
  }
  TraceSink sink;
  EXPECT_FALSE(sink.ReadBinaryFile(path).ok());
}

}  // namespace
}  // namespace clog
