#include <gtest/gtest.h>

#include <filesystem>

#include "common/fsutil.h"
#include "core/cluster.h"
#include "fault/fault_injector.h"
#include "node/archive.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// End-to-end media failure: a whole device (data or log) is destroyed at
/// a crash point and restart recovery must either rebuild the lost state
/// from what client-based logging left elsewhere — the newest sealed
/// archive image plus redo collected from every client's log, or a peer's
/// cached copy — or durably fence what is gone as Corruption. Never serve
/// stale or fabricated data.
///
/// These are the unit-level drills; the seeded `--media-failure` torture
/// corpus (tests/torture_test.cc, ctest label `media`) explores the same
/// machinery under arbitrary schedules.
class MediaRecoveryTest : public ::testing::Test {
 protected:
  MediaRecoveryTest() : injector_(/*seed=*/1) {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.fault_injector = &injector_;
    opts.node_defaults.logging_policy.WithArchiveEvery(1);
    cluster_ = std::make_unique<Cluster>(opts);
    a_ = *cluster_->AddNode();
    b_ = *cluster_->AddNode();
  }

  /// Commits one update of `rid` from `from`.
  void CommitUpdate(Node* from, RecordId rid, const std::string& value) {
    TxnId txn = *from->Begin();
    ASSERT_OK(from->Update(txn, rid, value));
    ASSERT_OK(from->Commit(txn));
  }

  TempDir dir_;
  FaultInjector injector_;
  std::unique_ptr<Cluster> cluster_;
  Node* a_ = nullptr;
  Node* b_ = nullptr;
};

TEST_F(MediaRecoveryTest, DataDeviceLossRestoredFromPeerCache) {
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, a_->Insert(seed, pid, "v0"));
  ASSERT_OK(a_->Commit(seed));
  ASSERT_OK(a_->Checkpoint());  // Log mark + first sealed archive pass.

  // B updates the page, so B's pool holds the newest copy — and B's log
  // holds the only log record of that update (client-based logging).
  CommitUpdate(b_, rid, "v1-from-b");

  // A's data device dies with A; B stays up with its cached copy.
  injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyDataFile);
  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->RestartNode(a_->id()));

  // The cached copy carried every committed update, so the rebuilt device
  // serves the newest value with no poison anywhere.
  EXPECT_FALSE(a_->IsPoisoned(pid));
  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, a_->Read(check, rid));
  EXPECT_EQ(v, "v1-from-b");
  ASSERT_OK(a_->Commit(check));
}

TEST_F(MediaRecoveryTest, DataDeviceLossRebuiltFromArchiveAndClientLogs) {
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, a_->Insert(seed, pid, "v0"));
  ASSERT_OK(a_->Commit(seed));
  ASSERT_OK(a_->Checkpoint());  // Seals an archive image covering "v0".
  ASSERT_GT(a_->archive().seq(), 0u);

  // Updates AFTER the sealed image, committed from both nodes: their redo
  // lives only in the respective client's log, so the rebuild must collect
  // from all of them, merge by PSN, and replay on the archived base.
  CommitUpdate(a_, rid, "v1-from-a");
  CommitUpdate(b_, rid, "v2-from-b");

  // Both nodes crash (so no cached copy survives anywhere) and A's data
  // device is destroyed at its crash point.
  injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyDataFile);
  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->CrashNode(b_->id()));
  ASSERT_OK(cluster_->RestartNodes({a_->id(), b_->id()}));

  EXPECT_FALSE(a_->IsPoisoned(pid));
  EXPECT_GE(a_->metrics().CounterValue("media.archive_restores"), 1u);
  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, a_->Read(check, rid));
  EXPECT_EQ(v, "v2-from-b");
  ASSERT_OK(a_->Commit(check));
}

TEST_F(MediaRecoveryTest, LogDeviceLossPoisonsUncachedPages) {
  // Only A ever touches the page, so its whole history lives in A's log
  // and no peer caches a copy.
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, a_->Insert(seed, pid, "v0"));
  ASSERT_OK(a_->Commit(seed));
  ASSERT_OK(a_->Checkpoint());  // StoreMark: makes the loss detectable.
  CommitUpdate(a_, rid, "v1");

  injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyLogFile);
  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->RestartNode(a_->id()));

  // With the log gone past the mark, the top of the page's committed
  // history is unprovable and no peer can vouch for it: the page is fenced
  // durably and reads surface Corruption — never a stale "v0" or "v1".
  EXPECT_GE(a_->metrics().CounterValue("media.log_loss_detected"), 1u);
  EXPECT_TRUE(a_->IsPoisoned(pid));
  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  Status read = a_->Read(check, rid).status();
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  ASSERT_OK(a_->Abort(check));
}

TEST_F(MediaRecoveryTest, LogDeviceLossRescuedByPeerCachedCopy) {
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, a_->Insert(seed, pid, "v0"));
  ASSERT_OK(a_->Commit(seed));
  ASSERT_OK(a_->Checkpoint());

  // B updates the page and keeps the copy cached (lock caching retains it
  // after commit). B's cached page embodies every committed update, so A's
  // log is not the only witness.
  CommitUpdate(b_, rid, "v1-from-b");

  injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyLogFile);
  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->RestartNode(a_->id()));

  // The fetched cached copy supersedes any poison verdict: the page is
  // fully recovered despite the destroyed log.
  EXPECT_FALSE(a_->IsPoisoned(pid));
  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, a_->Read(check, rid));
  EXPECT_EQ(v, "v1-from-b");
  ASSERT_OK(a_->Commit(check));
}

TEST_F(MediaRecoveryTest, LogLossNoticePoisonsRemotePagesItUpdated) {
  // A updates B's page: the redo record lands in A's log only, and A
  // retains the X lock (lock caching) with the newest copy. When A's log
  // dies with A, that update is gone — and B, the owner, must be told its
  // page can no longer be proven current.
  ASSERT_OK_AND_ASSIGN(PageId pid, b_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, b_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, b_->Insert(seed, pid, "v0"));
  ASSERT_OK(b_->Commit(seed));
  ASSERT_OK(b_->Checkpoint());
  ASSERT_OK(a_->Checkpoint());  // Mark A's log so the loss is detectable.

  CommitUpdate(a_, rid, "v1-from-a");

  injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyLogFile);
  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->RestartNode(a_->id()));

  // A's restart detected the log loss and sent B a LogLossNotice for the
  // pages A held X on; B fenced them durably.
  EXPECT_TRUE(b_->IsPoisoned(pid));
  ASSERT_OK_AND_ASSIGN(TxnId check, b_->Begin());
  Status read = b_->Read(check, rid).status();
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  ASSERT_OK(b_->Abort(check));
}

TEST_F(MediaRecoveryTest, ArchivePassesStayConsistentAcrossRestarts) {
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, a_->Insert(seed, pid, "v0"));
  ASSERT_OK(a_->Commit(seed));

  // Interleave updates and checkpoint-driven archive passes; the archive
  // must stay self-consistent (every sealed entry restorable, image PSN >=
  // sealed PSN, sealed PSN <= live version) the whole way through, and the
  // sealed metadata must survive an ordinary crash/restart.
  for (int round = 0; round < 3; ++round) {
    CommitUpdate(a_, rid, "round-" + std::to_string(round));
    ASSERT_OK(a_->Checkpoint());
    ASSERT_OK(a_->CheckArchiveConsistency());
  }
  std::uint64_t sealed = a_->archive().seq();
  EXPECT_GE(sealed, 3u);

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->RestartNode(a_->id()));
  EXPECT_GE(a_->archive().seq(), sealed);
  ASSERT_OK(a_->CheckArchiveConsistency());
  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, a_->Read(check, rid));
  EXPECT_EQ(v, "round-2");
  ASSERT_OK(a_->Commit(check));
}

TEST_F(MediaRecoveryTest, RecoveryReentersWhenServingPeerCrashesMidFetch) {
  // B holds the only current copy of A's page (cached after its update)
  // and is a redo source for A's media recovery — then B dies between A's
  // exchange phase and the page fetch. The round must be voided (Section
  // 2.4: recovery is only sound while all participants' exchanged state
  // survives) and a later round must re-enter from scratch and converge.
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, a_->Insert(seed, pid, "v0"));
  ASSERT_OK(a_->Commit(seed));
  ASSERT_OK(a_->Checkpoint());
  CommitUpdate(b_, rid, "v1-from-b");

  injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyDataFile);
  ASSERT_OK(cluster_->CrashNode(a_->id()));
  bool fired = false;
  cluster_->set_recovery_phase_hook([&](NodeId id, RecoveryPhase phase) {
    if (id != a_->id() || phase != RecoveryPhase::kExchanged || fired) return;
    fired = true;
    ASSERT_OK(cluster_->CrashNode(b_->id()));
  });
  // The voided round is not an error; A is abandoned back to kDown.
  ASSERT_OK(cluster_->RestartNodes({a_->id()}));
  cluster_->set_recovery_phase_hook(nullptr);
  ASSERT_TRUE(fired);
  EXPECT_EQ(a_->state(), NodeState::kDown);

  // Converge: keep restarting whatever is down, exactly like the torture
  // harness's repair loop.
  for (int round = 0; round < 8; ++round) {
    std::vector<NodeId> down;
    for (NodeId id : cluster_->NodeIds()) {
      if (cluster_->node(id)->state() == NodeState::kDown) down.push_back(id);
    }
    if (down.empty()) break;
    ASSERT_OK(cluster_->RestartNodes(down));
  }
  ASSERT_EQ(a_->state(), NodeState::kUp);
  ASSERT_EQ(b_->state(), NodeState::kUp);

  // The re-entered recovery still found the newest committed version (B's
  // restart flushed its dirty copy home, or redo replayed B's log).
  EXPECT_FALSE(a_->IsPoisoned(pid));
  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, a_->Read(check, rid));
  EXPECT_EQ(v, "v1-from-b");
  ASSERT_OK(a_->Commit(check));
}

/// PoisonLedger crash-boundary drills: every mutation is crash-atomic
/// before it returns, so "crash immediately after the write, before the
/// caller saw the verdict" — modeled by dropping the in-memory object and
/// reopening a fresh ledger on the same directory — must always observe
/// the completed mutation, never a torn or half-applied one.
TEST(PoisonLedgerTest, EveryWriteBoundarySurvivesReopen) {
  testing::TempDir dir;
  const PageId p1{/*owner=*/1, /*page_no=*/7};
  const PageId p2{/*owner=*/1, /*page_no=*/9};
  const std::string path = dir.path() + "/node.poison";

  {  // Boundary: first Add. Crash right after it returns.
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_TRUE(l.empty());
    ASSERT_OK(l.Add(p1, 5));
  }
  {  // Boundary: escalation (larger needed PSN wins, durably).
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_EQ(l.NeededPsn(p1), 5u);
    ASSERT_OK(l.Add(p1, 9));
  }
  {  // Boundary: weaker Add is a durable no-op, second entry lands.
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_EQ(l.NeededPsn(p1), 9u);
    ASSERT_OK(l.Add(p1, 3));
    ASSERT_OK(l.Add(p2, kPsnUnrecoverable));
  }
  {  // Boundary: Remove of one entry; the other survives untouched.
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_EQ(l.NeededPsn(p1), 9u);
    EXPECT_EQ(l.NeededPsn(p2), kPsnUnrecoverable);
    ASSERT_OK(l.Remove(p1));
  }
  {  // Boundary: Remove of an absent entry is a no-op; last Remove empties.
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_EQ(l.NeededPsn(p1), 0u);
    EXPECT_TRUE(l.Contains(p2));
    ASSERT_OK(l.Remove(p1));
    ASSERT_OK(l.Remove(p2));
  }
  {  // The absent-when-empty contract: emptying the ledger removes the
     // file, so a healthy reopen sees no media history at all.
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_TRUE(l.empty());
    EXPECT_FALSE(std::filesystem::exists(path));
  }
}

TEST(PoisonLedgerTest, CorruptLedgerRefusesToOpen) {
  // An unreadable poison set must not silently un-poison pages: garbage
  // and truncation both surface as errors, never as an empty ledger.
  testing::TempDir dir;
  const std::string path = dir.path() + "/node.poison";
  {
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    ASSERT_OK(l.Add(PageId{1, 7}, 5));
  }
  std::string good;
  ASSERT_OK(ReadFileToString(path, &good));
  {  // Truncated mid-record.
    ASSERT_OK(AtomicWriteFile(path, good.substr(0, good.size() - 3)));
    PoisonLedger l;
    EXPECT_FALSE(l.Open(dir.path()).ok());
  }
  {  // Garbage from the first byte.
    ASSERT_OK(AtomicWriteFile(path, "not a poison ledger"));
    PoisonLedger l;
    EXPECT_FALSE(l.Open(dir.path()).ok());
  }
  {  // The original bytes still open fine (the copies above were the only
     // corruption — the format itself round-trips).
    ASSERT_OK(AtomicWriteFile(path, good));
    PoisonLedger l;
    ASSERT_OK(l.Open(dir.path()));
    EXPECT_EQ(l.NeededPsn(PageId{1, 7}), 5u);
  }
}

TEST(PoisonLedgerTest, AlternateFilenameIsAnIndependentLedger) {
  // Instant restore reuses the machinery under "node.restore"; the two
  // files must never bleed into each other.
  testing::TempDir dir;
  PoisonLedger poison;
  PoisonLedger restore;
  ASSERT_OK(poison.Open(dir.path()));
  ASSERT_OK(restore.Open(dir.path(), "node.restore"));
  ASSERT_OK(poison.Add(PageId{1, 7}, kPsnUnrecoverable));
  ASSERT_OK(restore.Add(PageId{1, 8}, 0));

  PoisonLedger poison2;
  PoisonLedger restore2;
  ASSERT_OK(poison2.Open(dir.path()));
  ASSERT_OK(restore2.Open(dir.path(), "node.restore"));
  EXPECT_TRUE(poison2.Contains(PageId{1, 7}));
  EXPECT_FALSE(poison2.Contains(PageId{1, 8}));
  EXPECT_TRUE(restore2.Contains(PageId{1, 8}));
  EXPECT_FALSE(restore2.Contains(PageId{1, 7}));
}

}  // namespace
}  // namespace clog
