#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Cross-mode contract (docs/architecture_modes.md): the simulation engine
/// and the real-threads engine run the same protocol code, so a workload
/// whose committed effects are order-independent must leave *identical*
/// committed state in both modes — the same records in every page — even
/// though real mode interleaves client threads nondeterministically. (PSNs
/// are compared within each mode, owner disk vs cached copies, not across
/// modes: a contended real-mode run aborts and retries, and undo bumps
/// PSNs.) These tests are the seam's regression net, and
/// scripts/run_tsan_tests.sh runs them under ThreadSanitizer (label
/// `execution`).

/// Keeps retrying transient outcomes (Busy, Deadlock) until the
/// transaction commits. Terminal errors fail the test at the call site.
Status CommitEventually(Cluster* cluster, NodeId node,
                        const std::function<Status(TxnHandle&)>& body) {
  for (int round = 0; round < 1000; ++round) {
    Status st = cluster->RunTransaction(node, body, /*max_attempts=*/32);
    if (!st.IsBusy() && !st.IsDeadlock()) return st;
  }
  return Status::Busy("CommitEventually: contention never cleared");
}

struct FixedWorkload {
  int nodes = 3;
  int txns_per_session = 8;
};

/// One session per node. Session s inserts one record per transaction into
/// its own page and one into the next node's page, always locking pages in
/// ascending PageId order (global lock order — no deadlock cycles across
/// sessions). Payloads are unique per (session, txn, slot), so the final
/// per-page record multiset is the same no matter how sessions interleave.
struct WorkloadPlan {
  std::vector<PageId> pages;  // pages[i] owned by node i.

  Status RunSession(Cluster* cluster, int s, int txns) const {
    const int n = static_cast<int>(pages.size());
    for (int t = 0; t < txns; ++t) {
      std::vector<std::pair<PageId, std::string>> writes = {
          {pages[s], "s" + std::to_string(s) + "t" + std::to_string(t) + "a"},
          {pages[(s + 1) % n],
           "s" + std::to_string(s) + "t" + std::to_string(t) + "b"},
      };
      std::sort(writes.begin(), writes.end());
      Status st = CommitEventually(cluster, s, [&](TxnHandle& txn) -> Status {
        for (const auto& [pid, payload] : writes) {
          CLOG_RETURN_IF_ERROR(txn.Insert(pid, payload).status());
        }
        return Status::OK();
      });
      CLOG_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  }
};

/// Committed state after quiesce: sorted record payloads per page, read
/// through fresh transactions on each owner. Insert multisets commute, so
/// this is identical across modes and thread interleavings.
std::map<PageId, std::vector<std::string>> CommittedState(
    Cluster* cluster, const WorkloadPlan& plan) {
  std::map<PageId, std::vector<std::string>> out;
  for (int i = 0; i < static_cast<int>(plan.pages.size()); ++i) {
    PageId pid = plan.pages[i];
    std::vector<std::string> records;
    Status st = cluster->RunTransaction(i, [&](TxnHandle& txn) -> Status {
      CLOG_ASSIGN_OR_RETURN(records, txn.ScanPage(pid));
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::sort(records.begin(), records.end());
    out[pid] = std::move(records);
  }
  return out;
}

std::map<PageId, std::vector<std::string>> RunFixedWorkload(
    const std::string& dir, ExecutionMode mode, const FixedWorkload& w) {
  ClusterOptions opts;
  opts.dir = dir;
  opts.execution_mode = mode;
  Cluster cluster(opts);
  WorkloadPlan plan;
  for (int i = 0; i < w.nodes; ++i) {
    Node* n = *cluster.AddNode();
    PageId pid;
    EXPECT_OK(cluster.Execute(n->id(), [&] {
      Result<PageId> r = n->AllocatePage();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (r.ok()) pid = *r;
    }));
    plan.pages.push_back(pid);
  }

  if (mode == ExecutionMode::kRealThreads) {
    std::vector<std::thread> sessions;
    std::mutex mu;
    std::vector<Status> results;
    for (int s = 0; s < w.nodes; ++s) {
      sessions.emplace_back([&, s] {
        Status st = plan.RunSession(&cluster, s, w.txns_per_session);
        std::lock_guard<std::mutex> lk(mu);
        results.push_back(st);
      });
    }
    for (std::thread& t : sessions) t.join();
    for (const Status& st : results) EXPECT_TRUE(st.ok()) << st.ToString();
  } else {
    for (int s = 0; s < w.nodes; ++s) {
      EXPECT_OK(plan.RunSession(&cluster, s, w.txns_per_session));
    }
  }

  // Quiesce, then crash-and-recover the whole cluster: recovery forces the
  // committed version of every page to its owner's disk, in both modes, so
  // the on-disk PSN is comparable afterwards.
  std::vector<NodeId> ids = cluster.NodeIds();
  for (NodeId id : ids) EXPECT_OK(cluster.CrashNode(id));
  EXPECT_OK(cluster.RestartNodes(ids));

  // In-mode PSN agreement after quiesce: deep invariants compare every
  // clean cached copy against the owner's disk version, PSN included.
  for (NodeId id : ids) {
    EXPECT_OK(cluster.Execute(id, [&] {
      EXPECT_OK(cluster.node(id)->CheckInvariants(/*deep=*/true));
    }));
  }
  return CommittedState(&cluster, plan);
}

TEST(ExecutionModeTest, SimAndRealThreadsConvergeToIdenticalCommittedState) {
  FixedWorkload w;
  TempDir sim_dir, real_dir;
  auto sim = RunFixedWorkload(sim_dir.path(), ExecutionMode::kSimulation, w);
  auto real =
      RunFixedWorkload(real_dir.path(), ExecutionMode::kRealThreads, w);

  ASSERT_EQ(sim.size(), real.size());
  std::size_t total_records = 0;
  auto it = real.begin();
  for (const auto& [pid, records] : sim) {
    ASSERT_EQ(pid, it->first);
    EXPECT_EQ(records, it->second) << "page " << pid.ToString() << " contents";
    total_records += records.size();
    ++it;
  }
  // Sanity: every transaction committed both of its inserts.
  EXPECT_EQ(total_records,
            static_cast<std::size_t>(w.nodes * w.txns_per_session * 2));
}

/// Real-threads crash drill: clients on nodes 1 and 2 hammer node 0's
/// pages from their own threads (client-based logging — the redo for node
/// 0's pages lives in the *clients'* logs, really fsync'd at each commit).
/// Node 0 is then killed — worker thread stopped and joined, volatile
/// state gone — and restarted. Every transaction that reported Commit OK
/// before the crash must be readable afterwards. Two full cycles.
TEST(ExecutionModeTest, RealModeCrashRestartConvergesOffFsyncedLogs) {
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  opts.execution_mode = ExecutionMode::kRealThreads;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  ASSERT_OK(cluster.AddNode().status());
  ASSERT_OK(cluster.AddNode().status());

  std::vector<PageId> pages(2);
  ASSERT_OK(cluster.Execute(owner->id(), [&] {
    for (PageId& pid : pages) {
      Result<PageId> r = owner->AllocatePage();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      pid = *r;
    }
  }));

  std::mutex mu;
  std::set<std::string> durable;  // Payloads whose commit returned OK.

  // One client session: inserts uniquely-tagged records into node 0's
  // pages until the owner goes down (NodeDown ends the session).
  auto client = [&](NodeId node, int cycle) {
    for (int t = 0;; ++t) {
      std::string payload = "c" + std::to_string(cycle) + "n" +
                            std::to_string(node) + "t" + std::to_string(t);
      PageId pid = pages[t % pages.size()];
      Status st = CommitEventually(&cluster, node, [&](TxnHandle& txn) {
        return txn.Insert(pid, payload).status();
      });
      if (!st.ok()) return;  // Owner crashed out from under us.
      std::lock_guard<std::mutex> lk(mu);
      durable.insert(payload);
      if (durable.size() >= static_cast<std::size_t>(20 * (cycle + 1))) {
        return;
      }
    }
  };

  for (int cycle = 0; cycle < 2; ++cycle) {
    std::thread c1([&] { client(1, cycle); });
    std::thread c2([&] { client(2, cycle); });
    c1.join();
    c2.join();

    // Kill the owner: its worker thread is stopped and joined, the cache
    // and lock tables are gone; only its disk and the clients' logs
    // survive.
    ASSERT_OK(cluster.CrashNode(owner->id()));
    ASSERT_OK(cluster.RestartNode(owner->id()));

    // Every committed record must have been recovered into the owner's
    // pages — the redo came from the clients' fsync'd logs.
    std::set<std::string> recovered;
    ASSERT_OK(cluster.RunTransaction(1, [&](TxnHandle& txn) -> Status {
      for (PageId pid : pages) {
        CLOG_ASSIGN_OR_RETURN(std::vector<std::string> records,
                              txn.ScanPage(pid));
        recovered.insert(records.begin(), records.end());
      }
      return Status::OK();
    }));
    std::lock_guard<std::mutex> lk(mu);
    for (const std::string& payload : durable) {
      EXPECT_TRUE(recovered.count(payload))
          << "cycle " << cycle << ": committed record '" << payload
          << "' lost across crash/restart";
    }
    ASSERT_OK(cluster.Execute(owner->id(), [&] {
      EXPECT_OK(owner->CheckInvariants(/*deep=*/true));
    }));
  }
}

/// The stop/start seam itself: a crashed node's execution context rejects
/// work with NodeDown instead of hanging or racing, and restart brings a
/// fresh worker up on the same id.
TEST(ExecutionModeTest, StoppedWorkerRejectsWorkUntilRestart) {
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  opts.execution_mode = ExecutionMode::kRealThreads;
  Cluster cluster(opts);
  Node* n = *cluster.AddNode();

  ASSERT_OK(cluster.Execute(n->id(), [] {}));
  ASSERT_OK(cluster.CrashNode(n->id()));
  Status st = cluster.Execute(n->id(), [] {});
  EXPECT_TRUE(st.IsNodeDown()) << st.ToString();
  ASSERT_OK(cluster.RestartNode(n->id()));
  ASSERT_OK(cluster.Execute(n->id(), [] {}));
}

/// Adaptive recovery equivalence across engines. Every session writes only
/// its own pages, so the whole log is self-only histories and restart
/// recovery takes the dependency-parallel redo path — chains replayed
/// sequentially in simulation, by the worker pool in real mode. Both must
/// land on the same committed state, and both must actually have scheduled
/// chains (the stats prove the fast path ran, not the legacy bounce).
std::map<PageId, std::vector<std::string>> RunAdaptiveRecovery(
    const std::string& dir, ExecutionMode mode, std::uint64_t* chains,
    std::uint64_t* parallel_pages) {
  constexpr int kNodes = 3;
  constexpr int kPagesPerNode = 2;
  constexpr int kTxnsPerSession = 6;

  ClusterOptions opts;
  opts.dir = dir;
  opts.execution_mode = mode;
  opts.logging_policy = LoggingPolicy()
                            .WithStrategy(LogStrategy::kAdaptive)
                            .WithRedoWorkers(4);
  Cluster cluster(opts);
  std::vector<std::vector<PageId>> pages(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    Node* n = *cluster.AddNode();
    EXPECT_OK(cluster.Execute(n->id(), [&] {
      for (int p = 0; p < kPagesPerNode; ++p) {
        Result<PageId> r = n->AllocatePage();
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (r.ok()) pages[i].push_back(*r);
      }
    }));
  }

  // Sessions run sequentially — this test is about recovery parallelism,
  // not workload parallelism. Every third transaction forces the physical
  // strategy so both record families interleave in each log.
  for (int s = 0; s < kNodes; ++s) {
    EXPECT_OK(cluster.Execute(s, [&] {
      Node* n = cluster.node(s);
      for (int t = 0; t < kTxnsPerSession; ++t) {
        TxnOptions topts;
        if (t % 3 == 2) topts.strategy = LogStrategy::kPhysical;
        Result<TxnHandle> begun = TxnHandle::Begin(*n, topts);
        EXPECT_TRUE(begun.ok()) << begun.status().ToString();
        if (!begun.ok()) return;
        TxnHandle txn = *begun;
        for (int p = 0; p < kPagesPerNode; ++p) {
          EXPECT_OK(txn.Insert(pages[s][p],
                               "s" + std::to_string(s) + "t" +
                                   std::to_string(t) + "p" +
                                   std::to_string(p))
                        .status());
        }
        EXPECT_OK(txn.Commit());
      }
    }));
  }

  // Lose every cache with the dirty pages unflushed, then recover jointly:
  // redo rebuilds each page purely from its owner's log.
  std::vector<NodeId> ids = cluster.NodeIds();
  for (NodeId id : ids) EXPECT_OK(cluster.CrashNode(id));
  EXPECT_OK(cluster.RestartNodes(ids));
  *chains = 0;
  *parallel_pages = 0;
  for (const auto& [id, stats] : cluster.recovery_stats()) {
    *chains += stats.redo_chains;
    *parallel_pages += stats.parallel_pages;
  }
  for (NodeId id : ids) {
    EXPECT_OK(cluster.Execute(id, [&] {
      EXPECT_OK(cluster.node(id)->CheckInvariants(/*deep=*/true));
    }));
  }

  std::map<PageId, std::vector<std::string>> out;
  for (int i = 0; i < kNodes; ++i) {
    for (const PageId& pid : pages[i]) {
      std::vector<std::string> records;
      EXPECT_OK(cluster.RunTransaction(i, [&](TxnHandle& txn) -> Status {
        CLOG_ASSIGN_OR_RETURN(records, txn.ScanPage(pid));
        return Status::OK();
      }));
      std::sort(records.begin(), records.end());
      // The map key keeps only the within-node shape so sim and real runs
      // (whose PageIds match anyway) compare structurally.
      out[pid] = std::move(records);
    }
  }
  return out;
}

TEST(ExecutionModeTest, AdaptiveParallelRedoConvergesAcrossModes) {
  TempDir sim_dir, real_dir;
  std::uint64_t sim_chains = 0, sim_pages = 0;
  std::uint64_t real_chains = 0, real_pages = 0;
  auto sim = RunAdaptiveRecovery(sim_dir.path(), ExecutionMode::kSimulation,
                                 &sim_chains, &sim_pages);
  auto real = RunAdaptiveRecovery(real_dir.path(),
                                  ExecutionMode::kRealThreads, &real_chains,
                                  &real_pages);

  // The scheduler ran in both engines, over every owned page.
  EXPECT_GT(sim_chains, 0u);
  EXPECT_GT(real_chains, 0u);
  EXPECT_EQ(sim_pages, 6u);
  EXPECT_EQ(real_pages, 6u);

  ASSERT_EQ(sim.size(), real.size());
  auto it = real.begin();
  std::size_t total = 0;
  for (const auto& [pid, records] : sim) {
    ASSERT_EQ(pid, it->first);
    EXPECT_EQ(records, it->second) << "page " << pid.ToString();
    total += records.size();
    ++it;
  }
  // Every committed insert survived recovery in both engines.
  EXPECT_EQ(total, static_cast<std::size_t>(3 * 6 * 2));
}

}  // namespace
}  // namespace clog
