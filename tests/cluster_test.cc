#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 32;
    cluster_ = std::make_unique<Cluster>(opts);
    auto owner = cluster_->AddNode();
    auto client = cluster_->AddNode();
    EXPECT_TRUE(owner.ok());
    EXPECT_TRUE(client.ok());
    owner_ = *owner;
    client_ = *client;
  }

  std::uint64_t Msgs(const std::string& type) {
    return cluster_->network().metrics().CounterValue("msg." + type);
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(ClusterTest, RemotePageFetchAndUpdate) {
  // Client caches a page owned by the server, updates it, logs locally,
  // and commits without talking to the owner (data shipping, Section 2.2).
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "remote"));
  EXPECT_GE(Msgs("lock_page_request"), 1u);
  std::uint64_t msgs_before_commit =
      cluster_->network().metrics().CounterValue("msg.total");
  ASSERT_OK(client_->Commit(txn));
  // No commit-time messages.
  EXPECT_EQ(cluster_->network().metrics().CounterValue("msg.total"),
            msgs_before_commit);
  // The client's log carries the records, the owner's does not.
  EXPECT_GT(client_->log().appended_records(), 0u);
  // Client can re-read from cache with no further owner traffic.
  std::uint64_t lock_reqs = Msgs("lock_page_request");
  ASSERT_OK_AND_ASSIGN(TxnId t2, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(t2, rid));
  EXPECT_EQ(v, "remote");
  ASSERT_OK(client_->Commit(t2));
  EXPECT_EQ(Msgs("lock_page_request"), lock_reqs);  // Inter-txn caching.
}

TEST_F(ClusterTest, CallbackDemotesWriterForReader) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  // Client writes and commits; it retains an exclusive cached lock.
  ASSERT_OK_AND_ASSIGN(TxnId tw, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(tw, pid, "w"));
  ASSERT_OK(client_->Commit(tw));
  EXPECT_EQ(client_->lock_cache().NodeMode(pid), LockMode::kExclusive);

  // Owner-side read triggers a demotion callback; the dirty copy travels.
  ASSERT_OK_AND_ASSIGN(TxnId tr, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(tr, rid));
  EXPECT_EQ(v, "w");
  ASSERT_OK(owner_->Commit(tr));
  EXPECT_GE(Msgs("callback"), 1u);
  EXPECT_EQ(client_->lock_cache().NodeMode(pid), LockMode::kShared);
  // The client's DPT entry survives: its updates are not on disk yet.
  EXPECT_TRUE(client_->dpt().Contains(pid));
}

TEST_F(ClusterTest, CallbackReleasesReaderForWriter) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t0, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(t0, pid, "v0"));
  ASSERT_OK(owner_->Commit(t0));

  // Client reads: holds a cached S lock.
  ASSERT_OK_AND_ASSIGN(TxnId tr, client_->Begin());
  ASSERT_OK(client_->Read(tr, rid).status());
  ASSERT_OK(client_->Commit(tr));
  EXPECT_EQ(client_->lock_cache().NodeMode(pid), LockMode::kShared);

  // Owner writes: the client's cached S lock is called back entirely.
  ASSERT_OK_AND_ASSIGN(TxnId tw, owner_->Begin());
  ASSERT_OK(owner_->Update(tw, rid, "v1"));
  ASSERT_OK(owner_->Commit(tw));
  EXPECT_EQ(client_->lock_cache().NodeMode(pid), LockMode::kNone);
  EXPECT_FALSE(client_->pool().Contains(pid));

  // Client re-reads: sees the new value.
  ASSERT_OK_AND_ASSIGN(TxnId tr2, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(tr2, rid));
  EXPECT_EQ(v, "v1");
  ASSERT_OK(client_->Commit(tr2));
}

TEST_F(ClusterTest, PageTravelsWithMultipleOutstandingUpdates) {
  // The paper's distinguishing capability vs Rdb/VMS: a page carries
  // uncommitted-at-disk updates from several nodes without being forced.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t0, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(t0, pid, "v0"));
  ASSERT_OK(owner_->Commit(t0));

  std::uint64_t disk_writes_before = owner_->disk().writes();
  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId tc, client_->Begin());
    ASSERT_OK(client_->Update(tc, rid, "c" + std::to_string(round)));
    ASSERT_OK(client_->Commit(tc));
    ASSERT_OK_AND_ASSIGN(TxnId to, owner_->Begin());
    ASSERT_OK(owner_->Update(to, rid, "o" + std::to_string(round)));
    ASSERT_OK(owner_->Commit(to));
  }
  // No disk writes during the ping-pong (no force at transfer).
  EXPECT_EQ(owner_->disk().writes(), disk_writes_before);
  // Both nodes hold DPT entries for the page: multiple outstanding
  // updates, exactly what single-log-per-page schemes cannot have.
  EXPECT_TRUE(owner_->dpt().Contains(pid) || client_->dpt().Contains(pid));
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "o2");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(ClusterTest, ReplacedDirtyPageShipsHomeAndFlushNotifyClearsDpt) {
  // Small client cache: dirty remote pages get replaced and shipped to the
  // owner; when the owner forces them, the flush notification clears the
  // client's DPT entries (Sections 2.2 / 2.5).
  NodeOptions small = owner_->options();
  small.buffer_frames = 4;
  ASSERT_OK_AND_ASSIGN(Node * tiny, cluster_->AddNode(small));

  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
    pages.push_back(pid);
  }
  ASSERT_OK_AND_ASSIGN(TxnId txn, tiny->Begin());
  for (PageId pid : pages) {
    ASSERT_OK(tiny->Insert(txn, pid, "t").status());
  }
  ASSERT_OK(tiny->Commit(txn));
  EXPECT_GE(Msgs("page_ship"), 4u);
  EXPECT_EQ(tiny->dpt().size(), 8u);

  // Force everything at the owner; notifications clear the client's DPT
  // entries for the pages whose dirty copies were shipped home. Pages
  // still cached dirty at the client correctly KEEP their entries — their
  // updates are not in any disk version yet (Section 2.2 drop rule).
  for (PageId pid : pages) {
    ASSERT_OK(owner_->HandleFlushRequest(owner_->id(), pid));
  }
  EXPECT_LT(tiny->dpt().size(), 8u);
  EXPECT_GE(Msgs("flush_notify"), 1u);

  // Now push the remaining dirty copies home too and force again: every
  // entry must clear.
  for (PageId pid : pages) {
    if (tiny->pool().Contains(pid) && tiny->pool().IsDirty(pid)) {
      ASSERT_OK(const_cast<BufferPool&>(tiny->pool()).Evict(pid));
      ASSERT_OK(owner_->HandleFlushRequest(owner_->id(), pid));
    }
  }
  EXPECT_EQ(tiny->dpt().size(), 0u);
}

TEST_F(ClusterTest, LocalConflictReportsBlockers) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t0, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(t0, pid, "x"));
  // t0 still active: a second local writer must block.
  ASSERT_OK_AND_ASSIGN(TxnId t1, owner_->Begin());
  Status st = owner_->Update(t1, rid, "y");
  EXPECT_TRUE(st.IsBusy());
  EXPECT_EQ(owner_->LastBlockers(t1), std::vector<TxnId>{t0});
  ASSERT_OK(owner_->Commit(t0));
  ASSERT_OK(owner_->Update(t1, rid, "y"));
  ASSERT_OK(owner_->Commit(t1));
}

TEST_F(ClusterTest, RemoteConflictBlocksViaCallback) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId tc, client_->Begin());
  ASSERT_OK(client_->Insert(tc, pid, "c").status());
  // Owner wants the page while the client transaction is active: the
  // callback is refused and the request reports Busy with the blocker.
  ASSERT_OK_AND_ASSIGN(TxnId to, owner_->Begin());
  Status st = owner_->Insert(to, pid, "o").status();
  EXPECT_TRUE(st.IsBusy());
  EXPECT_EQ(owner_->LastBlockers(to), std::vector<TxnId>{tc});
  ASSERT_OK(client_->Commit(tc));
  // After commit the cached lock can be called back.
  ASSERT_OK(owner_->Insert(to, pid, "o").status());
  ASSERT_OK(owner_->Commit(to));
}

TEST_F(ClusterTest, RunTransactionRetriesBusy) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(RecordId rid, [&]() -> Result<RecordId> {
    Result<RecordId> out = Status::Busy("");
    Status st = cluster_->RunTransaction(owner_->id(), [&](TxnHandle& t) {
      out = t.Insert(pid, "seed");
      return out.status();
    });
    if (!st.ok()) return st;
    return out;
  }());
  ASSERT_OK(cluster_->RunTransaction(client_->id(), [&](TxnHandle& t) {
    return t.Update(rid, "client-was-here");
  }));
  std::string seen;
  ASSERT_OK(cluster_->RunTransaction(owner_->id(), [&](TxnHandle& t) {
    Result<std::string> v = t.Read(rid);
    if (!v.ok()) return v.status();
    seen = *v;
    return Status::OK();
  }));
  EXPECT_EQ(seen, "client-was-here");
}

TEST_F(ClusterTest, WorkloadDriverInterleavesAndCommits) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<PageId> pages,
      AllocatePopulatedPages(cluster_.get(), owner_->id(), 6, 8, 40, 1));
  WorkloadConfig config;
  config.txns_per_session = 10;
  config.ops_per_txn = 4;
  config.records_per_page = 8;
  config.payload_bytes = 40;
  WorkloadDriver driver(cluster_.get(), config,
                        {{owner_->id(), pages}, {client_->id(), pages}});
  ASSERT_OK(driver.Run());
  EXPECT_GT(driver.stats().committed, 0u);
  EXPECT_LE(driver.stats().committed, 20u);  // 2 sessions x 10 txns.
  EXPECT_GT(driver.stats().ops, 0u);
}

TEST_F(ClusterTest, CrashedOwnerRejectsRequests) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  Status st = client_->Insert(txn, pid, "x").status();
  EXPECT_TRUE(st.IsNodeDown());
  ASSERT_OK(client_->Abort(txn));
}

}  // namespace
}  // namespace clog
