#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "buffer/dirty_page_table.h"
#include "tests/test_util.h"

namespace clog {
namespace {

PageId P(std::uint32_t n) { return PageId{0, n}; }

TEST(BufferPoolTest, LookupMissThenInsert) {
  BufferPool pool(4);
  EXPECT_EQ(pool.Lookup(P(1)), nullptr);
  EXPECT_EQ(pool.misses(), 1u);
  ASSERT_OK_AND_ASSIGN(Page * frame, pool.Insert(P(1)));
  frame->Format(P(1), PageType::kData, 0);
  EXPECT_EQ(pool.Lookup(P(1)), frame);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(pool.Contains(P(1)));
}

TEST(BufferPoolTest, DoubleInsertFails) {
  BufferPool pool(4);
  ASSERT_OK(pool.Insert(P(1)).status());
  EXPECT_EQ(pool.Insert(P(1)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BufferPoolTest, LruEvictionOrder) {
  BufferPool pool(2);
  std::vector<PageId> evicted;
  pool.SetEvictionHandler([&](PageId pid, Page*, bool) {
    evicted.push_back(pid);
    return Status::OK();
  });
  ASSERT_OK(pool.Insert(P(1)).status());
  ASSERT_OK(pool.Insert(P(2)).status());
  pool.Lookup(P(1));  // P(1) most recent; P(2) is the LRU victim.
  ASSERT_OK(pool.Insert(P(3)).status());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], P(2));
  EXPECT_TRUE(pool.Contains(P(1)));
  EXPECT_TRUE(pool.Contains(P(3)));
}

TEST(BufferPoolTest, PinnedPagesNotEvicted) {
  BufferPool pool(2);
  std::vector<PageId> evicted;
  pool.SetEvictionHandler([&](PageId pid, Page*, bool) {
    evicted.push_back(pid);
    return Status::OK();
  });
  ASSERT_OK(pool.Insert(P(1)).status());
  ASSERT_OK(pool.Insert(P(2)).status());
  pool.Pin(P(1));
  pool.Lookup(P(2));  // P(1) would be LRU, but it is pinned.
  ASSERT_OK(pool.Insert(P(3)).status());
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], P(2));
  pool.Unpin(P(1));
}

TEST(BufferPoolTest, AllPinnedMeansBusy) {
  BufferPool pool(1);
  pool.SetEvictionHandler([](PageId, Page*, bool) { return Status::OK(); });
  ASSERT_OK(pool.Insert(P(1)).status());
  pool.Pin(P(1));
  EXPECT_TRUE(pool.Insert(P(2)).status().IsBusy());
}

TEST(BufferPoolTest, DirtyBitFlowsToHandler) {
  BufferPool pool(1);
  bool saw_dirty = false;
  pool.SetEvictionHandler([&](PageId, Page*, bool dirty) {
    saw_dirty = dirty;
    return Status::OK();
  });
  ASSERT_OK(pool.Insert(P(1)).status());
  pool.MarkDirty(P(1));
  EXPECT_TRUE(pool.IsDirty(P(1)));
  ASSERT_OK(pool.Insert(P(2)).status());
  EXPECT_TRUE(saw_dirty);
}

TEST(BufferPoolTest, ExplicitEvictAndDrop) {
  BufferPool pool(4);
  int handler_calls = 0;
  pool.SetEvictionHandler([&](PageId, Page*, bool) {
    ++handler_calls;
    return Status::OK();
  });
  ASSERT_OK(pool.Insert(P(1)).status());
  ASSERT_OK(pool.Insert(P(2)).status());
  ASSERT_OK(pool.Evict(P(1)));
  EXPECT_EQ(handler_calls, 1);
  EXPECT_FALSE(pool.Contains(P(1)));
  pool.Drop(P(2));  // No handler for Drop.
  EXPECT_EQ(handler_calls, 1);
  EXPECT_TRUE(pool.Evict(P(9)).IsNotFound());
}

TEST(BufferPoolTest, DropAllSimulatesCrash) {
  BufferPool pool(4);
  int handler_calls = 0;
  pool.SetEvictionHandler([&](PageId, Page*, bool) {
    ++handler_calls;
    return Status::OK();
  });
  ASSERT_OK(pool.Insert(P(1)).status());
  ASSERT_OK(pool.Insert(P(2)).status());
  pool.MarkDirty(P(1));
  pool.DropAll();
  EXPECT_EQ(handler_calls, 0);  // Crash writes nothing.
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPoolTest, CachedAndDirtyLists) {
  BufferPool pool(4);
  ASSERT_OK(pool.Insert(P(1)).status());
  ASSERT_OK(pool.Insert(P(2)).status());
  pool.MarkDirty(P(2));
  EXPECT_EQ(pool.CachedPages().size(), 2u);
  auto dirty = pool.DirtyPages();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], P(2));
  pool.MarkClean(P(2));
  EXPECT_TRUE(pool.DirtyPages().empty());
}

// --- DirtyPageTable: the paper's Section 2.2 rules ---

TEST(DirtyPageTableTest, FirstDirtyCapturesPsnAndRedoLsn) {
  DirtyPageTable dpt;
  dpt.OnFirstDirty(P(1), /*page_psn=*/10, /*log_end=*/500);
  const DirtyPageInfo* info = dpt.Find(P(1));
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->psn, 10u);
  EXPECT_EQ(info->curr_psn, 10u);
  EXPECT_EQ(info->redo_lsn, 500u);
  // A second first-dirty is a no-op (entry exists).
  dpt.OnFirstDirty(P(1), 99, 900);
  EXPECT_EQ(dpt.Find(P(1))->redo_lsn, 500u);
}

TEST(DirtyPageTableTest, UpdatesAdvanceCurrPsnOnly) {
  DirtyPageTable dpt;
  dpt.OnFirstDirty(P(1), 10, 500);
  dpt.OnUpdate(P(1), 11);
  dpt.OnUpdate(P(1), 12);
  EXPECT_EQ(dpt.Find(P(1))->psn, 10u);
  EXPECT_EQ(dpt.Find(P(1))->curr_psn, 12u);
}

TEST(DirtyPageTableTest, FlushCoveringAllUpdatesDropsEntry) {
  DirtyPageTable dpt;
  dpt.OnFirstDirty(P(1), 10, 500);
  dpt.OnUpdate(P(1), 12);
  dpt.OnReplaced(P(1), 12, 800);
  EXPECT_TRUE(dpt.OnOwnerFlushed(P(1), 12));
  EXPECT_FALSE(dpt.Contains(P(1)));
}

TEST(DirtyPageTableTest, StaleFlushKeepsEntry) {
  DirtyPageTable dpt;
  dpt.OnFirstDirty(P(1), 10, 500);
  dpt.OnUpdate(P(1), 15);
  // Disk only reached PSN 12: our updates 13..15 are not durable.
  EXPECT_FALSE(dpt.OnOwnerFlushed(P(1), 12));
  EXPECT_TRUE(dpt.Contains(P(1)));
  EXPECT_EQ(dpt.Find(P(1))->redo_lsn, 500u);
}

TEST(DirtyPageTableTest, Section25RedoLsnAdvance) {
  // Replace at log end 800, re-dirty, then the owner flushes the shipped
  // copy: RedoLSN advances to the remembered 800 (Section 2.5).
  DirtyPageTable dpt;
  dpt.OnFirstDirty(P(1), 10, 500);
  dpt.OnUpdate(P(1), 12);
  dpt.OnReplaced(P(1), 12, 800);
  dpt.OnUpdate(P(1), 14);  // Re-dirtied after replacement.
  EXPECT_FALSE(dpt.OnOwnerFlushed(P(1), 12));
  ASSERT_TRUE(dpt.Contains(P(1)));
  EXPECT_EQ(dpt.Find(P(1))->redo_lsn, 800u);
}

TEST(DirtyPageTableTest, MinRedoLsnAndVictim) {
  DirtyPageTable dpt;
  EXPECT_EQ(dpt.MinRedoLsn(), kNullLsn);
  EXPECT_FALSE(dpt.MinRedoLsnPage().has_value());
  dpt.OnFirstDirty(P(1), 0, 700);
  dpt.OnFirstDirty(P(2), 0, 300);
  dpt.OnFirstDirty(P(3), 0, 900);
  EXPECT_EQ(dpt.MinRedoLsn(), 300u);
  EXPECT_EQ(dpt.MinRedoLsnPage().value(), P(2));
}

TEST(DirtyPageTableTest, ToEntriesFiltersByOwner) {
  DirtyPageTable dpt;
  dpt.OnFirstDirty(PageId{1, 1}, 0, 100);
  dpt.OnFirstDirty(PageId{2, 1}, 0, 200);
  EXPECT_EQ(dpt.ToEntries().size(), 2u);
  auto owned = dpt.ToEntries(NodeId{2});
  ASSERT_EQ(owned.size(), 1u);
  EXPECT_EQ(owned[0].pid, (PageId{2, 1}));
}

TEST(DirtyPageTableTest, InstallForAnalysis) {
  DirtyPageTable dpt;
  dpt.Install(DptEntry{P(4), 5, 9, 1234});
  ASSERT_TRUE(dpt.Contains(P(4)));
  EXPECT_EQ(dpt.Find(P(4))->curr_psn, 9u);
  EXPECT_EQ(dpt.Find(P(4))->redo_lsn, 1234u);
}

}  // namespace
}  // namespace clog
