#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crc32c.h"
#include "fault/fault_injector.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace clog {
namespace {

using testing::TempDir;

LogRecord MakeUpdate(TxnId txn, PageId page, Psn psn_before, Lsn prev,
                     const std::string& redo, const std::string& undo) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn = txn;
  rec.prev_lsn = prev;
  rec.page = page;
  rec.psn_before = psn_before;
  rec.op = RecordOp::kUpdate;
  rec.slot = 2;
  rec.redo_image = redo;
  rec.undo_image = undo;
  return rec;
}

TEST(LogRecordTest, UpdateEncodeDecodeRoundTrip) {
  LogRecord rec = MakeUpdate(MakeTxnId(1, 7), PageId{2, 5}, 42, 1000, "new",
                             "old");
  std::string body;
  rec.EncodeTo(&body);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.type, LogRecordType::kUpdate);
  EXPECT_EQ(out.txn, rec.txn);
  EXPECT_EQ(out.prev_lsn, 1000u);
  EXPECT_EQ(out.page, (PageId{2, 5}));
  EXPECT_EQ(out.psn_before, 42u);
  EXPECT_EQ(out.op, RecordOp::kUpdate);
  EXPECT_EQ(out.slot, 2);
  EXPECT_EQ(out.redo_image, "new");
  EXPECT_EQ(out.undo_image, "old");
}

TEST(LogRecordTest, ClrCarriesUndoNext) {
  LogRecord rec;
  rec.type = LogRecordType::kClr;
  rec.txn = MakeTxnId(0, 1);
  rec.page = PageId{0, 1};
  rec.psn_before = 9;
  rec.op = RecordOp::kDelete;
  rec.slot = 4;
  rec.undo_next_lsn = 777;
  std::string body;
  rec.EncodeTo(&body);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.type, LogRecordType::kClr);
  EXPECT_EQ(out.undo_next_lsn, 777u);
}

TEST(LogRecordTest, CheckpointCarriesDptAndAtt) {
  LogRecord rec;
  rec.type = LogRecordType::kCheckpointEnd;
  rec.checkpoint_begin_lsn = 128;
  rec.dpt = {DptEntry{PageId{1, 2}, 3, 9, 500},
             DptEntry{PageId{0, 7}, 1, 1, 900}};
  rec.att = {AttEntry{MakeTxnId(1, 3), 450}};
  std::string body;
  rec.EncodeTo(&body);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.checkpoint_begin_lsn, 128u);
  ASSERT_EQ(out.dpt.size(), 2u);
  EXPECT_EQ(out.dpt[0], rec.dpt[0]);
  EXPECT_EQ(out.dpt[1], rec.dpt[1]);
  ASSERT_EQ(out.att.size(), 1u);
  EXPECT_EQ(out.att[0], rec.att[0]);
}

TEST(LogRecordTest, SavepointName) {
  LogRecord rec;
  rec.type = LogRecordType::kSavepoint;
  rec.txn = 1;
  rec.savepoint_name = "sp1";
  std::string body;
  rec.EncodeTo(&body);
  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.savepoint_name, "sp1");
}

TEST(LogRecordTest, GarbageIsCorruption) {
  LogRecord out;
  EXPECT_TRUE(LogRecord::DecodeFrom(Slice("\xFFgarbage", 8), &out)
                  .IsCorruption());
  EXPECT_TRUE(LogRecord::DecodeFrom(Slice("", 0), &out).IsCorruption());
}

class LogManagerTest : public ::testing::Test {
 protected:
  TempDir dir_;
};

TEST_F(LogManagerTest, AppendAssignsIncreasingLsns) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord rec = MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, "a", "b");
  Lsn l1, l2;
  ASSERT_OK(log.Append(rec, &l1));
  ASSERT_OK(log.Append(rec, &l2));
  EXPECT_EQ(l1, LogManager::first_lsn());
  EXPECT_GT(l2, l1);
  EXPECT_EQ(log.appended_records(), 2u);
}

TEST_F(LogManagerTest, ReadBackUnflushedAndFlushed) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord rec = MakeUpdate(1, PageId{0, 0}, 3, kNullLsn, "abc", "xyz");
  Lsn lsn;
  ASSERT_OK(log.Append(rec, &lsn));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(lsn, &got));  // From the append buffer.
  EXPECT_EQ(got.redo_image, "abc");
  ASSERT_OK(log.Flush(lsn));
  ASSERT_OK(log.ReadRecord(lsn, &got));  // From disk.
  EXPECT_EQ(got.undo_image, "xyz");
  EXPECT_EQ(log.forces(), 1u);
}

TEST_F(LogManagerTest, FlushIsIdempotentAndOrdered) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord rec = MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, "a", "");
  Lsn lsn;
  ASSERT_OK(log.Append(rec, &lsn));
  ASSERT_OK(log.Flush(lsn));
  std::uint64_t forces = log.forces();
  ASSERT_OK(log.Flush(lsn));  // Already durable: no new force.
  EXPECT_EQ(log.forces(), forces);
  EXPECT_GE(log.flushed_lsn(), lsn);
}

TEST_F(LogManagerTest, SurvivesReopen) {
  Lsn lsn;
  {
    LogManager log;
    ASSERT_OK(log.Open(dir_.path() + "/log"));
    LogRecord rec = MakeUpdate(5, PageId{1, 1}, 7, kNullLsn, "persist", "");
    ASSERT_OK(log.Append(rec, &lsn));
    ASSERT_OK(log.Flush(lsn));
    ASSERT_OK(log.Close());
  }
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(lsn, &got));
  EXPECT_EQ(got.redo_image, "persist");
  EXPECT_GT(log.end_lsn(), lsn);
}

TEST_F(LogManagerTest, AbandonLosesUnflushedTail) {
  Lsn durable, volatile_lsn;
  {
    LogManager log;
    ASSERT_OK(log.Open(dir_.path() + "/log"));
    LogRecord rec = MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, "keep", "");
    ASSERT_OK(log.Append(rec, &durable));
    ASSERT_OK(log.Flush(durable));
    rec.redo_image = "lose";
    ASSERT_OK(log.Append(rec, &volatile_lsn));
    log.Abandon();  // Crash: tail never forced.
  }
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(durable, &got));
  EXPECT_EQ(got.redo_image, "keep");
  EXPECT_TRUE(log.ReadRecord(volatile_lsn, &got).IsNotFound());
  EXPECT_EQ(log.end_lsn(), volatile_lsn);  // Appends continue here.
}

TEST_F(LogManagerTest, TornTailTruncatedOnReopen) {
  Lsn lsn;
  {
    LogManager log;
    ASSERT_OK(log.Open(dir_.path() + "/log"));
    LogRecord rec = MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, "whole", "");
    ASSERT_OK(log.Append(rec, &lsn));
    ASSERT_OK(log.Flush(lsn));
    ASSERT_OK(log.Close());
  }
  // Simulate a torn write: append garbage that looks like a frame header.
  {
    FILE* f = std::fopen((dir_.path() + "/log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::uint32_t len = 100, crc = 0;
    std::fwrite(&len, 4, 1, f);
    std::fwrite(&crc, 4, 1, f);
    std::fwrite("short", 5, 1, f);  // Body shorter than advertised.
    std::fclose(f);
  }
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(lsn, &got));
  EXPECT_EQ(got.redo_image, "whole");
}

TEST_F(LogManagerTest, BoundedCapacityAndReclaim) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  log.set_capacity(1024);
  LogRecord rec =
      MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, std::string(100, 'r'), "");
  Lsn lsn = kNullLsn;
  Status st;
  int appended = 0;
  while ((st = log.Append(rec, &lsn)).ok()) ++appended;
  EXPECT_TRUE(st.IsLogFull());
  EXPECT_GT(appended, 0);
  EXPECT_LE(log.LiveBytes(), 1024u);
  // Reclaiming space re-enables appends.
  log.SetReclaimableLsn(log.end_lsn());
  EXPECT_EQ(log.LiveBytes(), 0u);
  ASSERT_OK(log.Append(rec, &lsn));
}

TEST_F(LogManagerTest, ReopenAfterCrashWithTornFinalRecord) {
  // An injected crash tears the buffered tail mid-record: the durable
  // prefix must survive reopen, the torn record must vanish, and the log
  // must accept appends again.
  FaultConfig cfg;
  cfg.torn_tail_p = 1.0;
  cfg.torn_tail_corrupt_p = 1.0;
  FaultInjector fault(/*seed=*/7, cfg);
  Lsn durable, torn;
  {
    LogManager log;
    ASSERT_OK(log.Open(dir_.path() + "/log"));
    log.set_fault_injector(&fault, /*node=*/0);
    LogRecord rec = MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, "keep", "");
    ASSERT_OK(log.Append(rec, &durable));
    ASSERT_OK(log.Flush(durable));
    rec.redo_image = "torn-away";
    ASSERT_OK(log.Append(rec, &torn));
    log.Abandon();  // Crash: a garbled prefix of the tail hits the file.
  }
  EXPECT_GT(fault.counters().torn_tails, 0u);
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(durable, &got));
  EXPECT_EQ(got.redo_image, "keep");
  EXPECT_TRUE(log.ReadRecord(torn, &got).IsNotFound());
  Lsn after = kNullLsn;
  ASSERT_OK(log.Append(MakeUpdate(2, PageId{0, 0}, 1, kNullLsn, "next", ""),
                       &after));
  ASSERT_OK(log.Flush(after));
  ASSERT_OK(log.ReadRecord(after, &got));
  EXPECT_EQ(got.redo_image, "next");
}

TEST_F(LogManagerTest, AbandonWithEmptyBufferedTailIsCleanCrash) {
  // When everything was flushed before the crash, Abandon has no tail to
  // tear — even with tearing forced on — and reopen sees the full log.
  FaultConfig cfg;
  cfg.torn_tail_p = 1.0;
  FaultInjector fault(/*seed=*/9, cfg);
  Lsn l1, l2;
  {
    LogManager log;
    ASSERT_OK(log.Open(dir_.path() + "/log"));
    log.set_fault_injector(&fault, /*node=*/0);
    LogRecord rec = MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, "one", "");
    ASSERT_OK(log.Append(rec, &l1));
    rec.redo_image = "two";
    ASSERT_OK(log.Append(rec, &l2));
    ASSERT_OK(log.Flush(l2));
    log.Abandon();
  }
  EXPECT_EQ(fault.counters().torn_tails, 0u);
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(l1, &got));
  EXPECT_EQ(got.redo_image, "one");
  ASSERT_OK(log.ReadRecord(l2, &got));
  EXPECT_EQ(got.redo_image, "two");
  EXPECT_GT(log.end_lsn(), l2);
}

TEST_F(LogManagerTest, UnenforcedAppendBypassesFullLog) {
  // Rollback CLRs must always be appendable: a full log rejects normal
  // appends but admits enforce_capacity=false ones.
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  log.set_capacity(1024);
  LogRecord rec =
      MakeUpdate(1, PageId{0, 0}, 0, kNullLsn, std::string(100, 'x'), "");
  Lsn lsn = kNullLsn;
  Status st;
  while ((st = log.Append(rec, &lsn)).ok()) {
  }
  ASSERT_TRUE(st.IsLogFull());
  LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = 1;
  clr.page = PageId{0, 0};
  clr.op = RecordOp::kUpdate;
  clr.redo_image = std::string(100, 'u');
  Lsn clr_lsn = kNullLsn;
  ASSERT_OK(log.Append(clr, &clr_lsn, /*enforce_capacity=*/false));
  EXPECT_GT(clr_lsn, lsn);
  LogRecord got;
  ASSERT_OK(log.ReadRecord(clr_lsn, &got));
  EXPECT_EQ(got.type, LogRecordType::kClr);
  // Normal appends are still refused until space is reclaimed.
  EXPECT_TRUE(log.Append(rec, &lsn).IsLogFull());
  log.SetReclaimableLsn(log.end_lsn());
  ASSERT_OK(log.Append(rec, &lsn));
}

TEST_F(LogManagerTest, MasterPointerRoundTrip) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  ASSERT_OK_AND_ASSIGN(Lsn none, log.LoadMaster());
  EXPECT_EQ(none, kNullLsn);
  ASSERT_OK(log.StoreMaster(4242));
  ASSERT_OK_AND_ASSIGN(Lsn got, log.LoadMaster());
  EXPECT_EQ(got, 4242u);
  ASSERT_OK(log.StoreMaster(9000));  // Overwrite atomically.
  ASSERT_OK_AND_ASSIGN(Lsn got2, log.LoadMaster());
  EXPECT_EQ(got2, 9000u);
}

TEST_F(LogManagerTest, ForwardCursorScansAll) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  Lsn lsn;
  for (int i = 0; i < 10; ++i) {
    LogRecord rec = MakeUpdate(1, PageId{0, 0}, i, kNullLsn,
                               "v" + std::to_string(i), "");
    ASSERT_OK(log.Append(rec, &lsn));
  }
  LogCursor cursor(&log, LogManager::first_lsn());
  LogRecord rec;
  Lsn at;
  int count = 0;
  Status st;
  while (cursor.Next(&rec, &at, &st)) {
    EXPECT_EQ(rec.psn_before, static_cast<Psn>(count));
    ++count;
  }
  ASSERT_OK(st);
  EXPECT_EQ(count, 10);
  EXPECT_EQ(cursor.records_read(), 10u);
}

// Reference framing: encode the body on its own, then prepend the frame
// header exactly as the format doc specifies — u32 body_len | u32
// crc32c(body) | body, native u32 layout. The append path builds frames
// in place in the tail buffer; these tests pin it to this reference.
std::string ReferenceFrame(const LogRecord& rec) {
  std::string body;
  rec.EncodeTo(&body);
  std::uint32_t len = static_cast<std::uint32_t>(body.size());
  std::uint32_t crc = crc32c::Value(body.data(), body.size());
  std::string frame;
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame += body;
  return frame;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<LogRecord> GoldenRecords() {
  std::vector<LogRecord> recs;
  recs.push_back(MakeUpdate(MakeTxnId(1, 7), PageId{2, 5}, 42, kNullLsn,
                            "redo-bytes", "undo-bytes"));
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = MakeTxnId(1, 7);
  commit.prev_lsn = LogManager::first_lsn();
  recs.push_back(commit);
  LogRecord ckpt;
  ckpt.type = LogRecordType::kCheckpointEnd;
  ckpt.checkpoint_begin_lsn = 128;
  ckpt.dpt = {DptEntry{PageId{1, 2}, 3, 9, 500}};
  ckpt.att = {AttEntry{MakeTxnId(1, 3), 450}};
  recs.push_back(ckpt);
  recs.push_back(MakeUpdate(MakeTxnId(0, 2), PageId{0, 1}, 7, kNullLsn,
                            std::string(200, 'R'), std::string(90, 'U')));
  // Adaptive-logging record types ride through the same framing.
  LogRecord logical = MakeUpdate(MakeTxnId(2, 9), PageId{2, 3}, 11, kNullLsn,
                                 "compact-redo", /*undo=*/"");
  logical.type = LogRecordType::kLogicalUpdate;
  recs.push_back(logical);
  LogRecord backfill;
  backfill.type = LogRecordType::kUndoBackfill;
  backfill.txn = MakeTxnId(2, 9);
  backfill.prev_lsn = 700;
  backfill.backfill = {BackfillEntry{650, "old-bytes"}, BackfillEntry{680, ""}};
  recs.push_back(backfill);
  LogRecord dep_commit;
  dep_commit.type = LogRecordType::kCommit;
  dep_commit.txn = MakeTxnId(2, 9);
  dep_commit.prev_lsn = 720;
  dep_commit.commit_flags = kCommitFlagLogical;
  dep_commit.commit_deps = {CommitDep{MakeTxnId(0, 4), 333}};
  recs.push_back(dep_commit);
  return recs;
}

TEST_F(LogManagerTest, AppendIsByteIdenticalToReferenceFraming) {
  // On-disk format golden test. The zero-copy append path reserves the
  // 8-byte frame header, encodes the body directly into the tail buffer,
  // and backfills len/crc; the file it produces must be byte-identical to
  // the reference framing. Any drift here orphans every existing log.
  const std::string path = dir_.path() + "/log";
  std::string expect;
  Lsn expect_lsn = LogManager::first_lsn();
  {
    LogManager log;
    ASSERT_OK(log.Open(path));
    Lsn lsn = kNullLsn;
    for (const LogRecord& rec : GoldenRecords()) {
      ASSERT_OK(log.Append(rec, &lsn));
      EXPECT_EQ(lsn, expect_lsn);  // LSNs are byte offsets of the frame.
      std::string frame = ReferenceFrame(rec);
      expect += frame;
      expect_lsn += frame.size();
    }
    ASSERT_OK(log.Flush(lsn));
    EXPECT_EQ(log.end_lsn(), expect_lsn);
    ASSERT_OK(log.Close());
  }
  std::string file = ReadWholeFile(path);
  ASSERT_EQ(file.size(), static_cast<std::size_t>(expect_lsn));
  EXPECT_EQ(file.substr(LogManager::first_lsn()), expect);
}

TEST_F(LogManagerTest, ReferenceFramedFileReplaysOnOpen) {
  // The converse direction: a log written frame-by-frame by the reference
  // encoder (i.e. by the pre-zero-copy implementation) must recover and
  // read back unchanged, and must accept new appends after its tail.
  const std::string path = dir_.path() + "/log";
  {
    LogManager log;  // Produces just the 64-byte file header.
    ASSERT_OK(log.Open(path));
    ASSERT_OK(log.Close());
  }
  std::vector<LogRecord> recs = GoldenRecords();
  std::vector<Lsn> lsns;
  Lsn at = LogManager::first_lsn();
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    for (const LogRecord& rec : recs) {
      std::string frame = ReferenceFrame(rec);
      lsns.push_back(at);
      at += frame.size();
      out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    }
  }
  LogManager log;
  ASSERT_OK(log.Open(path));
  EXPECT_EQ(log.end_lsn(), at);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    LogRecord got;
    ASSERT_OK(log.ReadRecord(lsns[i], &got));
    EXPECT_EQ(got.type, recs[i].type) << "record " << i;
    std::string want_body, got_body;
    recs[i].EncodeTo(&want_body);
    got.EncodeTo(&got_body);
    EXPECT_EQ(got_body, want_body) << "record " << i;
  }
  // The reopened log continues with zero-copy appends where the old
  // encoder left off.
  Lsn more = kNullLsn;
  ASSERT_OK(log.Append(
      MakeUpdate(MakeTxnId(2, 1), PageId{0, 0}, 1, kNullLsn, "new", ""),
      &more));
  EXPECT_EQ(more, at);
  ASSERT_OK(log.Flush(more));
  LogRecord got;
  ASSERT_OK(log.ReadRecord(more, &got));
  EXPECT_EQ(got.redo_image, "new");
}

// --- Adaptive-logging record types: pinned byte layouts -----------------
// These spell the expected bodies out byte by byte. Any encoder change
// that shifts them orphans existing logs, exactly like the framing tests
// above; change the format doc and add a version gate instead.

void PinU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

TEST(LogRecordTest, LogicalUpdateBodyMatchesPinnedLayout) {
  LogRecord rec = MakeUpdate(MakeTxnId(3, 5), PageId{3, 8}, 21, 900,
                             "after", "ignored-before");
  rec.type = LogRecordType::kLogicalUpdate;
  std::string body;
  rec.EncodeTo(&body);

  std::string want;
  want.push_back(static_cast<char>(LogRecordType::kLogicalUpdate));
  PinU64(&want, MakeTxnId(3, 5));
  PinU64(&want, 900);                  // prev_lsn
  PinU64(&want, PageId{3, 8}.Pack());
  PinU64(&want, 21);                   // psn_before
  want.push_back(static_cast<char>(RecordOp::kUpdate));
  want.push_back(2);                   // slot (u16 LE), MakeUpdate uses 2.
  want.push_back(0);
  want.push_back(5);                   // varint len("after")
  want += "after";
  // No undo image: that is the entire point of the logical format.
  EXPECT_EQ(body, want);

  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.type, LogRecordType::kLogicalUpdate);
  EXPECT_EQ(out.redo_image, "after");
  EXPECT_TRUE(out.undo_image.empty());
  EXPECT_EQ(out.psn_before, 21u);
  EXPECT_EQ(out.slot, 2u);
}

TEST(LogRecordTest, UndoBackfillBodyMatchesPinnedLayout) {
  LogRecord rec;
  rec.type = LogRecordType::kUndoBackfill;
  rec.txn = MakeTxnId(3, 5);
  rec.prev_lsn = 950;
  rec.backfill = {BackfillEntry{901, "old"}, BackfillEntry{925, ""}};
  std::string body;
  rec.EncodeTo(&body);

  std::string want;
  want.push_back(static_cast<char>(LogRecordType::kUndoBackfill));
  PinU64(&want, MakeTxnId(3, 5));
  PinU64(&want, 950);
  want.push_back(2);    // varint count
  PinU64(&want, 901);   // covered_lsn
  want.push_back(3);    // varint len("old")
  want += "old";
  PinU64(&want, 925);
  want.push_back(0);    // empty before-image (covered an insert)
  EXPECT_EQ(body, want);

  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.backfill, rec.backfill);
}

TEST(LogRecordTest, CommitWithDepsBodyMatchesPinnedLayout) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = MakeTxnId(3, 5);
  rec.prev_lsn = 980;
  rec.commit_flags = kCommitFlagLogical;
  rec.commit_deps = {CommitDep{MakeTxnId(1, 2), 400},
                     CommitDep{MakeTxnId(0, 9), 150}};
  std::string body;
  rec.EncodeTo(&body);

  std::string want;
  want.push_back(static_cast<char>(LogRecordType::kCommit));
  PinU64(&want, MakeTxnId(3, 5));
  PinU64(&want, 980);
  want.push_back(kCommitFlagLogical);
  want.push_back(2);    // varint dep count
  PinU64(&want, MakeTxnId(1, 2));
  PinU64(&want, 400);
  PinU64(&want, MakeTxnId(0, 9));
  PinU64(&want, 150);
  EXPECT_EQ(body, want);

  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.commit_flags, kCommitFlagLogical);
  EXPECT_EQ(out.commit_deps, rec.commit_deps);
}

TEST(LogRecordTest, PlainCommitKeepsLegacyBytes) {
  // The trailing block is optional: a commit with no flags and no deps
  // must encode exactly as it did before adaptive logging existed, so
  // physical-strategy logs stay byte-identical across the release.
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = MakeTxnId(3, 5);
  rec.prev_lsn = 980;
  std::string body;
  rec.EncodeTo(&body);

  std::string want;
  want.push_back(static_cast<char>(LogRecordType::kCommit));
  PinU64(&want, MakeTxnId(3, 5));
  PinU64(&want, 980);
  EXPECT_EQ(body, want);  // 17 bytes, nothing trailing.

  LogRecord out;
  ASSERT_OK(LogRecord::DecodeFrom(body, &out));
  EXPECT_EQ(out.commit_flags, 0);
  EXPECT_TRUE(out.commit_deps.empty());
}

TEST_F(LogManagerTest, BackwardCursorFollowsTxnChainAndClrSkips) {
  LogManager log;
  ASSERT_OK(log.Open(dir_.path() + "/log"));
  // Chain: U1 <- U2 <- CLR(undo of U2, undo_next -> U1).
  Lsn l1, l2, l3;
  LogRecord u1 = MakeUpdate(9, PageId{0, 0}, 0, kNullLsn, "1", "");
  ASSERT_OK(log.Append(u1, &l1));
  LogRecord u2 = MakeUpdate(9, PageId{0, 0}, 1, l1, "2", "");
  ASSERT_OK(log.Append(u2, &l2));
  LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = 9;
  clr.prev_lsn = l2;
  clr.page = PageId{0, 0};
  clr.psn_before = 2;
  clr.op = RecordOp::kUpdate;
  clr.undo_next_lsn = l1;  // Skip U2: already compensated.
  ASSERT_OK(log.Append(clr, &l3));

  TxnBackwardCursor cursor(&log, l3);
  LogRecord rec;
  Lsn at;
  ASSERT_TRUE(cursor.Prev(&rec, &at));
  EXPECT_EQ(rec.type, LogRecordType::kClr);
  ASSERT_TRUE(cursor.Prev(&rec, &at));
  EXPECT_EQ(at, l1);  // U2 skipped via undo_next_lsn.
  EXPECT_EQ(rec.redo_image, "1");
  EXPECT_FALSE(cursor.Prev(&rec, &at));
}

}  // namespace
}  // namespace clog
