#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 32;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(WorkloadTest, PopulatePageFillsRecords) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  Random rng(5);
  ASSERT_OK(PopulatePage(cluster_.get(), owner_->id(), pid, 12, 50, &rng));
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  EXPECT_EQ(records.size(), 12u);
  for (const std::string& r : records) EXPECT_EQ(r.size(), 50u);
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(WorkloadTest, AllocatePopulatedPagesCreatesAll) {
  ASSERT_OK_AND_ASSIGN(
      auto pages,
      AllocatePopulatedPages(cluster_.get(), owner_->id(), 5, 4, 30, 9));
  EXPECT_EQ(pages.size(), 5u);
  for (PageId pid : pages) EXPECT_EQ(pid.owner, owner_->id());
}

TEST_F(WorkloadTest, DriverCompletesAllSessions) {
  ASSERT_OK_AND_ASSIGN(
      auto pages,
      AllocatePopulatedPages(cluster_.get(), owner_->id(), 4, 8, 40, 9));
  WorkloadConfig config;
  config.txns_per_session = 12;
  config.ops_per_txn = 5;
  config.records_per_page = 8;
  WorkloadDriver driver(cluster_.get(), config,
                        {{owner_->id(), pages}, {client_->id(), pages}});
  ASSERT_OK(driver.Run());
  EXPECT_GT(driver.stats().committed, 0u);
  EXPECT_LE(driver.stats().committed, 24u);
  EXPECT_GE(driver.stats().ops, driver.stats().committed * 5);
}

TEST_F(WorkloadTest, DriverIsDeterministicPerSeed) {
  auto run_once = [&](const std::string& tag,
                      std::uint64_t seed) -> WorkloadStats {
    TempDir fresh;
    ClusterOptions opts;
    opts.dir = fresh.path();
    opts.node_defaults.buffer_frames = 32;
    Cluster cluster(opts);
    Node* o = *cluster.AddNode();
    Node* c = *cluster.AddNode();
    auto pages = *AllocatePopulatedPages(&cluster, o->id(), 4, 8, 40, 1);
    WorkloadConfig config;
    config.seed = seed;
    config.txns_per_session = 10;
    config.ops_per_txn = 4;
    config.records_per_page = 8;
    WorkloadDriver driver(&cluster, config,
                          {{o->id(), pages}, {c->id(), pages}});
    EXPECT_OK(driver.Run());
    return driver.stats();
  };
  WorkloadStats a = run_once("a", 77);
  WorkloadStats b = run_once("b", 77);
  WorkloadStats c = run_once("c", 78);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.busy_waits, b.busy_waits);
  EXPECT_EQ(a.sim_ns, b.sim_ns);
  // A different seed almost surely behaves differently in some counter.
  EXPECT_TRUE(a.ops != c.ops || a.busy_waits != c.busy_waits ||
              a.sim_ns != c.sim_ns);
}

TEST_F(WorkloadTest, ContendedHotPageProducesWaitsButFinishes) {
  ASSERT_OK_AND_ASSIGN(
      auto pages,
      AllocatePopulatedPages(cluster_.get(), owner_->id(), 1, 8, 40, 2));
  WorkloadConfig config;
  config.txns_per_session = 15;
  config.ops_per_txn = 6;
  config.update_fraction = 1.0;
  config.records_per_page = 8;
  WorkloadDriver driver(cluster_.get(), config,
                        {{owner_->id(), pages}, {client_->id(), pages}});
  ASSERT_OK(driver.Run());
  EXPECT_GT(driver.stats().busy_waits, 0u);  // Real contention happened.
  EXPECT_GT(driver.stats().committed, 0u);   // And it still made progress.
}

TEST_F(WorkloadTest, RunTransactionResolvesCrossNodeDeadlock) {
  // Manufacture a deadlock: txn A (owner) holds page1 and wants page2;
  // txn B (client) holds page2 and wants page1. The waits-for graph must
  // detect the cycle and one side must abort + retry successfully.
  ASSERT_OK_AND_ASSIGN(PageId p1, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId p2, owner_->AllocatePage());
  Random rng(1);
  ASSERT_OK(PopulatePage(cluster_.get(), owner_->id(), p1, 2, 20, &rng));
  ASSERT_OK(PopulatePage(cluster_.get(), owner_->id(), p2, 2, 20, &rng));

  ASSERT_OK_AND_ASSIGN(TxnId ta, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId tb, client_->Begin());
  ASSERT_OK(owner_->Update(ta, RecordId{p1, 0}, "A1"));
  ASSERT_OK(client_->Update(tb, RecordId{p2, 0}, "B2"));

  // A -> p2 blocks on B.
  Status sa = owner_->Update(ta, RecordId{p2, 0}, "A2");
  ASSERT_TRUE(sa.IsBusy());
  EXPECT_FALSE(
      cluster_->NoteBusyAndCheckDeadlock(ta, owner_->LastBlockers(ta)));
  // B -> p1 blocks on A: closes the cycle.
  Status sb = client_->Update(tb, RecordId{p1, 0}, "B1");
  ASSERT_TRUE(sb.IsBusy());
  EXPECT_TRUE(
      cluster_->NoteBusyAndCheckDeadlock(tb, client_->LastBlockers(tb)));

  // Victim aborts; survivor proceeds.
  ASSERT_OK(client_->Abort(tb));
  cluster_->detector().RemoveTxn(tb);
  ASSERT_OK(owner_->Update(ta, RecordId{p2, 0}, "A2"));
  ASSERT_OK(owner_->Commit(ta));
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, RecordId{p2, 0}));
  EXPECT_EQ(v, "A2");
  ASSERT_OK(client_->Commit(check));
}

TEST_F(WorkloadTest, SkewedConfigConcentratesAccesses) {
  ASSERT_OK_AND_ASSIGN(
      auto pages,
      AllocatePopulatedPages(cluster_.get(), owner_->id(), 10, 8, 40, 4));
  WorkloadConfig config;
  config.skewed = true;
  config.txns_per_session = 10;
  config.ops_per_txn = 4;
  config.records_per_page = 8;
  WorkloadDriver driver(cluster_.get(), config, {{client_->id(), pages}});
  ASSERT_OK(driver.Run());
  EXPECT_EQ(driver.stats().committed, 10u);
}

}  // namespace
}  // namespace clog
