#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"

namespace clog {
namespace {

/// RFC 3720 (iSCSI) Appendix B.4 known-answer vectors for CRC-32C.
TEST(Crc32cTest, Rfc3720Vectors) {
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);

  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::string ones(32, '\xff');
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62A8AB43u);

  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(crc32c::Value(ascending.data(), ascending.size()), 0x46DD794Eu);

  std::string descending(32, '\0');
  for (int i = 0; i < 32; ++i) descending[i] = static_cast<char>(31 - i);
  EXPECT_EQ(crc32c::Value(descending.data(), descending.size()), 0x113FDB5Cu);
}

/// The portable path must reproduce the same vectors: it is the reference
/// the dispatched path is checked against below.
TEST(Crc32cTest, PortablePathMatchesVectors) {
  EXPECT_EQ(crc32c::ValuePortable("123456789", 9), 0xE3069283u);
  std::string zeros(32, '\0');
  EXPECT_EQ(crc32c::ValuePortable(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(crc32c::Value(nullptr, 0), 0u);
  EXPECT_EQ(crc32c::Extend(0x12345678u, nullptr, 0), 0x12345678u);
}

/// Hardware and software paths must agree bit-for-bit on every length and
/// alignment: the dispatch is a pure performance decision, never a format
/// one. The buffer is larger than any unroll window so the vectorized
/// inner loops, the alignment prologues, and the byte tails all run.
TEST(Crc32cTest, HardwareSoftwareAgreementAcrossLengthsAndAlignments) {
  Random rng(0xC5C5C5C5ull);
  std::string buf;
  for (int i = 0; i < 4096; ++i) {
    buf.push_back(static_cast<char>(rng.Uniform(256)));
  }
  for (std::size_t align = 0; align < 9; ++align) {
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{7}, std::size_t{8}, std::size_t{9},
                            std::size_t{31}, std::size_t{32}, std::size_t{33},
                            std::size_t{63}, std::size_t{64}, std::size_t{255},
                            std::size_t{1024}, std::size_t{4000}}) {
      ASSERT_LE(align + len, buf.size());
      const char* p = buf.data() + align;
      EXPECT_EQ(crc32c::Value(p, len), crc32c::ValuePortable(p, len))
          << "align=" << align << " len=" << len
          << " impl=" << crc32c::ImplName();
    }
  }
}

/// Extend chains must compose: CRC(a+b) == Extend(CRC(a), b) regardless of
/// where the cut lands, and the dispatched chain must equal the portable
/// chain. This is exactly how the WAL uses the API (frame bodies arrive in
/// pieces).
TEST(Crc32cTest, RandomizedExtendChainsCompose) {
  Random rng(0xFEEDF00Dull);
  for (int round = 0; round < 200; ++round) {
    std::size_t total = 1 + rng.Uniform(1500);
    std::string data;
    for (std::size_t i = 0; i < total; ++i) {
      data.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::uint32_t whole = crc32c::Value(data.data(), data.size());

    std::uint32_t chained = 0;
    std::uint32_t chained_sw = 0;
    std::size_t off = 0;
    while (off < total) {
      std::size_t piece = 1 + rng.Uniform(64);
      piece = std::min(piece, total - off);
      chained = crc32c::Extend(chained, data.data() + off, piece);
      chained_sw = crc32c::ExtendPortable(chained_sw, data.data() + off, piece);
      off += piece;
    }
    ASSERT_EQ(chained, whole) << "round=" << round;
    ASSERT_EQ(chained_sw, whole) << "round=" << round;
  }
}

TEST(Crc32cTest, ImplNameIsConsistentWithAccelerationFlag) {
  if (crc32c::IsHardwareAccelerated()) {
    EXPECT_TRUE(crc32c::ImplName() == "sse4.2" ||
                crc32c::ImplName() == "armv8");
  } else {
    EXPECT_EQ(crc32c::ImplName(), "sw");
  }
}

}  // namespace
}  // namespace clog
