#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  Result<LogRecord> LastCheckpoint(Node* node) {
    CLOG_ASSIGN_OR_RETURN(Lsn master, node->log().LoadMaster());
    if (master == kNullLsn) return Status::NotFound("no checkpoint");
    LogRecord rec;
    CLOG_RETURN_IF_ERROR(node->log().ReadRecord(master, &rec));
    return rec;
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(CheckpointTest, CapturesActiveTransactions) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId active, owner_->Begin());
  ASSERT_OK(owner_->Insert(active, pid, "in-flight").status());
  ASSERT_OK(owner_->Checkpoint());
  ASSERT_OK_AND_ASSIGN(LogRecord ckpt, LastCheckpoint(owner_));
  ASSERT_EQ(ckpt.att.size(), 1u);
  EXPECT_EQ(ckpt.att[0].txn, active);
  ASSERT_EQ(ckpt.dpt.size(), 1u);
  EXPECT_EQ(ckpt.dpt[0].pid, pid);
  ASSERT_OK(owner_->Commit(active));
}

TEST_F(CheckpointTest, FuzzyDoesNotWritePages) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK(owner_->Insert(txn, pid, "dirty").status());
  ASSERT_OK(owner_->Commit(txn));
  std::uint64_t writes = owner_->disk().writes();
  ASSERT_OK(owner_->Checkpoint());
  // Fuzzy: the dirty page is still dirty in the pool, nothing was forced.
  EXPECT_EQ(owner_->disk().writes(), writes);
  EXPECT_TRUE(owner_->pool().IsDirty(pid));
  EXPECT_TRUE(owner_->dpt().Contains(pid));
}

TEST_F(CheckpointTest, IncludesRemoteOwnedDirtyPages) {
  // The client's DPT tracks pages of the OWNER it updated; its checkpoint
  // must log those entries (they are what Section 2.3.1 recovery reads).
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "remote-dirty").status());
  ASSERT_OK(client_->Commit(txn));
  ASSERT_OK(client_->Checkpoint());
  ASSERT_OK_AND_ASSIGN(LogRecord ckpt, LastCheckpoint(client_));
  ASSERT_EQ(ckpt.dpt.size(), 1u);
  EXPECT_EQ(ckpt.dpt[0].pid, pid);
  EXPECT_EQ(ckpt.dpt[0].pid.owner, owner_->id());
  EXPECT_EQ(ckpt.dpt[0].curr_psn, 1u);
}

TEST_F(CheckpointTest, MasterAdvancesMonotonically) {
  ASSERT_OK(owner_->Checkpoint());
  ASSERT_OK_AND_ASSIGN(Lsn first, owner_->log().LoadMaster());
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK(owner_->Insert(txn, pid, "x").status());
  ASSERT_OK(owner_->Commit(txn));
  ASSERT_OK(owner_->Checkpoint());
  ASSERT_OK_AND_ASSIGN(Lsn second, owner_->log().LoadMaster());
  EXPECT_GT(second, first);
}

TEST_F(CheckpointTest, CheckpointAdvancesReclaimHorizon) {
  // With no dirty pages and no active txns, a checkpoint moves the
  // reclaimable horizon to its own begin record.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK(owner_->Insert(txn, pid, "x").status());
  ASSERT_OK(owner_->Commit(txn));
  ASSERT_OK(owner_->HandleFlushRequest(owner_->id(), pid));  // Clean DPT.
  Lsn before = owner_->log().reclaimable_lsn();
  ASSERT_OK(owner_->Checkpoint());
  EXPECT_GT(owner_->log().reclaimable_lsn(), before);
}

TEST_F(CheckpointTest, RecoveryUsesLatestCompleteCheckpoint) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  for (int burst = 0; burst < 3; ++burst) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
      ASSERT_OK(owner_->Insert(txn, pid, "b" + std::to_string(burst))
                    .status());
      ASSERT_OK(owner_->Commit(txn));
    }
    ASSERT_OK(owner_->Checkpoint());
  }
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  // Analysis starts at the LAST checkpoint: only its begin/end pair is
  // rescanned (no user records followed it).
  EXPECT_LE(cluster_->recovery_stats().at(owner_->id()).analysis_records,
            3u);
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  EXPECT_EQ(records.size(), 15u);
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(CheckpointTest, IndependentCheckpointsAcrossNodes) {
  // Section 2.2 / advantage (4): nodes checkpoint at wildly different
  // cadences with zero coordination, and both recover correctly.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnId to, owner_->Begin());
    ASSERT_OK(owner_->Insert(to, pid, "o").status());
    ASSERT_OK(owner_->Commit(to));
    ASSERT_OK(owner_->Checkpoint());  // Owner: every txn.
    ASSERT_OK_AND_ASSIGN(TxnId tc, client_->Begin());
    ASSERT_OK(client_->Insert(tc, pid, "c").status());
    ASSERT_OK(client_->Commit(tc));
    // Client: never.
  }
  std::uint64_t msgs = cluster_->network().metrics().CounterValue(
      "msg.total");
  ASSERT_OK(owner_->Checkpoint());
  EXPECT_EQ(cluster_->network().metrics().CounterValue("msg.total"), msgs);

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNodes({owner_->id(), client_->id()}));
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  EXPECT_EQ(records.size(), 20u);
  ASSERT_OK(owner_->Commit(check));
}

}  // namespace
}  // namespace clog
