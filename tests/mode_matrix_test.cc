#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/cluster.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Parameterized matrix: the same functional scenarios must hold in every
/// logging mode (the paper's protocol and both baselines) across buffer
/// sizes — correctness is mode-independent, only the cost profile moves.
struct ModeParam {
  LoggingMode mode;
  std::size_t buffer_frames;
};

std::string ParamName(const ::testing::TestParamInfo<ModeParam>& info) {
  std::string name(LoggingModeName(info.param.mode));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_f" + std::to_string(info.param.buffer_frames);
}

class ModeMatrixTest : public ::testing::TestWithParam<ModeParam> {
 protected:
  ModeMatrixTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = GetParam().buffer_frames;
    opts.node_defaults.logging_mode = GetParam().mode;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_P(ModeMatrixTest, CrudRoundTripAcrossNodes) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t1, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(t1, pid, "v1"));
  ASSERT_OK(client_->Commit(t1));

  ASSERT_OK_AND_ASSIGN(TxnId t2, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(t2, rid));
  EXPECT_EQ(v, "v1");
  ASSERT_OK(owner_->Update(t2, rid, "v2"));
  ASSERT_OK(owner_->Commit(t2));

  ASSERT_OK_AND_ASSIGN(TxnId t3, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v2, client_->Read(t3, rid));
  EXPECT_EQ(v2, "v2");
  ASSERT_OK(client_->Delete(t3, rid));
  ASSERT_OK(client_->Commit(t3));

  ASSERT_OK_AND_ASSIGN(TxnId t4, owner_->Begin());
  EXPECT_TRUE(owner_->Read(t4, rid).status().IsNotFound());
  ASSERT_OK(owner_->Commit(t4));
}

TEST_P(ModeMatrixTest, AbortIsAtomicInEveryMode) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(seed, pid, "base"));
  ASSERT_OK(client_->Commit(seed));

  ASSERT_OK_AND_ASSIGN(TxnId doomed, client_->Begin());
  ASSERT_OK(client_->Update(doomed, rid, "poison"));
  ASSERT_OK(client_->Insert(doomed, pid, "phantom").status());
  ASSERT_OK(client_->Abort(doomed));

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "base");
  ASSERT_OK(owner_->Commit(check));
}

TEST_P(ModeMatrixTest, CachePressureWorkloadStaysCorrect) {
  // Working set exceeds the buffer in the small-frame variants: pages
  // travel constantly; every protocol must still agree with a sequential
  // shadow model at the end.
  ASSERT_OK_AND_ASSIGN(
      auto pages,
      AllocatePopulatedPages(cluster_.get(), owner_->id(), 12, 4, 40, 3));
  Random rng(11);
  std::map<RecordId, std::string> model;
  for (int round = 0; round < 40; ++round) {
    Node* actor = (round % 2 == 0) ? owner_ : client_;
    RecordId rid{pages[rng.Uniform(pages.size())],
                 static_cast<SlotId>(rng.Uniform(4))};
    std::string v = rng.Bytes(40);
    Status st = cluster_->RunTransaction(
        actor->id(), [&](TxnHandle& t) { return t.Update(rid, v); });
    ASSERT_OK(st);
    model[rid] = v;
  }
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  for (const auto& [rid, expect] : model) {
    ASSERT_OK_AND_ASSIGN(std::string got, client_->Read(check, rid));
    EXPECT_EQ(got, expect) << rid.ToString();
  }
  ASSERT_OK(client_->Commit(check));
}

TEST_P(ModeMatrixTest, OwnerSideDurabilityAfterOwnerCrash) {
  // Data committed at the OWNER survives an owner crash in every mode
  // (owner-local transactions always have a local durable story).
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(txn, pid, "durable"));
  ASSERT_OK(owner_->Commit(txn));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "durable");
  ASSERT_OK(owner_->Commit(check));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ModeMatrixTest,
    ::testing::Values(ModeParam{LoggingMode::kClientLocal, 64},
                      ModeParam{LoggingMode::kClientLocal, 6},
                      ModeParam{LoggingMode::kShipToOwner, 64},
                      ModeParam{LoggingMode::kShipToOwner, 6},
                      ModeParam{LoggingMode::kForceAtTransfer, 64},
                      ModeParam{LoggingMode::kForceAtTransfer, 6}),
    ParamName);

/// Client-crash durability matrix: only protocols with a durable commit
/// story at the client (local log) or at the owner (shipped records,
/// forced pages) may pass — which is all three, for different reasons.
class ClientCrashMatrixTest : public ModeMatrixTest {};

TEST_P(ClientCrashMatrixTest, ClientCommitSurvivesClientCrash) {
  if (GetParam().mode == LoggingMode::kShipToOwner) {
    // B1 client restart is server-driven in ARIES/CSA; this repository
    // implements B1 for normal-processing benchmarks only (DESIGN.md).
    GTEST_SKIP() << "B1 client crash recovery is out of scope";
  }
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "mine"));
  ASSERT_OK(client_->Commit(txn));

  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNode(client_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, rid));
  EXPECT_EQ(v, "mine");
  ASSERT_OK(client_->Commit(check));
}

TEST_P(ModeMatrixTest, ShortCrashFuzzPerMode) {
  // A compressed version of the crash fuzzer for every mode (B1 skips
  // client crashes, which its scope excludes): committed state survives.
  Random rng(0xC0FFEE ^ GetParam().buffer_frames);
  bool can_crash_client = GetParam().mode != LoggingMode::kShipToOwner;
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  std::map<RecordId, std::string> model;
  std::vector<RecordId> rids;
  {
    ASSERT_OK_AND_ASSIGN(TxnId seed, owner_->Begin());
    for (int i = 0; i < 6; ++i) {
      std::string v = rng.Bytes(24);
      ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(seed, pid, v));
      rids.push_back(rid);
      model[rid] = v;
    }
    ASSERT_OK(owner_->Commit(seed));
  }
  Node* nodes[2] = {owner_, client_};
  for (int step = 0; step < 25; ++step) {
    Node* actor = nodes[rng.Uniform(2)];
    if (actor->state() != NodeState::kUp) {
      ASSERT_OK(cluster_->RestartNode(actor->id()));
      continue;
    }
    std::uint64_t dice = rng.Uniform(100);
    if (dice < 10 && (actor == owner_ || can_crash_client)) {
      ASSERT_OK(cluster_->CrashNode(actor->id()));
      ASSERT_OK(cluster_->RestartNode(actor->id()));
      continue;
    }
    Result<TxnId> txn = actor->Begin();
    if (!txn.ok()) continue;
    RecordId rid = rids[rng.Uniform(rids.size())];
    std::string v = rng.Bytes(24);
    Status st = actor->Update(*txn, rid, v);
    if (st.ok() && rng.Bernoulli(0.8)) {
      if (actor->Commit(*txn).ok()) model[rid] = v;
    } else {
      actor->Abort(*txn).ok();
    }
  }
  for (Node* n : nodes) {
    if (n->state() != NodeState::kUp) {
      ASSERT_OK(cluster_->RestartNode(n->id()));
    }
  }
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  for (const auto& [rid, expect] : model) {
    ASSERT_OK_AND_ASSIGN(std::string got, owner_->Read(check, rid));
    EXPECT_EQ(got, expect) << rid.ToString();
  }
  ASSERT_OK(owner_->Commit(check));
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ClientCrashMatrixTest,
    ::testing::Values(ModeParam{LoggingMode::kClientLocal, 64},
                      ModeParam{LoggingMode::kShipToOwner, 64},
                      ModeParam{LoggingMode::kForceAtTransfer, 64}),
    ParamName);

}  // namespace
}  // namespace clog
