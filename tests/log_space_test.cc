#include <gtest/gtest.h>

#include "core/cluster.h"
#include "fault/fault_injector.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class LogSpaceTest : public ::testing::Test {
 protected:
  void Build(std::uint64_t capacity_bytes, bool with_faults = false) {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 64;
    if (with_faults) {
      injector_ = std::make_unique<FaultInjector>(/*seed=*/7);
      injector_->set_enabled(true);
      opts.fault_injector = injector_.get();
    }
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    NodeOptions bounded = opts.node_defaults;
    bounded.log_capacity_bytes = capacity_bytes;
    client_ = *cluster_->AddNode(bounded);
  }

  TempDir dir_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(LogSpaceTest, BoundedLogReclaimsThroughOwnerForces) {
  // Section 2.5 end to end: a client with a tiny log keeps updating the
  // owner's pages. Log pressure evicts the min-RedoLSN page, ships it
  // home, asks the owner to force it, and the flush notification frees log
  // space. The workload must never see LogFull.
  Build(/*capacity_bytes=*/64 * 1024);
  std::vector<RecordId> rids;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK_AND_ASSIGN(RecordId rid,
                         client_->Insert(txn, pid, std::string(100, 'x')));
    ASSERT_OK(client_->Commit(txn));
    rids.push_back(rid);
  }
  // Push well past the 64 KiB capacity.
  for (int round = 0; round < 200; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rids[round % rids.size()],
                              std::string(400, 'a' + (round % 26))));
    ASSERT_OK(client_->Commit(txn));
  }
  EXPECT_LE(client_->log().LiveBytes(), 64 * 1024u);
  EXPECT_GT(client_->metrics().CounterValue("logspace.victim_forces"), 0u);
  EXPECT_GT(cluster_->network().metrics().CounterValue("msg.flush_request"),
            0u);
  // Data still correct.
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  for (RecordId rid : rids) {
    ASSERT_OK(client_->Read(check, rid).status());
  }
  ASSERT_OK(client_->Commit(check));
}

TEST_F(LogSpaceTest, RecoveryStillCorrectAfterReclaim) {
  Build(/*capacity_bytes=*/64 * 1024);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(seed, pid, std::string(100, 's')));
  ASSERT_OK(client_->Commit(seed));
  std::string last;
  for (int round = 0; round < 150; ++round) {
    last = "v" + std::to_string(round) + std::string(300, 'p');
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rid, last));
    ASSERT_OK(client_->Commit(txn));
  }
  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNode(client_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, rid));
  EXPECT_EQ(v, last);
  ASSERT_OK(client_->Commit(check));
}

TEST_F(LogSpaceTest, LongRunningTransactionPinsTheLog) {
  // An active transaction's first record is an undo barrier the reclaimer
  // cannot cross: eventually the bounded log genuinely fills.
  Build(/*capacity_bytes=*/32 * 1024);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId pinner, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(pinner, pid, std::string(64, 'p')));
  Status st;
  int updates = 0;
  for (int round = 0; round < 500; ++round) {
    st = client_->Update(pinner, rid, std::string(400, 'q'));
    if (!st.ok()) break;
    ++updates;
  }
  EXPECT_TRUE(st.IsLogFull()) << st.ToString();
  EXPECT_GT(updates, 10);
  ASSERT_OK(client_->Abort(pinner));
}

TEST_F(LogSpaceTest, UnboundedLogNeverFills) {
  Build(/*capacity_bytes=*/0);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(txn, pid, std::string(64, 'u')));
  for (int round = 0; round < 200; ++round) {
    ASSERT_OK(client_->Update(txn, rid, std::string(400, 'u')));
  }
  ASSERT_OK(client_->Commit(txn));
}

TEST_F(LogSpaceTest, OwnerDownPinsTheEntryThenReclaimResumesOnRestart) {
  // Section 2.5 with the owner crashed: the min-RedoLSN victim is a remote
  // page whose owner cannot force it, so the reclaimer must skip it
  // (NodeDown is not an error) and the bounded log honestly fills. Once
  // the owner restarts, the very same workload reclaims again.
  Build(/*capacity_bytes=*/32 * 1024);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(seed, pid, std::string(64, 's')));
  ASSERT_OK(client_->Commit(seed));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  Status st;
  int committed = 0;
  for (int round = 0; round < 300; ++round) {
    Result<TxnId> txn = client_->Begin();
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    st = client_->Update(*txn, rid, std::string(400, 'd'));
    if (st.ok()) st = client_->Commit(*txn);
    if (!st.ok()) {
      ASSERT_OK(client_->Abort(*txn));
      break;
    }
    ++committed;
  }
  // The entry is pinned (owner down), so the log must eventually report
  // full rather than silently dropping the page's redo coverage.
  EXPECT_TRUE(st.IsLogFull()) << st.ToString();
  EXPECT_GT(committed, 0);
  EXPECT_TRUE(client_->dpt().Contains(pid));

  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  for (int round = 0; round < 50; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rid, std::string(400, 'u')));
    ASSERT_OK(client_->Commit(txn));
  }
  EXPECT_LE(client_->log().LiveBytes(), 32 * 1024u);
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK(client_->Read(check, rid).status());
  ASSERT_OK(client_->Commit(check));
}

TEST_F(LogSpaceTest, PartitionedOwnerStallsReclaimUntilTheLinkHeals) {
  // Fault-injected variant: the owner is up but unreachable, so the ship
  // and FlushRequest legs of the Section 2.5 eviction fail like a crash.
  // Reclaim must tolerate the partition (no spurious errors surfaced to
  // the workload until the log is genuinely full) and resume after heal.
  Build(/*capacity_bytes=*/32 * 1024, /*with_faults=*/true);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(seed, pid, std::string(64, 's')));
  ASSERT_OK(client_->Commit(seed));

  injector_->BlockLink(owner_->id(), client_->id());
  Status st;
  for (int round = 0; round < 300; ++round) {
    Result<TxnId> txn = client_->Begin();
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    st = client_->Update(*txn, rid, std::string(400, 'p'));
    if (st.ok()) st = client_->Commit(*txn);
    if (!st.ok()) {
      ASSERT_OK(client_->Abort(*txn));
      break;
    }
  }
  EXPECT_TRUE(st.IsLogFull()) << st.ToString();
  EXPECT_TRUE(client_->dpt().Contains(pid));

  injector_->HealAllLinks();
  for (int round = 0; round < 50; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rid, std::string(400, 'h')));
    ASSERT_OK(client_->Commit(txn));
  }
  EXPECT_LE(client_->log().LiveBytes(), 32 * 1024u);
  EXPECT_GT(client_->metrics().CounterValue("logspace.victim_forces"), 0u);
}

TEST_F(LogSpaceTest, FlushNotifyAdvancesTheReplacersRedoLsn) {
  // The Section 2.5 notification path in isolation: after a victim force,
  // the owner's FlushNotify must advance (or drop) the replacer's DPT
  // entry — with notifications ablated, the entry is pinned forever and
  // the log fills even though the owner forced the page.
  Build(/*capacity_bytes=*/32 * 1024);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(seed, pid, std::string(64, 's')));
  ASSERT_OK(client_->Commit(seed));
  for (int round = 0; round < 20; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rid, std::string(400, 'n')));
    ASSERT_OK(client_->Commit(txn));
  }
  ASSERT_TRUE(client_->dpt().Contains(pid));
  Lsn before = client_->dpt().MinRedoLsn();

  // Force the client to run the Section 2.5 victim path directly: the
  // request cannot be satisfied from the current live tail, so the
  // min-RedoLSN victim is shipped home and force-requested.
  ASSERT_OK(client_->ReclaimLogSpace(/*needed_bytes=*/30 * 1024));
  // The owner forced the page and notified; the client's entry is gone (or
  // strictly advanced if re-dirtied, which this workload does not do).
  EXPECT_FALSE(client_->dpt().Contains(pid));
  EXPECT_GT(cluster_->network().metrics().CounterValue("msg.flush_notify"),
            0u);
  (void)before;
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK(client_->Read(check, rid).status());
  ASSERT_OK(client_->Commit(check));
}

}  // namespace
}  // namespace clog
