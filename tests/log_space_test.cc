#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class LogSpaceTest : public ::testing::Test {
 protected:
  void Build(std::uint64_t capacity_bytes) {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 64;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    NodeOptions bounded = opts.node_defaults;
    bounded.log_capacity_bytes = capacity_bytes;
    client_ = *cluster_->AddNode(bounded);
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(LogSpaceTest, BoundedLogReclaimsThroughOwnerForces) {
  // Section 2.5 end to end: a client with a tiny log keeps updating the
  // owner's pages. Log pressure evicts the min-RedoLSN page, ships it
  // home, asks the owner to force it, and the flush notification frees log
  // space. The workload must never see LogFull.
  Build(/*capacity_bytes=*/64 * 1024);
  std::vector<RecordId> rids;
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK_AND_ASSIGN(RecordId rid,
                         client_->Insert(txn, pid, std::string(100, 'x')));
    ASSERT_OK(client_->Commit(txn));
    rids.push_back(rid);
  }
  // Push well past the 64 KiB capacity.
  for (int round = 0; round < 200; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rids[round % rids.size()],
                              std::string(400, 'a' + (round % 26))));
    ASSERT_OK(client_->Commit(txn));
  }
  EXPECT_LE(client_->log().LiveBytes(), 64 * 1024u);
  EXPECT_GT(client_->metrics().CounterValue("logspace.victim_forces"), 0u);
  EXPECT_GT(cluster_->network().metrics().CounterValue("msg.flush_request"),
            0u);
  // Data still correct.
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  for (RecordId rid : rids) {
    ASSERT_OK(client_->Read(check, rid).status());
  }
  ASSERT_OK(client_->Commit(check));
}

TEST_F(LogSpaceTest, RecoveryStillCorrectAfterReclaim) {
  Build(/*capacity_bytes=*/64 * 1024);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(seed, pid, std::string(100, 's')));
  ASSERT_OK(client_->Commit(seed));
  std::string last;
  for (int round = 0; round < 150; ++round) {
    last = "v" + std::to_string(round) + std::string(300, 'p');
    ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
    ASSERT_OK(client_->Update(txn, rid, last));
    ASSERT_OK(client_->Commit(txn));
  }
  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNode(client_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, rid));
  EXPECT_EQ(v, last);
  ASSERT_OK(client_->Commit(check));
}

TEST_F(LogSpaceTest, LongRunningTransactionPinsTheLog) {
  // An active transaction's first record is an undo barrier the reclaimer
  // cannot cross: eventually the bounded log genuinely fills.
  Build(/*capacity_bytes=*/32 * 1024);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId pinner, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(pinner, pid, std::string(64, 'p')));
  Status st;
  int updates = 0;
  for (int round = 0; round < 500; ++round) {
    st = client_->Update(pinner, rid, std::string(400, 'q'));
    if (!st.ok()) break;
    ++updates;
  }
  EXPECT_TRUE(st.IsLogFull()) << st.ToString();
  EXPECT_GT(updates, 10);
  ASSERT_OK(client_->Abort(pinner));
}

TEST_F(LogSpaceTest, UnboundedLogNeverFills) {
  Build(/*capacity_bytes=*/0);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid,
                       client_->Insert(txn, pid, std::string(64, 'u')));
  for (int round = 0; round < 200; ++round) {
    ASSERT_OK(client_->Update(txn, rid, std::string(400, 'u')));
  }
  ASSERT_OK(client_->Commit(txn));
}

}  // namespace
}  // namespace clog
