#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "fault/fault_injector.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Instant restore (docs/RECOVERY_WALKTHROUGH.md "Instant restore"): a node
/// that lost its data device opens for traffic as soon as restart recovery
/// has built per-page restore plans, rebuilds a page synchronously the
/// first time anything touches it, and drains the cold tail with a sweeper.
/// The headline guarantee under test: the first commit is accepted while
/// the rebuild backlog is still nonempty — availability is decoupled from
/// restore completion — and no read ever sees pre-rebuild data.
///
/// Parameterized over both execution modes: in simulation the sweep is
/// driven inline, in real-threads mode RestartNodes spawns background
/// sweeper threads that race (safely) with the test's own traffic.
class InstantRestoreTest : public ::testing::TestWithParam<ExecutionMode> {
 protected:
  static constexpr int kPages = 12;

  InstantRestoreTest() : injector_(/*seed=*/1) {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.execution_mode = GetParam();
    opts.fault_injector = &injector_;
    opts.node_defaults.logging_policy.WithArchiveEvery(1);
    opts.node_defaults.instant_restore.enabled = true;
    cluster_ = std::make_unique<Cluster>(opts);
    a_ = *cluster_->AddNode();
    b_ = *cluster_->AddNode();
  }

  /// Seeds kPages pages on A (one committed record each), seals an archive
  /// pass, then layers post-archive history: B updates page 0 (so B's pool
  /// caches the newest copy) and A updates page 1 (redo in A's own log).
  void SeedAndAge() {
    for (int p = 0; p < kPages; ++p) {
      PageId pid;
      ASSERT_OK(cluster_->Execute(a_->id(), [&] {
        Result<PageId> r = a_->AllocatePage();
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        pid = *r;
      }));
      pids_.push_back(pid);
      RecordId rid;
      ASSERT_OK(cluster_->RunTransaction(a_->id(), [&](TxnHandle& txn) {
        Result<RecordId> r = txn.Insert(pid, Value(p, 0));
        CLOG_RETURN_IF_ERROR(r.status());
        rid = *r;
        return Status::OK();
      }));
      rids_.push_back(rid);
    }
    ASSERT_OK(cluster_->Execute(a_->id(), [&] {
      ASSERT_OK(a_->Checkpoint());  // Log mark + sealed archive pass.
    }));
    ASSERT_OK(cluster_->RunTransaction(b_->id(), [&](TxnHandle& txn) {
      return txn.Update(rids_[0], Value(0, 1));
    }));
    ASSERT_OK(cluster_->RunTransaction(a_->id(), [&](TxnHandle& txn) {
      return txn.Update(rids_[1], Value(1, 1));
    }));
  }

  /// Destroys A's data device at its crash point and restarts A. On return
  /// A is up; with instant restore on, its unreadable pages are planned,
  /// not rebuilt.
  void LoseDataDeviceAndRestart() {
    injector_.ArmDeviceFault(a_->id(), DeviceFault::kDestroyDataFile);
    ASSERT_OK(cluster_->CrashNode(a_->id()));
    ASSERT_OK(cluster_->RestartNodes({a_->id()}));
    ASSERT_EQ(a_->state(), NodeState::kUp);
  }

  /// Drives A's sweeper until the backlog is empty (bounded; real mode's
  /// background sweepers may drain it concurrently, which is fine).
  void DrainRestore() {
    for (int i = 0; i < 10 * kPages; ++i) {
      std::size_t left = 1;
      ASSERT_OK(cluster_->Execute(a_->id(), [&] {
        left = a_->SweepRestore(kPages);
      }));
      if (left == 0) return;
    }
    FAIL() << "restore backlog did not drain";
  }

  /// The committed value of record `p` at version `v`.
  static std::string Value(int p, int v) {
    return "p" + std::to_string(p) + "-v" + std::to_string(v);
  }

  std::string MustRead(RecordId rid) {
    std::string got;
    Status st = cluster_->RunTransaction(a_->id(), [&](TxnHandle& txn) {
      CLOG_ASSIGN_OR_RETURN(got, txn.Read(rid));
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    return got;
  }

  TempDir dir_;
  FaultInjector injector_;
  std::unique_ptr<Cluster> cluster_;
  Node* a_ = nullptr;
  Node* b_ = nullptr;
  std::vector<PageId> pids_;
  std::vector<RecordId> rids_;
};

TEST_P(InstantRestoreTest, FirstCommitAcceptedBeforeRebuildCompletes) {
  SeedAndAge();
  LoseDataDeviceAndRestart();

  // The acceptance assertion, in one execution-context slice so real-mode
  // sweepers cannot interleave mid-measurement: traffic arrives while the
  // backlog is nonempty, the commit succeeds, and the backlog is STILL
  // nonempty afterwards — the commit waited for its own page's rebuild
  // (first touch), never for the tail.
  std::size_t pending_before = 0;
  std::size_t pending_after = 0;
  Status commit_status;
  ASSERT_OK(cluster_->Execute(a_->id(), [&] {
    pending_before = a_->RestorePendingCount();
    Result<TxnId> txn = a_->Begin();
    ASSERT_TRUE(txn.ok()) << txn.status().ToString();
    Result<RecordId> rid = a_->Insert(*txn, pids_[2], "during-restore");
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    commit_status = a_->Commit(*txn);
    pending_after = a_->RestorePendingCount();
  }));
  ASSERT_OK(commit_status);
  EXPECT_GT(pending_before, 0u) << "node was not restoring when traffic hit";
  EXPECT_GT(pending_after, 0u) << "commit waited for the whole rebuild";
  EXPECT_LT(pending_after, pending_before);  // First touch rebuilt its page.

  // Time-to-first-commit was recorded for the epoch.
  ASSERT_OK(cluster_->Execute(a_->id(), [&] {
    EXPECT_EQ(a_->metrics().GetHistogram("restore.first_commit_ns").count(),
              1u);
  }));

  // On-demand rebuilds serve the newest committed version, wherever it
  // lives: page 0's from B's cached copy, page 1's from archive + merged
  // redo, page 3's untouched seed value from the archive image.
  EXPECT_EQ(MustRead(rids_[0]), Value(0, 1));
  EXPECT_EQ(MustRead(rids_[1]), Value(1, 1));
  EXPECT_EQ(MustRead(rids_[3]), Value(3, 0));

  DrainRestore();
  ASSERT_OK(cluster_->Execute(a_->id(), [&] {
    EXPECT_EQ(a_->RestorePendingCount(), 0u);
    EXPECT_TRUE(a_->restore().LedgerEntries().empty());
    EXPECT_GE(a_->metrics().CounterValue("restore.pages_from_peer"), 1u);
    EXPECT_GE(a_->metrics().CounterValue("restore.pages_from_archive"), 1u);
  }));
  for (int p = 4; p < kPages; ++p) {
    EXPECT_EQ(MustRead(rids_[p]), Value(p, 0));
  }
  ASSERT_OK(cluster_->Execute(a_->id(), [&] {
    EXPECT_OK(a_->CheckInvariants(/*deep=*/true));
  }));
}

/// Crash in the middle of a restore epoch: volatile plans die with the
/// node, but the durable restore ledger re-seeds the next restart's probe
/// set, so exactly the unrebuilt pages are planned again — the already
/// restored ones are durable and serve directly, with no PSN regression.
TEST_P(InstantRestoreTest, RestoreEpochIsCrashReenterable) {
  if (GetParam() == ExecutionMode::kRealThreads) {
    // Re-entry accounting needs a backlog frozen at a known size; real
    // mode's background sweepers drain it asynchronously. The first-commit
    // drill covers real mode; this one pins the ledger contract in sim.
    GTEST_SKIP() << "ledger re-entry drill is simulation-only";
  }
  SeedAndAge();
  LoseDataDeviceAndRestart();
  ASSERT_EQ(a_->RestorePendingCount(), static_cast<std::size_t>(kPages));

  // Rebuild a prefix, note the restored pages' PSNs, then crash mid-epoch
  // (no new device fault: the half-restored database file survives).
  a_->SweepRestore(3);
  ASSERT_EQ(a_->RestorePendingCount(), static_cast<std::size_t>(kPages - 3));
  std::vector<std::pair<PageId, Psn>> restored;
  for (PageId pid : pids_) {
    if (a_->IsRestoring(pid)) continue;
    Result<Psn> psn = a_->DiskPsn(pid);
    ASSERT_TRUE(psn.ok()) << psn.status().ToString();
    restored.emplace_back(pid, *psn);
  }
  ASSERT_EQ(restored.size(), 3u);

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->RestartNodes({a_->id()}));

  // Only the ledger's survivors are re-planned; restored pages stayed
  // whole and their PSNs did not regress.
  EXPECT_EQ(a_->RestorePendingCount(), static_cast<std::size_t>(kPages - 3));
  for (const auto& [pid, psn] : restored) {
    EXPECT_FALSE(a_->IsRestoring(pid)) << pid.ToString();
    Result<Psn> now = a_->DiskPsn(pid);
    ASSERT_TRUE(now.ok()) << now.status().ToString();
    EXPECT_GE(*now, psn) << pid.ToString() << " regressed across re-entry";
  }

  DrainRestore();
  EXPECT_TRUE(a_->restore().LedgerEntries().empty());
  EXPECT_EQ(MustRead(rids_[0]), Value(0, 1));
  EXPECT_EQ(MustRead(rids_[1]), Value(1, 1));
  for (int p = 2; p < kPages; ++p) {
    EXPECT_EQ(MustRead(rids_[p]), Value(p, 0));
  }
  EXPECT_OK(a_->CheckInvariants(/*deep=*/true));
}

INSTANTIATE_TEST_SUITE_P(Modes, InstantRestoreTest,
                         ::testing::Values(ExecutionMode::kSimulation,
                                           ExecutionMode::kRealThreads));

}  // namespace
}  // namespace clog
