#ifndef CLOG_TESTS_TEST_UTIL_H_
#define CLOG_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "common/status.h"

namespace clog::testing {

/// Creates a unique scratch directory for one test and removes it on
/// destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = std::filesystem::temp_directory_path() /
                       "clog_test_XXXXXX";
    std::string buf = tmpl;
    char* got = ::mkdtemp(buf.data());
    EXPECT_NE(got, nullptr);
    path_ = buf;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace clog::testing

/// gtest-friendly Status assertions.
#define ASSERT_OK(expr)                                            \
  do {                                                             \
    ::clog::Status _assert_ok_st = (expr);                          \
    ASSERT_TRUE(_assert_ok_st.ok())                              \
        << "status: " << _assert_ok_st.ToString();         \
  } while (0)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    ::clog::Status _expect_ok_st = (expr);                          \
    EXPECT_TRUE(_expect_ok_st.ok())                              \
        << "status: " << _expect_ok_st.ToString();         \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                           \
  auto CLOG_TEST_CONCAT_(_res_, __LINE__) = (rexpr);               \
  ASSERT_TRUE(CLOG_TEST_CONCAT_(_res_, __LINE__).ok())             \
      << CLOG_TEST_CONCAT_(_res_, __LINE__).status().ToString();   \
  lhs = std::move(CLOG_TEST_CONCAT_(_res_, __LINE__)).value()

#define CLOG_TEST_CONCAT_INNER_(a, b) a##b
#define CLOG_TEST_CONCAT_(a, b) CLOG_TEST_CONCAT_INNER_(a, b)

#endif  // CLOG_TESTS_TEST_UTIL_H_
