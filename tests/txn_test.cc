#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"
#include "txn/txn_table.h"

namespace clog {
namespace {

using testing::TempDir;

TEST(TxnTableTest, BeginAssignsUniqueIdsWithNodeTag) {
  TxnTable table(7);
  TxnId a = table.Begin()->id;
  TxnId b = table.Begin()->id;
  EXPECT_NE(a, b);
  EXPECT_EQ(TxnNode(a), 7u);
  EXPECT_EQ(table.ActiveCount(), 2u);
  table.Remove(a);
  EXPECT_EQ(table.ActiveCount(), 1u);
  EXPECT_EQ(table.Find(a), nullptr);
  EXPECT_NE(table.Find(b), nullptr);
}

TEST(TxnTableTest, ResurrectBumpsAllocatorPastOldIds) {
  TxnTable table(3);
  TxnId old_id = MakeTxnId(3, 500);
  Transaction* t = table.Resurrect(old_id, 100, 200);
  EXPECT_EQ(t->first_lsn, 100u);
  EXPECT_EQ(t->last_lsn, 200u);
  Transaction* fresh = table.Begin();
  EXPECT_GT(fresh->id & 0xFFFFFFFFFFFFull, 500u);
}

TEST(TxnTableTest, MinFirstLsnTracksOldestActive) {
  TxnTable table(1);
  EXPECT_EQ(table.MinFirstLsn(), kNullLsn);
  Transaction* a = table.Begin();
  a->first_lsn = 300;
  Transaction* b = table.Begin();
  b->first_lsn = 100;
  EXPECT_EQ(table.MinFirstLsn(), 100u);
  table.Remove(b->id);
  EXPECT_EQ(table.MinFirstLsn(), 300u);
}

TEST(TxnTableTest, SnapshotMatchesActiveSet) {
  TxnTable table(1);
  Transaction* a = table.Begin();
  a->last_lsn = 777;
  auto snap = table.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].txn, a->id);
  EXPECT_EQ(snap[0].last_lsn, 777u);
}

class TxnSemanticsTest : public ::testing::Test {
 protected:
  TxnSemanticsTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    node_ = *cluster_->AddNode();
    pid_ = *node_->AllocatePage();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* node_ = nullptr;
  PageId pid_;
};

TEST_F(TxnSemanticsTest, ReadYourOwnWrites) {
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid_, "v1"));
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(txn, rid));
  EXPECT_EQ(v, "v1");
  ASSERT_OK(node_->Update(txn, rid, "v2"));
  ASSERT_OK_AND_ASSIGN(std::string v2, node_->Read(txn, rid));
  EXPECT_EQ(v2, "v2");
  ASSERT_OK(node_->Abort(txn));
}

TEST_F(TxnSemanticsTest, NestedSavepointsUnwindInOrder) {
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId r0, node_->Insert(txn, pid_, "r0"));
  ASSERT_OK(node_->SetSavepoint(txn, "outer"));
  ASSERT_OK_AND_ASSIGN(RecordId r1, node_->Insert(txn, pid_, "r1"));
  ASSERT_OK(node_->SetSavepoint(txn, "inner"));
  ASSERT_OK_AND_ASSIGN(RecordId r2, node_->Insert(txn, pid_, "r2"));

  ASSERT_OK(node_->RollbackToSavepoint(txn, "inner"));
  EXPECT_TRUE(node_->Read(txn, r2).status().IsNotFound());
  ASSERT_OK(node_->Read(txn, r1).status());

  ASSERT_OK(node_->RollbackToSavepoint(txn, "outer"));
  EXPECT_TRUE(node_->Read(txn, r1).status().IsNotFound());
  ASSERT_OK(node_->Read(txn, r0).status());
  // "inner" is gone after unwinding past it.
  EXPECT_TRUE(node_->RollbackToSavepoint(txn, "inner").IsNotFound());
  ASSERT_OK(node_->Commit(txn));

  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, node_->ScanPage(check, pid_));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "r0");
  ASSERT_OK(node_->Commit(check));
}

TEST_F(TxnSemanticsTest, SameNameSavepointLatestWins) {
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId r1, node_->Insert(txn, pid_, "one"));
  ASSERT_OK(node_->SetSavepoint(txn, "sp"));
  ASSERT_OK_AND_ASSIGN(RecordId r2, node_->Insert(txn, pid_, "two"));
  ASSERT_OK(node_->SetSavepoint(txn, "sp"));
  ASSERT_OK_AND_ASSIGN(RecordId r3, node_->Insert(txn, pid_, "three"));
  ASSERT_OK(node_->RollbackToSavepoint(txn, "sp"));
  // Only the work after the SECOND "sp" is undone.
  EXPECT_TRUE(node_->Read(txn, r3).status().IsNotFound());
  ASSERT_OK(node_->Read(txn, r2).status());
  ASSERT_OK(node_->Read(txn, r1).status());
  ASSERT_OK(node_->Commit(txn));
}

TEST_F(TxnSemanticsTest, AbortAfterPartialRollback) {
  ASSERT_OK_AND_ASSIGN(TxnId seed, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(seed, pid_, "base"));
  ASSERT_OK(node_->Commit(seed));

  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Update(txn, rid, "a"));
  ASSERT_OK(node_->SetSavepoint(txn, "sp"));
  ASSERT_OK(node_->Update(txn, rid, "b"));
  ASSERT_OK(node_->RollbackToSavepoint(txn, "sp"));
  ASSERT_OK(node_->Update(txn, rid, "c"));
  ASSERT_OK(node_->Abort(txn));  // Full abort across the CLR boundary.

  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(check, rid));
  EXPECT_EQ(v, "base");
  ASSERT_OK(node_->Commit(check));
}

TEST_F(TxnSemanticsTest, ConcurrentLocalTxnsOnDisjointPages) {
  ASSERT_OK_AND_ASSIGN(PageId pid2, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t1, node_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId t2, node_->Begin());
  ASSERT_OK(node_->Insert(t1, pid_, "t1").status());
  ASSERT_OK(node_->Insert(t2, pid2, "t2").status());
  ASSERT_OK(node_->Commit(t1));
  ASSERT_OK(node_->Abort(t2));

  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(auto p1, node_->ScanPage(check, pid_));
  ASSERT_OK_AND_ASSIGN(auto p2, node_->ScanPage(check, pid2));
  EXPECT_EQ(p1.size(), 1u);
  EXPECT_TRUE(p2.empty());
  ASSERT_OK(node_->Commit(check));
}

TEST_F(TxnSemanticsTest, SharedReadersCoexistLocally) {
  ASSERT_OK_AND_ASSIGN(TxnId seed, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(seed, pid_, "shared"));
  ASSERT_OK(node_->Commit(seed));

  ASSERT_OK_AND_ASSIGN(TxnId r1, node_->Begin());
  ASSERT_OK_AND_ASSIGN(TxnId r2, node_->Begin());
  ASSERT_OK(node_->Read(r1, rid).status());
  ASSERT_OK(node_->Read(r2, rid).status());
  // A writer blocks on both readers.
  ASSERT_OK_AND_ASSIGN(TxnId w, node_->Begin());
  Status st = node_->Update(w, rid, "x");
  EXPECT_TRUE(st.IsBusy());
  EXPECT_EQ(node_->LastBlockers(w).size(), 2u);
  ASSERT_OK(node_->Commit(r1));
  ASSERT_OK(node_->Commit(r2));
  ASSERT_OK(node_->Update(w, rid, "x"));
  ASSERT_OK(node_->Commit(w));
}

TEST_F(TxnSemanticsTest, DoubleCommitAndAbortAreErrors) {
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid_, "x").status());
  ASSERT_OK(node_->Commit(txn));
  EXPECT_TRUE(node_->Commit(txn).IsNotFound());
  EXPECT_TRUE(node_->Abort(txn).IsNotFound());
  EXPECT_TRUE(node_->Insert(txn, pid_, "y").status().IsNotFound());
}

TEST_F(TxnSemanticsTest, LargeTransactionManyPages) {
  std::vector<PageId> pages{pid_};
  for (int i = 0; i < 9; ++i) pages.push_back(*node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  std::vector<RecordId> rids;
  for (int round = 0; round < 5; ++round) {
    for (PageId pid : pages) {
      ASSERT_OK_AND_ASSIGN(
          RecordId rid,
          node_->Insert(txn, pid, "r" + std::to_string(round)));
      rids.push_back(rid);
    }
  }
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  for (RecordId rid : rids) ASSERT_OK(node_->Read(check, rid).status());
  ASSERT_OK(node_->Commit(check));
}

}  // namespace
}  // namespace clog
