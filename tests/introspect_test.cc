#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class IntrospectTest : public ::testing::Test {
 protected:
  IntrospectTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(IntrospectTest, InvariantsHoldThroughNormalProcessing) {
  ASSERT_OK(owner_->CheckInvariants(/*deep=*/true));
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "x"));
  ASSERT_OK(owner_->CheckInvariants(true));
  ASSERT_OK(client_->CheckInvariants(true));
  ASSERT_OK(client_->Commit(txn));
  ASSERT_OK(client_->CheckInvariants(true));
  // Callback path.
  ASSERT_OK_AND_ASSIGN(TxnId pull, owner_->Begin());
  ASSERT_OK(owner_->Read(pull, rid).status());
  ASSERT_OK(owner_->Commit(pull));
  ASSERT_OK(owner_->CheckInvariants(true));
  ASSERT_OK(client_->CheckInvariants(true));
}

TEST_F(IntrospectTest, InvariantsHoldThroughRecovery) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "x").status());
  ASSERT_OK(client_->Commit(txn));
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(owner_->CheckInvariants());  // Down: trivially OK.
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  ASSERT_OK(owner_->CheckInvariants(true));
  ASSERT_OK(client_->CheckInvariants(true));
}

TEST_F(IntrospectTest, DebugStringShowsLiveState) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "x").status());
  std::string dump = client_->DebugString();
  EXPECT_NE(dump.find("state=up"), std::string::npos);
  EXPECT_NE(dump.find("dirty"), std::string::npos);
  EXPECT_NE(dump.find(pid.ToString()), std::string::npos);
  EXPECT_NE(dump.find("active txns: 1"), std::string::npos);
  ASSERT_OK(client_->Abort(txn));
  dump = client_->DebugString();
  EXPECT_NE(dump.find("active txns: 0"), std::string::npos);

  ASSERT_OK(cluster_->CrashNode(client_->id()));
  EXPECT_NE(client_->DebugString().find("state=down"), std::string::npos);
}

TEST_F(IntrospectTest, PsnSeedingPreventsStaleRecoveryAfterRealloc) {
  // The reason the paper adopts the ARIES/CSA space-map PSN seeding: a
  // peer may hold a STALE DPT entry for a freed-and-reallocated page. The
  // new incarnation's PSNs start past the old ones, so the Section 2.3.2
  // involvement test (CurrPSN vs disk PSN) correctly rules the stale
  // entry out instead of replaying old-life records into the new page.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  // Client updates the page; its copy is called back and forced, but the
  // owner suppresses the notification so the client's DPT entry LINGERS.
  owner_->set_send_flush_notifications(false);
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "old-life").status());
  ASSERT_OK(client_->Commit(txn));
  // The owner takes the page (and the lock) back: the callback ships the
  // client's dirty copy home; then the owner forces it — but with the
  // notification suppressed, the client's DPT entry LINGERS.
  ASSERT_OK_AND_ASSIGN(TxnId reclaim, owner_->Begin());
  ASSERT_OK(owner_->Update(reclaim, RecordId{pid, 0}, "owner-touch"));
  ASSERT_OK(owner_->Commit(reclaim));
  ASSERT_OK(owner_->HandleFlushRequest(owner_->id(), pid));
  ASSERT_TRUE(client_->dpt().Contains(pid));  // Stale by construction.
  EXPECT_EQ(client_->lock_cache().NodeMode(pid), LockMode::kNone);
  owner_->set_send_flush_notifications(true);

  // Free and reallocate: same page number, new life, seeded PSN.
  ASSERT_OK(owner_->FreePage(pid));
  ASSERT_OK_AND_ASSIGN(PageId reborn, owner_->AllocatePage());
  ASSERT_EQ(reborn.page_no, pid.page_no);
  ASSERT_OK_AND_ASSIGN(Psn seed, owner_->DiskPsn(reborn));
  EXPECT_GE(seed, 1u);  // Past the old life.

  // New life gets committed data from the OWNER.
  ASSERT_OK_AND_ASSIGN(TxnId t2, owner_->Begin());
  ASSERT_OK(owner_->Insert(t2, reborn, "new-life").status());
  ASSERT_OK(owner_->Commit(t2));

  // Owner crashes. The client's stale old-life entry arrives during
  // recovery; PSN seeding must keep old-life records out of redo.
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, reborn));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "new-life");
  ASSERT_OK(owner_->Commit(check));
  // The stale entry is finally cleared by the recovery's disk-PSN notify.
  EXPECT_FALSE(client_->dpt().Contains(pid));
}

TEST_F(IntrospectTest, FreePageGuards) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  // Remote holder blocks freeing.
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Insert(txn, pid, "x").status());
  EXPECT_TRUE(owner_->FreePage(pid).IsBusy());
  ASSERT_OK(client_->Commit(txn));
  EXPECT_TRUE(owner_->FreePage(pid).IsBusy());  // Cached lock remains.
  // Call the lock back via an owner write, then freeing works.
  ASSERT_OK_AND_ASSIGN(TxnId pull, owner_->Begin());
  ASSERT_OK(owner_->ScanPage(pull, pid).status());
  ASSERT_OK(owner_->Commit(pull));
  // The client's S lock (demoted) still blocks; release it by upgrading
  // ownership at the owner.
  ASSERT_OK_AND_ASSIGN(TxnId up, owner_->Begin());
  ASSERT_OK(owner_->Update(up, RecordId{pid, 0}, "y"));
  ASSERT_OK(owner_->Commit(up));
  ASSERT_OK(owner_->FreePage(pid));
  EXPECT_FALSE(owner_->FreePage(pid).ok());  // Double free fails.
}

}  // namespace
}  // namespace clog
