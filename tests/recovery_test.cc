#include <gtest/gtest.h>

#include "core/cluster.h"
#include "recovery/local_recovery.h"
#include "recovery/node_psn_list.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

TEST(NodePsnListTest, MergeSortsAndCoalesces) {
  std::map<NodeId, std::vector<PsnListEntry>> lists;
  lists[1] = {{5, 100}, {12, 300}};
  lists[2] = {{9, 200}};
  auto runs = MergePsnLists(lists);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (RecoveryRun{1, 5}));
  EXPECT_EQ(runs[1], (RecoveryRun{2, 9}));
  EXPECT_EQ(runs[2], (RecoveryRun{1, 12}));
}

TEST(NodePsnListTest, AdjacentSameNodeMerged) {
  std::map<NodeId, std::vector<PsnListEntry>> lists;
  lists[1] = {{5, 0}, {7, 0}};  // Two consecutive runs of node 1.
  lists[2] = {{20, 0}};
  auto runs = MergePsnLists(lists);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (RecoveryRun{1, 5}));  // Minimum survives.
  EXPECT_EQ(runs[1], (RecoveryRun{2, 20}));
}

TEST(NodePsnListTest, EmptyInput) {
  EXPECT_TRUE(MergePsnLists({}).empty());
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 32;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(RecoveryTest, SingleNodeCommittedDataSurvivesCrash) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(txn, pid, "durable"));
  ASSERT_OK(owner_->Commit(txn));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(owner_->state(), NodeState::kUp);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "durable");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, SingleNodeLoserRolledBack) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId committed, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(committed, pid, "keep"));
  ASSERT_OK(owner_->Commit(committed));

  // Loser: updates after the commit, crash before its own commit. Flush
  // the log so the loser's records are durable (worst case for undo).
  ASSERT_OK_AND_ASSIGN(TxnId loser, owner_->Begin());
  ASSERT_OK(owner_->Update(loser, rid, "dirty"));
  ASSERT_OK(owner_->Insert(loser, pid, "phantom").status());
  ASSERT_OK(owner_->log().Flush(owner_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "keep");
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  EXPECT_EQ(records.size(), 1u);  // The phantom insert is gone.
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, UnflushedCommitIsLost) {
  // A commit whose log force never happened cannot survive; but here
  // Commit() forces, so instead test an uncommitted transaction whose
  // records were never flushed: after the crash there is nothing to undo.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
  ASSERT_OK(owner_->Insert(txn, pid, "volatile").status());
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(owner_->id()).losers_undone, 0u);
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  EXPECT_TRUE(records.empty());
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, OwnerCrashRecoversRemoteUpdatesFromClientLog) {
  // The core of Section 2.3: the client updated the owner's page, logged
  // locally, committed locally, and shipped the dirty page home on
  // replacement... but here the page still sits in the CLIENT's cache at
  // crash time, so the owner fetches the cached copy.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "client-data"));
  ASSERT_OK(client_->Commit(txn));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  const auto& stats = cluster_->recovery_stats().at(owner_->id());
  EXPECT_EQ(stats.own_pages_fetched, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "client-data");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, OwnerCrashRedoFromClientLogWhenPageNotCached) {
  // Same as above but the client's copy was called back to the owner (and
  // never flushed): after the owner crash the only trace of the committed
  // update is the CLIENT's local log. The owner must coordinate redo
  // against the client's log — without any log merging.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "only-in-log"));
  ASSERT_OK(client_->Commit(txn));

  // Owner reads the page: demotion callback pulls the dirty copy into the
  // owner's cache and the client's copy is marked clean.
  ASSERT_OK_AND_ASSIGN(TxnId tr, owner_->Begin());
  ASSERT_OK(owner_->Read(tr, rid).status());
  ASSERT_OK(owner_->Commit(tr));
  // Drop the (clean) client copy so no cache in the cluster has the page.
  Node* client = client_;
  const_cast<BufferPool&>(client->pool()).Drop(pid);

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  const auto& stats = cluster_->recovery_stats().at(owner_->id());
  EXPECT_EQ(stats.own_pages_recovered, 1u);
  EXPECT_GT(stats.redo_applied, 0u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "only-in-log");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, InterleavedUpdatesRecoverInPsnOrder) {
  // Owner and client alternate updates to one page; the owner crashes with
  // everything volatile. Recovery must interleave redo from BOTH logs in
  // PSN order (Section 2.3.4's NodePSNList coordination).
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t0, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, owner_->Insert(t0, pid, "r0"));
  ASSERT_OK(owner_->Commit(t0));

  for (int round = 0; round < 3; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId tc, client_->Begin());
    ASSERT_OK(client_->Update(tc, rid, "c" + std::to_string(round)));
    ASSERT_OK(client_->Commit(tc));
    ASSERT_OK_AND_ASSIGN(TxnId to, owner_->Begin());
    ASSERT_OK(owner_->Update(to, rid, "o" + std::to_string(round)));
    ASSERT_OK(owner_->Commit(to));
  }
  // Kick the (dirty, owner-cached) page out of the client too, so the redo
  // path is exercised rather than the cached-copy fetch.
  const_cast<BufferPool&>(client_->pool()).Drop(pid);

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  const auto& stats = cluster_->recovery_stats().at(owner_->id());
  EXPECT_EQ(stats.own_pages_recovered, 1u);
  EXPECT_GE(stats.redo_rounds, 2u);  // Both logs contributed.

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "o2");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, ClientCrashRecoversItsUpdatesOnRemotePage) {
  // Section 2.3.1 (b): the crashed node held an exclusive lock on a
  // remotely owned page; the lost tail of updates is replayed from its own
  // local log onto the owner's base version.
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "mine"));
  ASSERT_OK(client_->Commit(txn));
  EXPECT_EQ(client_->lock_cache().NodeMode(pid), LockMode::kExclusive);

  ASSERT_OK(cluster_->CrashNode(client_->id()));
  // While the client is down its X lock fences the page at the owner.
  ASSERT_OK_AND_ASSIGN(TxnId blocked, owner_->Begin());
  EXPECT_TRUE(owner_->Read(blocked, rid).status().IsBusy());
  ASSERT_OK(owner_->Abort(blocked));

  ASSERT_OK(cluster_->RestartNode(client_->id()));
  const auto& stats = cluster_->recovery_stats().at(client_->id());
  EXPECT_EQ(stats.remote_pages_recovered, 1u);

  // The client still holds X and sees its committed data.
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, rid));
  EXPECT_EQ(v, "mine");
  ASSERT_OK(client_->Commit(check));
}

TEST_F(RecoveryTest, ClientCrashLoserUndoneOnRemotePage) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId good, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(good, pid, "committed"));
  ASSERT_OK(client_->Commit(good));

  ASSERT_OK_AND_ASSIGN(TxnId loser, client_->Begin());
  ASSERT_OK(client_->Update(loser, rid, "uncommitted"));
  ASSERT_OK(client_->log().Flush(client_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(client_->id()));
  ASSERT_OK(cluster_->RestartNode(client_->id()));
  EXPECT_EQ(cluster_->recovery_stats().at(client_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "committed");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, RecoveryAfterCheckpointUsesShorterScan) {
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
    ASSERT_OK(owner_->Insert(txn, pid, "r" + std::to_string(i)).status());
    ASSERT_OK(owner_->Commit(txn));
  }
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  std::uint64_t without_ckpt =
      cluster_->recovery_stats().at(owner_->id()).analysis_records;

  // Another burst, then checkpoint right before the crash: the analysis
  // scan restarts from the checkpoint and is much shorter.
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK_AND_ASSIGN(TxnId txn, owner_->Begin());
    ASSERT_OK(owner_->Insert(txn, pid, "s" + std::to_string(i)).status());
    ASSERT_OK(owner_->Commit(txn));
  }
  ASSERT_OK(owner_->Checkpoint());
  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  std::uint64_t with_ckpt =
      cluster_->recovery_stats().at(owner_->id()).analysis_records;
  EXPECT_LT(with_ckpt, without_ckpt);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(auto records, owner_->ScanPage(check, pid));
  EXPECT_EQ(records.size(), 40u);
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(RecoveryTest, OperationalNodeKeepsWorkingDuringPeerOutage) {
  ASSERT_OK_AND_ASSIGN(PageId owner_page, owner_->AllocatePage());
  // Give the client its own page via a third node? Not needed: client can
  // keep using pages it has cached with locks.
  ASSERT_OK_AND_ASSIGN(TxnId warm, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(warm, owner_page, "w"));
  ASSERT_OK(client_->Commit(warm));

  ASSERT_OK(cluster_->CrashNode(owner_->id()));
  // Cached page + cached X lock: the client continues unaffected.
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK(client_->Update(txn, rid, "still-working"));
  ASSERT_OK(client_->Commit(txn));

  ASSERT_OK(cluster_->RestartNode(owner_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, rid));
  EXPECT_EQ(v, "still-working");
  ASSERT_OK(client_->Commit(check));
}

TEST_F(RecoveryTest, AnalysisFindsLosersAndDpt) {
  // Direct unit coverage of AnalyzeLog over a hand-built log.
  TempDir scratch;
  LogManager log;
  ASSERT_OK(log.Open(scratch.path() + "/log"));
  Lsn lsn;
  LogRecord begin1;
  begin1.type = LogRecordType::kBegin;
  begin1.txn = MakeTxnId(0, 1);
  ASSERT_OK(log.Append(begin1, &lsn));
  LogRecord up1;
  up1.type = LogRecordType::kUpdate;
  up1.txn = MakeTxnId(0, 1);
  up1.prev_lsn = lsn;
  up1.page = PageId{0, 4};
  up1.psn_before = 7;
  up1.op = RecordOp::kInsert;
  ASSERT_OK(log.Append(up1, &lsn));
  LogRecord begin2;
  begin2.type = LogRecordType::kBegin;
  begin2.txn = MakeTxnId(0, 2);
  ASSERT_OK(log.Append(begin2, &lsn));
  LogRecord commit2;
  commit2.type = LogRecordType::kCommit;
  commit2.txn = MakeTxnId(0, 2);
  ASSERT_OK(log.Append(commit2, &lsn));
  ASSERT_OK(log.Flush(lsn));

  AnalysisResult result;
  ASSERT_OK(AnalyzeLog(&log, &result));
  EXPECT_EQ(result.losers.size(), 1u);
  EXPECT_TRUE(result.losers.contains(MakeTxnId(0, 1)));
  PageId target{0, 4};
  ASSERT_TRUE(result.dpt.contains(target));
  EXPECT_EQ(result.dpt[target].psn, 7u);
  EXPECT_EQ(result.dpt[target].curr_psn, 8u);
  EXPECT_EQ(result.records_scanned, 4u);
}

}  // namespace
}  // namespace clog
