#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Builds a 1-owner / 1-client cluster in the given logging mode and runs
/// a fixed workload; used to compare the paper's protocol against the two
/// related-work baselines.
class BaselineTest : public ::testing::Test {
 protected:
  void Build(LoggingMode mode) {
    ClusterOptions opts;
    opts.dir = dir_.path() + "/" + std::string(LoggingModeName(mode));
    opts.node_defaults.buffer_frames = 32;
    opts.node_defaults.logging_mode = mode;
    cluster_ = std::make_unique<Cluster>(opts);
    owner_ = *cluster_->AddNode();
    client_ = *cluster_->AddNode();
  }

  std::uint64_t Msgs(const std::string& type) {
    return cluster_->network().metrics().CounterValue("msg." + type);
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* owner_ = nullptr;
  Node* client_ = nullptr;
};

TEST_F(BaselineTest, B1ShipsLogRecordsAtCommit) {
  Build(LoggingMode::kShipToOwner);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "b1"));
  std::uint64_t ships_before = Msgs("log_ship");
  ASSERT_OK(client_->Commit(txn));
  EXPECT_GT(Msgs("log_ship"), ships_before);  // ARIES/CSA-style commit.
  EXPECT_GT(owner_->metrics().CounterValue("b1.records_received"), 0u);

  // Data is correct and visible across nodes.
  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "b1");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(BaselineTest, B1AbortUndoesAndShipsClrs) {
  Build(LoggingMode::kShipToOwner);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId good, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(good, pid, "base"));
  ASSERT_OK(client_->Commit(good));

  ASSERT_OK_AND_ASSIGN(TxnId bad, client_->Begin());
  ASSERT_OK(client_->Update(bad, rid, "poison"));
  ASSERT_OK(client_->Abort(bad));

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "base");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(BaselineTest, B1ReadOnlyCommitIsFree) {
  Build(LoggingMode::kShipToOwner);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId seed, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(seed, pid, "r"));
  ASSERT_OK(client_->Commit(seed));
  std::uint64_t ships = Msgs("log_ship");
  ASSERT_OK_AND_ASSIGN(TxnId ro, client_->Begin());
  ASSERT_OK(client_->Read(ro, rid).status());
  ASSERT_OK(client_->Commit(ro));
  EXPECT_EQ(Msgs("log_ship"), ships);
}

TEST_F(BaselineTest, B2ForcesPagesAtCommit) {
  Build(LoggingMode::kForceAtTransfer);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  std::uint64_t owner_writes = owner_->disk().writes();
  ASSERT_OK_AND_ASSIGN(TxnId txn, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(txn, pid, "b2"));
  ASSERT_OK(client_->Commit(txn));
  // Rdb/VMS-style: the updated page was shipped home and forced to disk.
  EXPECT_GT(owner_->disk().writes(), owner_writes);
  EXPECT_GE(Msgs("flush_request"), 1u);
  ASSERT_OK_AND_ASSIGN(Psn disk_psn, owner_->DiskPsn(pid));
  EXPECT_GE(disk_psn, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, owner_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, owner_->Read(check, rid));
  EXPECT_EQ(v, "b2");
  ASSERT_OK(owner_->Commit(check));
}

TEST_F(BaselineTest, B2AbortWorksLocally) {
  Build(LoggingMode::kForceAtTransfer);
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId good, client_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, client_->Insert(good, pid, "base"));
  ASSERT_OK(client_->Commit(good));
  ASSERT_OK_AND_ASSIGN(TxnId bad, client_->Begin());
  ASSERT_OK(client_->Update(bad, rid, "poison"));
  ASSERT_OK(client_->Abort(bad));
  ASSERT_OK_AND_ASSIGN(TxnId check, client_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, client_->Read(check, rid));
  EXPECT_EQ(v, "base");
  ASSERT_OK(client_->Commit(check));
}

TEST_F(BaselineTest, CommitMessageComparisonAcrossModes) {
  // The E1 experiment in miniature: client-local commits send zero
  // messages; ship-to-owner pays per commit; force-at-transfer pays pages.
  auto commit_messages = [&](LoggingMode mode) -> std::uint64_t {
    Build(mode);
    PageId pid = *owner_->AllocatePage();
    TxnId warm = *client_->Begin();
    RecordId rid = *client_->Insert(warm, pid, "warm");
    EXPECT_OK(client_->Commit(warm));
    std::uint64_t before =
        cluster_->network().metrics().CounterValue("msg.total");
    TxnId txn = *client_->Begin();
    EXPECT_OK(client_->Update(txn, rid, "pay"));
    std::uint64_t before_commit =
        cluster_->network().metrics().CounterValue("msg.total");
    EXPECT_GE(before_commit, before);
    EXPECT_OK(client_->Commit(txn));
    return cluster_->network().metrics().CounterValue("msg.total") -
           before_commit;
  };
  std::uint64_t local = commit_messages(LoggingMode::kClientLocal);
  std::uint64_t ship = commit_messages(LoggingMode::kShipToOwner);
  std::uint64_t force = commit_messages(LoggingMode::kForceAtTransfer);
  EXPECT_EQ(local, 0u);
  EXPECT_GT(ship, 0u);
  EXPECT_GT(force, 0u);
}

TEST_F(BaselineTest, NodeWithoutLocalLogMustShip) {
  ClusterOptions opts;
  opts.dir = dir_.path() + "/nolog";
  cluster_ = std::make_unique<Cluster>(opts);
  owner_ = *cluster_->AddNode();
  NodeOptions no_log;
  no_log.has_local_log = false;
  no_log.logging_mode = LoggingMode::kClientLocal;  // Invalid combination.
  EXPECT_FALSE(cluster_->AddNode(no_log).ok());
  no_log.logging_mode = LoggingMode::kShipToOwner;
  ASSERT_OK_AND_ASSIGN(Node * diskless, cluster_->AddNode(no_log));
  ASSERT_OK_AND_ASSIGN(PageId pid, owner_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, diskless->Begin());
  ASSERT_OK(diskless->Insert(txn, pid, "diskless").status());
  ASSERT_OK(diskless->Commit(txn));
}

}  // namespace
}  // namespace clog
