#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/random.h"
#include "storage/slotted_page.h"
#include "tests/test_util.h"
#include "wal/log_record.h"

namespace clog {
namespace {

/// Property test: random insert/update/delete sequences on one page must
/// always agree with a shadow map, never corrupt the layout, and space
/// accounting must stay conservative (FreeSpace never lies upward).
class SlottedFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlottedFuzzTest, RandomOpsMatchShadowModel) {
  Random rng(GetParam());
  Page page;
  page.Format(PageId{0, 0}, PageType::kData, 0);
  SlottedPage sp(&page);
  sp.InitBody();

  std::map<SlotId, std::string> model;
  for (int step = 0; step < 2000; ++step) {
    std::uint64_t dice = rng.Uniform(100);
    if (dice < 40) {
      // Insert with a random size, sometimes huge on purpose.
      std::size_t len = rng.Bernoulli(0.05) ? 5000 : rng.Uniform(300) + 1;
      std::string payload = rng.Bytes(len);
      std::size_t max = sp.MaxInsertSize();
      Result<SlotId> slot = sp.Insert(payload);
      if (len <= max) {
        ASSERT_TRUE(slot.ok()) << "len=" << len << " max=" << max;
        ASSERT_FALSE(model.contains(*slot));
        model[*slot] = payload;
      } else {
        EXPECT_FALSE(slot.ok());
      }
    } else if (dice < 65 && !model.empty()) {
      // Update a live record.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::size_t len = rng.Uniform(300) + 1;
      std::string payload = rng.Bytes(len);
      std::size_t old_len = it->second.size();
      std::size_t headroom = sp.FreeSpace() + old_len;
      Status st = sp.Update(it->first, payload);
      if (len <= headroom) {
        ASSERT_OK(st);
        it->second = payload;
      } else {
        EXPECT_FALSE(st.ok());
      }
    } else if (dice < 85 && !model.empty()) {
      // Delete a live record.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_OK(sp.Delete(it->first));
      model.erase(it);
    } else {
      // Operations on dead/missing slots must fail cleanly.
      SlotId bogus = static_cast<SlotId>(sp.SlotCount() + rng.Uniform(3));
      EXPECT_FALSE(sp.Read(bogus).ok());
      EXPECT_FALSE(sp.Update(bogus, "x").ok());
      EXPECT_FALSE(sp.Delete(bogus).ok());
    }

    // Full-state check every few steps (O(n) scan).
    if (step % 50 == 0) {
      ASSERT_EQ(sp.LiveRecords(), model.size());
      for (const auto& [slot, expect] : model) {
        ASSERT_TRUE(sp.IsLive(slot));
        ASSERT_OK_AND_ASSIGN(Slice got, sp.Read(slot));
        ASSERT_EQ(got.ToString(), expect) << "slot " << slot;
      }
    }
  }
  // Final exhaustive check.
  ASSERT_EQ(sp.LiveRecords(), model.size());
  for (const auto& [slot, expect] : model) {
    ASSERT_OK_AND_ASSIGN(Slice got, sp.Read(slot));
    ASSERT_EQ(got.ToString(), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedFuzzTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

/// Decoder fuzz: feeding arbitrary bytes into the log-record decoder and
/// the page verifier must fail cleanly, never crash (crash-recovery reads
/// whatever the disk contains).
class DecodeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzzTest, RandomBytesNeverCrashDecoders) {
  Random rng(GetParam());
  for (int round = 0; round < 500; ++round) {
    std::size_t len = rng.Uniform(200);
    std::string garbage = rng.Bytes(len);
    // Raw random printable bytes.
    LogRecord rec;
    LogRecord::DecodeFrom(garbage, &rec).ok();  // Must not crash.
    // Mutated valid record: flip bytes of a real encoding.
    LogRecord valid;
    valid.type = LogRecordType::kUpdate;
    valid.txn = 7;
    valid.page = PageId{1, 2};
    valid.redo_image = rng.Bytes(40);
    valid.undo_image = rng.Bytes(40);
    std::string body;
    valid.EncodeTo(&body);
    if (!body.empty()) {
      body[rng.Uniform(body.size())] =
          static_cast<char>(rng.Uniform(256));
      LogRecord::DecodeFrom(body, &rec).ok();  // Must not crash.
      // Truncations too.
      LogRecord::DecodeFrom(Slice(body.data(), rng.Uniform(body.size())),
                            &rec)
          .ok();
    }
  }
}

TEST_P(DecodeFuzzTest, CorruptedPagesFailVerification) {
  Random rng(GetParam() ^ 0xABCD);
  for (int round = 0; round < 50; ++round) {
    Page page;
    page.Format(PageId{0, 1}, PageType::kData, round);
    SlottedPage sp(&page);
    sp.InitBody();
    sp.Insert(rng.Bytes(100)).status().ok();
    page.SealChecksum();
    // Flip one random byte outside the checksum field itself.
    std::size_t pos = 8 + rng.Uniform(kPageSize - 8);
    page.data()[pos] ^= static_cast<char>(1 + rng.Uniform(255));
    EXPECT_FALSE(page.VerifyChecksum().ok()) << "flipped byte " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzzTest, ::testing::Values(3, 17, 91));

}  // namespace
}  // namespace clog
