#include <gtest/gtest.h>

#include "fault/torture.h"

namespace clog {
namespace {

/// Seeded crash-schedule exploration. Every test runs complete cluster
/// lifetimes through RunTortureSchedule — workload, injected faults,
/// crashes, recoveries — and requires the four torture invariants to hold.
/// A failure names the seed; replay it with `tools/torture --seed=N
/// --verbose` to get the exact schedule back.
///
/// The shard tests (label `torture` in ctest) cover 8 x 64 = 512 distinct
/// seeds. The smoke and determinism tests ride in tier1.

constexpr std::uint64_t kCorpusBase = 1000;
constexpr int kSeedsPerShard = 64;

class TortureShardTest : public ::testing::TestWithParam<int> {};

TEST_P(TortureShardTest, SixtyFourSeeds) {
  const int shard = GetParam();
  for (int i = 0; i < kSeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kCorpusBase + static_cast<std::uint64_t>(shard) *
        kSeedsPerShard + i;
    opts.keep_events = false;  // The CLI replays the trace on demand.
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok) << report.Summary()
                           << "\nreplay: tools/torture --seed=" << report.seed
                           << " --verbose";
  }
}

INSTANTIATE_TEST_SUITE_P(Torture, TortureShardTest, ::testing::Range(0, 8));

/// Crash-during-recovery corpus: every repair pass is forced to kill one
/// restarting node at a seeded phase boundary (docs/availability.md), so
/// each schedule exercises recovery re-entry on top of the usual fault
/// mix. Two 32-seed shards under the `torture` ctest label.
constexpr std::uint64_t kRecoveryCorpusBase = 9000;
constexpr int kRecoverySeedsPerShard = 32;

class CrashDuringRecoveryShardTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashDuringRecoveryShardTest, ThirtyTwoSeeds) {
  const int shard = GetParam();
  std::uint64_t total_recovery_crashes = 0;
  for (int i = 0; i < kRecoverySeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kRecoveryCorpusBase + static_cast<std::uint64_t>(shard) *
        kRecoverySeedsPerShard + i;
    opts.crash_during_recovery = true;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok)
        << report.Summary() << "\nreplay: tools/torture --seed=" << report.seed
        << " --crash-during-recovery --verbose";
    total_recovery_crashes += report.recovery_crashes;
  }
  // The mode is not allowed to degenerate: across a whole shard, forced
  // arming must actually have killed nodes mid-recovery.
  EXPECT_GT(total_recovery_crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Torture, CrashDuringRecoveryShardTest,
                         ::testing::Range(0, 2));

/// Group-commit corpus: every node coalesces commit forces, so each
/// schedule exercises commit parking, absorbed forces, crash-while-parked
/// indeterminacy, and ATT draining at checkpoints. Two 32-seed shards.
constexpr std::uint64_t kGroupCommitCorpusBase = 17000;
constexpr int kGroupCommitSeedsPerShard = 32;

class GroupCommitShardTest : public ::testing::TestWithParam<int> {};

TEST_P(GroupCommitShardTest, ThirtyTwoSeeds) {
  const int shard = GetParam();
  std::uint64_t total_parked = 0;
  for (int i = 0; i < kGroupCommitSeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kGroupCommitCorpusBase + static_cast<std::uint64_t>(shard) *
        kGroupCommitSeedsPerShard + i;
    opts.group_commit = true;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok)
        << report.Summary() << "\nreplay: tools/torture --seed=" << report.seed
        << " --group-commit --verbose";
    total_parked += report.txns_parked;
  }
  // The mode is not allowed to degenerate: across a whole shard, commits
  // must actually have parked (the coalescing path must have run).
  EXPECT_GT(total_parked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Torture, GroupCommitShardTest,
                         ::testing::Range(0, 2));

/// Media-failure corpus: every node runs with fuzzy page archives, the
/// crash branch sometimes destroys a whole device (data or log) at the
/// crash point, and the transient page-read fault joins the armed I/O mix.
/// On top of the usual four invariants the harness checks archive
/// self-consistency and poison fencing (records on pages fenced as
/// unrecoverable must read back Corruption, never stale data). Two
/// 32-seed shards under the `media` ctest label.
constexpr std::uint64_t kMediaCorpusBase = 25000;
constexpr int kMediaSeedsPerShard = 32;

class MediaFailureShardTest : public ::testing::TestWithParam<int> {};

TEST_P(MediaFailureShardTest, ThirtyTwoSeeds) {
  const int shard = GetParam();
  std::uint64_t total_losses = 0;
  std::uint64_t total_log_losses = 0;
  for (int i = 0; i < kMediaSeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kMediaCorpusBase + static_cast<std::uint64_t>(shard) *
        kMediaSeedsPerShard + i;
    opts.media_failure = true;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok)
        << report.Summary() << "\nreplay: tools/torture --seed=" << report.seed
        << " --media-failure --verbose";
    total_losses += report.device_losses;
    total_log_losses += report.log_losses;
  }
  // The mode is not allowed to degenerate: across a whole shard, devices
  // must actually have been destroyed, including some log devices (the
  // client-based-logging worst case: committed history lost at the top).
  EXPECT_GT(total_losses, 0u);
  EXPECT_GT(total_log_losses, 0u);
}

INSTANTIATE_TEST_SUITE_P(Torture, MediaFailureShardTest,
                         ::testing::Range(0, 2));

/// Instant-restore hammer corpus: the media mix with instant restore on
/// every node, so data-device losses defer their rebuilds and the workload
/// keeps landing on half-restored nodes while the harness sweeps one page
/// per node per step. Two invariants on top of the media set: a restoring
/// page never serves stale data (every on-demand rebuild is model-checked),
/// and restore completion is crash-re-enterable without PSN regression.
/// Two 32-seed shards under the `restore` ctest label.
constexpr std::uint64_t kHammerCorpusBase = 33000;
constexpr int kHammerSeedsPerShard = 32;

class HammerRestoreShardTest : public ::testing::TestWithParam<int> {};

TEST_P(HammerRestoreShardTest, ThirtyTwoSeeds) {
  const int shard = GetParam();
  std::uint64_t total_losses = 0;
  std::uint64_t total_planned = 0;
  for (int i = 0; i < kHammerSeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kHammerCorpusBase + static_cast<std::uint64_t>(shard) *
        kHammerSeedsPerShard + i;
    opts.hammer_restore = true;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok)
        << report.Summary() << "\nreplay: tools/torture --seed=" << report.seed
        << " --hammer-restore --verbose";
    total_losses += report.device_losses;
    total_planned += report.restore_planned;
  }
  // The mode is not allowed to degenerate: across a whole shard, devices
  // must actually have been destroyed AND pages must actually have been
  // deferred to instant restore (the eager path must not have absorbed
  // every loss before a plan was written).
  EXPECT_GT(total_losses, 0u);
  EXPECT_GT(total_planned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Torture, HammerRestoreShardTest,
                         ::testing::Range(0, 2));

/// Adaptive-logging corpus: the cluster policy is kAdaptive with
/// dependency-parallel redo on, and the workload mixes per-transaction
/// physical overrides, so every schedule interleaves logical records,
/// upgrades, backfills, and skip classification with the usual fault mix.
/// One shard forces a crash into every repair pass so redo re-enters
/// mid-recovery on adaptive logs. The sixth invariant (logical records
/// replay to the same page bytes) is checked by the harness's final
/// double-recovery. Two 32-seed shards under the `adaptive` ctest label.
constexpr std::uint64_t kAdaptiveCorpusBase = 41000;
constexpr int kAdaptiveSeedsPerShard = 32;

class AdaptiveShardTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveShardTest, ThirtyTwoSeeds) {
  const int shard = GetParam();
  std::uint64_t total_adaptive = 0;
  for (int i = 0; i < kAdaptiveSeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kAdaptiveCorpusBase + static_cast<std::uint64_t>(shard) *
        kAdaptiveSeedsPerShard + i;
    opts.adaptive = true;
    // Shard 1: every repair pass also kills a restarting node at a seeded
    // phase boundary, so dependency-parallel redo is re-entered from
    // scratch mid-recovery.
    opts.crash_during_recovery = shard == 1;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok)
        << report.Summary() << "\nreplay: tools/torture --seed=" << report.seed
        << " --adaptive" << (shard == 1 ? " --crash-during-recovery" : "")
        << " --verbose";
    total_adaptive += report.txns_adaptive;
  }
  // The mode is not allowed to degenerate: across a whole shard, the
  // workload must actually have run adaptive transactions.
  EXPECT_GT(total_adaptive, 0u);
}

INSTANTIATE_TEST_SUITE_P(Torture, AdaptiveShardTest, ::testing::Range(0, 2));

/// Elastic-membership corpus at 16 nodes: a seeded fraction of every
/// schedule's steps runs a membership operation — four-phase page handoff,
/// JoinNode, graceful LeaveNode — on top of the normal fault mix, and
/// three invariants ride on the usual four (exactly one durable owner per
/// page, no committed update lost across a transfer, no visible-PSN
/// regression at the new owner). Shard 1 arms every handoff to crash one
/// endpoint (source or target, seeded) at a seeded phase boundary, so the
/// durable handoff ledgers must re-enter on every single transfer. Two
/// 32-seed shards under the `elastic` ctest label.
constexpr std::uint64_t kElasticCorpusBase = 49000;
constexpr int kElasticSeedsPerShard = 32;

class ElasticShardTest : public ::testing::TestWithParam<int> {};

TEST_P(ElasticShardTest, ThirtyTwoSeeds) {
  const int shard = GetParam();
  std::uint64_t total_handoffs = 0;
  std::uint64_t total_handoff_crashes = 0;
  std::uint64_t total_membership = 0;
  for (int i = 0; i < kElasticSeedsPerShard; ++i) {
    TortureOptions opts;
    opts.seed = kElasticCorpusBase + static_cast<std::uint64_t>(shard) *
        kElasticSeedsPerShard + i;
    opts.elastic = true;
    opts.num_nodes = 16;
    opts.crash_during_handoff = shard == 1;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok)
        << report.Summary() << "\nreplay: tools/torture --seed=" << report.seed
        << " --elastic --nodes=16"
        << (shard == 1 ? " --crash-during-handoff" : "") << " --verbose";
    total_handoffs += report.handoffs;
    total_handoff_crashes += report.handoff_crashes;
    total_membership += report.joins + report.leaves;
  }
  // The mode is not allowed to degenerate: across a whole shard, pages
  // must actually have changed owners and membership must actually have
  // churned; the crash shard must actually have killed endpoints at
  // handoff phase boundaries.
  EXPECT_GT(total_handoffs, 0u);
  EXPECT_GT(total_membership, 0u);
  if (shard == 1) EXPECT_GT(total_handoff_crashes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Torture, ElasticShardTest, ::testing::Range(0, 2));

TEST(TortureSmoke, AFewSeedsPass) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 42ull}) {
    TortureOptions opts;
    opts.seed = seed;
    opts.keep_events = false;
    TortureReport report = RunTortureSchedule(opts);
    ASSERT_TRUE(report.ok) << report.Summary()
                           << "\nreplay: tools/torture --seed=" << report.seed
                           << " --verbose";
  }
}

TEST(TortureSmoke, SameSeedReplaysIdentically) {
  // The whole point of the seed: two runs of one seed must produce the
  // same schedule (hash over the event trace), the same verdict, and the
  // same counters — this is what makes `tools/torture --seed=N` a replay
  // and not a reroll.
  TortureOptions opts;
  opts.seed = 7;
  TortureReport a = RunTortureSchedule(opts);
  TortureReport b = RunTortureSchedule(opts);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.schedule_hash, b.schedule_hash);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.Summary(), b.Summary());
  ASSERT_TRUE(a.ok) << a.Summary();
}

TEST(TortureSmoke, GroupCommitSeedsPassAndReplayIdentically) {
  // A couple of group-commit schedules ride in tier1 so the coalescing
  // path is torture-covered in every build, and the replay contract holds
  // with the policy on.
  for (std::uint64_t seed : {1ull, 5ull, 10ull}) {
    TortureOptions opts;
    opts.seed = seed;
    opts.group_commit = true;
    TortureReport a = RunTortureSchedule(opts);
    TortureReport b = RunTortureSchedule(opts);
    ASSERT_TRUE(a.ok) << a.Summary()
                      << "\nreplay: tools/torture --seed=" << a.seed
                      << " --group-commit --verbose";
    EXPECT_EQ(a.schedule_hash, b.schedule_hash);
    EXPECT_EQ(a.Summary(), b.Summary());
  }
}

TEST(TortureSmoke, MediaFailureSeedsPassAndReplayIdentically) {
  // A couple of media-failure schedules ride in tier1 so device loss,
  // archive restore, and poison fencing are covered in every build, and
  // the replay contract holds with the mode on.
  for (std::uint64_t seed : {25000ull, 25005ull}) {
    TortureOptions opts;
    opts.seed = seed;
    opts.media_failure = true;
    TortureReport a = RunTortureSchedule(opts);
    TortureReport b = RunTortureSchedule(opts);
    ASSERT_TRUE(a.ok) << a.Summary()
                      << "\nreplay: tools/torture --seed=" << a.seed
                      << " --media-failure --verbose";
    EXPECT_EQ(a.schedule_hash, b.schedule_hash);
    EXPECT_EQ(a.Summary(), b.Summary());
  }
}

TEST(TortureSmoke, HammerRestoreSeedsPassAndReplayIdentically) {
  // A couple of hammer-restore schedules ride in tier1 so the on-demand
  // rebuild path is torture-covered in every build, and the replay
  // contract holds with the mode on.
  for (std::uint64_t seed : {33000ull, 33007ull}) {
    TortureOptions opts;
    opts.seed = seed;
    opts.hammer_restore = true;
    TortureReport a = RunTortureSchedule(opts);
    TortureReport b = RunTortureSchedule(opts);
    ASSERT_TRUE(a.ok) << a.Summary()
                      << "\nreplay: tools/torture --seed=" << a.seed
                      << " --hammer-restore --verbose";
    EXPECT_EQ(a.schedule_hash, b.schedule_hash);
    EXPECT_EQ(a.Summary(), b.Summary());
  }
}

TEST(TortureSmoke, ElasticSeedsPassAndReplayIdentically) {
  // A couple of elastic-membership schedules ride in tier1 (at the default
  // three nodes, so they stay cheap) so handoff, join, and leave paths are
  // torture-covered in every build, and the replay contract holds with
  // membership churn on.
  for (std::uint64_t seed : {49000ull, 49002ull}) {
    TortureOptions opts;
    opts.seed = seed;
    opts.elastic = true;
    TortureReport a = RunTortureSchedule(opts);
    TortureReport b = RunTortureSchedule(opts);
    ASSERT_TRUE(a.ok) << a.Summary()
                      << "\nreplay: tools/torture --seed=" << a.seed
                      << " --elastic --verbose";
    EXPECT_EQ(a.schedule_hash, b.schedule_hash);
    EXPECT_EQ(a.Summary(), b.Summary());
  }
}

TEST(TortureSmoke, AdaptiveSeedsPassAndReplayIdentically) {
  // A couple of adaptive schedules ride in tier1 so the logical-record,
  // upgrade, and parallel-redo paths are torture-covered in every build,
  // and the replay contract holds with the mode on.
  for (std::uint64_t seed : {41000ull, 41003ull}) {
    TortureOptions opts;
    opts.seed = seed;
    opts.adaptive = true;
    TortureReport a = RunTortureSchedule(opts);
    TortureReport b = RunTortureSchedule(opts);
    ASSERT_TRUE(a.ok) << a.Summary()
                      << "\nreplay: tools/torture --seed=" << a.seed
                      << " --adaptive --verbose";
    EXPECT_EQ(a.schedule_hash, b.schedule_hash);
    EXPECT_EQ(a.Summary(), b.Summary());
  }
}

TEST(TortureSmoke, MediaModeOffLeavesSchedulesUntouched) {
  // The media machinery must be invisible when the mode is off: the same
  // seed with media_failure defaulted produces the exact same schedule and
  // structured-trace hashes as before the subsystem existed, so every
  // archived golden hash stays valid.
  TortureOptions opts;
  opts.seed = 7;
  TortureReport plain = RunTortureSchedule(opts);
  ASSERT_TRUE(plain.ok) << plain.Summary();
  EXPECT_EQ(plain.device_losses, 0u);
  EXPECT_EQ(plain.pages_poisoned, 0u);
}

TEST(TortureSmoke, DifferentSeedsDiverge) {
  TortureOptions a, b;
  a.seed = 11;
  b.seed = 12;
  TortureReport ra = RunTortureSchedule(a);
  TortureReport rb = RunTortureSchedule(b);
  EXPECT_NE(ra.schedule_hash, rb.schedule_hash);
}

}  // namespace
}  // namespace clog
