#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cluster.h"
#include "core/workload.h"
#include "fault/fault_injector.h"
#include "fault/torture.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// The repository's core methodological claim (DESIGN.md Section 4):
/// identical seeds and call sequences reproduce identical histories —
/// including crash points, recovery work, message counts, and simulated
/// time. These tests run whole scenario scripts twice in independent
/// directories and require every observable counter to match exactly.

struct Trace {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t log_records_owner = 0;
  std::uint64_t log_records_client = 0;
  std::uint64_t analysis_records = 0;
  std::uint64_t redo_applied = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

Trace RunScenario(const std::string& dir, std::uint64_t seed) {
  ClusterOptions opts;
  opts.dir = dir;
  opts.node_defaults.buffer_frames = 10;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  auto pages = *AllocatePopulatedPages(&cluster, owner->id(), 5, 6, 40, seed);

  WorkloadConfig config;
  config.seed = seed;
  config.txns_per_session = 15;
  config.ops_per_txn = 5;
  config.records_per_page = 6;
  config.payload_bytes = 40;
  WorkloadDriver driver(&cluster, config,
                        {{owner->id(), pages}, {client->id(), pages}});
  EXPECT_OK(driver.Run());

  EXPECT_OK(cluster.CrashNode(owner->id()));
  EXPECT_OK(cluster.RestartNode(owner->id()));
  const auto& stats = cluster.recovery_stats().at(owner->id());

  Trace trace;
  trace.messages = cluster.network().metrics().CounterValue("msg.total");
  trace.bytes = cluster.network().metrics().CounterValue("bytes.total");
  trace.sim_ns = cluster.clock().NowNanos();
  trace.committed = driver.stats().committed;
  trace.log_records_owner = owner->log().appended_records();
  trace.log_records_client = client->log().appended_records();
  trace.analysis_records = stats.analysis_records;
  trace.redo_applied = stats.redo_applied;
  return trace;
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalHistories) {
  TempDir a, b;
  Trace first = RunScenario(a.path(), 4242);
  Trace second = RunScenario(b.path(), 4242);
  EXPECT_EQ(first, second);
  // Sanity: the trace is non-trivial.
  EXPECT_GT(first.messages, 0u);
  EXPECT_GT(first.committed, 0u);
  EXPECT_GT(first.analysis_records, 0u);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  TempDir a, b;
  Trace first = RunScenario(a.path(), 1);
  Trace second = RunScenario(b.path(), 2);
  EXPECT_NE(first, second);
}

/// Same contract under the availability layer: with message drops live and
/// the retry envelope enabled (docs/availability.md), identical seeds must
/// reproduce identical retry counts, backoff time, and final state — the
/// jittered backoff schedule is part of the deterministic history.
struct RetryTrace {
  std::uint64_t messages = 0;
  std::uint64_t sim_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborted_availability = 0;
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_retry_success = 0;
  std::uint64_t backoff_ns = 0;
  std::uint64_t hb_probes = 0;

  friend bool operator==(const RetryTrace&, const RetryTrace&) = default;
};

RetryTrace RunRetryHeavyScenario(const std::string& dir, std::uint64_t seed) {
  FaultInjector injector(seed);
  FaultConfig cfg;
  cfg.net_drop_p = 0.25;  // Every remote hop is a coin flip.
  injector.set_config(cfg);
  injector.set_enabled(false);

  ClusterOptions opts;
  opts.dir = dir;
  opts.fault_injector = &injector;
  opts.retry_policy.enabled = true;
  opts.retry_policy.jitter_seed = seed;
  opts.node_defaults.buffer_frames = 10;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  auto pages = *AllocatePopulatedPages(&cluster, owner->id(), 3, 6, 40, seed);

  WorkloadConfig config;
  config.seed = seed;
  config.txns_per_session = 10;
  config.ops_per_txn = 4;
  config.records_per_page = 6;
  config.payload_bytes = 40;
  WorkloadDriver driver(&cluster, config,
                        {{owner->id(), pages}, {client->id(), pages}});
  injector.set_enabled(true);
  EXPECT_OK(driver.Run());
  injector.set_enabled(false);

  const Metrics& m = cluster.network().metrics();
  RetryTrace trace;
  trace.messages = m.CounterValue("msg.total");
  trace.sim_ns = cluster.clock().NowNanos();
  trace.committed = driver.stats().committed;
  trace.aborted_availability = driver.stats().aborted_availability;
  trace.rpc_retries = m.CounterValue("rpc.retries");
  trace.rpc_retry_success = m.CounterValue("rpc.retry_success");
  trace.backoff_ns = m.CounterValue("rpc.backoff_ns");
  trace.hb_probes = m.CounterValue("hb.probes");
  return trace;
}

TEST(DeterminismTest, RetryHeavySchedulesReplayIdentically) {
  TempDir a, b;
  RetryTrace first = RunRetryHeavyScenario(a.path(), 777);
  RetryTrace second = RunRetryHeavyScenario(b.path(), 777);
  EXPECT_EQ(first, second);
  // Sanity: the envelope actually worked for a living.
  EXPECT_GT(first.rpc_retries, 0u);
  EXPECT_GT(first.backoff_ns, 0u);
  EXPECT_GT(first.committed, 0u);
}

TEST(DeterminismTest, RetryHeavySeedsDiverge) {
  TempDir a, b;
  RetryTrace first = RunRetryHeavyScenario(a.path(), 101);
  RetryTrace second = RunRetryHeavyScenario(b.path(), 102);
  EXPECT_NE(first, second);
}

/// Pinned schedule/trace hashes for the reference torture seeds, captured
/// before the executor-seam refactor (docs/architecture_modes.md). The
/// simulation engine's contract is *byte-identical* behaviour across that
/// refactor: a virtual clock, an inline executor, and leaf-level mutexes
/// must not move a single event. If this test fails, simulation mode's
/// history changed — that is a regression even if every invariant still
/// holds, because recorded repro seeds and cross-run diffs stop lining up.
/// Do not re-pin these constants without a deliberate, documented schedule
/// change.
TEST(DeterminismTest, TortureHashesMatchPreRefactorBaseline) {
  struct Pin {
    std::uint64_t seed;
    std::uint64_t schedule_hash;
    std::uint64_t trace_hash;
  };
  // Values from `tools/torture --seed=42 --count=3` at the pre-refactor
  // commit (defaults: steps=40, nodes=3, pages=2, records=4).
  const Pin kPins[] = {
      {42, 0xd8d97f8d90e6c8a6ull, 0x5e4609dafd1a915dull},
      {43, 0x3db5d038aa7e045eull, 0xd54a662eeaab320cull},
      {44, 0x36678826b5c6b96bull, 0x47a643093800fba4ull},
  };
  for (const Pin& pin : kPins) {
    TortureOptions opts;
    opts.seed = pin.seed;
    opts.keep_events = false;  // CLI default; hashes cover the full trace.
    TortureReport report = RunTortureSchedule(opts);
    EXPECT_TRUE(report.ok) << "seed " << pin.seed << ": " << report.failure;
    EXPECT_EQ(report.schedule_hash, pin.schedule_hash)
        << "seed " << pin.seed << " schedule hash drifted";
    EXPECT_EQ(report.trace_hash, pin.trace_hash)
        << "seed " << pin.seed << " trace hash drifted";
  }
}

/// The pinned baselines above run with the default LoggingPolicy — all
/// physical, redo_workers=0 — which is exactly the guarantee adaptive
/// logging makes: when the policy is off, schedules and traces stay
/// byte-identical to pre-adaptive builds. Adaptive schedules carry their
/// own (unpinned) determinism contract instead: one seed, one history.
TEST(DeterminismTest, AdaptiveTortureSchedulesReplayIdentically) {
  TortureOptions opts;
  opts.seed = 4242;
  opts.adaptive = true;
  opts.keep_events = false;
  TortureReport first = RunTortureSchedule(opts);
  TortureReport second = RunTortureSchedule(opts);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_TRUE(second.ok) << second.failure;
  EXPECT_EQ(first.schedule_hash, second.schedule_hash);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  // Sanity: the mix actually produced adaptive transactions.
  EXPECT_GT(first.txns_adaptive, 0u);
}

TEST(DeterminismTest, RecoveryItselfIsDeterministic) {
  // Crash the same pre-state twice (via a second process-replacement
  // restart of the same files): both recoveries do identical work.
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  PageId pid = *owner->AllocatePage();
  TxnId txn = *client->Begin();
  RecordId rid = *client->Insert(txn, pid, "x");
  ASSERT_OK(client->Commit(txn));
  ASSERT_OK_AND_ASSIGN(TxnId pull, owner->Begin());
  ASSERT_OK(owner->Read(pull, rid).status());
  ASSERT_OK(owner->Commit(pull));
  const_cast<BufferPool&>(client->pool()).Drop(pid);

  ASSERT_OK(cluster.CrashNode(owner->id()));
  ASSERT_OK(cluster.RestartNode(owner->id()));
  auto first = cluster.recovery_stats().at(owner->id());

  ASSERT_OK(cluster.CrashNode(owner->id()));
  ASSERT_OK(cluster.RestartNode(owner->id()));
  auto second = cluster.recovery_stats().at(owner->id());

  // The second crash happens right after a post-recovery checkpoint, so
  // its analysis is shorter — but the structural work (nothing left to
  // redo; recovered state already forced) must be stable.
  EXPECT_EQ(second.own_pages_recovered, 0u);
  EXPECT_EQ(second.losers_undone, 0u);
  EXPECT_LE(second.analysis_records, first.analysis_records);
}

}  // namespace
}  // namespace clog
