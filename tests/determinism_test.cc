#include <gtest/gtest.h>

#include "common/random.h"
#include "core/cluster.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// The repository's core methodological claim (DESIGN.md Section 4):
/// identical seeds and call sequences reproduce identical histories —
/// including crash points, recovery work, message counts, and simulated
/// time. These tests run whole scenario scripts twice in independent
/// directories and require every observable counter to match exactly.

struct Trace {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t sim_ns = 0;
  std::uint64_t committed = 0;
  std::uint64_t log_records_owner = 0;
  std::uint64_t log_records_client = 0;
  std::uint64_t analysis_records = 0;
  std::uint64_t redo_applied = 0;

  friend bool operator==(const Trace&, const Trace&) = default;
};

Trace RunScenario(const std::string& dir, std::uint64_t seed) {
  ClusterOptions opts;
  opts.dir = dir;
  opts.node_defaults.buffer_frames = 10;
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  auto pages = *AllocatePopulatedPages(&cluster, owner->id(), 5, 6, 40, seed);

  WorkloadConfig config;
  config.seed = seed;
  config.txns_per_session = 15;
  config.ops_per_txn = 5;
  config.records_per_page = 6;
  config.payload_bytes = 40;
  WorkloadDriver driver(&cluster, config,
                        {{owner->id(), pages}, {client->id(), pages}});
  EXPECT_OK(driver.Run());

  EXPECT_OK(cluster.CrashNode(owner->id()));
  EXPECT_OK(cluster.RestartNode(owner->id()));
  const auto& stats = cluster.recovery_stats().at(owner->id());

  Trace trace;
  trace.messages = cluster.network().metrics().CounterValue("msg.total");
  trace.bytes = cluster.network().metrics().CounterValue("bytes.total");
  trace.sim_ns = cluster.clock().NowNanos();
  trace.committed = driver.stats().committed;
  trace.log_records_owner = owner->log().appended_records();
  trace.log_records_client = client->log().appended_records();
  trace.analysis_records = stats.analysis_records;
  trace.redo_applied = stats.redo_applied;
  return trace;
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalHistories) {
  TempDir a, b;
  Trace first = RunScenario(a.path(), 4242);
  Trace second = RunScenario(b.path(), 4242);
  EXPECT_EQ(first, second);
  // Sanity: the trace is non-trivial.
  EXPECT_GT(first.messages, 0u);
  EXPECT_GT(first.committed, 0u);
  EXPECT_GT(first.analysis_records, 0u);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  TempDir a, b;
  Trace first = RunScenario(a.path(), 1);
  Trace second = RunScenario(b.path(), 2);
  EXPECT_NE(first, second);
}

TEST(DeterminismTest, RecoveryItselfIsDeterministic) {
  // Crash the same pre-state twice (via a second process-replacement
  // restart of the same files): both recoveries do identical work.
  TempDir dir;
  ClusterOptions opts;
  opts.dir = dir.path();
  Cluster cluster(opts);
  Node* owner = *cluster.AddNode();
  Node* client = *cluster.AddNode();
  PageId pid = *owner->AllocatePage();
  TxnId txn = *client->Begin();
  RecordId rid = *client->Insert(txn, pid, "x");
  ASSERT_OK(client->Commit(txn));
  ASSERT_OK_AND_ASSIGN(TxnId pull, owner->Begin());
  ASSERT_OK(owner->Read(pull, rid).status());
  ASSERT_OK(owner->Commit(pull));
  const_cast<BufferPool&>(client->pool()).Drop(pid);

  ASSERT_OK(cluster.CrashNode(owner->id()));
  ASSERT_OK(cluster.RestartNode(owner->id()));
  auto first = cluster.recovery_stats().at(owner->id());

  ASSERT_OK(cluster.CrashNode(owner->id()));
  ASSERT_OK(cluster.RestartNode(owner->id()));
  auto second = cluster.recovery_stats().at(owner->id());

  // The second crash happens right after a post-recovery checkpoint, so
  // its analysis is shorter — but the structural work (nothing left to
  // redo; recovered state already forced) must be stable.
  EXPECT_EQ(second.own_pages_recovered, 0u);
  EXPECT_EQ(second.losers_undone, 0u);
  EXPECT_LE(second.analysis_records, first.analysis_records);
}

}  // namespace
}  // namespace clog
