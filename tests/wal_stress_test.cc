#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/fsutil.h"
#include "tests/test_util.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

/// \file
/// Concurrency stress for the lock-free WAL front end (staging buffers +
/// atomic LSN reservation + background drainer). Every test encodes
/// (producer, sequence) into each record so a reopen scan can prove the
/// three invariants exactly: no record lost, none duplicated, and each
/// producer's records in its append order. Run under -DCLOG_TSAN=ON by
/// scripts/run_tsan_tests.sh (ctest -L wal).

namespace clog {
namespace {

using testing::TempDir;

/// One producer's record: txn encodes the producer, redo_image the
/// sequence number; psn_before carries it redundantly for cheap checks.
LogRecord MakeRecord(int producer, std::uint64_t seq) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn = static_cast<TxnId>(producer + 1);
  rec.page = PageId{0, static_cast<std::uint32_t>(producer)};
  rec.psn_before = seq;
  rec.op = RecordOp::kUpdate;
  rec.slot = 1;
  // Variable-length payloads exercise slot-string growth and ensure LSN
  // arithmetic survives non-uniform frames.
  rec.redo_image.assign(16 + (seq % 48), static_cast<char>('a' + producer));
  return rec;
}

/// Scans the reopened log and returns per-producer sequences in log order.
std::vector<std::vector<std::uint64_t>> ScanByProducer(LogManager* log,
                                                       int producers) {
  std::vector<std::vector<std::uint64_t>> seqs(producers);
  LogCursor cursor(log, LogManager::first_lsn());
  LogRecord rec;
  Lsn lsn = kNullLsn;
  Status scan;
  while (cursor.Next(&rec, &lsn, &scan)) {
    const int p = static_cast<int>(rec.txn) - 1;
    EXPECT_GE(p, 0);
    EXPECT_LT(p, producers);
    seqs[p].push_back(rec.psn_before);
  }
  EXPECT_TRUE(scan.ok()) << scan.ToString();
  return seqs;
}

TEST(WalStressTest, MultiProducerAppendFlushNoLossNoDupNoReorder) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  TempDir dir;
  LogManager log;
  ASSERT_OK(log.Open(dir.path() + "/wal.log"));
  log.StartDrainer();

  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    // Group-commit shape: force the shared tail in a loop while producers
    // hammer the lock-free append path.
    while (!stop_flusher.load(std::memory_order_acquire)) {
      ASSERT_OK(log.Flush(log.end_lsn()));
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t seq = 0; seq < kPerProducer; ++seq) {
        Lsn lsn = kNullLsn;
        ASSERT_OK(log.Append(MakeRecord(p, seq), &lsn));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop_flusher.store(true, std::memory_order_release);
  flusher.join();

  EXPECT_EQ(log.appended_records(), kProducers * kPerProducer);
  ASSERT_OK(log.Close());  // Drains to the barrier and forces everything.
  EXPECT_EQ(log.published_lsn(), log.end_lsn());
  EXPECT_EQ(log.flushed_lsn(), log.end_lsn());

  LogManager reopened;
  ASSERT_OK(reopened.Open(dir.path() + "/wal.log"));
  std::vector<std::vector<std::uint64_t>> seqs =
      ScanByProducer(&reopened, kProducers);
  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seqs[p].size(), kPerProducer) << "producer " << p;
    for (std::uint64_t i = 0; i < kPerProducer; ++i) {
      ASSERT_EQ(seqs[p][i], i) << "producer " << p;  // Order, no dup, no gap.
    }
  }
  ASSERT_OK(reopened.Close());
}

TEST(WalStressTest, AbandonMidStreamLosesOnlyUnforcedSuffix) {
  constexpr int kProducers = 3;
  TempDir dir;
  LogManager log;
  ASSERT_OK(log.Open(dir.path() + "/wal.log"));
  log.StartDrainer();

  // Producers append until the crash kicks them out; each counts its own
  // successful appends.
  std::vector<std::uint64_t> appended(kProducers, 0);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t seq = 0;; ++seq) {
        Lsn lsn = kNullLsn;
        if (!log.Append(MakeRecord(p, seq), &lsn).ok()) break;
        appended[p] = seq + 1;
      }
    });
  }
  std::atomic<bool> stop_flusher{false};
  std::thread flusher([&] {
    while (!stop_flusher.load(std::memory_order_acquire)) {
      if (!log.Flush(log.end_lsn()).ok()) break;  // Closed under us: crash.
      std::this_thread::yield();
    }
  });

  // Let the storm run, sample the durable horizon, then crash mid-drain.
  while (log.flushed_lsn() < LogManager::first_lsn() + 64 * 1024) {
    std::this_thread::yield();
  }
  const Lsn safe = log.flushed_lsn();
  log.Abandon();
  for (std::thread& t : producers) t.join();
  stop_flusher.store(true, std::memory_order_release);
  flusher.join();

  LogManager reopened;
  ASSERT_OK(reopened.Open(dir.path() + "/wal.log"));
  // Nothing durable may be lost: recovery keeps at least the prefix that
  // Flush had acknowledged before the crash.
  EXPECT_GE(reopened.end_lsn(), safe);
  std::vector<std::vector<std::uint64_t>> seqs =
      ScanByProducer(&reopened, kProducers);
  for (int p = 0; p < kProducers; ++p) {
    // The surviving records are exactly a prefix of the producer's append
    // order: the crash lost only a suffix (unpublished or unforced), never
    // a middle record, a duplicate, or a reordering.
    ASSERT_LE(seqs[p].size(), appended[p]) << "producer " << p;
    for (std::uint64_t i = 0; i < seqs[p].size(); ++i) {
      ASSERT_EQ(seqs[p][i], i) << "producer " << p;
    }
  }
  ASSERT_OK(reopened.Close());
}

TEST(WalStressTest, CapacityIsExactUnderConcurrentAppends) {
  constexpr int kProducers = 4;
  TempDir dir;
  LogManager log;
  ASSERT_OK(log.Open(dir.path() + "/wal.log"));
  // Small bound so every producer slams into it; the reservation CAS must
  // never let two racing appends jointly overshoot.
  constexpr std::uint64_t kCapacity = 96 * 1024;
  log.set_capacity(kCapacity);
  log.StartDrainer();

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> refused{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t seq = 0;; ++seq) {
        Lsn lsn = kNullLsn;
        Status st = log.Append(MakeRecord(p, seq), &lsn);
        if (st.ok()) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        ASSERT_TRUE(st.IsLogFull()) << st.ToString();
        refused.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    });
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(refused.load(), kProducers) << "every producer must hit the wall";
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_LE(log.LiveBytes(), kCapacity);  // Exact admission: never overshot.
  ASSERT_OK(log.Flush(log.end_lsn()));
  EXPECT_EQ(log.flushed_lsn(), log.end_lsn());

  // Unenforced appends (rollback reservation) still bypass the full log.
  Lsn lsn = kNullLsn;
  ASSERT_OK(log.Append(MakeRecord(0, 1u << 20), &lsn,
                       /*enforce_capacity=*/false));
  ASSERT_OK(log.Close());
}

TEST(WalStressTest, ConcurrentAndInlineModesProduceIdenticalBytes) {
  // The drainer is a performance feature, not a format: the same appends
  // through the staged path and the inline path must produce files that
  // are byte-for-byte identical.
  TempDir dir;
  const std::string inline_path = dir.path() + "/inline.log";
  const std::string staged_path = dir.path() + "/staged.log";
  {
    LogManager log;
    ASSERT_OK(log.Open(inline_path));
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
      Lsn lsn = kNullLsn;
      ASSERT_OK(log.Append(MakeRecord(0, seq), &lsn));
    }
    ASSERT_OK(log.Close());
  }
  {
    LogManager log;
    ASSERT_OK(log.Open(staged_path));
    log.StartDrainer();
    for (std::uint64_t seq = 0; seq < 200; ++seq) {
      Lsn lsn = kNullLsn;
      ASSERT_OK(log.Append(MakeRecord(0, seq), &lsn));
    }
    ASSERT_OK(log.Close());
  }
  std::string a, b;
  ASSERT_OK(ReadFileToString(inline_path, &a));
  ASSERT_OK(ReadFileToString(staged_path, &b));
  EXPECT_EQ(a, b);
}

TEST(WalStressTest, IsOpenIsLockFreeAndTracksLifecycle) {
  TempDir dir;
  LogManager log;
  EXPECT_FALSE(log.is_open());
  ASSERT_OK(log.Open(dir.path() + "/wal.log"));
  EXPECT_TRUE(log.is_open());
  log.StartDrainer();

  // Observer thread polls is_open while a producer appends: no lock, no
  // race (TSan-checked), and the flag flips exactly at Abandon.
  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (!log.is_open()) break;
      std::this_thread::yield();
    }
  });
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    Lsn lsn = kNullLsn;
    ASSERT_OK(log.Append(MakeRecord(0, seq), &lsn));
  }
  log.Abandon();
  EXPECT_FALSE(log.is_open());
  stop.store(true, std::memory_order_release);
  observer.join();
}

}  // namespace
}  // namespace clog
