#include <gtest/gtest.h>

#include <cstdio>

#include "core/cluster.h"
#include "node/archive.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

void FlipByteAt(const std::string& path, long offset) {
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, offset, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, offset, SEEK_SET);
  std::fputc(c ^ 0x5A, f);
  std::fclose(f);
}

void AppendGarbage(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

/// Fault-injection on the durable artifacts: recovery must detect corrupted
/// pages and log records — repairing them from the log where the history
/// allows, surfacing Corruption where it does not, and never producing
/// wrong data silently. A torn log tail is the one corruption that is
/// *expected* after a crash and is silently truncated.
class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    node_ = *cluster_->AddNode();
  }

  std::string NodeFile(const char* name) {
    return dir_.path() + "/node0/" + name;
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* node_ = nullptr;
};

TEST_F(CorruptionTest, TornLogTailIsExpectedAndTruncated) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "whole"));
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(cluster_->CrashNode(node_->id()));

  // A torn frame at the tail: length promises more bytes than exist.
  std::string torn;
  torn.append("\x40\x00\x00\x00", 4);  // len = 64
  torn.append("\x00\x00\x00\x00", 4);  // bogus crc
  torn.append("short");
  AppendGarbage(NodeFile("node.log"), torn);

  ASSERT_OK(cluster_->RestartNode(node_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(check, rid));
  EXPECT_EQ(v, "whole");
  ASSERT_OK(node_->Commit(check));
}

TEST_F(CorruptionTest, BitFlipInDurableLogBodyDetected) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, std::string(200, 'x')).status());
  ASSERT_OK(node_->Commit(txn));
  Lsn target = LogManager::first_lsn() + 20;  // Inside the first record.
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.log"), static_cast<long>(target));

  // The reopen tail-scan treats the corrupted frame as the end of the
  // valid log (everything after a bad CRC is untrusted), so recovery sees
  // a truncated history rather than corrupt data. Depending on what the
  // flip hit this either surfaces as a clean-but-shorter log or a decode
  // failure; it must never produce wrong data silently.
  Status st = cluster_->RestartNode(node_->id());
  if (st.ok()) {
    ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
    ASSERT_OK_AND_ASSIGN(auto records, node_->ScanPage(check, pid));
    EXPECT_TRUE(records.empty());  // The insert's record was disavowed.
    ASSERT_OK(node_->Commit(check));
  } else {
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
}

TEST_F(CorruptionTest, CorruptDiskPageRebuiltFromLogOnRestart) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "data"));
  ASSERT_OK(node_->Commit(txn));
  // Force to disk, then damage the on-disk page body (a torn write: the
  // crash interrupted the flush mid-page).
  ASSERT_OK(node_->HandleFlushRequest(node_->id(), pid));
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.db"),
             static_cast<long>(pid.page_no) * kPageSize + 2048);

  // Restart recovery reads the page as a candidate, fails its checksum,
  // and rebuilds it from the space-map PSN seed by replaying its full
  // logged history — correct data, never silent garbage.
  ASSERT_OK(cluster_->RestartNode(node_->id()));
  EXPECT_EQ(node_->metrics().CounterValue("recovery.pages_rebuilt_from_seed"),
            1u);
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(check, rid));
  EXPECT_EQ(v, "data");
  ASSERT_OK(node_->Commit(check));
}

TEST_F(CorruptionTest, CorruptSpaceMapDetected) {
  ASSERT_OK(node_->AllocatePage().status());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.map"), 10);
  Status st = cluster_->RestartNode(node_->id());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(CorruptionTest, CorruptMasterPointerDetected) {
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.log.master"), 6);
  Status st = cluster_->RestartNode(node_->id());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(CorruptionTest, CorruptLogMarkDetected) {
  // The log mark (node.log.mark, written with each checkpoint on the
  // metadata device) is what log-device-loss detection compares the log's
  // forced extent against. A corrupted mark must refuse to open — trusting
  // a garbage LSN could mask a destroyed log as healthy.
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, "marked").status());
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.log.mark"), 6);
  Status st = cluster_->RestartNode(node_->id());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(CorruptionTest, MissingMasterMeansFullScanNotFailure) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "v"));
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  std::remove(NodeFile("node.log.master").c_str());

  ASSERT_OK(cluster_->RestartNode(node_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK(node_->Read(check, rid).status());
  ASSERT_OK(node_->Commit(check));
}

/// Same drills against the media-recovery artifacts: the fuzzy page
/// archive pair (node.archive + node.archive.meta) and the poison ledger
/// (node.poison). The archive is a best-effort accelerator — losing it
/// costs replay depth, never correctness — so its corruption must degrade
/// to "no archive". The poison ledger is a correctness artifact — losing
/// it could silently un-fence unrecoverable pages — so its corruption must
/// refuse to open.
class ArchiveCorruptionTest : public ::testing::Test {
 protected:
  ArchiveCorruptionTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.logging_policy.WithArchiveEvery(1);
    cluster_ = std::make_unique<Cluster>(opts);
    node_ = *cluster_->AddNode();
  }

  std::string NodeFile(const char* name) {
    return dir_.path() + "/node0/" + name;
  }

  /// One committed record plus a checkpoint, so a sealed archive pass
  /// covering the page exists.
  RecordId SeedArchivedRecord() {
    PageId pid = *node_->AllocatePage();
    TxnId txn = *node_->Begin();
    RecordId rid = *node_->Insert(txn, pid, "archived");
    EXPECT_TRUE(node_->Commit(txn).ok());
    EXPECT_TRUE(node_->Checkpoint().ok());
    EXPECT_GT(node_->archive().seq(), 0u);
    return rid;
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* node_ = nullptr;
};

TEST_F(ArchiveCorruptionTest, CorruptArchiveMetaStartsArchiveEmpty) {
  RecordId rid = SeedArchivedRecord();
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.archive.meta"), 6);

  // By design a corrupt meta reads as "no sealed pass yet": the archive
  // opens empty (media recovery then falls back to the formatted-seed
  // rebuild). It is never an open error.
  {
    PageArchive probe;
    ASSERT_OK(probe.Open(dir_.path() + "/node0"));
    EXPECT_EQ(probe.seq(), 0u);
    EXPECT_TRUE(probe.entries().empty());
    ASSERT_OK(probe.Close());
  }

  // The node restarts cleanly and self-heals: recovery's closing
  // checkpoint runs a fresh archive pass, so a sealed pass exists again.
  ASSERT_OK(cluster_->RestartNode(node_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(check, rid));
  EXPECT_EQ(v, "archived");
  ASSERT_OK(node_->Commit(check));
  ASSERT_OK(node_->Checkpoint());
  EXPECT_GT(node_->archive().seq(), 0u);
  ASSERT_OK(node_->CheckArchiveConsistency());
}

TEST_F(ArchiveCorruptionTest, TornArchiveImageSlotDetected) {
  RecordId rid = SeedArchivedRecord();
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  // Damage the archived image body of the sealed page (slot = page_no).
  FlipByteAt(NodeFile("node.archive"),
             static_cast<long>(rid.page.page_no) * kPageSize + 2048);
  ASSERT_OK(cluster_->RestartNode(node_->id()));

  // The slot's own checksum catches the tear: the self-check flags the
  // sealed entry as unrestorable rather than ever treating garbage as a
  // usable base image.
  Status st = node_->CheckArchiveConsistency();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("checksum"), std::string::npos)
      << st.ToString();

  // A fresh pass rewrites the slot (the page's PSN advanced past the
  // sealed entry or not, either way reseal repairs it) once the page is
  // archived again.
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Update(txn, rid, "rewritten"));
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(node_->CheckArchiveConsistency());
}

TEST_F(ArchiveCorruptionTest, CorruptPoisonLedgerRefusesToOpen) {
  RecordId rid = SeedArchivedRecord();
  ASSERT_OK(node_->PoisonOwnPage(rid.page, kPsnUnrecoverable));
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.poison"), 6);

  // An unreadable poison set must not silently un-poison pages: the node
  // refuses to open rather than risk serving a page fenced as
  // unrecoverable.
  Status st = cluster_->RestartNode(node_->id());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(ArchiveCorruptionTest, PoisonVerdictSurvivesRestart) {
  RecordId rid = SeedArchivedRecord();
  ASSERT_OK(node_->PoisonOwnPage(rid.page, kPsnUnrecoverable));
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  ASSERT_OK(cluster_->RestartNode(node_->id()));

  // The ledger write was crash-atomic before PoisonOwnPage returned, so
  // the fence is still up: reads surface Corruption, never stale data.
  EXPECT_TRUE(node_->IsPoisoned(rid.page));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  Status read = node_->Read(check, rid).status();
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
  ASSERT_OK(node_->Abort(check));
}

}  // namespace
}  // namespace clog
