#include <gtest/gtest.h>

#include <cstdio>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

/// Fault-injection on the durable artifacts: recovery must detect corrupted
/// pages and log records — repairing them from the log where the history
/// allows, surfacing Corruption where it does not, and never producing
/// wrong data silently. A torn log tail is the one corruption that is
/// *expected* after a crash and is silently truncated.
class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    cluster_ = std::make_unique<Cluster>(opts);
    node_ = *cluster_->AddNode();
  }

  std::string NodeFile(const char* name) {
    return dir_.path() + "/node0/" + name;
  }

  void FlipByteAt(const std::string& path, long offset) {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, offset, SEEK_SET);
    std::fputc(c ^ 0x5A, f);
    std::fclose(f);
  }

  void AppendGarbage(const std::string& path, const std::string& bytes) {
    FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* node_ = nullptr;
};

TEST_F(CorruptionTest, TornLogTailIsExpectedAndTruncated) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "whole"));
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(cluster_->CrashNode(node_->id()));

  // A torn frame at the tail: length promises more bytes than exist.
  std::string torn;
  torn.append("\x40\x00\x00\x00", 4);  // len = 64
  torn.append("\x00\x00\x00\x00", 4);  // bogus crc
  torn.append("short");
  AppendGarbage(NodeFile("node.log"), torn);

  ASSERT_OK(cluster_->RestartNode(node_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(check, rid));
  EXPECT_EQ(v, "whole");
  ASSERT_OK(node_->Commit(check));
}

TEST_F(CorruptionTest, BitFlipInDurableLogBodyDetected) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK(node_->Insert(txn, pid, std::string(200, 'x')).status());
  ASSERT_OK(node_->Commit(txn));
  Lsn target = LogManager::first_lsn() + 20;  // Inside the first record.
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.log"), static_cast<long>(target));

  // The reopen tail-scan treats the corrupted frame as the end of the
  // valid log (everything after a bad CRC is untrusted), so recovery sees
  // a truncated history rather than corrupt data. Depending on what the
  // flip hit this either surfaces as a clean-but-shorter log or a decode
  // failure; it must never produce wrong data silently.
  Status st = cluster_->RestartNode(node_->id());
  if (st.ok()) {
    ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
    ASSERT_OK_AND_ASSIGN(auto records, node_->ScanPage(check, pid));
    EXPECT_TRUE(records.empty());  // The insert's record was disavowed.
    ASSERT_OK(node_->Commit(check));
  } else {
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  }
}

TEST_F(CorruptionTest, CorruptDiskPageRebuiltFromLogOnRestart) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "data"));
  ASSERT_OK(node_->Commit(txn));
  // Force to disk, then damage the on-disk page body (a torn write: the
  // crash interrupted the flush mid-page).
  ASSERT_OK(node_->HandleFlushRequest(node_->id(), pid));
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.db"),
             static_cast<long>(pid.page_no) * kPageSize + 2048);

  // Restart recovery reads the page as a candidate, fails its checksum,
  // and rebuilds it from the space-map PSN seed by replaying its full
  // logged history — correct data, never silent garbage.
  ASSERT_OK(cluster_->RestartNode(node_->id()));
  EXPECT_EQ(node_->metrics().CounterValue("recovery.pages_rebuilt_from_seed"),
            1u);
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, node_->Read(check, rid));
  EXPECT_EQ(v, "data");
  ASSERT_OK(node_->Commit(check));
}

TEST_F(CorruptionTest, CorruptSpaceMapDetected) {
  ASSERT_OK(node_->AllocatePage().status());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.map"), 10);
  Status st = cluster_->RestartNode(node_->id());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(CorruptionTest, CorruptMasterPointerDetected) {
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  FlipByteAt(NodeFile("node.log.master"), 6);
  Status st = cluster_->RestartNode(node_->id());
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST_F(CorruptionTest, MissingMasterMeansFullScanNotFailure) {
  ASSERT_OK_AND_ASSIGN(PageId pid, node_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, node_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, node_->Insert(txn, pid, "v"));
  ASSERT_OK(node_->Commit(txn));
  ASSERT_OK(node_->Checkpoint());
  ASSERT_OK(cluster_->CrashNode(node_->id()));
  std::remove(NodeFile("node.log.master").c_str());

  ASSERT_OK(cluster_->RestartNode(node_->id()));
  ASSERT_OK_AND_ASSIGN(TxnId check, node_->Begin());
  ASSERT_OK(node_->Read(check, rid).status());
  ASSERT_OK(node_->Commit(check));
}

}  // namespace
}  // namespace clog
