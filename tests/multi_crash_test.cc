#include <gtest/gtest.h>

#include "core/cluster.h"
#include "tests/test_util.h"

namespace clog {
namespace {

using testing::TempDir;

class MultiCrashTest : public ::testing::Test {
 protected:
  MultiCrashTest() {
    ClusterOptions opts;
    opts.dir = dir_.path();
    opts.node_defaults.buffer_frames = 32;
    cluster_ = std::make_unique<Cluster>(opts);
    a_ = *cluster_->AddNode();  // Owner of pages used below.
    b_ = *cluster_->AddNode();
    c_ = *cluster_->AddNode();
  }

  TempDir dir_;
  std::unique_ptr<Cluster> cluster_;
  Node* a_ = nullptr;
  Node* b_ = nullptr;
  Node* c_ = nullptr;
};

TEST_F(MultiCrashTest, OwnerAndClientCrashTogether) {
  // Client B updates A's page and commits locally; both A and B crash.
  // B's rebuilt DPT (Section 2.4 superset reconstruction) tells A the page
  // needs redo from B's log.
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId txn, b_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, b_->Insert(txn, pid, "from-b"));
  ASSERT_OK(b_->Commit(txn));

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->CrashNode(b_->id()));
  ASSERT_OK(cluster_->RestartNodes({a_->id(), b_->id()}));
  EXPECT_EQ(a_->state(), NodeState::kUp);
  EXPECT_EQ(b_->state(), NodeState::kUp);

  ASSERT_OK_AND_ASSIGN(TxnId check, c_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, c_->Read(check, rid));
  EXPECT_EQ(v, "from-b");
  ASSERT_OK(c_->Commit(check));
}

TEST_F(MultiCrashTest, TwoClientsAndOwnerAllCrash) {
  // B and C alternate committed updates on A's page; then all three crash.
  // Recovery must stitch the page together from B's and C's logs in PSN
  // order, without merging any log files.
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId t0, b_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, b_->Insert(t0, pid, "seed"));
  ASSERT_OK(b_->Commit(t0));
  for (int round = 0; round < 2; ++round) {
    ASSERT_OK_AND_ASSIGN(TxnId tc, c_->Begin());
    ASSERT_OK(c_->Update(tc, rid, "c" + std::to_string(round)));
    ASSERT_OK(c_->Commit(tc));
    ASSERT_OK_AND_ASSIGN(TxnId tb, b_->Begin());
    ASSERT_OK(b_->Update(tb, rid, "b" + std::to_string(round)));
    ASSERT_OK(b_->Commit(tb));
  }

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->CrashNode(b_->id()));
  ASSERT_OK(cluster_->CrashNode(c_->id()));
  ASSERT_OK(cluster_->RestartNodes({a_->id(), b_->id(), c_->id()}));

  ASSERT_OK_AND_ASSIGN(TxnId check, a_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, a_->Read(check, rid));
  EXPECT_EQ(v, "b1");
  ASSERT_OK(a_->Commit(check));
}

TEST_F(MultiCrashTest, LosersOnBothNodesUndone) {
  ASSERT_OK_AND_ASSIGN(PageId pa, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(PageId pb, b_->AllocatePage());
  // Committed baselines.
  ASSERT_OK_AND_ASSIGN(TxnId s1, a_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId ra, a_->Insert(s1, pa, "a-base"));
  ASSERT_OK(a_->Commit(s1));
  ASSERT_OK_AND_ASSIGN(TxnId s2, b_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rb, b_->Insert(s2, pb, "b-base"));
  ASSERT_OK(b_->Commit(s2));
  // Losers on both nodes, with flushed records (worst case).
  ASSERT_OK_AND_ASSIGN(TxnId la, a_->Begin());
  ASSERT_OK(a_->Update(la, ra, "a-dirty"));
  ASSERT_OK(a_->log().Flush(a_->log().end_lsn()));
  ASSERT_OK_AND_ASSIGN(TxnId lb, b_->Begin());
  ASSERT_OK(b_->Update(lb, rb, "b-dirty"));
  ASSERT_OK(b_->log().Flush(b_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->CrashNode(b_->id()));
  ASSERT_OK(cluster_->RestartNodes({a_->id(), b_->id()}));
  EXPECT_EQ(cluster_->recovery_stats().at(a_->id()).losers_undone, 1u);
  EXPECT_EQ(cluster_->recovery_stats().at(b_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, c_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string va, c_->Read(check, ra));
  ASSERT_OK_AND_ASSIGN(std::string vb, c_->Read(check, rb));
  EXPECT_EQ(va, "a-base");
  EXPECT_EQ(vb, "b-base");
  ASSERT_OK(c_->Commit(check));
}

TEST_F(MultiCrashTest, CrossLoserOnRemotePageUndoneAcrossRecoveries) {
  // B's loser updated A's page; both crash. After both recover, the page
  // must show only committed data: redo replays B's committed prefix, then
  // B's phase C undoes the loser tail against the recovering A.
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId good, b_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, b_->Insert(good, pid, "good"));
  ASSERT_OK(b_->Commit(good));
  ASSERT_OK_AND_ASSIGN(TxnId loser, b_->Begin());
  ASSERT_OK(b_->Update(loser, rid, "evil"));
  ASSERT_OK(b_->log().Flush(b_->log().end_lsn()));

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->CrashNode(b_->id()));
  ASSERT_OK(cluster_->RestartNodes({a_->id(), b_->id()}));
  EXPECT_EQ(cluster_->recovery_stats().at(b_->id()).losers_undone, 1u);

  ASSERT_OK_AND_ASSIGN(TxnId check, c_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, c_->Read(check, rid));
  EXPECT_EQ(v, "good");
  ASSERT_OK(c_->Commit(check));
}

TEST_F(MultiCrashTest, SurvivorKeepsItsCachedPagesThroughDoubleCrash) {
  ASSERT_OK_AND_ASSIGN(PageId pid, a_->AllocatePage());
  ASSERT_OK_AND_ASSIGN(TxnId warm, c_->Begin());
  ASSERT_OK_AND_ASSIGN(RecordId rid, c_->Insert(warm, pid, "survivor"));
  ASSERT_OK(c_->Commit(warm));

  ASSERT_OK(cluster_->CrashNode(a_->id()));
  ASSERT_OK(cluster_->CrashNode(b_->id()));
  // C holds the page + X lock: unaffected by both crashes.
  ASSERT_OK_AND_ASSIGN(TxnId txn, c_->Begin());
  ASSERT_OK(c_->Update(txn, rid, "survivor-2"));
  ASSERT_OK(c_->Commit(txn));

  ASSERT_OK(cluster_->RestartNodes({a_->id(), b_->id()}));
  // A's restart saw the page cached at C and did not touch it.
  EXPECT_EQ(cluster_->recovery_stats().at(a_->id()).own_pages_recovered, 0u);
  ASSERT_OK_AND_ASSIGN(TxnId check, c_->Begin());
  ASSERT_OK_AND_ASSIGN(std::string v, c_->Read(check, rid));
  EXPECT_EQ(v, "survivor-2");
  ASSERT_OK(c_->Commit(check));
}

}  // namespace
}  // namespace clog
