// Quickstart: one owner node, one client node, client-based logging.
//
// Demonstrates the paper's core loop: the client fetches a page owned by
// the server, updates it, writes all log records to its OWN local log, and
// commits without sending a single message. Then the client crashes and
// restarts, recovering entirely from its local log.

#include <cstdio>

#include "core/cluster.h"

using namespace clog;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.dir = "/tmp/clog_quickstart";
  std::system(("rm -rf " + options.dir).c_str());

  Cluster cluster(options);
  Node* server = *cluster.AddNode();
  Node* client = *cluster.AddNode();

  // The server owns a page of customer records.
  PageId page = *server->AllocatePage();
  std::printf("server allocated page %s\n", page.ToString().c_str());

  // The client runs a transaction against the server's page. Log records
  // go to the client's local log; commit forces that log only.
  TxnHandle txn = *TxnHandle::Begin(client);
  RecordId customer = *txn.Insert(page, "alice: 3 widgets");
  std::uint64_t msgs_before =
      cluster.network().metrics().CounterValue("msg.total");
  Check(txn.Commit(), "commit");
  std::uint64_t commit_msgs =
      cluster.network().metrics().CounterValue("msg.total") - msgs_before;
  std::printf("commit sent %llu messages (client-based logging: zero)\n",
              static_cast<unsigned long long>(commit_msgs));

  // Crash the client; its cache, locks, and DPT evaporate. The committed
  // update exists only in the client's local log at this point.
  Check(cluster.CrashNode(client->id()), "crash");
  std::printf("client crashed; restarting through Section 2.3 recovery...\n");
  Check(cluster.RestartNode(client->id()), "restart");
  const auto& stats = cluster.recovery_stats().at(client->id());
  std::printf("recovery: %llu records analyzed, %llu redo applied\n",
              static_cast<unsigned long long>(stats.analysis_records),
              static_cast<unsigned long long>(stats.redo_applied));

  // The committed record survived.
  TxnHandle check = *TxnHandle::Begin(client);
  std::string value = *check.Read(customer);
  Check(check.Commit(), "read-back commit");
  std::printf("read back after crash: \"%s\"\n", value.c_str());

  std::printf("OK\n");
  return 0;
}
