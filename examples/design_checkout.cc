// CAD/CASE-style collaborative editing (paper Section 1): several engineer
// workstations share a design database hosted by one server. Each
// workstation caches the parts it works on (inter-transaction caching),
// edits them under page locks with callback-based consistency, and commits
// every edit to its own local log. The server's disk is touched only when
// pages are replaced — never at commit.

#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/workload.h"

using namespace clog;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.dir = "/tmp/clog_design";
  std::system(("rm -rf " + options.dir).c_str());

  Cluster cluster(options);
  Node* vault = *cluster.AddNode();  // The design vault (owner).
  Node* alice = *cluster.AddNode();
  Node* bob = *cluster.AddNode();

  // The vault hosts three assemblies, one page each.
  PageId chassis = *vault->AllocatePage();
  PageId motor = *vault->AllocatePage();
  PageId panel = *vault->AllocatePage();

  TxnHandle setup = *TxnHandle::Begin(vault);
  RecordId chassis_rev = *setup.Insert(chassis, "chassis rev A");
  RecordId motor_rev = *setup.Insert(motor, "motor rev A");
  RecordId panel_rev = *setup.Insert(panel, "panel rev A");
  Check(setup.Commit(), "vault setup");

  // Alice iterates on the chassis: after the first fetch, every edit is
  // local (cached page + cached lock + local log).
  for (int rev = 0; rev < 3; ++rev) {
    TxnHandle txn = *TxnHandle::Begin(alice);
    Check(txn.Update(chassis_rev,
                     "chassis rev B" + std::to_string(rev) + " by alice"),
          "alice edit");
    Check(txn.Commit(), "alice commit");
  }
  std::printf("alice made 3 chassis revisions (locally logged)\n");

  // Bob works on the motor concurrently — disjoint pages, zero
  // interference.
  TxnHandle bob_txn = *TxnHandle::Begin(bob);
  Check(bob_txn.Update(motor_rev, "motor rev B by bob"), "bob edit");
  Check(bob_txn.Commit(), "bob commit");

  // Bob now needs the chassis too: the vault calls Alice's exclusive lock
  // back, her latest revision travels with the callback, and Bob sees it.
  TxnHandle bob_read = *TxnHandle::Begin(bob);
  std::string latest = *bob_read.Read(chassis_rev);
  Check(bob_read.Commit(), "bob read");
  std::printf("bob reads alice's work via callback: \"%s\"\n",
              latest.c_str());

  // Concurrent contention on one page: both try to edit the panel. The
  // cluster's RunTransaction retries Busy and resolves deadlocks.
  Check(cluster.RunTransaction(
            alice->id(),
            [&](TxnHandle& t) { return t.Update(panel_rev, "panel by alice"); }),
        "alice panel");
  Check(cluster.RunTransaction(
            bob->id(),
            [&](TxnHandle& t) { return t.Update(panel_rev, "panel by bob"); }),
        "bob panel");

  // Alice takes the chassis back (exclusive again) before the outage.
  TxnHandle retake = *TxnHandle::Begin(alice);
  Check(retake.Update(chassis_rev, "chassis rev C by alice"),
        "alice retake");
  Check(retake.Commit(), "alice retake commit");

  // The vault crashes. Its disk version of the chassis is stale — the
  // committed revisions live in Alice's and Bob's logs/caches only. Alice
  // holds the page and its exclusive lock in her cache, so she keeps
  // working and committing against her local log during the outage. The
  // Section 2.3 protocol later reconstructs everything without merging
  // logs.
  Check(cluster.CrashNode(vault->id()), "vault crash");
  std::printf("vault crashed; engineers keep working on cached pages...\n");
  TxnHandle offline = *TxnHandle::Begin(alice);
  Check(offline.Update(chassis_rev, "chassis rev D by alice"),
        "alice offline edit");
  Check(offline.Commit(), "alice offline commit");

  Check(cluster.RestartNode(vault->id()), "vault restart");
  const auto& stats = cluster.recovery_stats().at(vault->id());
  std::printf(
      "vault recovered: %llu pages fetched from caches, %llu pages redone, "
      "%llu redo records applied\n",
      static_cast<unsigned long long>(stats.own_pages_fetched),
      static_cast<unsigned long long>(stats.own_pages_recovered),
      static_cast<unsigned long long>(stats.redo_applied));

  TxnHandle audit = *TxnHandle::Begin(vault);
  std::printf("final design state:\n");
  for (PageId pid : {chassis, motor, panel}) {
    std::vector<std::string> records = *audit.ScanPage(pid);
    for (const std::string& r : records) {
      std::printf("  %s\n", r.c_str());
    }
  }
  Check(audit.Commit(), "audit");

  std::printf("OK\n");
  return 0;
}
