// Crash drill: a four-node cluster (the topology of the paper's Figure 1)
// under a mixed workload, with every crash combination exercised in turn —
// single client, single owner, owner+client together (Section 2.4).
// Prints per-phase recovery statistics so the recovery pipeline can be
// watched end to end.

#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/workload.h"

using namespace clog;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void PrintStats(const char* label, const RestartRecovery::Stats& s) {
  std::printf(
      "%s: analyzed=%llu peers=%llu fetched=%llu redone=%llu "
      "redo_applied=%llu losers=%llu sim_ms=%.2f\n",
      label, static_cast<unsigned long long>(s.analysis_records),
      static_cast<unsigned long long>(s.peers_queried),
      static_cast<unsigned long long>(s.own_pages_fetched),
      static_cast<unsigned long long>(s.own_pages_recovered),
      static_cast<unsigned long long>(s.redo_applied),
      static_cast<unsigned long long>(s.losers_undone),
      static_cast<double>(s.sim_ns) / 1e6);
}

}  // namespace

int main() {
  ClusterOptions options;
  options.dir = "/tmp/clog_crash_drill";
  std::system(("rm -rf " + options.dir).c_str());

  Cluster cluster(options);
  // Figure 1: nodes 1 and 3 own databases; 2 and 4 are pure clients with
  // local logs.
  Node* owner1 = *cluster.AddNode();
  Node* client2 = *cluster.AddNode();
  Node* owner3 = *cluster.AddNode();
  Node* client4 = *cluster.AddNode();

  auto pages1 = *AllocatePopulatedPages(&cluster, owner1->id(), 4, 6, 48, 7);
  auto pages3 = *AllocatePopulatedPages(&cluster, owner3->id(), 4, 6, 48, 8);
  std::vector<PageId> all_pages = pages1;
  all_pages.insert(all_pages.end(), pages3.begin(), pages3.end());

  auto run_mix = [&](const char* phase) {
    WorkloadConfig config;
    config.seed = 1234;
    config.txns_per_session = 8;
    config.ops_per_txn = 4;
    config.records_per_page = 6;
    config.payload_bytes = 48;
    WorkloadDriver driver(&cluster, config,
                          {{owner1->id(), all_pages},
                           {client2->id(), all_pages},
                           {owner3->id(), all_pages},
                           {client4->id(), all_pages}});
    Check(driver.Run(), "workload");
    std::printf("%s: %llu txns committed, %llu deadlock aborts\n", phase,
                static_cast<unsigned long long>(driver.stats().committed),
                static_cast<unsigned long long>(driver.stats().aborted_deadlock));
  };

  run_mix("warmup mix");

  // Drill 1: a pure client crashes.
  Check(cluster.CrashNode(client2->id()), "crash client2");
  Check(cluster.RestartNode(client2->id()), "restart client2");
  PrintStats("client2 recovery", cluster.recovery_stats().at(client2->id()));

  run_mix("mix after client crash");

  // Drill 2: an owner crashes; updates by every other node on its pages
  // must be reconstructed from their logs and caches.
  Check(cluster.CrashNode(owner1->id()), "crash owner1");
  Check(cluster.RestartNode(owner1->id()), "restart owner1");
  PrintStats("owner1 recovery", cluster.recovery_stats().at(owner1->id()));

  run_mix("mix after owner crash");

  // Drill 3: owner and client crash together (Section 2.4).
  Check(cluster.CrashNode(owner3->id()), "crash owner3");
  Check(cluster.CrashNode(client4->id()), "crash client4");
  Check(cluster.RestartNodes({owner3->id(), client4->id()}),
        "joint restart");
  PrintStats("owner3 recovery", cluster.recovery_stats().at(owner3->id()));
  PrintStats("client4 recovery", cluster.recovery_stats().at(client4->id()));

  run_mix("final mix");

  std::printf("OK\n");
  return 0;
}
