// Order-entry OLTP over HeapTable: the office-information-system workload
// from the paper's introduction. Three branch-office nodes record orders
// into a shared table hosted at headquarters. Every order is a local
// transaction (client-based logging: zero commit messages); the table
// grows transparently across pages; a headquarters crash mid-day loses
// nothing.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/heap_table.h"

using namespace clog;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.dir = "/tmp/clog_order_entry";
  std::system(("rm -rf " + options.dir).c_str());

  Cluster cluster(options);
  Node* hq = *cluster.AddNode();
  Node* branch_a = *cluster.AddNode();
  Node* branch_b = *cluster.AddNode();
  Node* branch_c = *cluster.AddNode();

  HeapTable orders = *HeapTable::Create(&cluster, hq->id());
  std::printf("orders table created at headquarters (catalog %s)\n",
              orders.catalog().ToString().c_str());

  // Each branch books 40 orders, one committed transaction each.
  Random rng(2026);
  Node* branches[] = {branch_a, branch_b, branch_c};
  const char* names[] = {"A", "B", "C"};
  std::uint64_t msgs_before =
      cluster.network().metrics().CounterValue("msg.total");
  int booked = 0;
  for (int round = 0; round < 40; ++round) {
    for (int b = 0; b < 3; ++b) {
      std::string order = std::string("order#") + names[b] +
                          std::to_string(round) + " qty=" +
                          std::to_string(1 + rng.Uniform(99)) +
                          " sku=" + rng.Bytes(8) +
                          " notes=" + rng.Bytes(180);  // Realistic row size.
      Check(cluster.RunTransaction(branches[b]->id(),
                                   [&](TxnHandle& txn) {
                                     return orders.Insert(txn, order)
                                         .status();
                                   }),
            "book order");
      ++booked;
    }
  }
  std::uint64_t msgs =
      cluster.network().metrics().CounterValue("msg.total") - msgs_before;
  std::printf("%d orders booked from 3 branches; %llu cluster messages "
              "(page fetches + callbacks only — commits were free)\n",
              booked, static_cast<unsigned long long>(msgs));

  // Headquarters crashes mid-day.
  Check(cluster.CrashNode(hq->id()), "hq crash");
  std::printf("headquarters crashed...\n");
  Check(cluster.RestartNode(hq->id()), "hq restart");
  const auto& stats = cluster.recovery_stats().at(hq->id());
  std::printf("recovered: %llu pages fetched from branch caches, %llu "
              "redo-coordinated, %llu redo records applied\n",
              static_cast<unsigned long long>(stats.own_pages_fetched),
              static_cast<unsigned long long>(stats.own_pages_recovered),
              static_cast<unsigned long long>(stats.redo_applied));

  // Audit the books.
  std::size_t count = 0;
  std::size_t pages = 0;
  Check(cluster.RunTransaction(hq->id(),
                               [&](TxnHandle& txn) {
                                 CLOG_ASSIGN_OR_RETURN(count,
                                                       orders.Count(txn));
                                 CLOG_ASSIGN_OR_RETURN(auto dp,
                                                       orders.DataPages(txn));
                                 pages = dp.size();
                                 return Status::OK();
                               }),
        "audit");
  std::printf("audit: %zu orders across %zu table pages — all present\n",
              count, pages);
  if (count != static_cast<std::size_t>(booked)) {
    std::fprintf(stderr, "FATAL: lost orders!\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
