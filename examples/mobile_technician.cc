// The paper's Section 1.2 motivating scenario: a utility-company repair
// technician carries a notebook computer. Customer data lives on the
// office server; the technician checks pages out, works at the customer
// site recording repairs with full transactional durability — committing
// to the notebook's LOCAL log, never calling the office — and the office
// sees everything once the pages flow home.

#include <cstdio>
#include <string>
#include <vector>

#include "core/cluster.h"

using namespace clog;

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "FATAL %s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.dir = "/tmp/clog_mobile";
  std::system(("rm -rf " + options.dir).c_str());

  Cluster cluster(options);
  Node* office = *cluster.AddNode();
  Node* notebook = *cluster.AddNode();

  // The office database: one page per customer.
  PageId customer_page = *office->AllocatePage();
  TxnHandle setup = *TxnHandle::Begin(office);
  RecordId complaint =
      *setup.Insert(customer_page, "ticket#871: water heater noise");
  Check(setup.Commit(), "office setup");

  // Morning: the technician checks the customer's page out to the
  // notebook (one page fetch — the last office contact of the day).
  TxnHandle checkout = *TxnHandle::Begin(notebook);
  std::string ticket = *checkout.Read(complaint);
  Check(checkout.Commit(), "checkout");
  std::printf("technician checked out: %s\n", ticket.c_str());

  // On site: several durable work orders, each a local transaction. Count
  // the messages: there must be none (no calls to the office).
  std::uint64_t msgs_before =
      cluster.network().metrics().CounterValue("msg.total");
  std::vector<RecordId> work_orders;
  const char* notes[] = {
      "ticket#871: diagnosed worn bearing",
      "ticket#871: replaced bearing, part BRG-42",
      "ticket#871: tested 30min, noise gone, customer signed",
  };
  for (const char* note : notes) {
    TxnHandle txn = *TxnHandle::Begin(notebook);
    work_orders.push_back(*txn.Insert(customer_page, note));
    Check(txn.Commit(), "work order commit");
  }
  std::uint64_t field_msgs =
      cluster.network().metrics().CounterValue("msg.total") - msgs_before;
  std::printf("3 durable work orders recorded, %llu messages to the office\n",
              static_cast<unsigned long long>(field_msgs));

  // The notebook is dropped in a puddle (crash). Every committed work
  // order survives in its local log and recovery rebuilds the page.
  Check(cluster.CrashNode(notebook->id()), "crash");
  Check(cluster.RestartNode(notebook->id()), "restart");
  std::printf("notebook crashed and recovered in the field\n");

  // Back at the office: the office reads the customer page; the callback
  // pulls the technician's updates home.
  TxnHandle review = *TxnHandle::Begin(office);
  auto records = *review.ScanPage(customer_page);
  Check(review.Commit(), "office review");
  std::printf("office now sees %zu records:\n", records.size());
  for (const std::string& r : records) std::printf("  %s\n", r.c_str());

  std::printf("OK\n");
  return 0;
}
