// clog_logdump — prints a node's write-ahead log, record by record.
//
// Usage: clog_logdump <node.log> [--from <lsn>] [--txn <id>] [--page o:n]
//
// The workhorse debugging tool for this storage engine: shows the exact
// record stream restart analysis and NodePSNList construction would see,
// including the PSN-before values the distributed redo ordering is built
// on. Reads the file directly (no node required).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

using namespace clog;

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: clog_logdump <node.log> [--from <lsn>] [--txn <id>] "
               "[--page <owner:page_no>] [--stats]\n");
  std::exit(2);
}

std::optional<PageId> ParsePageId(const std::string& s) {
  std::size_t colon = s.find(':');
  if (colon == std::string::npos) return std::nullopt;
  return PageId{static_cast<NodeId>(std::strtoul(s.c_str(), nullptr, 10)),
                static_cast<std::uint32_t>(
                    std::strtoul(s.c_str() + colon + 1, nullptr, 10))};
}

const char* OpName(RecordOp op) {
  switch (op) {
    case RecordOp::kInsert:
      return "INSERT";
    case RecordOp::kUpdate:
      return "UPDATE";
    case RecordOp::kDelete:
      return "DELETE";
    case RecordOp::kFormat:
      return "FORMAT";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  std::string path = argv[1];
  Lsn from = LogManager::first_lsn();
  std::optional<TxnId> txn_filter;
  std::optional<PageId> page_filter;
  bool stats_only = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--from" && i + 1 < argc) {
      from = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--txn" && i + 1 < argc) {
      txn_filter = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--page" && i + 1 < argc) {
      page_filter = ParsePageId(argv[++i]);
      if (!page_filter.has_value()) Usage();
    } else if (arg == "--stats") {
      stats_only = true;
    } else {
      Usage();
    }
  }

  LogManager log;
  Status st = log.Open(path);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", path.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  Result<Lsn> master = log.LoadMaster();
  std::printf("# %s  end_lsn=%llu  master_checkpoint=%llu\n", path.c_str(),
              static_cast<unsigned long long>(log.end_lsn()),
              static_cast<unsigned long long>(master.ok() ? *master : 0));

  LogCursor cursor(&log, from);
  LogRecord rec;
  Lsn lsn = kNullLsn;
  Status scan;
  std::uint64_t counts[10] = {};
  std::uint64_t total = 0;
  while (cursor.Next(&rec, &lsn, &scan)) {
    ++total;
    ++counts[static_cast<int>(rec.type)];
    if (txn_filter.has_value() && rec.txn != *txn_filter) continue;
    if (page_filter.has_value() &&
        (rec.type != LogRecordType::kUpdate &&
         rec.type != LogRecordType::kClr)) {
      continue;
    }
    if (page_filter.has_value() && rec.page != *page_filter) continue;
    if (stats_only) continue;

    std::printf("%-10llu %-10s txn=%llu prev=%llu",
                static_cast<unsigned long long>(lsn),
                std::string(LogRecordTypeName(rec.type)).c_str(),
                static_cast<unsigned long long>(rec.txn),
                static_cast<unsigned long long>(rec.prev_lsn));
    switch (rec.type) {
      case LogRecordType::kUpdate:
      case LogRecordType::kClr:
        std::printf(" page=%s psn_before=%llu op=%s slot=%u redo=%zuB "
                    "undo=%zuB",
                    rec.page.ToString().c_str(),
                    static_cast<unsigned long long>(rec.psn_before),
                    OpName(rec.op), rec.slot, rec.redo_image.size(),
                    rec.undo_image.size());
        if (rec.type == LogRecordType::kClr) {
          std::printf(" undo_next=%llu",
                      static_cast<unsigned long long>(rec.undo_next_lsn));
        }
        break;
      case LogRecordType::kSavepoint:
        std::printf(" name=%s", rec.savepoint_name.c_str());
        break;
      case LogRecordType::kCheckpointEnd:
        std::printf(" begin=%llu dpt=%zu att=%zu",
                    static_cast<unsigned long long>(rec.checkpoint_begin_lsn),
                    rec.dpt.size(), rec.att.size());
        for (const DptEntry& e : rec.dpt) {
          std::printf("\n    dpt %s psn=%llu curr=%llu redo=%llu",
                      e.pid.ToString().c_str(),
                      static_cast<unsigned long long>(e.psn),
                      static_cast<unsigned long long>(e.curr_psn),
                      static_cast<unsigned long long>(e.redo_lsn));
        }
        break;
      default:
        break;
    }
    std::printf("\n");
  }
  if (!scan.ok()) {
    std::fprintf(stderr, "scan stopped: %s\n", scan.ToString().c_str());
    return 1;
  }
  std::printf("# %llu records", static_cast<unsigned long long>(total));
  static const char* kNames[] = {"",       "begin", "commit", "abort",
                                 "end",    "update", "clr",   "savepoint",
                                 "ckpt_b", "ckpt_e"};
  for (int t = 1; t <= 9; ++t) {
    if (counts[t] > 0) {
      std::printf("  %s=%llu", kNames[t],
                  static_cast<unsigned long long>(counts[t]));
    }
  }
  std::printf("\n");
  return 0;
}
