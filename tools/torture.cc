// Seeded crash-schedule torture runner (see docs/fault_injection.md).
//
//   tools/torture --seed=N [--count=K] [--steps=S] [--nodes=N] [--verbose]
//
// Runs K schedules starting at the given seed and prints one verdict line
// per seed. The same seed always replays the same schedule the tests ran —
// a failing test names its seed, this binary shows the event trace. Exits
// non-zero if any schedule fails.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/torture.h"

namespace {

bool ParseU64(const char* arg, const char* name, std::uint64_t* out) {
  std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtoull(arg + len + 1, nullptr, 10);
  return true;
}

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --seed=N [--count=K] [--steps=S] [--nodes=N]\n"
               "          [--pages=P] [--records=R] [--crash-during-recovery]\n"
               "          [--group-commit] [--adaptive] [--media-failure]\n"
               "          [--hammer-restore] [--elastic]\n"
               "          [--crash-during-handoff] [--verbose]\n"
               "\n"
               "Replays the deterministic fault/crash schedule for each seed\n"
               "and checks the four torture invariants. --verbose prints the\n"
               "full event trace of every schedule. --crash-during-recovery\n"
               "forces a mid-recovery crash into every repair pass (a node\n"
               "dies at a seeded phase boundary and must be re-recovered).\n"
               "--group-commit runs every node with commit-force coalescing\n"
               "on; commits park and the harness polls for their acks.\n"
               "--adaptive runs the cluster under LogStrategy::kAdaptive\n"
               "with dependency-parallel redo, mixes per-transaction\n"
               "physical overrides into the workload, and checks the\n"
               "redo-fidelity invariant (logical records replay to the\n"
               "same page bytes) on the final joint recovery.\n"
               "--media-failure mixes whole-device losses (data and log)\n"
               "into the schedule, runs every node with fuzzy page archives,\n"
               "and checks the archive-consistency and poison-fencing\n"
               "invariants on top of the usual four.\n"
               "--hammer-restore layers instant restore on the media mix:\n"
               "every node rebuilds lost pages on demand while serving\n"
               "traffic, the harness sweeps one page per node per step, and\n"
               "two more invariants hold — a restoring page never serves\n"
               "stale data, and restore completion survives crashes without\n"
               "PSN regression.\n"
               "--elastic mixes membership churn into the schedule: page\n"
               "handoffs between nodes via the four-phase crash-restartable\n"
               "protocol, node joins, and graceful leaves, with three extra\n"
               "invariants (exactly one durable owner per page, no committed\n"
               "update lost across a transfer, no durable PSN regression at\n"
               "the new owner). --crash-during-handoff forces every handoff\n"
               "to kill one endpoint at a seeded phase boundary, so the\n"
               "durable ledgers re-enter on every transfer.\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 0;
  std::uint64_t count = 1;
  std::uint64_t steps = 40;
  std::uint64_t nodes = 3;
  std::uint64_t pages = 2;
  std::uint64_t records = 4;
  bool have_seed = false;
  bool verbose = false;
  bool crash_during_recovery = false;
  bool group_commit = false;
  bool adaptive = false;
  bool media_failure = false;
  bool hammer_restore = false;
  bool elastic = false;
  bool crash_during_handoff = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::uint64_t v = 0;
    if (ParseU64(arg, "--seed", &v)) {
      seed = v;
      have_seed = true;
    } else if (ParseU64(arg, "--count", &count) ||
               ParseU64(arg, "--steps", &steps) ||
               ParseU64(arg, "--nodes", &nodes) ||
               ParseU64(arg, "--pages", &pages) ||
               ParseU64(arg, "--records", &records)) {
      // Parsed into its variable.
    } else if (std::strcmp(arg, "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(arg, "--crash-during-recovery") == 0) {
      crash_during_recovery = true;
    } else if (std::strcmp(arg, "--group-commit") == 0) {
      group_commit = true;
    } else if (std::strcmp(arg, "--adaptive") == 0) {
      adaptive = true;
    } else if (std::strcmp(arg, "--media-failure") == 0) {
      media_failure = true;
    } else if (std::strcmp(arg, "--hammer-restore") == 0) {
      hammer_restore = true;
    } else if (std::strcmp(arg, "--elastic") == 0) {
      elastic = true;
    } else if (std::strcmp(arg, "--crash-during-handoff") == 0) {
      crash_during_handoff = true;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (!have_seed || count == 0) {
    Usage(argv[0]);
    return 2;
  }

  int failures = 0;
  for (std::uint64_t s = seed; s < seed + count; ++s) {
    clog::TortureOptions opts;
    opts.seed = s;
    opts.steps = static_cast<int>(steps);
    opts.num_nodes = static_cast<int>(nodes);
    opts.pages_per_node = static_cast<int>(pages);
    opts.records_per_page = static_cast<int>(records);
    opts.keep_events = verbose;
    opts.crash_during_recovery = crash_during_recovery;
    opts.group_commit = group_commit;
    opts.adaptive = adaptive;
    opts.media_failure = media_failure;
    opts.hammer_restore = hammer_restore;
    opts.elastic = elastic;
    opts.crash_during_handoff = crash_during_handoff;
    clog::TortureReport report = clog::RunTortureSchedule(opts);
    if (verbose) {
      for (const std::string& e : report.events) {
        std::printf("  %s\n", e.c_str());
      }
    }
    std::printf("%s\n", report.Summary().c_str());
    if (!report.ok) {
      if (!report.trace_tail.empty()) {
        std::printf("--- trace tail (newest events per node) ---\n%s",
                    report.trace_tail.c_str());
      }
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d of %llu schedule(s) FAILED\n", failures,
                 static_cast<unsigned long long>(count));
    return 1;
  }
  return 0;
}
