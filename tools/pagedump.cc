// clog_pagedump — prints the pages of a node's database file.
//
// Usage: clog_pagedump <node.db> [<page_no>]
//
// Shows each page's header (id, PSN, pageLSN, checksum state) and the
// slotted-record directory — the on-disk truth the recovery comparisons
// (disk PSN vs DPT CurrPSN, Section 2.3.2) are made against.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

using namespace clog;

namespace {

void DumpPage(DiskManager* disk, std::uint32_t page_no) {
  Page page;
  Status st = disk->ReadPage(page_no, &page);
  if (st.IsNotFound()) {
    std::printf("page %u: beyond end of file\n", page_no);
    return;
  }
  if (st.IsCorruption()) {
    std::printf("page %u: CORRUPT (%s)\n", page_no, st.ToString().c_str());
    return;
  }
  if (!st.ok()) {
    std::printf("page %u: read error (%s)\n", page_no, st.ToString().c_str());
    return;
  }
  std::printf("page %u: id=%s psn=%llu page_lsn=%llu type=%u checksum=ok\n",
              page_no, page.id().ToString().c_str(),
              static_cast<unsigned long long>(page.psn()),
              static_cast<unsigned long long>(page.page_lsn()),
              static_cast<unsigned>(page.type()));
  if (page.type() != PageType::kData) return;
  SlottedPage sp(&page);
  std::printf("  slots=%u live=%u free=%zu max_insert=%zu\n", sp.SlotCount(),
              sp.LiveRecords(), sp.FreeSpace(), sp.MaxInsertSize());
  for (SlotId s = 0; s < sp.SlotCount(); ++s) {
    if (!sp.IsLive(s)) {
      std::printf("  slot %u: <dead>\n", s);
      continue;
    }
    Result<Slice> value = sp.Read(s);
    if (!value.ok()) continue;
    std::string preview = value->ToString().substr(0, 40);
    for (char& c : preview) {
      if (c < 0x20 || c > 0x7E) c = '.';
    }
    std::printf("  slot %u: %zuB \"%s%s\"\n", s, value->size(),
                preview.c_str(), value->size() > 40 ? "..." : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: clog_pagedump <node.db> [<page_no>]\n");
    return 2;
  }
  DiskManager disk;
  Status st = disk.Open(argv[1]);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", argv[1],
                 st.ToString().c_str());
    return 1;
  }
  if (argc >= 3) {
    DumpPage(&disk, static_cast<std::uint32_t>(
                        std::strtoul(argv[2], nullptr, 10)));
    return 0;
  }
  Result<std::uint32_t> pages = disk.NumPages();
  if (!pages.ok()) {
    std::fprintf(stderr, "%s\n", pages.status().ToString().c_str());
    return 1;
  }
  std::printf("# %s: %u pages\n", argv[1], *pages);
  for (std::uint32_t p = 0; p < *pages; ++p) DumpPage(&disk, p);
  return 0;
}
