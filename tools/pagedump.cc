// clog_pagedump — prints or scrubs the pages of a node's database file.
//
// Usage: clog_pagedump <node.db> [<page_no>]
//        clog_pagedump --verify <node.db>
//
// Shows each page's header (id, PSN, pageLSN, checksum state) and the
// slotted-record directory — the on-disk truth the recovery comparisons
// (disk PSN vs DPT CurrPSN, Section 2.3.2) are made against.
//
// --verify is the whole-file scrubber: it reads every page, re-checks each
// checksum and (for data pages) the slot directory's structural sanity, and
// prints one PASS/FAIL line per file. Exit status is non-zero if any page
// fails — the media-failure drill in docs/RECOVERY_WALKTHROUGH.md runs it
// before and after archive restores. The same flag also accepts a
// node.archive file (the archive uses the identical page format).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

using namespace clog;

namespace {

void DumpPage(DiskManager* disk, std::uint32_t page_no) {
  Page page;
  Status st = disk->ReadPage(page_no, &page);
  if (st.IsNotFound()) {
    std::printf("page %u: beyond end of file\n", page_no);
    return;
  }
  if (st.IsCorruption()) {
    std::printf("page %u: CORRUPT (%s)\n", page_no, st.ToString().c_str());
    return;
  }
  if (!st.ok()) {
    std::printf("page %u: read error (%s)\n", page_no, st.ToString().c_str());
    return;
  }
  std::printf("page %u: id=%s psn=%llu page_lsn=%llu type=%u checksum=ok\n",
              page_no, page.id().ToString().c_str(),
              static_cast<unsigned long long>(page.psn()),
              static_cast<unsigned long long>(page.page_lsn()),
              static_cast<unsigned>(page.type()));
  if (page.type() != PageType::kData) return;
  SlottedPage sp(&page);
  std::printf("  slots=%u live=%u free=%zu max_insert=%zu\n", sp.SlotCount(),
              sp.LiveRecords(), sp.FreeSpace(), sp.MaxInsertSize());
  for (SlotId s = 0; s < sp.SlotCount(); ++s) {
    if (!sp.IsLive(s)) {
      std::printf("  slot %u: <dead>\n", s);
      continue;
    }
    Result<Slice> value = sp.Read(s);
    if (!value.ok()) continue;
    std::string preview = value->ToString().substr(0, 40);
    for (char& c : preview) {
      if (c < 0x20 || c > 0x7E) c = '.';
    }
    std::printf("  slot %u: %zuB \"%s%s\"\n", s, value->size(),
                preview.c_str(), value->size() > 40 ? "..." : "");
  }
}

/// Whole-file scrub: every page must read back checksum-clean, and a data
/// page's slot directory must be structurally sound (every live slot
/// readable). Returns the number of bad pages.
int VerifyFile(const char* path) {
  DiskManager disk;
  Status st = disk.Open(path);
  if (!st.ok()) {
    std::printf("%s: FAIL (cannot open: %s)\n", path, st.ToString().c_str());
    return 1;
  }
  Result<std::uint32_t> pages = disk.NumPages();
  if (!pages.ok()) {
    std::printf("%s: FAIL (%s)\n", path, pages.status().ToString().c_str());
    return 1;
  }
  int bad = 0;
  for (std::uint32_t p = 0; p < *pages; ++p) {
    Page page;
    Status rd = disk.ReadPage(p, &page);
    if (!rd.ok()) {
      std::printf("%s: page %u BAD (%s)\n", path, p, rd.ToString().c_str());
      ++bad;
      continue;
    }
    if (page.type() != PageType::kData) continue;
    SlottedPage sp(&page);
    for (SlotId s = 0; s < sp.SlotCount(); ++s) {
      if (!sp.IsLive(s)) continue;
      if (!sp.Read(s).ok()) {
        std::printf("%s: page %u slot %u BAD (unreadable live record)\n",
                    path, p, s);
        ++bad;
        break;
      }
    }
  }
  std::printf("%s: %s (%u pages, %d bad)\n", path, bad == 0 ? "PASS" : "FAIL",
              *pages, bad);
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--verify") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: clog_pagedump --verify <node.db>...\n");
      return 2;
    }
    int bad = 0;
    for (int i = 2; i < argc; ++i) bad += VerifyFile(argv[i]);
    return bad == 0 ? 0 : 1;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: clog_pagedump <node.db> [<page_no>]\n"
                 "       clog_pagedump --verify <node.db>...\n");
    return 2;
  }
  DiskManager disk;
  Status st = disk.Open(argv[1]);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", argv[1],
                 st.ToString().c_str());
    return 1;
  }
  if (argc >= 3) {
    DumpPage(&disk, static_cast<std::uint32_t>(
                        std::strtoul(argv[2], nullptr, 10)));
    return 0;
  }
  Result<std::uint32_t> pages = disk.NumPages();
  if (!pages.ok()) {
    std::fprintf(stderr, "%s\n", pages.status().ToString().c_str());
    return 1;
  }
  std::printf("# %s: %u pages\n", argv[1], *pages);
  for (std::uint32_t p = 0; p < *pages; ++p) DumpPage(&disk, p);
  return 0;
}
