// Structured-trace dump tool (see docs/observability.md).
//
//   tools/tracedump FILE [--chrome] [--tail=K]
//
// FILE is a binary trace written by TraceSink::WriteBinaryFile (the torture
// harness and tests write these for failing runs). Default output is the
// human-readable per-node listing; --chrome emits Chrome trace_event JSON
// for chrome://tracing / Perfetto; --tail=K limits text output to the
// newest K events per node.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/message.h"
#include "trace/trace_export.h"
#include "trace/trace_sink.h"

namespace {

void Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s FILE [--chrome] [--tail=K]\n"
               "\n"
               "Dumps a binary TraceSink file. Default: human-readable\n"
               "per-node event listing. --chrome: Chrome trace_event JSON\n"
               "(open in chrome://tracing or Perfetto). --tail=K: newest K\n"
               "events per node only (text mode).\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  bool chrome = false;
  std::size_t tail = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--chrome") == 0) {
      chrome = true;
    } else if (std::strncmp(arg, "--tail=", 7) == 0) {
      tail = static_cast<std::size_t>(std::strtoull(arg + 7, nullptr, 10));
    } else if (arg[0] == '-') {
      Usage(argv[0]);
      return 2;
    } else if (path == nullptr) {
      path = arg;
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (path == nullptr) {
    Usage(argv[0]);
    return 2;
  }

  clog::TraceSink sink;
  clog::Status st = sink.ReadBinaryFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "tracedump: %s: %s\n", path, st.ToString().c_str());
    return 1;
  }

  clog::TraceFormatOptions fmt;
  fmt.msg_name = [](std::uint32_t t) {
    return clog::MsgTypeName(static_cast<clog::MsgType>(t));
  };

  std::string out = chrome ? clog::ChromeTraceJson(sink, fmt)
                           : clog::FormatTrace(sink, tail, fmt);
  std::fwrite(out.data(), 1, out.size(), stdout);
  if (!chrome) {
    std::printf("total events=%llu hash=%llx\n",
                static_cast<unsigned long long>(sink.total_emitted()),
                static_cast<unsigned long long>(sink.Hash()));
  }
  return 0;
}
