#include "node/node.h"

#include <algorithm>
#include <cassert>

#include "common/fsutil.h"
#include "fault/fault_injector.h"
#include "trace/trace_sink.h"

namespace clog {

Node::Node(NodeId id, NodeOptions options, Network* network,
           DeadlockDetector* detector)
    : id_(id),
      options_(std::move(options)),
      network_(network),
      detector_(detector),
      pool_(options_.buffer_frames),
      txns_(id),
      trace_(options_.trace_sink),
      ctr_txn_begins_(&metrics_.GetCounter("txn.begins")),
      ctr_txn_commits_(&metrics_.GetCounter("txn.commits")),
      ctr_txn_aborts_(&metrics_.GetCounter("txn.aborts")),
      ctr_txn_updates_(&metrics_.GetCounter("txn.updates")),
      ctr_txn_reads_(&metrics_.GetCounter("txn.reads")),
      ctr_disk_page_reads_(&metrics_.GetCounter("disk.page_reads")),
      ctr_disk_page_writes_(&metrics_.GetCounter("disk.page_writes")),
      ctr_log_forces_(&metrics_.GetCounter("log.forces")),
      hist_commit_ns_(&metrics_.GetHistogram("commit.latency_ns")),
      hist_force_ns_(&metrics_.GetHistogram("force.latency_ns")),
      ctr_txn_begins_adaptive_(&metrics_.GetCounter("txn.begins_adaptive")),
      ctr_txn_commits_logical_(&metrics_.GetCounter("txn.commits_logical")),
      ctr_txn_logical_records_(&metrics_.GetCounter("txn.logical_records")),
      ctr_txn_upgrades_(&metrics_.GetCounter("txn.upgrades")) {
  pool_.SetEvictionHandler([this](PageId pid, Page* page, bool dirty) {
    return OnEviction(pid, page, dirty);
  });
  pool_.set_trace_sink(trace_, id_);
  global_locks_.set_trace_sink(trace_, id_);
}

Node::~Node() = default;

Status Node::OpenStorage() {
  disk_.set_fault_injector(options_.fault_injector, id_);
  log_.set_fault_injector(options_.fault_injector, id_);
  log_.set_trace_sink(trace_, id_);
  CLOG_RETURN_IF_ERROR(disk_.Open(options_.dir + "/node.db"));
  CLOG_RETURN_IF_ERROR(space_map_.Open(options_.dir + "/node.map"));
  if (options_.has_local_log) {
    CLOG_RETURN_IF_ERROR(log_.Open(options_.dir + "/node.log"));
    log_.set_capacity(options_.log_capacity_bytes);
  }
  // Media-recovery side state. The poison ledger is on the metadata device
  // (with the space map); it keeps no file while empty. The restore ledger
  // shares the machinery: pages an interrupted instant-restore epoch planned
  // but never finished, re-probed as lost-page candidates at restart.
  CLOG_RETURN_IF_ERROR(poison_.Open(options_.dir));
  CLOG_RETURN_IF_ERROR(restore_.Open(options_.dir));
  // Elastic membership: the durable ownership ledger (in-flight handoffs,
  // ceded tombstones, adopted pages). File-less on nodes that never handed
  // off a page.
  CLOG_RETURN_IF_ERROR(handoff_.Open(options_.dir));
  if (options_.logging_policy.archive.enabled) {
    CLOG_RETURN_IF_ERROR(archive_.Open(options_.dir));
  }
  return Status::OK();
}

Status Node::Start() {
  if (state_ != NodeState::kDown) {
    return Status::FailedPrecondition("node already started");
  }
  if (!options_.has_local_log &&
      options_.logging_mode != LoggingMode::kShipToOwner) {
    return Status::InvalidArgument(
        "nodes without a local log must use kShipToOwner");
  }
  CLOG_RETURN_IF_ERROR(OpenStorage());
  network_->RegisterNode(id_, this);
  network_->SetNodeUp(id_, true);
  state_ = NodeState::kUp;
  recovery_redo_done_ = true;
  RegisterHandoffState();
  return Status::OK();
}

void Node::Crash() {
  pool_.DropAll();
  dpt_.Clear();
  lock_cache_.Clear();
  global_locks_.Clear();
  for (const Transaction* t : txns_.Active()) detector_->RemoveTxn(t->id);
  txns_.Clear();
  replacers_.clear();
  // Volatile handoff fences die with the crash; restart rebuilds them from
  // the durable ledger's in-flight records.
  handoff_fenced_.clear();
  last_ckpt_begin_ = kNullLsn;
  // Parked commits die with the crash: they were never ACKed, their COMMIT
  // records ride the unforced tail, and recovery decides their fate.
  commit_group_.clear();
  completing_group_ = false;
  log_.Abandon();   // Unforced log tail is lost with the crash.
  disk_.Close().ok();
  archive_.Close().ok();
  ckpts_since_archive_ = 0;
  // Volatile restore plans die with the crash; the durable restore ledger
  // survives and tells the next restart which pages were still rebuilding.
  restore_.Reset();
  // Media failure: an armed device loss takes effect at the crash point.
  // The data device is node.db alone; the log device is node.log plus its
  // master pointer (which points into the log and must die with it). The
  // space map, poison ledger, log mark, and archive are modeled as living
  // on separate metadata/archive devices and survive.
  if (options_.fault_injector != nullptr) {
    switch (options_.fault_injector->OnCrash(id_)) {
      case DeviceFault::kNone:
        break;
      case DeviceFault::kDestroyDataFile:
        RemoveFileIfExists(options_.dir + "/node.db").ok();
        metrics_.GetCounter("media.data_device_lost").Add(1);
        break;
      case DeviceFault::kDestroyLogFile:
        RemoveFileIfExists(options_.dir + "/node.log").ok();
        RemoveFileIfExists(options_.dir + "/node.log.master").ok();
        metrics_.GetCounter("media.log_device_lost").Add(1);
        break;
    }
  }
  state_ = NodeState::kDown;
  recovery_redo_done_ = false;
  parked_owners_.clear();
  // Adaptive-logging volatile state: stashes died with their transactions,
  // the last-committed-writer hints and the recovery skip set are rebuilt
  // from the log by the next restart.
  live_logical_txns_ = 0;
  page_last_commit_.clear();
  recovery_skip_txns_.clear();
  network_->SetNodeUp(id_, false);
  metrics_.GetCounter("node.crashes").Add(1);
  if (trace_ != nullptr) trace_->Emit(id_, TraceEventType::kNodeCrash);
}

// ---------------------------------------------------------------------------
// Simulated-cost charging
// ---------------------------------------------------------------------------

void Node::ChargeDiskRead() {
  network_->clock()->Advance(network_->cost_model().disk_read_ns);
  network_->AddBusy(id_, network_->cost_model().disk_read_ns);
  ctr_disk_page_reads_->Add(1);
}

void Node::ChargeDiskWrite() {
  network_->clock()->Advance(network_->cost_model().disk_write_ns);
  network_->AddBusy(id_, network_->cost_model().disk_write_ns);
  ctr_disk_page_writes_->Add(1);
}

void Node::ChargeLogForce() {
  std::uint64_t ns = options_.log_force_ns_override != 0
                         ? options_.log_force_ns_override
                         : network_->cost_model().log_force_ns;
  network_->clock()->Advance(ns);
  network_->AddBusy(id_, ns);
  ctr_log_forces_->Add(1);
}

void Node::ChargeCpuOp() {
  network_->clock()->Advance(network_->cost_model().cpu_op_ns);
  network_->AddBusy(id_, network_->cost_model().cpu_op_ns);
}

// ---------------------------------------------------------------------------
// Data definition
// ---------------------------------------------------------------------------

Result<PageId> Node::AllocatePage() {
  if (state_ != NodeState::kUp) return Status::NodeDown("node not up");
  CLOG_ASSIGN_OR_RETURN(std::uint32_t page_no, space_map_.Allocate());
  PageId pid{id_, page_no};
  Page page;
  // PSN seeding from the space map (ARIES/CSA technique, Section 2.1):
  // a reused page number continues its PSN sequence past its prior life.
  page.Format(pid, PageType::kData, space_map_.PsnSeed(page_no));
  SlottedPage(&page).InitBody();
  CLOG_RETURN_IF_ERROR(disk_.WritePage(page_no, &page, /*sync=*/true));
  ChargeDiskWrite();
  metrics_.GetCounter("pages.allocated").Add(1);
  return pid;
}

Status Node::FreePage(PageId pid) {
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  if (pid.owner != id_) {
    // Freeing releases the home node's space-map slot; an adopted page must
    // travel home before it can die.
    return Status::NotSupported("cannot free adopted page " + pid.ToString());
  }
  if (!handoff_fenced_.empty() && handoff_fenced_.count(pid) != 0) {
    return Status::Busy("page handoff in progress: " + pid.ToString());
  }
  // The space map's free-time PSN seed needs the page's true final PSN, so
  // a restoring page must finish rebuilding before it can be freed.
  CLOG_RETURN_IF_ERROR(EnsureRestored(pid));
  if (poison_.Contains(pid)) {
    // The page's true final PSN is unknowable, so the space map could not
    // seed a reallocation safely past it.
    return Status::Corruption("page unrecoverable after media failure: " +
                              pid.ToString());
  }
  for (NodeId holder : global_locks_.HoldersOf(pid)) {
    if (holder != id_) {
      return Status::Busy("page still locked remotely: " + pid.ToString());
    }
  }
  if (!lock_cache_.CanComply(pid, LockMode::kNone).can_comply) {
    return Status::Busy("page in use by a local transaction: " +
                        pid.ToString());
  }
  global_locks_.Release(pid, id_);
  lock_cache_.ApplyCallback(pid, LockMode::kNone);
  CLOG_ASSIGN_OR_RETURN(Psn disk_psn, DiskPsn(pid));
  Psn last = disk_psn;
  if (Page* cached = pool_.Lookup(pid); cached != nullptr) {
    last = std::max(last, cached->psn());
    pool_.Drop(pid);
  }
  dpt_.Remove(pid);
  replacers_.erase(pid);
  return space_map_.Free(pid.page_no, last);
}

Result<Psn> Node::DiskPsn(PageId pid) {
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  Page tmp;
  CLOG_RETURN_IF_ERROR(ReadDurablePage(pid, &tmp));
  ChargeDiskRead();
  return tmp.psn();
}

Status Node::ReadOwnPage(std::uint32_t page_no, Page* out) {
  Status st = disk_.ReadPage(page_no, out);
  if (st.IsIOError()) {
    metrics_.GetCounter("disk.page_read_retries").Add(1);
    st = disk_.ReadPage(page_no, out);
  }
  return st;
}

// ---------------------------------------------------------------------------
// Page access: locks, fetches, callbacks (Section 2.2 requester side)
// ---------------------------------------------------------------------------

Status Node::CheckOwnerAvailable(NodeId owner) {
  auto it = parked_owners_.find(owner);
  if (it == parked_owners_.end()) return Status::OK();
  std::uint64_t now = network_->clock()->NowNanos();
  if (now - it->second >= network_->retry_policy().park_ttl_ns) {
    // TTL expired without a NodeRecovered broadcast (it may have been
    // lost): stop assuming and let the request probe reality again.
    parked_owners_.erase(it);
    return Status::OK();
  }
  return Status::Unavailable("owner " + std::to_string(owner) +
                             " recovering; request parked");
}

Status Node::NoteOwnerFailure(NodeId owner, Status st) {
  if (!st.IsNodeDown() || !network_->retry_policy().enabled) return st;
  if (network_->ProbePeer(id_, owner) == PeerHealth::kRecovering) {
    // The owner's process is alive and working through restart recovery:
    // this is a wait, not a failure. Park every request for it until its
    // NodeRecovered broadcast instead of bouncing transactions.
    parked_owners_.emplace(owner, network_->clock()->NowNanos());
    metrics_.GetCounter("avail.parked").Add(1);
    if (trace_ != nullptr) trace_->Emit(id_, TraceEventType::kRpcPark, owner);
    return Status::Unavailable("owner " + std::to_string(owner) +
                               " recovering; request parked");
  }
  return st;
}

Result<Page*> Node::FetchPage(PageId pid) {
  if (Page* hit = pool_.Lookup(pid)) return hit;
  if (OwnsPage(pid)) {
    // A restoring page is rebuilt synchronously for its first toucher
    // before anything below dares read the (hole-ridden) disk version.
    // The rebuild lands the fresh image in the pool, so re-check for a
    // hit before falling through to the miss path's Insert.
    CLOG_RETURN_IF_ERROR(EnsureRestored(pid));
    if (Page* hit = pool_.Lookup(pid)) return hit;
    if (poison_.Contains(pid)) {
      return Status::Corruption("page unrecoverable after media failure: " +
                                pid.ToString());
    }
    // Own page: durable version is current (own-page evictions write in
    // place, so the cache-miss copy in the durable store is the newest
    // local version).
    CLOG_ASSIGN_OR_RETURN(Page * frame, pool_.Insert(pid));
    Status st = ReadDurablePage(pid, frame);
    if (!st.ok()) {
      pool_.Drop(pid);
      return st;
    }
    ChargeDiskRead();
    if (trace_ != nullptr) {
      trace_->Emit(id_, TraceEventType::kPageFetch, pid.Pack(), frame->psn(),
                   id_);
    }
    return frame;
  }
  // Remote page, lock already cached: re-request the image from the owner
  // (the paper bundles page transfer with lock grant; an idempotent
  // re-grant at the held mode returns the owner's current version).
  LockMode mode = lock_cache_.NodeMode(pid);
  if (mode == LockMode::kNone) {
    return Status::FailedPrecondition("fetch without a cached lock on " +
                                      pid.ToString());
  }
  const NodeId owner = OwnerOf(pid);
  CLOG_RETURN_IF_ERROR(CheckOwnerAvailable(owner));
  LockPageReply reply;
  Status fetch_st = network_->LockPage(id_, owner, pid, mode,
                                       /*want_page=*/true, &reply);
  if (!fetch_st.ok()) return NoteOwnerFailure(owner, fetch_st);
  if (!reply.granted || !reply.page) {
    return Status::Busy("owner could not supply page " + pid.ToString());
  }
  CLOG_ASSIGN_OR_RETURN(Page * frame, pool_.Insert(pid));
  frame->CopyFrom(*reply.page);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kPageFetch, pid.Pack(), frame->psn(),
                 owner);
  }
  return frame;
}

Status Node::EnsureNodeLock(Transaction* txn, PageId pid, LockMode mode) {
  LockPageReply reply;
  Status st;
  if (OwnsPage(pid)) {
    st = HandleLockPage(id_, pid, mode, /*want_page=*/false, &reply);
  } else {
    const NodeId owner = OwnerOf(pid);
    CLOG_RETURN_IF_ERROR(CheckOwnerAvailable(owner));
    st = network_->LockPage(id_, owner, pid, mode,
                            /*want_page=*/!pool_.Contains(pid), &reply);
    if (st.IsNodeDown()) st = NoteOwnerFailure(owner, st);
  }
  if (!st.ok()) return st;  // e.g. owner down or parked
  if (!reply.granted) {
    txn->last_blockers = reply.blocking_txns;
    return Status::Busy("node lock on " + pid.ToString() + " held elsewhere");
  }
  lock_cache_.RecordNodeLock(pid, mode);
  if (reply.page && !pool_.Contains(pid)) {
    CLOG_ASSIGN_OR_RETURN(Page * frame, pool_.Insert(pid));
    frame->CopyFrom(*reply.page);
  }
  return Status::OK();
}

Result<Page*> Node::EnsureNodePage(Transaction* txn, PageId pid,
                                   LockMode mode) {
  if (lock_cache_.NodeMode(pid) < mode) {
    CLOG_RETURN_IF_ERROR(EnsureNodeLock(txn, pid, mode));
  }
  return FetchPage(pid);
}

Result<Page*> Node::AcquirePage(Transaction* txn, PageId pid, LockMode mode) {
  if (!handoff_fenced_.empty() && handoff_fenced_.count(pid) != 0) {
    // The page is mid-handoff: its shipped image must stay final until the
    // transfer settles, so even lock-cache hits wait it out.
    return Status::Busy("page handoff in progress: " + pid.ToString());
  }
  for (int attempt = 0; attempt < 4; ++attempt) {
    LocalAcquire la = lock_cache_.AcquireForTxn(txn->id, pid, mode);
    switch (la.outcome) {
      case LocalAcquire::Outcome::kGranted: {
        Result<Page*> page = FetchPage(pid);
        if (!page.ok()) return page;
        if (mode == LockMode::kExclusive) {
          // Paper Section 2.2: a DPT entry is added when the node obtains
          // an exclusive lock and none exists; RedoLSN is conservatively
          // the current end of the local log.
          dpt_.OnFirstDirty(pid, (*page)->psn(), log_.end_lsn());
        }
        txn->last_blockers.clear();
        return page;
      }
      case LocalAcquire::Outcome::kNeedNodeLock:
        CLOG_RETURN_IF_ERROR(EnsureNodeLock(txn, pid, mode));
        break;  // retry local acquisition
      case LocalAcquire::Outcome::kLocalConflict:
        txn->last_blockers = la.blockers;
        return Status::Busy("local transaction holds " + pid.ToString());
    }
  }
  return Status::Busy("lock acquisition did not converge on " +
                      pid.ToString());
}

Result<Page*> Node::AcquireRecord(Transaction* txn, RecordId rid,
                                  LockMode mode) {
  if (!options_.local_record_locking) {
    return AcquirePage(txn, rid.page, mode);
  }
  if (!handoff_fenced_.empty() && handoff_fenced_.count(rid.page) != 0) {
    return Status::Busy("page handoff in progress: " + rid.page.ToString());
  }
  for (int attempt = 0; attempt < 4; ++attempt) {
    LocalAcquire la =
        lock_cache_.AcquireRecordForTxn(txn->id, rid.page, rid.slot, mode);
    switch (la.outcome) {
      case LocalAcquire::Outcome::kGranted: {
        Result<Page*> page = FetchPage(rid.page);
        if (!page.ok()) return page;
        if (mode == LockMode::kExclusive) {
          dpt_.OnFirstDirty(rid.page, (*page)->psn(), log_.end_lsn());
        }
        txn->last_blockers.clear();
        return page;
      }
      case LocalAcquire::Outcome::kNeedNodeLock:
        CLOG_RETURN_IF_ERROR(EnsureNodeLock(txn, rid.page, mode));
        break;
      case LocalAcquire::Outcome::kLocalConflict:
        txn->last_blockers = la.blockers;
        return Status::Busy("local transaction holds " + rid.ToString());
    }
  }
  return Status::Busy("lock acquisition did not converge on " +
                      rid.ToString());
}

// ---------------------------------------------------------------------------
// Logged updates, redo application, undo
// ---------------------------------------------------------------------------

Status Node::ApplyRedo(const LogRecord& rec, Page* page) {
  if (rec.psn_before != page->psn()) {
    return Status::FailedPrecondition(
        "psn mismatch applying " + rec.ToString() + " to page at psn " +
        std::to_string(page->psn()));
  }
  SlottedPage sp(page);
  switch (rec.op) {
    case RecordOp::kInsert:
      CLOG_RETURN_IF_ERROR(sp.InsertAt(rec.slot, rec.redo_image));
      break;
    case RecordOp::kUpdate:
      CLOG_RETURN_IF_ERROR(sp.Update(rec.slot, rec.redo_image));
      break;
    case RecordOp::kDelete:
      CLOG_RETURN_IF_ERROR(sp.Delete(rec.slot));
      break;
    case RecordOp::kFormat:
      page->Format(rec.page, PageType::kData, rec.psn_before);
      sp.InitBody();
      break;
  }
  page->BumpPsn();
  return Status::OK();
}

Status Node::AppendWithReclaim(const LogRecord& rec, Lsn* lsn) {
  Status st = log_.Append(rec, lsn);
  if (!st.IsLogFull()) return st;
  std::string scratch;
  rec.EncodeTo(&scratch);
  CLOG_RETURN_IF_ERROR(ReclaimLogSpace(scratch.size() + 64));
  return log_.Append(rec, lsn);
}

namespace {

/// Keeps a page resident while an operation holds a raw pointer to its
/// frame (log-space reclamation may otherwise evict it mid-update).
class PinGuard {
 public:
  PinGuard(BufferPool* pool, PageId pid) : pool_(pool), pid_(pid) {
    pool_->Pin(pid_);
  }
  ~PinGuard() { pool_->Unpin(pid_); }
  PinGuard(const PinGuard&) = delete;
  PinGuard& operator=(const PinGuard&) = delete;

 private:
  BufferPool* pool_;
  PageId pid_;
};

}  // namespace

Status Node::LoggedUpdate(Transaction* txn, Page* page, RecordOp op,
                          SlotId slot, Slice redo_image, Slice undo_image) {
  PinGuard pin(&pool_, page->id());
  // Adaptive logging: single-node transactions on own pages write compact
  // redo-only records; the first update that falls outside the gates (a
  // remotely-owned page — the cross-node dependency the paper's recovery
  // protocol must order) upgrades the transaction to physical records,
  // backfilling the stashed before-images first.
  const bool logical = TxnLogsLogical(txn, page->id());
  if (!logical && txn->strategy == LogStrategy::kAdaptive && !txn->upgraded) {
    CLOG_RETURN_IF_ERROR(UpgradeTxnToPhysical(txn));
  }
  if (txn->strategy == LogStrategy::kAdaptive &&
      options_.logging_mode == LoggingMode::kClientLocal) {
    // Dependency edge: the last committed writer of this page precedes us.
    auto dep = page_last_commit_.find(page->id());
    if (dep != page_last_commit_.end() && dep->second.txn != txn->id) {
      txn->commit_deps[dep->second.txn] = dep->second.lsn;
    }
  }

  LogRecord rec;
  rec.type = logical ? LogRecordType::kLogicalUpdate : LogRecordType::kUpdate;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.page = page->id();
  rec.psn_before = page->psn();
  rec.op = op;
  rec.slot = slot;
  rec.redo_image = redo_image.ToString();
  if (!logical) rec.undo_image = undo_image.ToString();

  Lsn lsn = kNullLsn;
  if (options_.logging_mode == LoggingMode::kShipToOwner) {
    // Baseline B1: records accumulate locally and are shipped to the owner
    // (on page replacement and at commit); no local LSN space.
    txn->pending_records.push_back(rec);
  } else {
    CLOG_RETURN_IF_ERROR(AppendWithReclaim(rec, &lsn));
    txn->last_lsn = lsn;
    network_->clock()->Advance((rec.redo_image.size() + rec.undo_image.size() +
                                64) *
                               network_->cost_model().log_append_byte_ns);
  }
  if (logical) {
    // The before-image stays volatile: discarded at commit, backfilled
    // into the log by the first steal/dependency/rollback.
    if (txn->logical_undos.empty()) ++live_logical_txns_;
    txn->logical_undos.emplace(lsn, undo_image.ToString());
    ctr_txn_logical_records_->Add(1);
  }

  // Log-space reclamation during the append may have forced this very
  // page and dropped its DPT entry; re-arm it with this record as the
  // exact RedoLSN before the page goes dirty again.
  dpt_.OnFirstDirty(page->id(), page->psn(),
                    lsn != kNullLsn ? lsn : log_.end_lsn());

  CLOG_RETURN_IF_ERROR(ApplyRedo(rec, page));
  if (lsn != kNullLsn) page->set_page_lsn(lsn);
  PageId pid = page->id();
  pool_.MarkDirty(pid);
  dpt_.OnUpdate(pid, page->psn());
  txn->updated_pages.insert(pid);
  ++txn->updates;
  ctr_txn_updates_->Add(1);
  ChargeCpuOp();
  return Status::OK();
}

Status Node::UndoOne(Transaction* txn, const LogRecord& rec, Lsn rec_lsn) {
  Result<Page*> page_r = AcquireRecord(txn, RecordId{rec.page, rec.slot},
                                       LockMode::kExclusive);
  if (!page_r.ok()) return page_r.status();
  Page* page = *page_r;

  // A logical record carries no before-image; undo reads it from the
  // transaction's stash (live rollback) or from the kUndoBackfill record
  // the upgrade wrote (resurrected loser — preloaded before RollbackTo).
  const std::string* undo = &rec.undo_image;
  if (rec.type == LogRecordType::kLogicalUpdate &&
      rec.op != RecordOp::kInsert) {
    auto it = txn->logical_undos.find(rec_lsn);
    if (it == txn->logical_undos.end()) {
      return Status::Corruption("no before-image for " + rec.ToString());
    }
    undo = &it->second;
  }

  LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = txn->id;
  clr.prev_lsn = txn->last_lsn;
  clr.page = rec.page;
  clr.psn_before = page->psn();
  clr.slot = rec.slot;
  clr.undo_next_lsn = rec.prev_lsn;
  switch (rec.op) {
    case RecordOp::kInsert:
      clr.op = RecordOp::kDelete;
      break;
    case RecordOp::kUpdate:
      clr.op = RecordOp::kUpdate;
      clr.redo_image = *undo;
      break;
    case RecordOp::kDelete:
      clr.op = RecordOp::kInsert;
      clr.redo_image = *undo;
      break;
    case RecordOp::kFormat:
      return Status::NotSupported("cannot undo a page format");
  }

  Lsn lsn = kNullLsn;
  // Rollback records bypass the capacity check: undo must always be able
  // to run, or a full log could never drain.
  CLOG_RETURN_IF_ERROR(log_.Append(clr, &lsn, /*enforce_capacity=*/false));
  // The DPT entry may be gone even though the transaction is still live: an
  // owner flush notification drops it once the disk version covers every
  // update this node made. The CLR dirties the page again, so the entry must
  // be re-armed here or the reclaim horizon could release the log records
  // this page still needs for redo.
  dpt_.OnFirstDirty(rec.page, page->psn(), lsn);
  CLOG_RETURN_IF_ERROR(ApplyRedo(clr, page));
  page->set_page_lsn(lsn);
  txn->last_lsn = lsn;
  pool_.MarkDirty(rec.page);
  dpt_.OnUpdate(rec.page, page->psn());
  metrics_.GetCounter("txn.undone_updates").Add(1);
  ChargeCpuOp();
  return Status::OK();
}

Status Node::RollbackTo(Transaction* txn, Lsn target_lsn) {
  TxnBackwardCursor cursor(&log_, txn->last_lsn);
  LogRecord rec;
  Lsn lsn = kNullLsn;
  Status scan_status;
  while (cursor.Prev(&rec, &lsn, &scan_status)) {
    if (target_lsn != kNullLsn && lsn <= target_lsn) break;
    if (rec.type == LogRecordType::kUpdate ||
        rec.type == LogRecordType::kLogicalUpdate) {
      CLOG_RETURN_IF_ERROR(UndoOne(txn, rec, lsn));
    } else if (rec.type == LogRecordType::kUndoBackfill) {
      // Refill the volatile stash from the upgrade record so the logical
      // records further back can be undone (no-op when already stashed).
      for (const BackfillEntry& e : rec.backfill) {
        txn->logical_undos.emplace(e.covered_lsn, e.undo_image);
      }
    } else if (rec.type == LogRecordType::kBegin) {
      break;
    }
  }
  return scan_status;
}

// ---------------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------------

Result<TxnId> Node::Begin(TxnOptions opts) {
  if (state_ != NodeState::kUp) return Status::NodeDown("node not up");
  Transaction* txn = txns_.Begin();
  txn->strategy = opts.strategy.value_or(options_.logging_policy.strategy);
  if (txn->strategy == LogStrategy::kAdaptive) {
    ctr_txn_begins_adaptive_->Add(1);
  }
  if (options_.logging_mode != LoggingMode::kShipToOwner) {
    LogRecord rec;
    rec.type = LogRecordType::kBegin;
    rec.txn = txn->id;
    Lsn lsn = kNullLsn;
    Status st = AppendWithReclaim(rec, &lsn);
    if (!st.ok()) {
      txns_.Remove(txn->id);
      return st;
    }
    txn->first_lsn = lsn;
    txn->last_lsn = lsn;
  }
  ctr_txn_begins_->Add(1);
  if (trace_ != nullptr) trace_->Emit(id_, TraceEventType::kTxnBegin, txn->id);
  return txn->id;
}

Status Node::Commit(TxnId txn_id) {
  if (GroupCommitEnabled()) {
    // Synchronous commit under the coalescing policy: request, and if that
    // parked us (group not yet full), lead the group force ourselves. The
    // force completes every parked committer — us included — so the caller
    // still gets the never-ACK-before-durable guarantee, and concurrent
    // parked committers ride along on our one force.
    Result<bool> done = CommitRequest(txn_id);
    if (!done.ok()) return done.status();
    if (!*done) return FlushCommitGroup();
    return Status::OK();
  }

  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr || txn->state != TxnState::kActive) {
    return Status::NotFound("no active transaction");
  }
  const std::uint64_t commit_start_ns = network_->clock()->NowNanos();

  switch (options_.logging_mode) {
    case LoggingMode::kClientLocal: {
      // The headline of the paper: commit writes and forces the *local*
      // log only. No messages, no page forces, regardless of where the
      // updated pages live.
      LogRecord commit;
      commit.type = LogRecordType::kCommit;
      commit.txn = txn_id;
      commit.prev_lsn = txn->last_lsn;
      FillCommitMeta(txn, &commit);
      Lsn commit_lsn = kNullLsn;
      CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &commit_lsn));
      CLOG_RETURN_IF_ERROR(ForceLog(commit_lsn));
      NoteCommittedPages(txn, commit_lsn);
      if ((commit.commit_flags & kCommitFlagLogical) != 0) {
        ctr_txn_commits_logical_->Add(1);
      }
      LogRecord end;
      end.type = LogRecordType::kEnd;
      end.txn = txn_id;
      end.prev_lsn = commit_lsn;
      Lsn end_lsn = kNullLsn;
      CLOG_RETURN_IF_ERROR(AppendWithReclaim(end, &end_lsn));
      break;
    }
    case LoggingMode::kShipToOwner: {
      // Baseline B1 (ARIES/CSA-like): all log records travel to the owner
      // at commit, with a force there.
      CLOG_RETURN_IF_ERROR(
          ShipPendingRecords(txn, /*force=*/true, /*only_page=*/nullptr));
      break;
    }
    case LoggingMode::kForceAtTransfer: {
      // Baseline B2 (Rdb/VMS-like): every updated page is forced to the
      // owner's disk before the commit record is written.
      for (PageId pid : txn->updated_pages) {
        Page* page = pool_.Lookup(pid);
        if (page == nullptr || !pool_.IsDirty(pid)) continue;
        CLOG_RETURN_IF_ERROR(log_.Flush(page->page_lsn()));
        if (OwnsPage(pid)) {
          CLOG_RETURN_IF_ERROR(ForceOwnPage(pid));
        } else {
          const NodeId owner = OwnerOf(pid);
          page->SealChecksum();
          CLOG_RETURN_IF_ERROR(network_->PageShip(id_, owner, *page));
          dpt_.OnReplaced(pid, page->psn(), log_.end_lsn());
          CLOG_RETURN_IF_ERROR(network_->FlushRequest(id_, owner, pid));
          pool_.MarkClean(pid);
        }
      }
      LogRecord commit;
      commit.type = LogRecordType::kCommit;
      commit.txn = txn_id;
      commit.prev_lsn = txn->last_lsn;
      Lsn commit_lsn = kNullLsn;
      CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &commit_lsn));
      CLOG_RETURN_IF_ERROR(ForceLog(commit_lsn));
      break;
    }
  }

  txn->state = TxnState::kCommitted;
  ReleaseLogicalState(txn);
  lock_cache_.ReleaseTxnLocks(txn_id);
  detector_->RemoveTxn(txn_id);
  txns_.Remove(txn_id);
  ctr_txn_commits_->Add(1);
  hist_commit_ns_->Record(network_->clock()->NowNanos() - commit_start_ns);
  if (restore_.first_commit_pending()) {
    restore_.NoteCommit(this, network_->clock()->NowNanos());
  }
  if (trace_ != nullptr) trace_->Emit(id_, TraceEventType::kTxnCommit, txn_id);
  AdvanceReclaimHorizon();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Group commit (GroupCommitPolicy): park committers, coalesce their forces
// ---------------------------------------------------------------------------

bool Node::GroupCommitEnabled() const {
  // Coalescing only makes sense where the commit force is purely local —
  // the paper's protocol. B1 forces at the owner, B2 forces pages.
  return options_.logging_policy.group_commit.enabled &&
         options_.logging_mode == LoggingMode::kClientLocal;
}

Result<bool> Node::CommitRequest(TxnId txn_id) {
  if (!GroupCommitEnabled()) {
    CLOG_RETURN_IF_ERROR(Commit(txn_id));
    return true;
  }
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr || txn->state != TxnState::kActive) {
    return Status::NotFound("no active transaction");
  }
  LogRecord commit;
  commit.type = LogRecordType::kCommit;
  commit.txn = txn_id;
  commit.prev_lsn = txn->last_lsn;
  FillCommitMeta(txn, &commit);
  Lsn commit_lsn = kNullLsn;
  CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &commit_lsn));
  // Past this point the transaction can no longer abort: its fate is tied
  // to whether the commit record reaches the disk. It is not ACKed either —
  // it parks until a force covers commit_lsn. Dependency hints may point at
  // this commit immediately: forces are prefix-ordered, so any successor
  // commit that becomes durable covers this record too.
  NoteCommittedPages(txn, commit_lsn);
  if ((commit.commit_flags & kCommitFlagLogical) != 0) {
    ctr_txn_commits_logical_->Add(1);
  }
  txn->state = TxnState::kCommitting;
  txn->last_lsn = commit_lsn;
  commit_group_.push_back(
      {txn_id, commit_lsn, network_->clock()->NowNanos()});
  metrics_.GetCounter("gc.parked").Add(1);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kGroupCommitPark, txn_id, commit_lsn,
                 static_cast<std::uint32_t>(commit_group_.size()));
  }
  if (commit_group_.size() >=
      options_.logging_policy.group_commit.max_group_size) {
    CLOG_RETURN_IF_ERROR(FlushCommitGroup());
    return true;
  }
  return false;
}

Result<bool> Node::PollCommit(TxnId txn_id) {
  for (const ParkedCommit& p : commit_group_) {
    if (p.txn != txn_id) continue;
    if (network_->clock()->NowNanos() <
        p.parked_at_ns + options_.logging_policy.group_commit.window_ns) {
      return false;  // Still inside the coalescing window.
    }
    CLOG_RETURN_IF_ERROR(FlushCommitGroup());
    return true;
  }
  // Not parked: either it already completed via someone else's force, or it
  // never requested commit here.
  if (txns_.Find(txn_id) == nullptr) return true;
  return Status::FailedPrecondition("PollCommit: transaction not committing");
}

Status Node::FlushCommitGroup() {
  if (commit_group_.empty()) return Status::OK();
  Lsn max_lsn = kNullLsn;
  for (const ParkedCommit& p : commit_group_) {
    max_lsn = std::max(max_lsn, p.commit_lsn);
  }
  metrics_.GetCounter("gc.group_forces").Add(1);
  metrics_.GetCounter("gc.group_size_sum").Add(commit_group_.size());
  // One force covers every parked commit record; ForceLog completes them.
  return ForceLog(max_lsn);
}

Status Node::CompleteCoveredCommits() {
  if (completing_group_ || commit_group_.empty()) return Status::OK();
  completing_group_ = true;
  const Lsn durable = log_.flushed_lsn();
  std::vector<ParkedCommit> still_parked;
  Status failed = Status::OK();
  for (const ParkedCommit& p : commit_group_) {
    if (!failed.ok() || p.commit_lsn >= durable) {
      still_parked.push_back(p);
      continue;
    }
    Transaction* txn = txns_.Find(p.txn);
    if (txn == nullptr) continue;
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = p.txn;
    end.prev_lsn = p.commit_lsn;
    Lsn end_lsn = kNullLsn;
    // END records bypass the capacity check, like rollback records: going
    // through reclamation here could force and re-enter completion.
    Status st = log_.Append(end, &end_lsn, /*enforce_capacity=*/false);
    if (!st.ok()) {
      failed = st;
      still_parked.push_back(p);
      continue;
    }
    txn->state = TxnState::kCommitted;
    ReleaseLogicalState(txn);
    lock_cache_.ReleaseTxnLocks(p.txn);
    detector_->RemoveTxn(p.txn);
    txns_.Remove(p.txn);
    ctr_txn_commits_->Add(1);
    metrics_.GetCounter("gc.completed").Add(1);
    hist_commit_ns_->Record(network_->clock()->NowNanos() - p.parked_at_ns);
    if (restore_.first_commit_pending()) {
      restore_.NoteCommit(this, network_->clock()->NowNanos());
    }
    if (trace_ != nullptr) {
      trace_->Emit(id_, TraceEventType::kGroupCommitCover, p.txn,
                   p.commit_lsn);
    }
  }
  commit_group_ = std::move(still_parked);
  completing_group_ = false;
  AdvanceReclaimHorizon();
  return failed;
}

Status Node::ForceLog(Lsn lsn) {
  const std::uint64_t forces_before = log_.forces();
  const std::uint64_t force_start_ns = network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(log_.Flush(lsn));
  if (log_.forces() != forces_before) {
    ChargeLogForce();
    hist_force_ns_->Record(network_->clock()->NowNanos() - force_start_ns);
    // The force just made everything up to `lsn` durable; any parked group
    // commits at or below the new horizon ride along for free.
    CLOG_RETURN_IF_ERROR(CompleteCoveredCommits());
  }
  return Status::OK();
}

Status Node::Abort(TxnId txn_id) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr || txn->state != TxnState::kActive) {
    return Status::NotFound("no active transaction");
  }

  if (options_.logging_mode == LoggingMode::kShipToOwner) {
    // B1: undo from the pending list (shipped or not, records are still in
    // the list); compensations are appended and shipped so the owner's log
    // tells the whole story.
    std::vector<LogRecord> clrs;
    for (auto it = txn->pending_records.rbegin();
         it != txn->pending_records.rend(); ++it) {
      if (it->type != LogRecordType::kUpdate) continue;
      Result<Page*> page_r = AcquirePage(txn, it->page, LockMode::kExclusive);
      if (!page_r.ok()) return page_r.status();
      Page* page = *page_r;
      LogRecord clr;
      clr.type = LogRecordType::kClr;
      clr.txn = txn_id;
      clr.page = it->page;
      clr.psn_before = page->psn();
      clr.slot = it->slot;
      switch (it->op) {
        case RecordOp::kInsert:
          clr.op = RecordOp::kDelete;
          break;
        case RecordOp::kUpdate:
          clr.op = RecordOp::kUpdate;
          clr.redo_image = it->undo_image;
          break;
        case RecordOp::kDelete:
          clr.op = RecordOp::kInsert;
          clr.redo_image = it->undo_image;
          break;
        case RecordOp::kFormat:
          break;
      }
      CLOG_RETURN_IF_ERROR(ApplyRedo(clr, page));
      pool_.MarkDirty(it->page);
      clrs.push_back(std::move(clr));
    }
    for (LogRecord& clr : clrs) txn->pending_records.push_back(std::move(clr));
    CLOG_RETURN_IF_ERROR(
        ShipPendingRecords(txn, /*force=*/false, /*only_page=*/nullptr));
  } else {
    // Adaptive: rollback writes CLRs whose redo images come from the
    // volatile stash; backfill the before-images into the log first so a
    // crash mid-rollback leaves the resurrected loser undoable.
    if (txn->strategy == LogStrategy::kAdaptive && !txn->upgraded) {
      CLOG_RETURN_IF_ERROR(UpgradeTxnToPhysical(txn));
    }
    LogRecord abort_rec;
    abort_rec.type = LogRecordType::kAbort;
    abort_rec.txn = txn_id;
    abort_rec.prev_lsn = txn->last_lsn;
    Lsn lsn = kNullLsn;
    CLOG_RETURN_IF_ERROR(
        log_.Append(abort_rec, &lsn, /*enforce_capacity=*/false));
    txn->last_lsn = lsn;
    CLOG_RETURN_IF_ERROR(RollbackTo(txn, kNullLsn));
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn_id;
    end.prev_lsn = txn->last_lsn;
    CLOG_RETURN_IF_ERROR(log_.Append(end, &lsn, /*enforce_capacity=*/false));
  }

  txn->state = TxnState::kAborted;
  ReleaseLogicalState(txn);
  lock_cache_.ReleaseTxnLocks(txn_id);
  detector_->RemoveTxn(txn_id);
  txns_.Remove(txn_id);
  ctr_txn_aborts_->Add(1);
  if (trace_ != nullptr) trace_->Emit(id_, TraceEventType::kTxnAbort, txn_id);
  AdvanceReclaimHorizon();
  return Status::OK();
}

Status Node::SetSavepoint(TxnId txn_id, const std::string& name) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  if (options_.logging_mode == LoggingMode::kShipToOwner) {
    return Status::NotSupported("savepoints require a local log");
  }
  LogRecord rec;
  rec.type = LogRecordType::kSavepoint;
  rec.txn = txn_id;
  rec.prev_lsn = txn->last_lsn;
  rec.savepoint_name = name;
  Lsn lsn = kNullLsn;
  CLOG_RETURN_IF_ERROR(AppendWithReclaim(rec, &lsn));
  txn->last_lsn = lsn;
  txn->savepoints.push_back(Savepoint{name, lsn});
  return Status::OK();
}

Status Node::RollbackToSavepoint(TxnId txn_id, const std::string& name) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  // Latest savepoint with the given name wins.
  auto it = std::find_if(txn->savepoints.rbegin(), txn->savepoints.rend(),
                         [&](const Savepoint& s) { return s.name == name; });
  if (it == txn->savepoints.rend()) {
    return Status::NotFound("no savepoint named " + name);
  }
  Lsn target = it->lsn;
  // Same rationale as Abort: partial rollback of an adaptive transaction
  // backfills its before-images first, so CLR generation (and a possible
  // crash between CLRs) never depends on volatile-only state.
  if (txn->strategy == LogStrategy::kAdaptive && !txn->upgraded) {
    CLOG_RETURN_IF_ERROR(UpgradeTxnToPhysical(txn));
  }
  CLOG_RETURN_IF_ERROR(RollbackTo(txn, target));
  // Later savepoints are no longer reachable.
  txn->savepoints.erase(it.base(), txn->savepoints.end());
  metrics_.GetCounter("txn.partial_rollbacks").Add(1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Record operations
// ---------------------------------------------------------------------------

Result<RecordId> Node::Insert(TxnId txn_id, PageId pid, Slice payload) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  Page* page = nullptr;
  SlotId slot = 0;
  if (options_.local_record_locking) {
    // Fine-granularity path: the slot is only known once the page is in
    // hand, so take the node lock + page first, then the record lock on
    // the chosen (dead or fresh) slot — which cannot conflict.
    CLOG_ASSIGN_OR_RETURN(page,
                          EnsureNodePage(txn, pid, LockMode::kExclusive));
    SlottedPage sp(page);
    if (payload.size() > sp.MaxInsertSize()) {
      return Status::FailedPrecondition("page full: " + pid.ToString());
    }
    slot = sp.PeekInsertSlot();
    CLOG_ASSIGN_OR_RETURN(
        page, AcquireRecord(txn, RecordId{pid, slot}, LockMode::kExclusive));
  } else {
    CLOG_ASSIGN_OR_RETURN(page,
                          AcquirePage(txn, pid, LockMode::kExclusive));
    SlottedPage sp(page);
    if (payload.size() > sp.MaxInsertSize()) {
      return Status::FailedPrecondition("page full: " + pid.ToString());
    }
    slot = sp.PeekInsertSlot();
  }
  CLOG_RETURN_IF_ERROR(
      LoggedUpdate(txn, page, RecordOp::kInsert, slot, payload, Slice()));
  return RecordId{pid, slot};
}

Result<std::string> Node::Read(TxnId txn_id, RecordId rid) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  CLOG_ASSIGN_OR_RETURN(Page * page,
                        AcquireRecord(txn, rid, LockMode::kShared));
  SlottedPage sp(page);
  CLOG_ASSIGN_OR_RETURN(Slice value, sp.Read(rid.slot));
  ChargeCpuOp();
  ctr_txn_reads_->Add(1);
  return value.ToString();
}

Status Node::Update(TxnId txn_id, RecordId rid, Slice payload) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  CLOG_ASSIGN_OR_RETURN(Page * page,
                        AcquireRecord(txn, rid, LockMode::kExclusive));
  SlottedPage sp(page);
  CLOG_ASSIGN_OR_RETURN(Slice old_value, sp.Read(rid.slot));
  std::string undo = old_value.ToString();  // Copy before the page mutates.
  if (payload.size() > undo.size() &&
      payload.size() - undo.size() > sp.FreeSpace()) {
    return Status::FailedPrecondition("page full: " + rid.page.ToString());
  }
  return LoggedUpdate(txn, page, RecordOp::kUpdate, rid.slot, payload, undo);
}

Status Node::Delete(TxnId txn_id, RecordId rid) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  CLOG_ASSIGN_OR_RETURN(Page * page,
                        AcquireRecord(txn, rid, LockMode::kExclusive));
  SlottedPage sp(page);
  CLOG_ASSIGN_OR_RETURN(Slice old_value, sp.Read(rid.slot));
  std::string undo = old_value.ToString();
  return LoggedUpdate(txn, page, RecordOp::kDelete, rid.slot, Slice(), undo);
}

Result<std::vector<std::string>> Node::ScanPage(TxnId txn_id, PageId pid) {
  Transaction* txn = txns_.Find(txn_id);
  if (txn == nullptr) return Status::NotFound("no active transaction");
  CLOG_ASSIGN_OR_RETURN(Page * page,
                        AcquirePage(txn, pid, LockMode::kShared));
  SlottedPage sp(page);
  std::vector<std::string> out;
  for (SlotId s = 0; s < sp.SlotCount(); ++s) {
    if (!sp.IsLive(s)) continue;
    CLOG_ASSIGN_OR_RETURN(Slice value, sp.Read(s));
    out.push_back(value.ToString());
  }
  ChargeCpuOp();
  return out;
}

std::vector<TxnId> Node::LastBlockers(TxnId txn_id) const {
  const Transaction* txn = txns_.Find(txn_id);
  return txn == nullptr ? std::vector<TxnId>{} : txn->last_blockers;
}

// ---------------------------------------------------------------------------
// Eviction policy and flush bookkeeping
// ---------------------------------------------------------------------------

Status Node::OnEviction(PageId pid, Page* page, bool dirty) {
  if (!dirty) {
    // Clean pages just leave; the cached node lock stays cached.
    return Status::OK();
  }
  if (options_.logging_mode == LoggingMode::kShipToOwner) {
    // B1 WAL-to-owner: the owner's log must cover the page before the page
    // arrives there.
    for (const Transaction* t : txns_.Active()) {
      CLOG_RETURN_IF_ERROR(ShipPendingRecords(
          const_cast<Transaction*>(t), /*force=*/false, /*only_page=*/&pid));
    }
  } else {
    // Adaptive: stealing a page with live logical records would put
    // uncommitted, un-undoable bytes on disk. Backfill the owning
    // transactions' before-images (or force their parked commits) first.
    CLOG_RETURN_IF_ERROR(PrepareSteal(pid));
    // WAL: all records describing the page must be durable before the page
    // leaves the cache (Section 2.1).
    if (page->page_lsn() >= log_.flushed_lsn()) {
      CLOG_RETURN_IF_ERROR(ForceLog(page->page_lsn()));
    }
  }
  if (OwnsPage(pid)) {
    // Own page: write in place. Synchronous, because the DPT entry is
    // dropped on the strength of this write.
    CLOG_RETURN_IF_ERROR(WriteDurablePage(pid, page));
    dpt_.Remove(pid);
    Psn psn = page->psn();
    auto it = replacers_.find(pid);
    if (it != replacers_.end()) {
      if (options_.send_flush_notifications) {
        for (NodeId peer : it->second) {
          if (peer == id_) continue;
          network_->FlushNotify(id_, peer, pid, psn).ok();
        }
      }
      replacers_.erase(it);
    }
    AdvanceReclaimHorizon();
    return Status::OK();
  }
  // Remote page: the copy travels home to the owner (Section 2.1), and the
  // node remembers the end of its log for Section 2.5.
  const NodeId owner = OwnerOf(pid);
  page->SealChecksum();
  CLOG_RETURN_IF_ERROR(network_->PageShip(id_, owner, *page));
  dpt_.OnReplaced(pid, page->psn(), log_.end_lsn());
  metrics_.GetCounter("pages.shipped_on_replacement").Add(1);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kPageShip, pid.Pack(), page->psn(),
                 owner);
  }
  if (options_.logging_mode == LoggingMode::kForceAtTransfer) {
    CLOG_RETURN_IF_ERROR(network_->FlushRequest(id_, owner, pid));
  }
  return Status::OK();
}

Status Node::ForceOwnPage(PageId pid) {
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  // Forcing a restoring page must first give it something honest to force;
  // no-ops when the force is issued by the rebuild itself.
  CLOG_RETURN_IF_ERROR(EnsureRestored(pid));
  Psn flushed_psn;
  Page* cached = pool_.Lookup(pid);
  if (cached != nullptr && pool_.IsDirty(pid)) {
    // Same steal barrier as eviction: no uncommitted logical bytes reach
    // the disk without their before-images (or commit) in the durable log.
    CLOG_RETURN_IF_ERROR(PrepareSteal(pid));
    if (options_.logging_mode != LoggingMode::kShipToOwner &&
        cached->page_lsn() >= log_.flushed_lsn()) {
      CLOG_RETURN_IF_ERROR(ForceLog(cached->page_lsn()));
    }
    CLOG_RETURN_IF_ERROR(WriteDurablePage(pid, cached));
    pool_.MarkClean(pid);
    dpt_.Remove(pid);
    flushed_psn = cached->psn();
  } else {
    if (poison_.Contains(pid)) {
      // No dirty copy to write and the disk version is unrecoverable:
      // nothing can honestly be vouched for.
      return Status::Corruption("page unrecoverable after media failure: " +
                                pid.ToString());
    }
    // Nothing newer here: the disk version is what we can vouch for.
    CLOG_ASSIGN_OR_RETURN(flushed_psn, DiskPsn(pid));
  }
  auto it = replacers_.find(pid);
  if (it != replacers_.end()) {
    if (options_.send_flush_notifications) {
      for (NodeId peer : it->second) {
        if (peer == id_) continue;
        network_->FlushNotify(id_, peer, pid, flushed_psn).ok();
      }
    }
    replacers_.erase(it);
  }
  AdvanceReclaimHorizon();
  metrics_.GetCounter("pages.forced").Add(1);
  return Status::OK();
}

Status Node::ShipDirtyCopy(PageId pid) {
  if (OwnsPage(pid)) {
    return Status::InvalidArgument("own pages are forced, not shipped");
  }
  Page* page = pool_.Lookup(pid);
  if (page == nullptr || !pool_.IsDirty(pid)) return Status::OK();
  if (options_.logging_mode != LoggingMode::kShipToOwner &&
      page->page_lsn() >= log_.flushed_lsn()) {
    CLOG_RETURN_IF_ERROR(ForceLog(page->page_lsn()));
  }
  const NodeId owner = OwnerOf(pid);
  page->SealChecksum();
  CLOG_RETURN_IF_ERROR(network_->PageShip(id_, owner, *page));
  dpt_.OnReplaced(pid, page->psn(), log_.end_lsn());
  pool_.MarkClean(pid);
  metrics_.GetCounter("pages.shipped_on_replacement").Add(1);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kPageShip, pid.Pack(), page->psn(),
                 owner);
  }
  return Status::OK();
}

Status Node::InstallShippedCopy(const Page& page, NodeId from) {
  PageId pid = page.id();
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("shipped page not owned here: " +
                                   pid.ToString());
  }
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kPageShip, pid.Pack(), page.psn(),
                 from);
  }
  Page* cached = pool_.Lookup(pid);
  if (cached == nullptr) {
    Result<Page*> frame = pool_.Insert(pid);
    if (!frame.ok()) {
      // No frame available: every victim is dirty and unevictable (for
      // example its owner is down). The shipper has already dropped its
      // copy on the strength of this transfer, so the shipped version may
      // be the only one in existence — bypass the cache and write it
      // straight home rather than lose it.
      bool newer = true;
      if (Result<Psn> disk_psn = DiskPsn(pid); disk_psn.ok()) {
        newer = page.psn() > *disk_psn;
      }
      if (newer) {
        Page tmp;
        tmp.CopyFrom(page);
        CLOG_RETURN_IF_ERROR(WriteDurablePage(pid, &tmp));
        dpt_.OnOwnerFlushed(pid, tmp.psn());
      }
      replacers_[pid].insert(from);
      return Status::OK();
    }
    cached = *frame;
    cached->CopyFrom(page);
    pool_.MarkDirty(pid);
  } else if (page.psn() > cached->psn()) {
    cached->CopyFrom(page);
    pool_.MarkDirty(pid);
  }
  replacers_[pid].insert(from);
  return Status::OK();
}

void Node::AdvanceReclaimHorizon() {
  if (!options_.has_local_log) return;
  // The log is needed from the earliest of: the oldest RedoLSN any dirty
  // page still needs, the first record of the oldest active transaction
  // (undo), and the last complete checkpoint (restart analysis).
  Lsn horizon = log_.end_lsn();
  Lsn dpt_min = dpt_.MinRedoLsn();
  if (dpt_min != kNullLsn) horizon = std::min(horizon, dpt_min);
  Lsn txn_min = txns_.MinFirstLsn();
  if (txn_min != kNullLsn) horizon = std::min(horizon, txn_min);
  if (last_ckpt_begin_ == kNullLsn) {
    horizon = std::min(horizon, LogManager::first_lsn());
  } else {
    horizon = std::min(horizon, last_ckpt_begin_);
  }
  log_.SetReclaimableLsn(horizon);
}

// ---------------------------------------------------------------------------
// Media failure: poison ledger and fuzzy archive
// ---------------------------------------------------------------------------

std::vector<PageId> Node::PoisonedPages() const {
  std::vector<PageId> out;
  out.reserve(poison_.entries().size());
  for (const auto& [packed, needed] : poison_.entries()) {
    PageId pid = PageId::Unpack(packed);
    if (OwnsPage(pid)) out.push_back(pid);
  }
  return out;
}

Status Node::PoisonOwnPage(PageId pid, Psn needed_psn) {
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  CLOG_RETURN_IF_ERROR(poison_.Add(pid, needed_psn));
  metrics_.GetCounter("media.pages_poisoned").Add(1);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kPagePoison, pid.Pack(), needed_psn);
  }
  return Status::OK();
}

Status Node::UnpoisonPage(PageId pid) { return poison_.Remove(pid); }

// ---------------------------------------------------------------------------
// Instant restore: on-demand rebuild hooks (recovery/instant_restore.cc)
// ---------------------------------------------------------------------------

Status Node::EnsureRestored(PageId pid) {
  // in_restore(pid): the rebuild's own disk probes and page forces land
  // back here; recursing would re-run the ladder mid-ladder. The gate is
  // per-page so that work interleaved at a rebuild's re-entrant wait
  // points (real mode) still first-touch-rebuilds *other* pending pages.
  if (!restore_.IsRestoring(pid) || restore_.in_restore(pid)) {
    return Status::OK();
  }
  return restore_.RestoreOne(this, pid);
}

std::size_t Node::SweepRestore(std::size_t max_pages) {
  if (state_ != NodeState::kUp || !restore_.active()) {
    return restore_.pending();
  }
  if (max_pages == 0) {
    max_pages = std::max<std::size_t>(1, options_.instant_restore.sweep_batch);
  }
  restore_.Sweep(this, max_pages);
  return restore_.pending();
}

Status Node::HandleLogLossNotice(NodeId from,
                                 const std::vector<PageId>& pages) {
  for (PageId pid : pages) {
    if (!OwnsPage(pid)) continue;
    // The sender held X on this page when its log died, so the newest
    // committed version existed only there — at the top of the page's
    // history, where no surviving log can prove a rebuild caught up.
    CLOG_RETURN_IF_ERROR(PoisonOwnPage(pid, kPsnUnrecoverable));
  }
  // Flush hygiene: the destroyed log may also have covered updates that
  // live on only in current page images (shipped to their owners but not
  // yet flushed — the Section 2.5 FlushNotify-horizon exposure). Pushing
  // every dirty copy held here to its owner's disk now means no future
  // media rebuild will go looking for the destroyed records.
  for (PageId pid : pool_.DirtyPages()) {
    if (OwnsPage(pid)) {
      ForceOwnPage(pid).ok();
    } else if (ShipDirtyCopy(pid).ok()) {
      network_->FlushRequest(id_, OwnerOf(pid), pid).ok();
    }
  }
  metrics_.GetCounter("media.log_loss_notices").Add(1);
  return Status::OK();
}

Status Node::ArchivePass() {
  if (!archive_.is_open()) return Status::OK();
  std::uint64_t written = 0;
  const std::vector<std::uint32_t> allocated = space_map_.AllocatedPages();
  for (std::uint32_t page_no : allocated) {
    PageId pid{id_, page_no};
    if (poison_.Contains(pid)) continue;  // Nothing trustworthy to copy.
    // Ceded pages live (and advance) at their new owner; the stale home
    // slot must not overwrite the archive's last pre-handoff copy.
    if (handoff_.IsCeded(pid)) continue;
    // Newest local version: the cached frame (possibly dirty — the archive
    // is fuzzy) if present, else the disk version. A dirty frame may hold
    // live logical updates; archiving it is a steal (the image could seed a
    // media rebuild), so the same barrier applies.
    if (pool_.Peek(pid) != nullptr && pool_.IsDirty(pid)) {
      CLOG_RETURN_IF_ERROR(PrepareSteal(pid));
    }
    const Page* src = pool_.Peek(pid);
    Page from_disk;
    if (src == nullptr) {
      Status rd = ReadOwnPage(page_no, &from_disk);
      // Unreadable slots (torn write artifacts, lost device before
      // recovery) simply don't advance their archive entry this pass.
      if (!rd.ok()) continue;
      ChargeDiskRead();
      src = &from_disk;
    }
    if (src->psn() <= archive_.ArchivedPsn(page_no)) continue;
    CLOG_RETURN_IF_ERROR(archive_.ArchivePage(page_no, *src));
    ChargeDiskWrite();
    ++written;
  }
  if (written == 0) return Status::OK();
  CLOG_RETURN_IF_ERROR(archive_.SealPass());
  metrics_.GetCounter("archive.passes").Add(1);
  metrics_.GetCounter("archive.pages_written").Add(written);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kArchivePass, archive_.seq(), written,
                 static_cast<std::uint32_t>(archive_.entries().size()));
  }
  return Status::OK();
}

Status Node::CheckArchiveConsistency() {
  if (!archive_.is_open()) return Status::OK();
  for (const auto& [page_no, archived_psn] : archive_.entries()) {
    Page img;
    Status rd = archive_.Restore(page_no, &img);
    if (!rd.ok()) {
      return Status::FailedPrecondition(
          "archive entry for page " + std::to_string(page_no) +
          " not restorable: " + rd.ToString());
    }
    // The image may be *newer* than the sealed entry (a later pass wrote
    // the slot and crashed before sealing) but never older.
    if (img.psn() < archived_psn) {
      return Status::FailedPrecondition(
          "archive image of page " + std::to_string(page_no) + " at psn " +
          std::to_string(img.psn()) + " older than sealed entry " +
          std::to_string(archived_psn));
    }
    PageId pid{id_, page_no};
    // A poisoned page's live version is legitimately behind its archive:
    // media recovery restored a base image it could not replay forward.
    // A ceded page's home slot is legitimately stale too — the live
    // version advances at the new owner.
    if (poison_.Contains(pid) || handoff_.IsCeded(pid)) continue;
    Psn current = 0;
    bool known = false;
    if (const Page* cached = pool_.Peek(pid); cached != nullptr) {
      current = cached->psn();
      known = true;
    } else if (Page tmp; disk_.is_open() &&
                         disk_.ReadPage(page_no, &tmp).ok()) {
      current = tmp.psn();
      known = true;
    }
    if (known && space_map_.IsAllocated(page_no) && archived_psn > current) {
      return Status::FailedPrecondition(
          "archive of page " + std::to_string(page_no) + " at psn " +
          std::to_string(archived_psn) + " ahead of current version " +
          std::to_string(current));
    }
  }
  return Status::OK();
}

}  // namespace clog
