#include <sstream>

#include "node/node.h"

/// \file
/// Invariant checking and debug dumps. The invariants below are the
/// cross-structure consistency conditions the paper's algorithms rest on;
/// the crash fuzzer calls CheckInvariants after every step, so a protocol
/// regression surfaces as a named violation instead of a data mismatch
/// fifty steps later.

namespace clog {

namespace {

Status Violation(NodeId node, const std::string& what) {
  return Status::FailedPrecondition("invariant violation at node " +
                                    std::to_string(node) + ": " + what);
}

}  // namespace

Status Node::CheckInvariants(bool deep) {
  if (state_ == NodeState::kDown) return Status::OK();

  // I1: a dirty cached copy of a REMOTE page implies we hold the node-
  // level exclusive lock (only X lets us write, demotion/release cleans or
  // drops the copy) and a DPT entry (its updates are not on disk).
  for (PageId pid : pool_.DirtyPages()) {
    if (OwnsPage(pid)) continue;
    if (lock_cache_.NodeMode(pid) != LockMode::kExclusive) {
      return Violation(id_, "dirty remote page " + pid.ToString() +
                                " without a cached X lock");
    }
    if (!dpt_.Contains(pid)) {
      return Violation(id_, "dirty remote page " + pid.ToString() +
                                " without a DPT entry");
    }
  }

  // I2: DPT entries are internally consistent (CurrPSN never behind the
  // first-dirty PSN) and their RedoLSN lies within the log.
  for (const auto& [pid, info] : dpt_.entries()) {
    if (info.curr_psn < info.psn) {
      return Violation(id_, "DPT entry " + pid.ToString() +
                                " has CurrPSN < PSN");
    }
    if (options_.has_local_log && info.redo_lsn > log_.end_lsn()) {
      return Violation(id_, "DPT entry " + pid.ToString() +
                                " RedoLSN beyond end of log");
    }
  }

  // I3: transaction-level lock holders are live transactions.
  for (PageId pid : lock_cache_.PagesWithActiveTxns()) {
    CallbackDecision dec = lock_cache_.CanComply(pid, LockMode::kNone);
    for (TxnId holder : dec.blocking_txns) {
      if (txns_.Find(holder) == nullptr) {
        return Violation(id_, "lock on " + pid.ToString() +
                                  " held by finished txn " +
                                  std::to_string(holder));
      }
    }
  }

  // I4: the global lock table only covers pages this node owns.
  for (const auto& [pid, info] : dpt_.entries()) {
    (void)info;
    if (pid.owner == id_ && !space_map_.IsAllocated(pid.page_no)) {
      return Violation(id_, "DPT entry for unallocated own page " +
                                pid.ToString());
    }
  }

  // I5: pool occupancy within capacity.
  if (pool_.size() > pool_.capacity()) {
    return Violation(id_, "buffer pool over capacity");
  }

  // I6 (deep): a CLEAN cached copy of an OWN page matches the disk version
  // exactly — own-page cleanliness is only ever established by a write-
  // back or a fresh read.
  if (deep) {
    for (PageId pid : pool_.CachedPages()) {
      if (!OwnsPage(pid)) continue;
      if (pool_.IsDirty(pid)) continue;
      if (poison_.Contains(pid)) {
        // A poisoned page's disk image is whatever media recovery could
        // salvage; the serving paths refuse it, so disk agreement is not
        // an invariant for it.
        continue;
      }
      Page* cached = pool_.Lookup(pid);
      Page on_disk;
      Status st = ReadDurablePage(pid, &on_disk);
      if (!st.ok()) {
        return Violation(id_, "clean own page " + pid.ToString() +
                                  " unreadable on disk: " + st.ToString());
      }
      if (on_disk.psn() != cached->psn()) {
        return Violation(
            id_, "clean own page " + pid.ToString() + " at PSN " +
                     std::to_string(cached->psn()) + " but disk has PSN " +
                     std::to_string(on_disk.psn()));
      }
    }
  }
  return Status::OK();
}

std::string Node::DebugString() const {
  std::ostringstream out;
  out << "node " << id_ << " state=";
  switch (state_) {
    case NodeState::kDown:
      out << "down";
      break;
    case NodeState::kRecovering:
      out << "recovering";
      break;
    case NodeState::kUp:
      out << "up";
      break;
  }
  out << " mode=" << LoggingModeName(options_.logging_mode) << "\n";
  if (state_ == NodeState::kDown) return out.str();

  out << "  log: end=" << log_.end_lsn() << " flushed=" << log_.flushed_lsn()
      << " reclaimable=" << log_.reclaimable_lsn()
      << " records=" << log_.appended_records() << "\n";
  out << "  pool: " << pool_.size() << "/" << pool_.capacity() << " frames,"
      << " hits=" << pool_.hits() << " misses=" << pool_.misses()
      << " evictions=" << pool_.evictions() << "\n";
  for (PageId pid : pool_.CachedPages()) {
    out << "    page " << pid.ToString()
        << (pool_.IsDirty(pid) ? " dirty" : " clean") << "\n";
  }
  out << "  dpt: " << dpt_.size() << " entries\n";
  for (const auto& [pid, info] : dpt_.entries()) {
    out << "    " << pid.ToString() << " psn=" << info.psn
        << " curr=" << info.curr_psn << " redo=" << info.redo_lsn << "\n";
  }
  out << "  node locks held:";
  for (const LockListEntry& l : lock_cache_.NodeLocks()) {
    out << " " << l.pid.ToString() << "=" << LockModeName(l.mode);
  }
  out << "\n  availability: parked=" << metrics_.CounterValue("avail.parked")
      << " resumed=" << metrics_.CounterValue("avail.resumed")
      << " aborted_contention="
      << metrics_.CounterValue("workload.aborted_contention")
      << " aborted_availability="
      << metrics_.CounterValue("workload.aborted_availability");
  for (const auto& [owner, since_ns] : parked_owners_) {
    out << " parked_owner=" << owner << "@" << since_ns;
  }
  out << "\n  active txns: " << txns_.ActiveCount() << "\n";
  std::size_t adaptive_live = 0;
  for (const Transaction* t : txns_.Active()) {
    if (t->strategy == LogStrategy::kAdaptive) ++adaptive_live;
  }
  out << "  logging: strategy="
      << LogStrategyName(options_.logging_policy.strategy)
      << " adaptive_live=" << adaptive_live
      << " logical_stashes=" << live_logical_txns_
      << " begins_adaptive=" << metrics_.CounterValue("txn.begins_adaptive")
      << " commits_logical=" << metrics_.CounterValue("txn.commits_logical")
      << " logical_records=" << metrics_.CounterValue("txn.logical_records")
      << " upgrades=" << metrics_.CounterValue("txn.upgrades") << "\n";
  return out.str();
}

Result<std::string> Node::DebugPageImage(PageId pid) {
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  CLOG_RETURN_IF_ERROR(EnsureRestored(pid));
  if (const Page* cached = pool_.Peek(pid); cached != nullptr) {
    return std::string(cached->data(), kPageSize);
  }
  Page tmp;
  CLOG_RETURN_IF_ERROR(ReadDurablePage(pid, &tmp));
  return std::string(tmp.data(), kPageSize);
}

}  // namespace clog
