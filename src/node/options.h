#ifndef CLOG_NODE_OPTIONS_H_
#define CLOG_NODE_OPTIONS_H_

#include <cstdint>
#include <optional>
#include <string>

#include "common/sim_clock.h"

namespace clog {

class FaultInjector;
class TraceSink;

/// Which logging protocol a node runs. kClientLocal is the paper's
/// contribution; the other two are the related-work baselines the benchmark
/// harness compares against (DESIGN.md Section 2).
enum class LoggingMode : std::uint8_t {
  /// Paper: all log records written to the node's local log; commit is
  /// local; crash recovery per Sections 2.3/2.4.
  kClientLocal = 0,
  /// Baseline B1 (ARIES/CSA-like): log records are shipped to the owner
  /// node — on dirty-page replacement and, with a force, at commit. The
  /// owner's log is the only log for the client's updates.
  kShipToOwner = 1,
  /// Baseline B2 (Rdb/VMS-like): updated pages are forced to the owner's
  /// disk at commit and before every inter-node transfer; undo-only local
  /// logging.
  kForceAtTransfer = 2,
};

std::string_view LoggingModeName(LoggingMode m);

/// Commit-time force coalescing (group commit — the force discipline ARIES
/// and ARIES/CSA assume as their baseline). When enabled, a committing
/// transaction appends its commit record and *parks* instead of forcing
/// immediately; one shared force — triggered by the group filling, the
/// coalescing window expiring, or any other force on the same log — covers
/// every parked commit LSN at once. A transaction is never acknowledged
/// before its commit record is durable; the only thing traded away is
/// latency inside the window. Applies to LoggingMode::kClientLocal (the
/// paper's protocol — the one whose commit force is purely local).
struct GroupCommitPolicy {
  bool enabled = false;
  /// Longest a committer parks (simulated time) before the group forces
  /// anyway. 0 = force immediately (coalescing only via group size).
  std::uint64_t window_ns = 1'000'000;
  /// Force as soon as this many committers are parked.
  std::size_t max_group_size = 8;
};

/// Fuzzy online page archiving (media recovery, docs/RECOVERY_WALKTHROUGH.md).
/// When enabled, the node incrementally snapshots its owned pages into a
/// side archive file ("node.archive") — no quiescing: pages are copied at
/// whatever PSN they currently have, dirty or clean, and the distributed
/// redo collection replays them forward from exactly that PSN after a data
/// device loss. Off by default: no archive file is created, no hot-path
/// branch is taken, trace hashes and benchmarks are byte-identical to a
/// build without the subsystem.
struct ArchiveOptions {
  bool enabled = false;
  /// Take one incremental archive pass every N completed checkpoints
  /// (1 = every checkpoint). The pass only rewrites pages whose PSN moved
  /// since they were last archived.
  std::uint32_t every_checkpoints = 1;
};

/// Instant restore (docs/RECOVERY_WALKTHROUGH.md "Instant restore"): after
/// a data-device loss, restart recovery builds only a per-page restore plan
/// and opens the node for traffic immediately; each lost page is rebuilt on
/// first touch (synchronously for the toucher) while a background sweep
/// drains the cold tail. Off by default: recovery rebuilds every lost page
/// eagerly before the node comes up, exactly as before.
struct InstantRestoreOptions {
  bool enabled = false;
  /// Pages the background sweeper rebuilds per invocation.
  std::size_t sweep_batch = 1;
};

/// What kind of update record a transaction writes (adaptive logging,
/// docs/PROTOCOLS.md "Adaptive logging"; after arxiv 1503.03653).
enum class LogStrategy : std::uint8_t {
  /// Full physical ARIES records (redo + undo image) for every update.
  /// The default; recovery behavior is byte-identical to earlier builds.
  kPhysical = 0,
  /// Compact redo-only records while the transaction stays single-node on
  /// its own pages; the node upgrades it to physical records (backfilling
  /// the stashed before-images into the log) the moment a cross-node
  /// dependency or a page steal appears.
  kAdaptive = 1,
};

std::string_view LogStrategyName(LogStrategy s);

/// The unified logging policy: strategy selection, commit-force coalescing,
/// archive cadence, and recovery parallelism in one value type, replacing
/// the scattered per-feature option structs.
///
/// Named setters chain, so call sites read as one declaration:
///
///   opts.logging_policy = LoggingPolicy()
///       .WithStrategy(LogStrategy::kAdaptive)
///       .WithGroupCommit(true)
///       .WithRedoWorkers(4);
struct LoggingPolicy {
  LogStrategy strategy = LogStrategy::kPhysical;
  /// Dependency-parallel redo: number of worker threads replaying
  /// independent transaction chains during restart recovery (real
  /// execution mode; in sim the chains replay sequentially in a
  /// deterministic order). 0 = classic PSN-order redo everywhere.
  std::size_t redo_workers = 0;
  GroupCommitPolicy group_commit;
  ArchiveOptions archive;

  LoggingPolicy& WithStrategy(LogStrategy s) {
    strategy = s;
    return *this;
  }
  LoggingPolicy& WithRedoWorkers(std::size_t n) {
    redo_workers = n;
    return *this;
  }
  LoggingPolicy& WithGroupCommit(bool on) {
    group_commit.enabled = on;
    return *this;
  }
  LoggingPolicy& WithGroupCommitWindow(std::uint64_t window_ns,
                                       std::size_t max_group_size) {
    group_commit.enabled = true;
    group_commit.window_ns = window_ns;
    group_commit.max_group_size = max_group_size;
    return *this;
  }
  /// 0 disables archiving; N takes an archive pass every N checkpoints.
  LoggingPolicy& WithArchiveEvery(std::uint32_t every_checkpoints) {
    archive.enabled = every_checkpoints != 0;
    archive.every_checkpoints =
        every_checkpoints != 0 ? every_checkpoints : 1;
    return *this;
  }
};

/// Per-transaction options (TxnHandle::Begin / Node::Begin overloads).
struct TxnOptions {
  /// Overrides the node policy's LogStrategy for this transaction only;
  /// unset = inherit. An override to kAdaptive still obeys every gate
  /// (own pages, kClientLocal mode, page-granular locking).
  std::optional<LogStrategy> strategy;
};

/// Static configuration of one node.
struct NodeOptions {
  /// Directory for this node's database, log, and side files.
  std::string dir;
  /// Buffer pool capacity in frames.
  std::size_t buffer_frames = 256;
  /// Logging protocol (paper vs baselines).
  LoggingMode logging_mode = LoggingMode::kClientLocal;
  /// Bounded log capacity in bytes; 0 = unbounded (Section 2.5 off).
  std::uint64_t log_capacity_bytes = 0;
  /// Whether the node keeps a local log at all. Nodes without local logs
  /// may participate (paper Figure 1) but must use kShipToOwner.
  bool has_local_log = true;
  /// Fine-granularity extension (paper Section 4, the EDBT'96 follow-up):
  /// when true, *local* transactions lock individual records, so several
  /// of them can concurrently use different records of one page.
  /// Inter-node locking and callbacks stay page-granular, preserving the
  /// per-page PSN total order the recovery algorithms require.
  bool local_record_locking = false;
  /// Per-node log-force cost override in nanoseconds; 0 uses the cluster
  /// cost model. Lets benchmarks model asymmetric hardware (fast server
  /// log, slow client disk — the 1996 objection to client logging).
  std::uint64_t log_force_ns_override = 0;
  /// Ablation switch (bench A2): when false, the owner does not send
  /// Section 2.5 flush notifications after forcing a page, so replacers'
  /// DPT entries never advance or drop. Shows why the paper's
  /// notification bookkeeping is load-bearing for log reclamation.
  bool send_flush_notifications = true;
  /// Optional fault injector shared by the whole cluster (not owned); wired
  /// into this node's DiskManager and LogManager on open. nullptr = off.
  FaultInjector* fault_injector = nullptr;
  /// The unified logging policy (strategy, group commit, archive cadence,
  /// redo parallelism).
  LoggingPolicy logging_policy;
  /// On-demand media recovery: serve traffic while lost pages rebuild at
  /// first touch. Disabled by default (eager rebuild, as before).
  InstantRestoreOptions instant_restore;
  /// Optional structured-event trace sink shared by the whole cluster (not
  /// owned). nullptr = tracing off: every emit point is guarded by one
  /// branch on this pointer, so the default costs nothing.
  TraceSink* trace_sink = nullptr;
};

}  // namespace clog

#endif  // CLOG_NODE_OPTIONS_H_
