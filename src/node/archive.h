#ifndef CLOG_NODE_ARCHIVE_H_
#define CLOG_NODE_ARCHIVE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

/// \file
/// Media-recovery side state: the fuzzy page archive and the poison ledger.
///
/// The archive is the per-node answer to data-device loss. Because a page's
/// log records live only in the clients that updated it (the paper's core
/// design), losing the owner's database file is not a local restore — it is
/// a *distributed* redo collection over every client's log. The archive
/// bounds how far back that collection must reach: restart recovery restores
/// each lost page from its newest archived image and replays the cross-node
/// PSN schedule forward from exactly that PSN. With no archive the same
/// protocol still works from freshly formatted pages; it just replays the
/// page's entire life.
///
/// Archiving is *fuzzy* (ARIES terminology): pages are copied online at
/// whatever PSN they currently carry — dirty or clean, mid-transaction or
/// not — with no quiescing. This is sound because redo is PSN-conditional
/// (a record applies only when the page is at exactly its psn_before) and
/// rollbacks are logged as CLRs that bump the PSN like any other update, so
/// an archived uncommitted state replays forward into the correct one. The
/// one ordering requirement is WAL's: an image must never contain an update
/// whose log record is not yet durable. The caller guarantees it by running
/// archive passes at the end of Checkpoint(), after the log force.
///
/// The poison ledger records pages whose current committed state is
/// *unrecoverable* — a client's log was destroyed, or redo collection found
/// a hole in the PSN schedule. Poisoned pages refuse service with
/// Corruption instead of ever serving stale data silently; the entry is
/// durable (it must survive further crashes) and carries the PSN the page
/// was missing, so a later rebuild that does reach that PSN (say, a
/// previously-down client came back with its log) clears it.

namespace clog {

/// "Needed PSN" sentinel for pages poisoned by a destroyed client log: the
/// lost records were at the top of the page's history, so no finite rebuild
/// can prove it caught up, and the poison is permanent.
inline constexpr Psn kPsnUnrecoverable = ~static_cast<Psn>(0);

/// Incremental online snapshot of one node's owned pages, stored beside the
/// database as "node.archive" (page images, slot = page_no) plus
/// "node.archive.meta" (sealed pass metadata). Both are modeled as living
/// on a separate archive device: losing the data device does not lose them.
///
/// A pass writes only pages whose PSN advanced since they were last
/// archived, then seals: fsync the image file, then atomically publish the
/// meta file with the next pass sequence number. A crash mid-pass leaves
/// the previous sealed meta authoritative; image slots newer than the meta
/// are either checksum-valid (usable) or torn (detected and ignored).
class PageArchive {
 public:
  /// Opens (creating if needed) the archive pair under `dir`. A missing or
  /// unreadable meta file starts the archive empty — media recovery then
  /// falls back to formatted-seed rebuild; it is never an error.
  Status Open(const std::string& dir);

  /// Syncs and closes the image file.
  Status Close();

  bool is_open() const { return file_.is_open(); }

  /// Sequence number of the last sealed pass (0 = none yet).
  std::uint64_t seq() const { return seq_; }

  /// PSN at which `page_no` was last archived (staged or sealed); 0 = never.
  Psn ArchivedPsn(std::uint32_t page_no) const;

  /// Copies `src` into the page's archive slot and stages its PSN for the
  /// next SealPass. The source may be dirty and unsealed; the slot gets its
  /// own checksum.
  Status ArchivePage(std::uint32_t page_no, const Page& src);

  /// Fsyncs the image file and atomically publishes the staged metadata
  /// under the next sequence number.
  Status SealPass();

  /// Reads the archived image of `page_no` into `*out`, verifying its
  /// checksum. NotFound if never archived; Corruption if the slot is torn.
  Status Restore(std::uint32_t page_no, Page* out);

  /// Sealed metadata: page_no -> PSN at last sealed archive time.
  const std::map<std::uint32_t, Psn>& entries() const { return entries_; }

 private:
  Status LoadMeta();
  Status StoreMeta(std::uint64_t seq) const;

  DiskManager file_;
  std::string meta_path_;
  std::uint64_t seq_ = 0;
  std::map<std::uint32_t, Psn> entries_;  ///< Sealed.
  std::map<std::uint32_t, Psn> staged_;   ///< Written since last seal.
};

/// Durable set of pages this node owns whose committed state is known to be
/// unrecoverable. Kept in "node.poison" (same metadata device as the space
/// map; absent when empty, so a healthy node never creates it). Every
/// mutation is crash-atomic before it returns: a poison verdict must not be
/// forgotten by the next crash.
///
/// Entries whose PageId this node does NOT own are *debts*: pages of a peer
/// that this node's destroyed log left unrecoverable, recorded durably in
/// case the owner was unreachable when the loss was detected. They are
/// retired once a LogLossNotice reaches the owner.
class PoisonLedger {
 public:
  /// Loads `dir`/`filename` if present. A corrupt ledger is an error (an
  /// unreadable poison set must not silently un-poison pages). The filename
  /// parameter lets instant restore reuse the same crash-atomic machinery
  /// for its own page set ("node.restore"): same format, same absent-when-
  /// empty contract, different fact recorded.
  Status Open(const std::string& dir,
              const std::string& filename = "node.poison");

  bool Contains(PageId pid) const { return entries_.contains(pid.Pack()); }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// PSN the page needs to reach to be considered recovered;
  /// kPsnUnrecoverable for permanent (log-loss) poison. 0 = not poisoned.
  Psn NeededPsn(PageId pid) const;

  /// Adds (or escalates: keeps the larger needed PSN of) an entry, durably.
  Status Add(PageId pid, Psn needed_psn);

  /// Removes an entry, durably. No-op if absent.
  Status Remove(PageId pid);

  /// Packed-PageId -> needed PSN, for introspection and recovery sweeps.
  const std::map<std::uint64_t, Psn>& entries() const { return entries_; }

 private:
  Status Persist() const;

  std::string path_;
  std::map<std::uint64_t, Psn> entries_;
};

}  // namespace clog

#endif  // CLOG_NODE_ARCHIVE_H_
