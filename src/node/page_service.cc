#include <algorithm>

#include "node/node.h"
#include "trace/trace_sink.h"

/// \file
/// NodeService handlers: the owner-side page/lock service of Section 2.2
/// and the peer-side recovery protocol of Sections 2.3-2.4.

namespace clog {

// ---------------------------------------------------------------------------
// Normal processing (Section 2.2)
// ---------------------------------------------------------------------------

Status Node::HandleLockPage(NodeId from, PageId pid, LockMode mode,
                            bool want_page, LockPageReply* reply) {
  *reply = LockPageReply();
  if (state_ == NodeState::kDown) return Status::NodeDown("owner not up");
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  if (pid.owner == id_ ? !space_map_.IsAllocated(pid.page_no)
                       : !handoff_.IsAdopted(pid)) {
    return Status::NotFound("page not allocated: " + pid.ToString());
  }
  if (!handoff_fenced_.empty() && handoff_fenced_.count(pid) != 0) {
    // The page is mid-handoff: its recovery state is being transferred, so
    // no new lock may be minted against the old owner's table.
    return Status::Busy("page handoff in progress: " + pid.ToString());
  }
  // Instant restore: a requester's touch of a still-restoring page rebuilds
  // it now, before the poison check — the rebuild itself may prove the page
  // whole (peer copy, archive + redo) or poison it for real.
  CLOG_RETURN_IF_ERROR(EnsureRestored(pid));
  if (poison_.Contains(pid)) {
    // Media recovery could not rebuild this page (a client log holding part
    // of its history is gone). Serving it would hand out silently wrong
    // data; refusing is the contract.
    return Status::Corruption("page unrecoverable after media failure: " +
                              pid.ToString());
  }
  if (state_ == NodeState::kRecovering) {
    // During restart recovery only conflict-free grants are served (no
    // callbacks run in this state): enough for a recovering peer to fetch
    // a base version or re-assert a lock it already holds, while normal
    // traffic stays fenced until recovery finishes.
    if (global_locks_.HeldBy(pid, from) < mode) {
      GrantOutcome out = global_locks_.TryGrant(pid, from, mode);
      if (!out.granted && recovery_redo_done_) {
        // Joint restart (Section 2.4): once our own redo pass is complete,
        // the Section 2.3.3 fences we installed on our pages have done
        // their job. A recovering peer's undo pass may need one of those
        // pages; yield the fence exactly as a normal self-callback would,
        // provided we are the only conflicting holder and no local
        // transaction uses the page.
        bool all_self = true;
        for (NodeId holder : out.conflicting) {
          if (holder != id_) {
            all_self = false;
            break;
          }
        }
        LockMode downgrade_to =
            mode == LockMode::kShared ? LockMode::kShared : LockMode::kNone;
        if (all_self && lock_cache_.CanComply(pid, downgrade_to).can_comply) {
          lock_cache_.ApplyCallback(pid, downgrade_to);
          if (downgrade_to == LockMode::kNone) {
            global_locks_.Release(pid, id_);
          } else {
            global_locks_.Downgrade(pid, id_);
          }
          out = global_locks_.TryGrant(pid, from, mode);
        }
      }
      if (!out.granted) {
        return Status::NodeDown("owner recovering; lock conflicts");
      }
    }
    reply->granted = true;
    if (want_page) {
      CLOG_ASSIGN_OR_RETURN(Page * latest, OwnLatestPage(pid));
      CLOG_RETURN_IF_ERROR(WalBeforePageLeaves(pid, latest));
      auto copy = std::make_shared<Page>();
      copy->CopyFrom(*latest);
      copy->SealChecksum();
      reply->page = std::move(copy);
    }
    return Status::OK();
  }

  for (int attempt = 0; attempt < 4; ++attempt) {
    GrantOutcome out = global_locks_.TryGrant(pid, from, mode);
    if (out.granted) {
      reply->granted = true;
      break;
    }
    // Callback locking: conflicting cached locks are called back. A read
    // request demotes X holders to S; a write request releases everyone
    // (Section 2.2).
    LockMode downgrade_to =
        mode == LockMode::kShared ? LockMode::kShared : LockMode::kNone;
    bool all_complied = true;
    for (NodeId holder : out.conflicting) {
      if (holder == id_) {
        // Callback to ourselves: our own local transactions are the users.
        CallbackDecision dec = lock_cache_.CanComply(pid, downgrade_to);
        if (!dec.can_comply) {
          all_complied = false;
          reply->blockers.push_back(holder);
          reply->blocking_txns.insert(reply->blocking_txns.end(),
                                      dec.blocking_txns.begin(),
                                      dec.blocking_txns.end());
          continue;
        }
        lock_cache_.ApplyCallback(pid, downgrade_to);
        if (downgrade_to == LockMode::kNone) {
          global_locks_.Release(pid, id_);
          // Our cached copy stays: the owner's pool is the home for the
          // page between remote holders.
        } else {
          global_locks_.Downgrade(pid, id_);
        }
        continue;
      }
      CallbackReply cb;
      Status st = network_->Callback(id_, holder, pid, downgrade_to, &cb);
      if (st.IsNodeDown()) {
        // Holder crashed while holding the lock: the page must wait for
        // that node's recovery (Section 2.3: exclusive locks of a crashed
        // node are retained).
        all_complied = false;
        reply->blockers.push_back(holder);
        continue;
      }
      if (!st.ok()) return st;
      if (!cb.complied) {
        all_complied = false;
        reply->blockers.push_back(holder);
        reply->blocking_txns.insert(reply->blocking_txns.end(),
                                    cb.blocking_txns.begin(),
                                    cb.blocking_txns.end());
        continue;
      }
      if (downgrade_to == LockMode::kNone) {
        global_locks_.Release(pid, holder);
      } else {
        global_locks_.Downgrade(pid, holder);
      }
      if (cb.page) {
        CLOG_RETURN_IF_ERROR(InstallShippedCopy(*cb.page, holder));
        if (options_.logging_mode == LoggingMode::kForceAtTransfer) {
          // B2 forces every transferred page to disk.
          CLOG_RETURN_IF_ERROR(ForceOwnPage(pid));
        }
      }
    }
    if (!all_complied) {
      reply->granted = false;
      metrics_.GetCounter("lock.callback_blocked").Add(1);
      return Status::OK();
    }
  }

  if (!reply->granted) {
    return Status::Busy("lock grant did not converge on " + pid.ToString());
  }
  metrics_.GetCounter("lock.grants").Add(1);
  if (want_page) {
    CLOG_ASSIGN_OR_RETURN(Page * latest, OwnLatestPage(pid));
    CLOG_RETURN_IF_ERROR(WalBeforePageLeaves(pid, latest));
    auto copy = std::make_shared<Page>();
    copy->CopyFrom(*latest);
    copy->SealChecksum();
    reply->page = std::move(copy);
  }
  return Status::OK();
}

Status Node::WalBeforePageLeaves(PageId pid, const Page* page) {
  if (!options_.has_local_log) return Status::OK();
  if (page == nullptr || !pool_.IsDirty(pid)) return Status::OK();
  if (options_.logging_mode == LoggingMode::kShipToOwner) {
    for (const Transaction* t : txns_.Active()) {
      CLOG_RETURN_IF_ERROR(ShipPendingRecords(const_cast<Transaction*>(t),
                                              /*force=*/false, &pid));
    }
    return Status::OK();
  }
  if (page->page_lsn() >= log_.flushed_lsn()) {
    CLOG_RETURN_IF_ERROR(ForceLog(page->page_lsn()));
  }
  return Status::OK();
}

Result<Page*> Node::OwnLatestPage(PageId pid) {
  if (Page* cached = pool_.Lookup(pid)) return cached;
  // An on-demand rebuild installs the page in the pool; re-check before
  // the miss path tries to Insert the same frame.
  CLOG_RETURN_IF_ERROR(EnsureRestored(pid));
  if (Page* cached = pool_.Lookup(pid)) return cached;
  if (poison_.Contains(pid)) {
    return Status::Corruption("page unrecoverable after media failure: " +
                              pid.ToString());
  }
  CLOG_ASSIGN_OR_RETURN(Page * frame, pool_.Insert(pid));
  Status st = ReadDurablePage(pid, frame);
  if (!st.ok()) {
    pool_.Drop(pid);
    return st;
  }
  ChargeDiskRead();
  return frame;
}

Status Node::HandleCallback(NodeId from, PageId pid, LockMode downgrade_to,
                            CallbackReply* reply) {
  *reply = CallbackReply();
  if (state_ != NodeState::kUp) return Status::NodeDown("holder not up");

  CallbackDecision dec = lock_cache_.CanComply(pid, downgrade_to);
  if (!dec.can_comply) {
    reply->complied = false;
    reply->blocking_txns = dec.blocking_txns;
    metrics_.GetCounter("lock.callbacks_refused").Add(1);
    return Status::OK();
  }

  Page* cached = pool_.Lookup(pid);
  if (cached != nullptr && pool_.IsDirty(pid)) {
    // The dirty copy travels with the callback reply so the owner can hand
    // the current version to the requester. WAL first.
    if (options_.logging_mode == LoggingMode::kShipToOwner) {
      for (const Transaction* t : txns_.Active()) {
        CLOG_RETURN_IF_ERROR(ShipPendingRecords(const_cast<Transaction*>(t),
                                                /*force=*/false, &pid));
      }
    } else if (cached->page_lsn() >= log_.flushed_lsn()) {
      CLOG_RETURN_IF_ERROR(ForceLog(cached->page_lsn()));
    }
    auto copy = std::make_shared<Page>();
    copy->CopyFrom(*cached);
    copy->SealChecksum();
    reply->page = std::move(copy);
    reply->page_psn = cached->psn();
    dpt_.OnReplaced(pid, cached->psn(), log_.end_lsn());
    pool_.MarkClean(pid);
  }
  if (downgrade_to == LockMode::kNone && cached != nullptr) {
    // Without a lock the page cannot stay cached.
    pool_.Drop(pid);
  }
  lock_cache_.ApplyCallback(pid, downgrade_to);
  reply->complied = true;
  metrics_.GetCounter("lock.callbacks_honored").Add(1);
  return Status::OK();
}

Status Node::HandleUnlockNotice(NodeId from, PageId pid) {
  global_locks_.Release(pid, from);
  return Status::OK();
}

Status Node::HandlePageShip(NodeId from, const Page& page) {
  if (state_ == NodeState::kDown) return Status::NodeDown("owner down");
  CLOG_RETURN_IF_ERROR(page.VerifyChecksum());
  CLOG_RETURN_IF_ERROR(InstallShippedCopy(page, from));
  const PageId pid = page.id();
  if (!handoff_fenced_.empty() && handoff_fenced_.count(pid) != 0) {
    // Mid-handoff the shipped (kShipped) durable image must stay the
    // latest version: re-force so the offer built from it misses nothing.
    CLOG_RETURN_IF_ERROR(ForceOwnPage(pid));
  }
  return Status::OK();
}

Status Node::HandleFlushRequest(NodeId from, PageId pid) {
  if (state_ != NodeState::kUp) return Status::NodeDown("owner not up");
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the owner of " + pid.ToString());
  }
  replacers_[pid].insert(from);
  return ForceOwnPage(pid);
}

void Node::HandleFlushNotify(NodeId from, PageId pid, Psn flushed_psn) {
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kFlushNotify, pid.Pack(), flushed_psn,
                 from);
  }
  dpt_.OnOwnerFlushed(pid, flushed_psn);
  // PSNs order every update to a page globally, so a flushed version at
  // PSN >= ours subsumes our cached copy: everything in it is on the
  // owner's disk. The copy can stay cached, but it no longer needs to
  // travel home on replacement.
  Page* cached = pool_.Lookup(pid);
  if (cached != nullptr && pool_.IsDirty(pid) && cached->psn() <= flushed_psn) {
    pool_.MarkClean(pid);
  }
  AdvanceReclaimHorizon();
}

Status Node::HandleLogShip(NodeId from, const std::vector<LogRecord>& records,
                           bool force) {
  if (state_ != NodeState::kUp) return Status::NodeDown("owner not up");
  if (!options_.has_local_log) {
    return Status::FailedPrecondition("log ship to a node without a log");
  }
  Lsn lsn = kNullLsn;
  for (const LogRecord& rec : records) {
    CLOG_RETURN_IF_ERROR(AppendWithReclaim(rec, &lsn));
  }
  if (force) {
    CLOG_RETURN_IF_ERROR(ForceLog(lsn));
  }
  b1_received_records_ += records.size();
  metrics_.GetCounter("b1.records_received").Add(records.size());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery protocol handlers (Sections 2.3, 2.4)
// ---------------------------------------------------------------------------

Status Node::HandleRecoveryQuery(NodeId crashed, RecoveryQueryReply* reply) {
  *reply = RecoveryQueryReply();
  if (state_ == NodeState::kDown) return Status::NodeDown("peer down");

  // (a) Pages owned by the crashed node present in our cache: these carry
  // all updates made before the crash and supersede log-based recovery
  // (Section 2.3.1).
  for (PageId pid : pool_.CachedPages()) {
    if (OwnerOf(pid) == crashed) reply->cached_pages_of_crashed.push_back(pid);
  }
  std::sort(reply->cached_pages_of_crashed.begin(),
            reply->cached_pages_of_crashed.end());

  // (b) Our DPT entries for its pages (Section 2.3.1). Ownership routes
  // through the directory: an adopted page's recovery state belongs to its
  // current owner, not the home baked into the PageId.
  for (const DptEntry& e : dpt_.ToEntries()) {
    if (OwnerOf(e.pid) == crashed) {
      reply->dpt_entries_for_crashed.push_back(e);
    }
  }
  std::sort(reply->dpt_entries_for_crashed.begin(),
            reply->dpt_entries_for_crashed.end(),
            [](const DptEntry& a, const DptEntry& b) { return a.pid < b.pid; });

  // (c) Lock reconstruction (Section 2.3.3): locks we acquired from the
  // crashed node rebuild its global table ...
  for (const LockListEntry& l : lock_cache_.NodeLocks()) {
    if (OwnerOf(l.pid) == crashed) {
      reply->locks_i_hold_on_crashed.push_back(l);
    }
  }

  // ... its shared locks here are released, its exclusive locks retained
  // (they fence off pages that are not yet recovered) and reported so it
  // can rebuild its lock cache.
  global_locks_.ReleaseSharedOf(crashed);
  reply->x_locks_crashed_held_here = global_locks_.ExclusiveLocksOf(crashed);

  // (d) Debts: pages of `crashed` whose history passed through a log we
  // lost to a media failure. The direct LogLossNotice could not be
  // delivered while it was down; the recovery query is the guaranteed
  // rendezvous (every restart queries every peer).
  for (const auto& [packed, needed] : poison_.entries()) {
    (void)needed;
    const PageId pid = PageId::Unpack(packed);
    if (OwnerOf(pid) == crashed) {
      reply->log_loss_pages_of_crashed.push_back(pid);
    }
  }
  std::sort(reply->log_loss_pages_of_crashed.begin(),
            reply->log_loss_pages_of_crashed.end());
  return Status::OK();
}

Status Node::HandleFetchCachedPage(NodeId from, PageId pid,
                                   std::shared_ptr<Page>* page) {
  page->reset();
  if (state_ == NodeState::kDown) return Status::NodeDown("peer down");
  Page* cached = pool_.Lookup(pid);
  if (cached == nullptr) {
    return Status::NotFound("page not cached: " + pid.ToString());
  }
  CLOG_RETURN_IF_ERROR(WalBeforePageLeaves(pid, cached));
  auto copy = std::make_shared<Page>();
  copy->CopyFrom(*cached);
  copy->SealChecksum();
  *page = std::move(copy);
  return Status::OK();
}

Status Node::HandleBuildPsnList(NodeId from, const std::vector<PageId>& pages,
                                bool full_history, PsnListReply* reply) {
  *reply = PsnListReply();
  reply->per_page.resize(pages.size());
  if (state_ == NodeState::kDown) return Status::NodeDown("peer down");
  if (!options_.has_local_log) return Status::OK();

  // Scan from the minimum RedoLSN among our DPT entries for the requested
  // pages (Section 2.3.4); without an entry we have nothing to redo. In
  // full-history mode (a torn on-disk page is being rebuilt from its
  // space-map PSN seed) the DPT is no guide — updates already flushed and
  // acknowledged must be replayed again — so the whole log is scanned.
  std::map<PageId, std::size_t> index;
  for (std::size_t i = 0; i < pages.size(); ++i) index[pages[i]] = i;

  // Re-entrancy (Section 2.4 + crash-during-recovery): a previous recovery
  // conversation for these pages may have died mid-flight — the requester
  // crashed between BuildPsnList and its final RecoverPage round — leaving
  // a stale resume cursor behind. A fresh BuildPsnList starts a fresh
  // conversation, so any leftover per-page scan state must go: the
  // try_emplace below would otherwise keep the stale cursor and make the
  // next redo pass resume at the wrong log position.
  for (const PageId& pid : pages) {
    recovery_cursor_.erase(pid);
    recovery_applied_.erase(pid);
  }
  Lsn start = kNullLsn;
  if (full_history) {
    start = LogManager::first_lsn();
  } else {
    for (std::size_t i = 0; i < pages.size(); ++i) {
      const DirtyPageInfo* info = dpt_.Find(pages[i]);
      if (info == nullptr) continue;
      if (start == kNullLsn || info->redo_lsn < start) start = info->redo_lsn;
    }
  }
  if (start == kNullLsn) return Status::OK();

  // One pass: a PSN enters the list when the record's transaction differs
  // from the transaction of the previously inserted PSN for that page.
  //
  // Adaptive logging (docs/PROTOCOLS.md "Redo skip rule"): logical records
  // of a transaction that never reached a commit NOR an UNDO_BACKFILL are
  // volatile-only — their effects were never exposed (the steal barrier
  // upgrades before any covered page leaves the cache), so redo must not
  // replay them. The same scan that builds the lists classifies them: a
  // commit/backfill always carries a higher LSN than the records it covers,
  // so "logical record seen, no commit/backfill seen by log end" is proof.
  // Live transactions are exempt — an instant-restore rebuild can run while
  // normal processing has open adaptive transactions that will still commit.
  std::map<PageId, TxnId> last_txn;
  std::vector<std::vector<TxnId>> entry_txns(pages.size());
  std::set<TxnId> logical_txns;
  std::set<TxnId> resolved_txns;
  LogCursor cursor(&log_, start);
  LogRecord rec;
  Lsn lsn = kNullLsn;
  Status scan_status;
  while (cursor.Next(&rec, &lsn, &scan_status)) {
    if (rec.type == LogRecordType::kCommit ||
        rec.type == LogRecordType::kUndoBackfill) {
      resolved_txns.insert(rec.txn);
      continue;
    }
    if (rec.type != LogRecordType::kUpdate &&
        rec.type != LogRecordType::kClr &&
        rec.type != LogRecordType::kLogicalUpdate) {
      continue;
    }
    if (rec.type == LogRecordType::kLogicalUpdate) {
      logical_txns.insert(rec.txn);
    }
    auto it = index.find(rec.page);
    if (it == index.end()) continue;
    if (!full_history) {
      const DirtyPageInfo* info = dpt_.Find(rec.page);
      if (info == nullptr || lsn < info->redo_lsn) {
        continue;  // Before this page's redo point: already on disk.
      }
    }
    // Remember where recovery for this page starts in our log. A
    // full-history scan overwrites any cursor a previous partial scan
    // left: redo must restart at the page's first record.
    auto lt = last_txn.find(rec.page);
    if (full_history && lt == last_txn.end()) {
      recovery_cursor_[rec.page] = lsn;
    } else {
      recovery_cursor_.try_emplace(rec.page, lsn);
    }
    if (lt == last_txn.end() || lt->second != rec.txn) {
      reply->per_page[it->second].push_back(PsnListEntry{rec.psn_before, lsn});
      entry_txns[it->second].push_back(rec.txn);
      last_txn[rec.page] = rec.txn;
    }
  }
  CLOG_RETURN_IF_ERROR(scan_status);

  // Drop skip-transaction entries from the lists and remember the verdict
  // for the redo rounds. Coalesced entries are per-transaction runs, so
  // erasing a skip transaction's entries removes exactly its records'
  // claim on the merged PSN order; later transactions that reused the same
  // PSNs (a previous crash's pure-logical loser) keep their own entries.
  std::set<TxnId> skip;
  for (TxnId t : logical_txns) {
    if (resolved_txns.count(t) != 0) continue;
    if (txns_.Find(t) != nullptr) continue;  // Live: will commit or upgrade.
    skip.insert(t);
  }
  if (!skip.empty()) {
    recovery_skip_txns_.insert(skip.begin(), skip.end());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      auto& list = reply->per_page[i];
      std::size_t kept = 0;
      for (std::size_t j = 0; j < list.size(); ++j) {
        if (skip.count(entry_txns[i][j]) == 0) list[kept++] = list[j];
      }
      list.resize(kept);
    }
  }
  reply->records_scanned = cursor.records_read();
  metrics_.GetCounter("recovery.psn_list_scans").Add(1);
  metrics_.GetCounter("recovery.records_scanned")
      .Add(cursor.records_read());
  return Status::OK();
}

Status Node::HandleRecoverPage(NodeId from, PageId pid, const Page& page_in,
                               bool has_bound, Psn bound,
                               RecoverPageReply* reply) {
  *reply = RecoverPageReply();
  if (state_ == NodeState::kDown) return Status::NodeDown("peer down");
  if (!options_.has_local_log) {
    return Status::FailedPrecondition("no local log to recover from");
  }

  auto work = std::make_shared<Page>();
  work->CopyFrom(page_in);

  Lsn start = kNullLsn;
  auto cit = recovery_cursor_.find(pid);
  if (cit != recovery_cursor_.end()) {
    start = cit->second;
  } else if (const DirtyPageInfo* info = dpt_.Find(pid)) {
    start = info->redo_lsn;
  } else {
    start = log_.end_lsn();  // Nothing to contribute.
  }

  LogCursor cursor(&log_, start);
  LogRecord rec;
  Lsn lsn = kNullLsn;
  Status scan_status;
  bool more = false;
  while (cursor.Next(&rec, &lsn, &scan_status)) {
    if (rec.type != LogRecordType::kUpdate &&
        rec.type != LogRecordType::kClr &&
        rec.type != LogRecordType::kLogicalUpdate) {
      continue;
    }
    if (rec.page != pid) continue;
    if (rec.type == LogRecordType::kLogicalUpdate &&
        recovery_skip_txns_.count(rec.txn) != 0) {
      // Redo skip rule: volatile-only record of a transaction that never
      // committed nor backfilled. Checked BEFORE the bound: the merged PSN
      // lists exclude skip entries, so a skip record past the bound must
      // not pause the round — the next real contributor is another node.
      continue;
    }
    if (has_bound && rec.psn_before > bound) {
      // Another node's updates come next in PSN order; remember where to
      // resume (Section 2.3.4).
      recovery_cursor_[pid] = lsn;
      more = true;
      break;
    }
    if (rec.psn_before == work->psn()) {
      CLOG_RETURN_IF_ERROR(ApplyRedo(rec, work.get()));
      ++reply->applied;
    }
    // Records with psn_before < page PSN are already reflected; records
    // with a higher PSN under the bound cannot occur (the coordinator's
    // ordering guarantees the gap belongs to another node).
  }
  CLOG_RETURN_IF_ERROR(scan_status);
  recovery_applied_[pid] += reply->applied;

  if (!more) {
    // Section 2.3.4 closing bookkeeping: a node that contributed nothing
    // drops its DPT entry (no lock held) or re-arms RedoLSN at the log end
    // (lock still held, all its past updates are on disk).
    recovery_cursor_.erase(pid);
    std::uint64_t total = recovery_applied_[pid];
    recovery_applied_.erase(pid);
    if (total == 0 && dpt_.Contains(pid)) {
      if (lock_cache_.NodeMode(pid) == LockMode::kNone) {
        dpt_.Remove(pid);
      } else if (DirtyPageInfo* info = dpt_.FindMutable(pid)) {
        info->redo_lsn = log_.end_lsn();
      }
      AdvanceReclaimHorizon();
    }
  }
  reply->more = more;
  work->SealChecksum();
  reply->page = std::move(work);
  metrics_.GetCounter("recovery.redo_applied").Add(reply->applied);
  return Status::OK();
}

Status Node::HandleDptShip(NodeId from, const std::vector<DptEntry>& entries,
                           const std::vector<PageId>& cached_pages) {
  if (state_ == NodeState::kDown) return Status::NodeDown("owner down");
  for (const DptEntry& e : entries) {
    if (!OwnsPage(e.pid)) continue;
    foreign_dpt_entries_[e.pid].emplace_back(from, e);
  }
  for (PageId pid : cached_pages) {
    if (!OwnsPage(pid)) continue;
    foreign_cached_[pid].insert(from);
  }
  return Status::OK();
}

void Node::HandleNodeRecovered(NodeId who) {
  metrics_.GetCounter("recovery.peer_recovered_notices").Add(1);
  // Resume parked traffic: requests for `who` stopped at the door with
  // Unavailable while it was recovering; the next attempt goes through.
  if (parked_owners_.erase(who) > 0) {
    metrics_.GetCounter("avail.resumed").Add(1);
  }
}

PeerHealth Node::HandlePing() {
  switch (state_) {
    case NodeState::kUp:
      return PeerHealth::kUp;
    case NodeState::kRecovering:
      return PeerHealth::kRecovering;
    case NodeState::kDown:
      break;
  }
  // Unreachable in practice: the network refuses dispatch to down nodes.
  return PeerHealth::kDown;
}

}  // namespace clog
