#ifndef CLOG_NODE_NODE_H_
#define CLOG_NODE_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/dirty_page_table.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "core/membership.h"
#include "lock/deadlock_detector.h"
#include "lock/lock_cache.h"
#include "lock/lock_manager.h"
#include "net/network.h"
#include "node/archive.h"
#include "node/handoff_ledger.h"
#include "node/options.h"
#include "recovery/instant_restore.h"
#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "storage/space_map.h"
#include "txn/txn_table.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"

/// \file
/// A processing node of the distributed architecture (paper Figure 1): the
/// composition of buffer pool, local WAL, lock manager (both the owner-side
/// global table for pages it owns and the requester-side cache), dirty page
/// table, and transaction table. Nodes execute transactions entirely
/// locally, fetch remote pages through the callback-locking page service,
/// log every update to their own local log, and commit without any
/// communication (LoggingMode::kClientLocal).

namespace clog {

class RestartRecovery;  // recovery/ implements crash restart; friend below.

/// Runtime availability of a node.
enum class NodeState : std::uint8_t {
  kDown = 0,        ///< Crashed: volatile state lost, files intact.
  kRecovering = 1,  ///< Serving recovery RPCs only.
  kUp = 2,          ///< Normal processing.
};

/// One node. Construct, then Start(). All methods are single-threaded by
/// design (deterministic simulation; DESIGN.md Section 4).
class Node : public NodeService {
 public:
  /// `network`, `clock`, and `detector` are cluster-shared and must outlive
  /// the node.
  Node(NodeId id, NodeOptions options, Network* network,
       DeadlockDetector* detector);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Opens files and registers with the network. Fresh directories start an
  /// empty database; existing ones are reattached (restart goes through
  /// Cluster/RestartRecovery instead).
  Status Start();

  /// Simulates a crash: all volatile state (cache, lock tables, DPT, active
  /// transactions, unflushed log tail) is destroyed; disk files survive.
  void Crash();

  NodeId id() const { return id_; }
  NodeState state() const { return state_.load(std::memory_order_acquire); }
  const NodeOptions& options() const { return options_; }

  /// Runtime tweaks for benchmark ablations.
  void set_send_flush_notifications(bool on) {
    options_.send_flush_notifications = on;
  }
  void set_log_force_ns_override(std::uint64_t ns) {
    options_.log_force_ns_override = ns;
  }

  // ---------------------------------------------------------------------
  // Data definition (owner-side, outside transactions)
  // ---------------------------------------------------------------------

  /// Allocates and formats a fresh page in this node's database. The
  /// initial PSN comes from the space allocation map (ARIES/CSA seeding).
  /// Durable before return.
  Result<PageId> AllocatePage();

  /// Frees `pid` (must be owned by this node and not locked remotely).
  Status FreePage(PageId pid);

  // ---------------------------------------------------------------------
  // Elastic membership (node/handoff.cc; docs/PROTOCOLS.md "Membership &
  // ownership handoff")
  // ---------------------------------------------------------------------

  /// Attaches the cluster-shared ownership directory. Must be set before
  /// Start(); nullptr (the default) means every page is owned by its home
  /// node and handoffs are refused.
  void set_directory(OwnershipDirectory* directory) { directory_ = directory; }

  /// Current owner of `pid`: the directory entry if the page has moved,
  /// else its home node.
  NodeId OwnerOf(PageId pid) const {
    return directory_ == nullptr ? pid.owner : directory_->OwnerOf(pid);
  }

  /// True iff this node is the page's *current* owner (home pages it has
  /// not ceded, plus pages it has adopted).
  bool OwnsPage(PageId pid) const { return OwnerOf(pid) == id_; }

  /// Phase 1: validates eligibility (owned here, no local transaction on
  /// the page, not poisoned/restoring, target up), fences the page against
  /// new work, and durably records the handoff intent.
  Status HandoffPrepare(PageId pid, NodeId target);

  /// Phase 2: quiet durable force — makes the local durable copy current
  /// (steal fence + WAL + page write) *without* notifying replacers (their
  /// un-advanced RedoLSNs travel to the target with the offer), then
  /// durably marks the handoff shipped.
  Status HandoffShip(PageId pid);

  /// Phase 3: sends the HandoffOffer (image + PSN + history seed +
  /// replacer set + lock residue). The target's durable adoption record is
  /// the protocol's commit point. A refusal aborts the handoff; an
  /// unreachable target leaves it in doubt (resolved by
  /// ResolvePendingHandoffs).
  Status HandoffTransfer(PageId pid);

  /// Phase 4: durably writes the ceded tombstone and drops the old owner's
  /// volatile per-page state (replacers, global-lock entries, unlocked
  /// cache frames), lifting the fence.
  Status HandoffComplete(PageId pid);

  /// Crash re-entry: walks the ledger's in-flight records. Prepared
  /// handoffs abort locally; shipped ones ask the target (kHandoffQuery)
  /// whether it adopted and complete or abort accordingly. An unreachable
  /// target leaves the page fenced in doubt — rerun later. `resolved`
  /// (optional) counts the records settled this pass.
  Status ResolvePendingHandoffs(std::size_t* resolved = nullptr);

  /// Pages this node currently owns: home pages not ceded plus adopted
  /// pages (drain enumeration for graceful leave).
  std::vector<PageId> OwnedPages() const;

  /// Graceful-leave epilogue, run after every owned page has been drained:
  /// returns every cached node-level lock on other owners' pages (shipping
  /// dirty copies home under WAL first) and asks those owners to force the
  /// pages durable, so this node's log stops being anyone's redo source
  /// (Section 2.5) and no owner's global lock table keeps an entry for a
  /// node that will never answer a callback again. Refuses while local
  /// transactions are active.
  Status PrepareDeparture();

  /// Ownership ledger introspection (tests, torture invariants).
  const HandoffLedger& handoff() const { return handoff_; }

  // ---------------------------------------------------------------------
  // Transactions
  // ---------------------------------------------------------------------

  /// Starts a transaction on this node. `opts` may override the node
  /// LoggingPolicy's LogStrategy for this one transaction (adaptive
  /// logging); the default inherits the policy.
  Result<TxnId> Begin(TxnOptions opts = {});

  /// Commits. In kClientLocal this forces the local log only — the paper's
  /// headline: zero messages, no page forces. Baselines pay their protocol.
  /// With GroupCommitPolicy enabled this is the synchronous form: the
  /// caller leads a group force that also completes every other parked
  /// committer (CommitRequest + FlushCommitGroup).
  Status Commit(TxnId txn);

  // --- Group commit (GroupCommitPolicy; docs/PROTOCOLS.md) ---

  /// Asynchronous commit entry: appends the commit record and *parks* the
  /// transaction until a shared force covers its commit LSN. Returns true
  /// when the transaction is already durable and finished (policy off —
  /// plain Commit ran — or this request filled the group and led the
  /// force); false when parked (caller must PollCommit until true).
  Result<bool> CommitRequest(TxnId txn);

  /// Checks on a parked commit. Still inside the coalescing window: returns
  /// false (nothing charged). Window expired: leads the group force and
  /// returns true. Also true when the transaction already completed via
  /// someone else's force.
  Result<bool> PollCommit(TxnId txn);

  /// Forces the log up to the highest parked commit LSN (one force, one
  /// charge) and completes every covered committer. No-op when nothing is
  /// parked.
  Status FlushCommitGroup();

  /// Rolls the transaction back entirely and ends it.
  Status Abort(TxnId txn);

  /// Declares a named savepoint (paper Section 2.2 partial rollback).
  Status SetSavepoint(TxnId txn, const std::string& name);

  /// Undoes everything after the savepoint; the transaction stays active.
  Status RollbackToSavepoint(TxnId txn, const std::string& name);

  // --- Record operations (page-granularity locking, Section 2.1) ---

  /// Inserts `payload` into `pid` (local or remote page), returning the
  /// record id. Busy/Deadlock surface lock conflicts; the caller retries or
  /// aborts (Transaction::last_blockers has the waits-for edge targets).
  Result<RecordId> Insert(TxnId txn, PageId pid, Slice payload);

  /// Reads the record (S lock).
  Result<std::string> Read(TxnId txn, RecordId rid);

  /// Overwrites the record (X lock).
  Status Update(TxnId txn, RecordId rid, Slice payload);

  /// Deletes the record (X lock).
  Status Delete(TxnId txn, RecordId rid);

  /// All live records in a page (S lock).
  Result<std::vector<std::string>> ScanPage(TxnId txn, PageId pid);

  /// Blockers reported by the last Busy result for `txn` (waits-for edges).
  std::vector<TxnId> LastBlockers(TxnId txn) const;

  // ---------------------------------------------------------------------
  // Checkpointing (Section 2.2: fuzzy, fully local, no synchronization)
  // ---------------------------------------------------------------------

  /// Takes a fuzzy checkpoint: logs the DPT and active-transaction table,
  /// forces the log, and advances the master pointer. Sends no messages.
  Status Checkpoint();

  // ---------------------------------------------------------------------
  // Log space management (Section 2.5)
  // ---------------------------------------------------------------------

  /// Frees log space until at least `needed_bytes` fit, by repeatedly
  /// evicting/forcing the page with the minimum RedoLSN and asking its
  /// owner to force it to disk.
  Status ReclaimLogSpace(std::uint64_t needed_bytes);

  // ---------------------------------------------------------------------
  // NodeService (peer-facing RPC handlers)
  // ---------------------------------------------------------------------

  Status HandleLockPage(NodeId from, PageId pid, LockMode mode, bool want_page,
                        LockPageReply* reply) override;
  Status HandleCallback(NodeId from, PageId pid, LockMode downgrade_to,
                        CallbackReply* reply) override;
  Status HandleUnlockNotice(NodeId from, PageId pid) override;
  Status HandlePageShip(NodeId from, const Page& page) override;
  Status HandleFlushRequest(NodeId from, PageId pid) override;
  void HandleFlushNotify(NodeId from, PageId pid, Psn flushed_psn) override;
  Status HandleLogShip(NodeId from, const std::vector<LogRecord>& records,
                       bool force) override;
  Status HandleRecoveryQuery(NodeId crashed, RecoveryQueryReply* reply) override;
  Status HandleFetchCachedPage(NodeId from, PageId pid,
                               std::shared_ptr<Page>* page) override;
  Status HandleBuildPsnList(NodeId from, const std::vector<PageId>& pages,
                            bool full_history, PsnListReply* reply) override;
  Status HandleRecoverPage(NodeId from, PageId pid, const Page& page_in,
                           bool has_bound, Psn bound,
                           RecoverPageReply* reply) override;
  Status HandleDptShip(NodeId from, const std::vector<DptEntry>& entries,
                       const std::vector<PageId>& cached_pages) override;
  void HandleNodeRecovered(NodeId who) override;
  Status HandleLogLossNotice(NodeId from,
                             const std::vector<PageId>& pages) override;
  Status HandleHandoffOffer(NodeId from, const HandoffOffer& offer,
                            HandoffOfferReply* reply) override;
  Status HandleHandoffQuery(NodeId from, PageId pid,
                            HandoffQueryReply* reply) override;
  PeerHealth HandlePing() override;

  // ---------------------------------------------------------------------
  // Introspection (tests, benchmarks, recovery)
  // ---------------------------------------------------------------------

  const DirtyPageTable& dpt() const { return dpt_; }
  const BufferPool& pool() const { return pool_; }
  const LockCache& lock_cache() const { return lock_cache_; }
  const GlobalLockTable& global_locks() const { return global_locks_; }
  const TxnTable& txns() const { return txns_; }
  LogManager& log() { return log_; }
  DiskManager& disk() { return disk_; }
  Metrics& metrics() { return metrics_; }
  Network* network() { return network_; }
  TraceSink* trace() { return trace_; }

  /// PSN of the disk version of an owned page (recovery comparisons).
  Result<Psn> DiskPsn(PageId pid);

  // --- Media failure (docs/RECOVERY_WALKTHROUGH.md "Media recovery") ---

  /// The fuzzy page archive (open iff options().logging_policy.archive.enabled).
  const PageArchive& archive() const { return archive_; }

  /// Owned pages whose committed state is unrecoverable; they refuse
  /// service with Corruption until (if ever) a rebuild reaches the PSN the
  /// ledger records as needed.
  bool IsPoisoned(PageId pid) const { return poison_.Contains(pid); }
  std::vector<PageId> PoisonedPages() const;

  /// Durably marks own page `pid` unrecoverable: every service path
  /// (lock grants, fetches, frees) fails with Corruption from now on.
  /// `needed_psn` is the first PSN of the missing history — a later
  /// rebuild that reaches it clears the entry; kPsnUnrecoverable never
  /// clears. Idempotent (keeps the tighter needed PSN).
  Status PoisonOwnPage(PageId pid, Psn needed_psn);

  /// Clears the poison entry after a gap-free rebuild reached the needed
  /// PSN (called by RestartRecovery only).
  Status UnpoisonPage(PageId pid);

  // --- Instant restore (docs/RECOVERY_WALKTHROUGH.md "Instant restore") ---

  /// Restore state for pages lost with the data device (open iff restores
  /// are pending: IsRestoring/pending/ledger introspection for tests and
  /// the torture harness).
  const InstantRestoreManager& restore() const { return restore_; }

  /// True while `pid` is planned for rebuild but not yet rebuilt. Such a
  /// page is *servable*: the first touch rebuilds it synchronously.
  bool IsRestoring(PageId pid) const { return restore_.IsRestoring(pid); }

  /// Pages still awaiting rebuild (0 = not in a restore epoch).
  std::size_t RestorePendingCount() const { return restore_.pending(); }

  /// Background drain: rebuilds up to `max_pages` pending pages (0 = the
  /// configured sweep batch) in plan-priority order. Returns the number of
  /// pages still pending afterwards. Driven by the cluster's sweeper (a
  /// dedicated thread in real mode, scheduled work in simulation) and
  /// callable directly by tests. No-op unless up and restoring.
  std::size_t SweepRestore(std::size_t max_pages = 0);

  /// Runs one fuzzy archive pass over all owned pages: copies every page
  /// whose PSN moved since it was last archived (newest cached version if
  /// present, else the disk version) and seals the pass. Called from
  /// Checkpoint() after the log force — that ordering is the archive's WAL
  /// rule (see node/archive.h). Public so tests and tools can force one.
  Status ArchivePass();

  /// Archive self-check (torture invariant): every sealed entry must be
  /// restorable with a valid checksum at exactly the recorded PSN, and no
  /// recorded PSN may exceed the page's current PSN where that is known.
  Status CheckArchiveConsistency();

  /// Validates the node's internal cross-structure invariants (dirty
  /// pages vs locks vs DPT, transaction-holder liveness, clean-page
  /// disk agreement when `deep`). Returns FailedPrecondition describing
  /// the first violation. Used by the property tests after every step.
  Status CheckInvariants(bool deep = false);

  /// Multi-line human-readable state dump (cache, DPT, locks, txns) for
  /// debugging and the tools.
  std::string DebugString() const;

  /// Raw bytes of the newest local version of own page `pid` (cached frame
  /// if present, else disk). Torture uses this for the adaptive-logging
  /// invariant: post-recovery page bytes must equal the pre-crash bytes.
  Result<std::string> DebugPageImage(PageId pid);

 private:
  friend class RestartRecovery;
  friend class InstantRestoreManager;  // recovery/instant_restore.cc

  // --- Internal helpers (node.cc) ---

  /// Opens database, space map, and log files under options_.dir.
  Status OpenStorage();

  /// Installs a page image shipped by `from` into the local pool as the
  /// newest dirty version of one of our own pages (guarded by PSN).
  Status InstallShippedCopy(const Page& page, NodeId from);

  /// Acquires a page-granularity `mode` on `pid` for `txn` and brings the
  /// page into the cache. Implements the full Section 2.2 flow: local lock
  /// cache, owner request, callbacks, page transfer. On Busy fills
  /// txn->last_blockers.
  Result<Page*> AcquirePage(Transaction* txn, PageId pid, LockMode mode);

  /// Record-granularity variant (fine-granularity extension); falls back
  /// to AcquirePage when the option is off.
  Result<Page*> AcquireRecord(Transaction* txn, RecordId rid, LockMode mode);

  /// Obtains the node-level lock on `pid` from the owner (running the
  /// callback protocol there) without granting any transaction-level lock.
  /// Busy fills txn->last_blockers.
  Status EnsureNodeLock(Transaction* txn, PageId pid, LockMode mode);

  /// Availability layer: Unavailable while `owner` is parked (recovering
  /// and not yet heard NodeRecovered from), OK otherwise. Parks expire
  /// after the policy's park TTL in case the broadcast was lost.
  Status CheckOwnerAvailable(NodeId owner);

  /// Availability layer: on a NodeDown from `owner`, probe it; a
  /// *recovering* owner parks the request (Unavailable — retry after
  /// NodeRecovered) instead of bouncing NodeDown to the transaction.
  Status NoteOwnerFailure(NodeId owner, Status st);

  /// EnsureNodeLock + page fetch (used by Insert, which must examine the
  /// page to pick a slot before it can take a record lock).
  Result<Page*> EnsureNodePage(Transaction* txn, PageId pid, LockMode mode);

  /// Ensures the page image is in the pool (lock already held).
  Result<Page*> FetchPage(PageId pid);

  /// Disk read of an own page with one retry on IOError: a transient read
  /// fault (injected or a real device hiccup) is not fail-stop material the
  /// way a lying write is, so every critical read path absorbs one.
  Status ReadOwnPage(std::uint32_t page_no, Page* out);

  /// Durable-store read seam for a page this node currently owns: home
  /// pages come from the database file, adopted pages from the handoff
  /// ledger's adopted store.
  Status ReadDurablePage(PageId pid, Page* out);

  /// Durable-store write seam (counterpart of ReadDurablePage). Charges a
  /// disk write either way.
  Status WriteDurablePage(PageId pid, Page* page);

  /// PSN the durable history of owned page `pid` was seeded at: the space
  /// map for home pages, the adoption record for adopted ones.
  Psn DurableSeedPsn(PageId pid) const;

  /// Rebuilds volatile handoff state from the ledger after (re)start:
  /// fences for in-flight records, directory registration for settled
  /// adoptions.
  void RegisterHandoffState();

  /// Owner-side: newest version of own page `pid` (cache, else disk).
  Result<Page*> OwnLatestPage(PageId pid);

  /// Instant-restore touch hook: synchronously rebuilds `pid` if it is
  /// still restoring, before any path that would read its disk image or
  /// poison verdict. No-op (one branch) outside a restore epoch, and while
  /// a rebuild is already on the stack.
  Status EnsureRestored(PageId pid);

  /// WAL for page transfer: before any image of `pid` leaves this node
  /// (grant-time transfer, callback, ship, recovery fetch), every local
  /// log record describing it must be durable — otherwise a page whose
  /// history includes records lost with a crashed log tail could never be
  /// redone in PSN order.
  Status WalBeforePageLeaves(PageId pid, const Page* page);

  /// Logs one update, applies it, maintains PSN/DPT/dirty bits.
  Status LoggedUpdate(Transaction* txn, Page* page, RecordOp op, SlotId slot,
                      Slice redo_image, Slice undo_image);

  // --- Adaptive logging (LogStrategy::kAdaptive; logging_strategy.cc) ---

  /// True when `txn`'s next update on `pid` may be logged as a compact
  /// redo-only kLogicalUpdate: adaptive strategy, not yet upgraded, own
  /// page, kClientLocal mode, page-granular locking.
  bool TxnLogsLogical(const Transaction* txn, PageId pid) const;

  /// Upgrades an adaptive transaction to physical logging: appends one
  /// kUndoBackfill carrying every stashed before-image (nothing if the
  /// stash is empty) and marks it upgraded. Idempotent.
  Status UpgradeTxnToPhysical(Transaction* txn);

  /// Page-steal fence: before an image of own page `pid` containing live
  /// logical updates becomes durable anywhere (eviction write, force,
  /// archive copy), every contributing transaction is upgraded and the
  /// backfill records are forced. One branch when no logical txns live.
  Status PrepareSteal(PageId pid);

  /// Stamps an adaptive transaction's commit record: the logical flag and
  /// the dependency edges gathered while it ran. No-op (zero bytes added)
  /// for physical transactions.
  void FillCommitMeta(const Transaction* txn, LogRecord* commit) const;

  /// Remembers `txn` as the last committed writer of each page it updated
  /// (dependency-edge source for later adaptive commits).
  void NoteCommittedPages(const Transaction* txn, Lsn commit_lsn);

  /// Transaction-end bookkeeping for the live-logical-txn count.
  void ReleaseLogicalState(const Transaction* txn);

  /// Applies the inverse of `rec` to its page and writes the CLR.
  Status UndoOne(Transaction* txn, const LogRecord& rec, Lsn rec_lsn);

  /// Rolls back to `target_lsn` exclusive (kNullLsn = full rollback).
  Status RollbackTo(Transaction* txn, Lsn target_lsn);

  /// Buffer pool eviction policy (write-in-place / ship-to-owner + WAL).
  Status OnEviction(PageId pid, Page* page, bool dirty);

  /// Owner-side: force own page to disk and notify replacers.
  Status ForceOwnPage(PageId pid);

  /// Ships a copy of a dirty remotely-owned page to its owner without
  /// evicting it (WAL first); used by Section 2.5 log-space pressure when
  /// the victim page is pinned or worth keeping cached.
  Status ShipDirtyCopy(PageId pid);

  /// Recomputes the log reclaim horizon from DPT and active transactions.
  void AdvanceReclaimHorizon();

  /// Baseline B1: ship `txn`'s pending records covering `pid` (WAL-to-owner
  /// before the page moves), or all pending at commit.
  Status ShipPendingRecords(Transaction* txn, bool force,
                            const PageId* only_page);

  /// Appends to the local log, retrying once after log-space reclamation.
  Status AppendWithReclaim(const LogRecord& rec, Lsn* lsn);

  /// The one gate every log force goes through: flushes up to `lsn`,
  /// charges the force cost only if the log actually hit the disk (the
  /// LogManager no-ops when `lsn` is already durable), and lets any parked
  /// group commits covered by the new durable horizon complete for free —
  /// the absorbed-force half of group commit.
  Status ForceLog(Lsn lsn);

  /// True when commits on this node coalesce (policy on + kClientLocal).
  bool GroupCommitEnabled() const;

  /// Finishes every parked committer whose commit record is now durable:
  /// END record, lock release, commit acknowledged. Called after every
  /// force (ForceLog) — group-led or absorbed.
  Status CompleteCoveredCommits();

  /// Charges simulated time for local disk/log work.
  void ChargeDiskRead();
  void ChargeDiskWrite();
  void ChargeLogForce();
  void ChargeCpuOp();

  /// Redo applier shared by restart recovery and HandleRecoverPage.
  static Status ApplyRedo(const LogRecord& rec, Page* page);

  NodeId id_;
  NodeOptions options_;
  Network* network_;
  DeadlockDetector* detector_;
  /// Atomic: peers probe it from other threads (HandlePing answers off the
  /// mailbox) and the cluster controller polls liveness while the node's
  /// worker runs. All writes stay on the node's own execution context.
  std::atomic<NodeState> state_{NodeState::kDown};

  /// Joint-restart sub-phase (Section 2.4): true once this node's redo pass
  /// (ExchangeAndRecover) has completed, at which point the recovery fences
  /// on its own pages may be yielded to peers' undo passes.
  bool recovery_redo_done_ = false;

  DiskManager disk_;
  SpaceMap space_map_;
  LogManager log_;
  /// Elastic membership (node/handoff.cc): durable ownership ledger plus
  /// the cluster-shared routing directory (not owned; nullptr in
  /// single-node unit setups). `handoff_fenced_` holds pages with an
  /// in-flight outbound handoff: new lock grants and local acquisitions
  /// answer Busy until the handoff completes, aborts, or resolves.
  HandoffLedger handoff_;
  OwnershipDirectory* directory_ = nullptr;
  std::set<PageId> handoff_fenced_;
  /// Media-recovery side state (node/archive.h). The archive is open only
  /// when options_.logging_policy.archive.enabled; the poison ledger is always loaded but
  /// keeps no file while empty, so both cost nothing on healthy nodes.
  PageArchive archive_;
  PoisonLedger poison_;
  /// Instant restore (recovery/instant_restore.h): per-page rebuild plans
  /// plus the durable "node.restore" ledger. Volatile plans are rebuilt by
  /// restart recovery; empty (and file-less) on healthy nodes.
  InstantRestoreManager restore_;
  /// Checkpoints completed since the last archive pass (pass cadence).
  std::uint32_t ckpts_since_archive_ = 0;
  BufferPool pool_;
  DirtyPageTable dpt_;
  LockCache lock_cache_;
  GlobalLockTable global_locks_;
  TxnTable txns_;
  Metrics metrics_;

  /// Structured-event tracing (docs/observability.md); nullptr = off, and
  /// every emit is guarded by a branch on this pointer.
  TraceSink* trace_ = nullptr;

  /// Pre-registered handles for the steady-state metrics so the hot paths
  /// do no string hashing. Metrics elements are reference-stable and
  /// Reset() clears values in place, so these never dangle.
  Counter* ctr_txn_begins_ = nullptr;
  Counter* ctr_txn_commits_ = nullptr;
  Counter* ctr_txn_aborts_ = nullptr;
  Counter* ctr_txn_updates_ = nullptr;
  Counter* ctr_txn_reads_ = nullptr;
  Counter* ctr_disk_page_reads_ = nullptr;
  Counter* ctr_disk_page_writes_ = nullptr;
  Counter* ctr_log_forces_ = nullptr;
  Histogram* hist_commit_ns_ = nullptr;
  Histogram* hist_force_ns_ = nullptr;

  /// Adaptive-logging accounting (introspect reports these per strategy).
  Counter* ctr_txn_begins_adaptive_ = nullptr;
  Counter* ctr_txn_commits_logical_ = nullptr;
  Counter* ctr_txn_logical_records_ = nullptr;
  Counter* ctr_txn_upgrades_ = nullptr;

  /// Owner-side flush bookkeeping: for each own page, the peers that
  /// shipped dirty copies (or contributed recovery redo) and await a flush
  /// notification (Sections 2.2/2.5).
  std::map<PageId, std::set<NodeId>> replacers_;

  /// LSN of the last complete checkpoint's begin record: restart analysis
  /// starts here, so the log cannot be reclaimed past it.
  Lsn last_ckpt_begin_ = kNullLsn;

  /// Recovery-scan state (Section 2.3.4): where the next RecoverPage round
  /// resumes in the local log, and how many redo records were applied so
  /// far, per page under recovery.
  std::map<PageId, Lsn> recovery_cursor_;
  std::map<PageId, std::uint64_t> recovery_applied_;

  /// Adaptive logging: number of active transactions currently holding
  /// un-backfilled logical records. Zero on every physical-only node, so
  /// the steal fence costs one branch.
  std::size_t live_logical_txns_ = 0;

  /// Last committed writer per page (txn id + commit LSN), volatile.
  /// Adaptive transactions copy the entries for pages they touch into
  /// their commit record as dependency edges. Maintained only in
  /// kClientLocal mode; cleared on crash.
  std::map<PageId, CommitDep> page_last_commit_;

  /// Recovery skip set (adaptive logging): transactions whose
  /// kLogicalUpdate records are excluded from redo and PSN lists — they
  /// logged logical records but have neither a kCommit nor a kUndoBackfill
  /// in the log, so their records are a provably-volatile PSN tail.
  /// Computed by HandleBuildPsnList, consulted by HandleRecoverPage.
  std::set<TxnId> recovery_skip_txns_;

  /// Multi-crash staging (Section 2.4): DPT entries / cached-page lists
  /// shipped by recovering peers for pages this node owns, with senders.
  std::map<PageId, std::vector<std::pair<NodeId, DptEntry>>>
      foreign_dpt_entries_;
  std::map<PageId, std::set<NodeId>> foreign_cached_;

  /// Availability layer: owners known to be mid-recovery, with the
  /// simulated time each was parked. Requests to a parked owner return
  /// Unavailable until its NodeRecovered broadcast (or the park TTL)
  /// clears the entry. Volatile: cleared on crash.
  std::map<NodeId, std::uint64_t> parked_owners_;

  /// B1 only: client log records land here at the owner.
  std::uint64_t b1_received_records_ = 0;

  /// Group commit: committers whose commit record is appended but not yet
  /// durable, in park order. Volatile — a crash loses the group, and each
  /// member becomes indeterminate exactly like a crash mid-force (the
  /// commit record may or may not survive in the torn tail). Cleared in
  /// Crash().
  struct ParkedCommit {
    TxnId txn = kInvalidTxnId;
    Lsn commit_lsn = kNullLsn;
    std::uint64_t parked_at_ns = 0;
  };
  std::vector<ParkedCommit> commit_group_;

  /// Reentrancy guard: completion appends END records, and an append can
  /// reclaim log space, which forces, which would re-enter completion.
  bool completing_group_ = false;
};

}  // namespace clog

#endif  // CLOG_NODE_NODE_H_
