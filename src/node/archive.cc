#include "node/archive.h"

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/fsutil.h"

namespace clog {
namespace {

/// "CARC" — archive meta blob magic.
constexpr std::uint32_t kArchiveMagic = 0x43415243u;
/// "CPSN" — poison ledger blob magic.
constexpr std::uint32_t kPoisonMagic = 0x4350534Eu;

}  // namespace

// --- PageArchive -----------------------------------------------------------

Status PageArchive::Open(const std::string& dir) {
  if (file_.is_open()) return Status::FailedPrecondition("archive open");
  CLOG_RETURN_IF_ERROR(file_.Open(dir + "/node.archive"));
  meta_path_ = dir + "/node.archive.meta";
  seq_ = 0;
  entries_.clear();
  staged_.clear();
  Status st = LoadMeta();
  if (!st.ok() && !st.IsNotFound()) {
    // A torn or corrupt meta file means the last sealed pass is lost, not
    // that the node is broken: start the archive empty and let media
    // recovery fall back to seed rebuild.
    seq_ = 0;
    entries_.clear();
  }
  return Status::OK();
}

Status PageArchive::Close() {
  if (!file_.is_open()) return Status::OK();
  staged_.clear();
  return file_.Close();
}

Psn PageArchive::ArchivedPsn(std::uint32_t page_no) const {
  if (auto it = staged_.find(page_no); it != staged_.end()) return it->second;
  if (auto it = entries_.find(page_no); it != entries_.end()) return it->second;
  return 0;
}

Status PageArchive::ArchivePage(std::uint32_t page_no, const Page& src) {
  if (!file_.is_open()) return Status::FailedPrecondition("archive not open");
  // Copy before writing: WritePage seals the checksum in place, and the
  // source is a live (possibly dirty) buffer-pool frame.
  Page scratch;
  scratch.CopyFrom(src);
  CLOG_RETURN_IF_ERROR(file_.WritePage(page_no, &scratch, /*sync=*/false));
  staged_[page_no] = src.psn();
  return Status::OK();
}

Status PageArchive::SealPass() {
  if (!file_.is_open()) return Status::FailedPrecondition("archive not open");
  if (staged_.empty()) return Status::OK();  // Nothing moved; keep the seal.
  CLOG_RETURN_IF_ERROR(file_.Sync());
  CLOG_RETURN_IF_ERROR(StoreMeta(seq_ + 1));
  ++seq_;
  for (const auto& [page_no, psn] : staged_) entries_[page_no] = psn;
  staged_.clear();
  return Status::OK();
}

Status PageArchive::Restore(std::uint32_t page_no, Page* out) {
  if (!file_.is_open()) return Status::FailedPrecondition("archive not open");
  return file_.ReadPage(page_no, out);
}

Status PageArchive::LoadMeta() {
  std::string blob;
  CLOG_RETURN_IF_ERROR(ReadFileToString(meta_path_, &blob));
  if (blob.size() < 4) return Status::Corruption("archive meta truncated");
  Decoder dec(blob);
  std::uint32_t magic = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kArchiveMagic) return Status::Corruption("bad archive magic");
  std::uint64_t seq = 0, count = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU64(&seq));
  CLOG_RETURN_IF_ERROR(dec.GetVarint64(&count));
  std::map<std::uint32_t, Psn> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t page_no = 0;
    std::uint64_t psn = 0;
    CLOG_RETURN_IF_ERROR(dec.GetU32(&page_no));
    CLOG_RETURN_IF_ERROR(dec.GetU64(&psn));
    entries[page_no] = psn;
  }
  std::uint32_t crc = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (crc32c::Value(blob.data(), blob.size() - 4) != crc) {
    return Status::Corruption("archive meta crc mismatch");
  }
  seq_ = seq;
  entries_ = std::move(entries);
  return Status::OK();
}

Status PageArchive::StoreMeta(std::uint64_t seq) const {
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kArchiveMagic);
  enc.PutU64(seq);
  // Sealed entries merged with the pass being sealed.
  std::map<std::uint32_t, Psn> merged = entries_;
  for (const auto& [page_no, psn] : staged_) merged[page_no] = psn;
  enc.PutVarint64(merged.size());
  for (const auto& [page_no, psn] : merged) {
    enc.PutU32(page_no);
    enc.PutU64(psn);
  }
  enc.PutU32(crc32c::Value(blob.data(), blob.size()));
  return AtomicWriteFile(meta_path_, blob);
}

// --- PoisonLedger ----------------------------------------------------------

Status PoisonLedger::Open(const std::string& dir,
                          const std::string& filename) {
  path_ = dir + "/" + filename;
  entries_.clear();
  std::string blob;
  Status st = ReadFileToString(path_, &blob);
  if (st.IsNotFound()) return Status::OK();  // Healthy node: no ledger file.
  CLOG_RETURN_IF_ERROR(st);
  if (blob.size() < 4) return Status::Corruption("poison ledger truncated");
  Decoder dec(blob);
  std::uint32_t magic = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kPoisonMagic) return Status::Corruption("bad poison magic");
  std::uint64_t count = 0;
  CLOG_RETURN_IF_ERROR(dec.GetVarint64(&count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t pid = 0, needed = 0;
    CLOG_RETURN_IF_ERROR(dec.GetU64(&pid));
    CLOG_RETURN_IF_ERROR(dec.GetU64(&needed));
    entries_[pid] = needed;
  }
  std::uint32_t crc = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (crc32c::Value(blob.data(), blob.size() - 4) != crc) {
    return Status::Corruption("poison ledger crc mismatch");
  }
  return Status::OK();
}

Psn PoisonLedger::NeededPsn(PageId pid) const {
  auto it = entries_.find(pid.Pack());
  return it == entries_.end() ? 0 : it->second;
}

Status PoisonLedger::Add(PageId pid, Psn needed_psn) {
  auto [it, inserted] = entries_.try_emplace(pid.Pack(), needed_psn);
  if (!inserted) {
    // Independent verdicts compose as the stricter one: a page both missing
    // a finite PSN range and cursed by a destroyed log stays cursed.
    if (it->second >= needed_psn) return Status::OK();
    it->second = needed_psn;
  }
  return Persist();
}

Status PoisonLedger::Remove(PageId pid) {
  if (entries_.erase(pid.Pack()) == 0) return Status::OK();
  return Persist();
}

Status PoisonLedger::Persist() const {
  if (entries_.empty()) return RemoveFileIfExists(path_);
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kPoisonMagic);
  enc.PutVarint64(entries_.size());
  for (const auto& [pid, needed] : entries_) {
    enc.PutU64(pid);
    enc.PutU64(needed);
  }
  enc.PutU32(crc32c::Value(blob.data(), blob.size()));
  return AtomicWriteFile(path_, blob);
}

}  // namespace clog
