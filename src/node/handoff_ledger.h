#ifndef CLOG_NODE_HANDOFF_LEDGER_H_
#define CLOG_NODE_HANDOFF_LEDGER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

/// \file
/// Durable per-node handoff ledger ("node.handoff", same crash-atomic
/// rewrite-wholesale idiom as the poison and restore ledgers; absent when
/// empty, so a node that never handed off a page never creates it).
///
/// The ledger is the ground truth of elastic ownership. It records three
/// facts, each durable before the protocol step it covers returns:
///
///  * An *in-flight outbound* handoff (this node is giving `pid` to
///    `target`), with its phase: kPrepared (page fenced, nothing moved) or
///    kShipped (page forced durable-latest locally; the offer may or may
///    not have reached the target). A restart that finds one re-enters:
///    prepared handoffs abort locally; shipped ones ask the target whether
///    it adopted (kHandoffQuery) and complete or abort accordingly.
///
///  * A *ceded tombstone*: `pid` (a page whose home is this node, or one
///    this node had previously adopted) now lives at `target`. For a home
///    page the space-map slot stays allocated forever — freeing it would
///    let AllocatePage mint a new page under the departed page's identity.
///
///  * An *adoption*: this node is the current owner of a page whose home
///    is elsewhere. The entry carries the page's durable image (the
///    adopted store — adopted pages live here, not in the home database
///    file), its PSN, and the PSN its durable history was seeded at (for
///    full-history rebuilds, which can no longer ask the home node's space
///    map). Writing the adoption record is the protocol's atomic commit
///    point: once it persists, exactly one ledger in the cluster claims
///    the page.

namespace clog {

/// Phase of an in-flight outbound handoff.
enum class HandoffLedgerPhase : std::uint8_t {
  kPrepared = 0,
  kShipped = 1,
};

struct InflightHandoff {
  NodeId target = kInvalidNodeId;
  HandoffLedgerPhase phase = HandoffLedgerPhase::kPrepared;
  Psn seed_psn = 0;  ///< History seed to put in the offer.
};

class HandoffLedger {
 public:
  /// Loads `dir`/node.handoff if present. A corrupt ledger is an error: an
  /// unreadable ownership record must not silently resurrect or orphan a
  /// page.
  Status Open(const std::string& dir);

  bool empty() const {
    return inflight_.empty() && ceded_.empty() && adopted_.empty();
  }

  // --- Outbound (old-owner side) ---------------------------------------

  Status RecordPrepare(PageId pid, NodeId target, Psn seed_psn);
  Status RecordShipped(PageId pid);
  /// Durably forgets an in-flight handoff (this side resumes ownership).
  Status AbortHandoff(PageId pid);
  /// Durably completes an outbound handoff: drops the in-flight record,
  /// drops the adoption record if this node had adopted the page earlier,
  /// and writes the ceded tombstone.
  Status RecordCeded(PageId pid, NodeId target);

  /// Inbound side of a *return* handoff: a page whose home is this node
  /// came back, its durable image already written into the home slot.
  /// Erasing the ceded tombstone is the durable adoption commit point for
  /// the home node.
  Status RecordReturned(PageId pid);

  std::optional<InflightHandoff> Inflight(PageId pid) const;
  std::vector<PageId> InflightPages() const;

  bool IsCeded(PageId pid) const { return ceded_.contains(pid.Pack()); }
  NodeId CededTarget(PageId pid) const;
  std::vector<PageId> CededPages() const;

  // --- Inbound (new-owner side) ----------------------------------------

  /// The adoption commit point: durably stores the image + metadata. The
  /// image is sealed (checksummed) before it is persisted.
  Status RecordAdopted(PageId pid, const Page& image, Psn seed_psn);

  /// Rewrites the adopted page's durable image (the adopted store's
  /// equivalent of DiskManager::WritePage on a home page).
  Status UpdateAdoptedImage(PageId pid, const Page& image);

  bool IsAdopted(PageId pid) const { return adopted_.contains(pid.Pack()); }
  /// Copies the adopted durable image into *out, verifying its checksum.
  Status ReadAdopted(PageId pid, Page* out) const;
  /// PSN of the adopted durable image (0 if not adopted).
  Psn AdoptedPsn(PageId pid) const;
  /// History-seed PSN recorded at adoption (0 if not adopted).
  Psn AdoptedSeedPsn(PageId pid) const;
  std::vector<PageId> AdoptedPages() const;

 private:
  struct Adoption {
    Psn psn = 0;
    Psn seed_psn = 0;
    std::string image;  ///< kPageSize raw frame, checksum sealed.
  };

  Status Persist() const;

  std::string path_;
  std::map<std::uint64_t, InflightHandoff> inflight_;
  std::map<std::uint64_t, NodeId> ceded_;
  std::map<std::uint64_t, Adoption> adopted_;
};

}  // namespace clog

#endif  // CLOG_NODE_HANDOFF_LEDGER_H_
