#include "node/node.h"

/// \file
/// Log space management (paper Section 2.5). When a node's bounded log
/// fills, it forces forward the minimum RedoLSN in its DPT: it evicts the
/// page with the smallest RedoLSN (shipping it to the owner if remote) and
/// asks the owner to force that page to disk. The owner's flush
/// notification lets the node advance the entry's RedoLSN to the
/// end-of-log remembered when the page was replaced — or drop the entry —
/// which reclaims log space.

namespace clog {

Status Node::ReclaimLogSpace(std::uint64_t needed_bytes) {
  if (!options_.has_local_log || log_.capacity() == 0) return Status::OK();

  // Bounded effort: each round either advances the reclaim horizon or
  // burns one of the limited stall allowances; a long-running transaction
  // that pins the undo horizon eventually yields an honest LogFull.
  std::size_t max_rounds = dpt_.size() + 3;
  Lsn prev_horizon = log_.reclaimable_lsn();
  bool stalled_once = false;

  for (std::size_t round = 0; round < max_rounds; ++round) {
    AdvanceReclaimHorizon();
    if (!log_.WouldOverflow(needed_bytes)) return Status::OK();

    Lsn dpt_min = dpt_.MinRedoLsn();
    Lsn ckpt_barrier = last_ckpt_begin_ == kNullLsn ? LogManager::first_lsn()
                                                    : last_ckpt_begin_;

    if (dpt_min == kNullLsn || ckpt_barrier <= dpt_min) {
      // The checkpoint position (not a dirty page) is the limiter: take a
      // fresh checkpoint to move the analysis start forward.
      CLOG_RETURN_IF_ERROR(Checkpoint());
    } else {
      // Section 2.5: replace/force pages in ascending RedoLSN order. A
      // pinned page (currently being updated) is skipped for this round.
      bool acted = false;
      for (PageId pid : dpt_.PagesByRedoLsn()) {
        if (!OwnsPage(pid)) {
          // Ship the current dirty copy home (without losing the cached
          // frame) and ask the owner to force it; the flush notification
          // then advances or drops our DPT entry (Section 2.5).
          Status st = ShipDirtyCopy(pid);
          if (st.IsNodeDown()) continue;  // Owner down; entry cannot move.
          CLOG_RETURN_IF_ERROR(st);
          st = network_->FlushRequest(id_, OwnerOf(pid), pid);
          if (st.IsNodeDown()) continue;
          CLOG_RETURN_IF_ERROR(st);
        } else {
          // Our own page: force from the current state.
          CLOG_RETURN_IF_ERROR(ForceOwnPage(pid));
        }
        metrics_.GetCounter("logspace.victim_forces").Add(1);
        acted = true;
        break;
      }
      if (!acted) {
        // Nothing evictable: perhaps a checkpoint still helps.
        CLOG_RETURN_IF_ERROR(Checkpoint());
      }
    }

    AdvanceReclaimHorizon();
    if (log_.reclaimable_lsn() == prev_horizon) {
      if (stalled_once) break;
      stalled_once = true;
    } else {
      stalled_once = false;
    }
    prev_horizon = log_.reclaimable_lsn();
  }

  if (!log_.WouldOverflow(needed_bytes)) return Status::OK();
  return Status::LogFull("cannot reclaim " + std::to_string(needed_bytes) +
                         " bytes of log space");
}

}  // namespace clog
