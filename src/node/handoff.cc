#include "node/node.h"

/// \file
/// Elastic membership, node side: the crash-restartable page-ownership
/// handoff protocol (docs/PROTOCOLS.md "Membership & ownership handoff").
///
/// A handoff moves the *current owner* role — durable copy, global lock
/// table, FlushRequest service — of one page from this node to a target,
/// in four steps, each durable in the per-node handoff ledger before it
/// returns:
///
///   1. Prepare   fence the page, record the intent (kPrepared)
///   2. Ship      quiet durable force: the local durable copy becomes
///                current *without* notifying replacers (kShipped)
///   3. Transfer  send the HandoffOffer; the target's durable adoption
///                record is the protocol's commit point
///   4. Complete  write the ceded tombstone, drop volatile state, unfence
///
/// A crash at any boundary on either endpoint re-enters cleanly:
/// ResolvePendingHandoffs aborts prepared handoffs locally and settles
/// shipped ones by asking the target (kHandoffQuery) whether its durable
/// adoption landed. An unreachable target leaves the page fenced in doubt
/// — neither endpoint serves it — until a later resolution pass.

namespace clog {

Status Node::ReadDurablePage(PageId pid, Page* out) {
  if (pid.owner == id_) return ReadOwnPage(pid.page_no, out);
  return handoff_.ReadAdopted(pid, out);
}

Status Node::WriteDurablePage(PageId pid, Page* page) {
  if (pid.owner == id_) {
    CLOG_RETURN_IF_ERROR(disk_.WritePage(pid.page_no, page, /*sync=*/true));
  } else {
    CLOG_RETURN_IF_ERROR(handoff_.UpdateAdoptedImage(pid, *page));
  }
  ChargeDiskWrite();
  return Status::OK();
}

Psn Node::DurableSeedPsn(PageId pid) const {
  if (pid.owner == id_) return space_map_.PsnSeed(pid.page_no);
  return handoff_.AdoptedSeedPsn(pid);
}

void Node::RegisterHandoffState() {
  for (PageId pid : handoff_.InflightPages()) handoff_fenced_.insert(pid);
  if (directory_ == nullptr) return;
  for (PageId pid : handoff_.AdoptedPages()) {
    // An adopted page mid-re-handoff stays unregistered until resolution
    // decides whether the next owner's adoption landed.
    if (handoff_.Inflight(pid).has_value()) continue;
    directory_->SetOwner(pid, id_);
  }
}

std::vector<PageId> Node::OwnedPages() const {
  std::vector<PageId> out;
  for (std::uint32_t page_no : space_map_.AllocatedPages()) {
    PageId pid{id_, page_no};
    if (handoff_.IsCeded(pid)) continue;
    if (!OwnsPage(pid)) continue;
    out.push_back(pid);
  }
  for (PageId pid : handoff_.AdoptedPages()) {
    if (OwnsPage(pid)) out.push_back(pid);
  }
  return out;
}

Status Node::PrepareDeparture() {
  if (state_ != NodeState::kUp) return Status::NodeDown("node not up");
  if (!txns_.Active().empty()) {
    return Status::FailedPrecondition(
        "active transactions block a graceful leave");
  }
  // Dirty remote copies travel home first (the Section 2.1 steal rules),
  // so the owners hold every update this node ever made.
  for (const LockListEntry& e : lock_cache_.NodeLocks()) {
    const PageId pid = e.pid;
    if (OwnsPage(pid)) continue;
    Page* cached = pool_.Lookup(pid);
    if (cached == nullptr || !pool_.IsDirty(pid)) continue;
    CLOG_RETURN_IF_ERROR(PrepareSteal(pid));
    if (options_.logging_mode != LoggingMode::kShipToOwner &&
        cached->page_lsn() >= log_.flushed_lsn()) {
      CLOG_RETURN_IF_ERROR(ForceLog(cached->page_lsn()));
    }
    cached->SealChecksum();
    CLOG_RETURN_IF_ERROR(network_->PageShip(id_, OwnerOf(pid), *cached));
    dpt_.OnReplaced(pid, cached->psn(), log_.end_lsn());
    pool_.MarkClean(pid);
  }
  // This node's log dies with it, so every remote page it is still a redo
  // source for must become durable at its owner before the leave commits
  // (Section 2.5 — the owner's FlushNotify then drops the DPT entry).
  for (const DptEntry& e : dpt_.ToEntries()) {
    if (OwnsPage(e.pid)) continue;
    CLOG_RETURN_IF_ERROR(network_->FlushRequest(id_, OwnerOf(e.pid), e.pid));
  }
  // Return every cached lock: a departed node never restarts, so a
  // retained entry in an owner's global table would block readers forever.
  for (const LockListEntry& e : lock_cache_.NodeLocks()) {
    const PageId pid = e.pid;
    if (OwnsPage(pid)) continue;
    lock_cache_.DropNodeLock(pid);
    if (pool_.Contains(pid)) pool_.Drop(pid);
    CLOG_RETURN_IF_ERROR(network_->UnlockNotice(id_, OwnerOf(pid), pid));
  }
  metrics_.GetCounter("handoff.departures").Add(1);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Outbound protocol steps (old-owner side)
// ---------------------------------------------------------------------------

Status Node::HandoffPrepare(PageId pid, NodeId target) {
  if (state_ != NodeState::kUp) return Status::NodeDown("node not up");
  if (directory_ == nullptr) {
    return Status::FailedPrecondition("no ownership directory attached");
  }
  if (target == id_) return Status::InvalidArgument("handoff to self");
  if (!OwnsPage(pid)) {
    return Status::InvalidArgument("not the current owner of " +
                                   pid.ToString());
  }
  if (handoff_.Inflight(pid).has_value()) {
    return Status::Busy("handoff already in flight for " + pid.ToString());
  }
  if (pid.owner == id_ && !space_map_.IsAllocated(pid.page_no)) {
    return Status::NotFound("page not allocated: " + pid.ToString());
  }
  if (restore_.IsRestoring(pid)) {
    return Status::Busy("page still restoring: " + pid.ToString());
  }
  if (poison_.Contains(pid)) {
    return Status::Corruption("page unrecoverable after media failure: " +
                              pid.ToString());
  }
  // Local transactions pin the page's fate to this node's log; remote
  // holders are fine (their residue travels with the offer, and PSN guards
  // reconcile their cached copies).
  if (!lock_cache_.CanComply(pid, LockMode::kNone).can_comply) {
    return Status::Busy("page in use by a local transaction: " +
                        pid.ToString());
  }
  if (network_->ProbePeer(id_, target) != PeerHealth::kUp) {
    return Status::Unavailable("handoff target " + std::to_string(target) +
                               " not up");
  }
  handoff_fenced_.insert(pid);
  Status st = handoff_.RecordPrepare(pid, target, DurableSeedPsn(pid));
  if (!st.ok()) handoff_fenced_.erase(pid);
  metrics_.GetCounter("handoff.prepared").Add(1);
  return st;
}

Status Node::HandoffShip(PageId pid) {
  std::optional<InflightHandoff> rec = handoff_.Inflight(pid);
  if (!rec.has_value() || rec->phase != HandoffLedgerPhase::kPrepared) {
    return Status::FailedPrecondition("handoff not prepared for " +
                                      pid.ToString());
  }
  Page* cached = pool_.Lookup(pid);
  if (cached != nullptr && pool_.IsDirty(pid)) {
    // The quiet force: same steal fence + WAL + durable write as
    // ForceOwnPage, but *no* FlushNotify — the replacer set and its
    // un-advanced RedoLSNs travel to the target with the offer, and the
    // target notifies after adoption (the Section 2.5 RedoLSN transfer).
    CLOG_RETURN_IF_ERROR(PrepareSteal(pid));
    if (options_.logging_mode != LoggingMode::kShipToOwner &&
        cached->page_lsn() >= log_.flushed_lsn()) {
      CLOG_RETURN_IF_ERROR(ForceLog(cached->page_lsn()));
    }
    CLOG_RETURN_IF_ERROR(WriteDurablePage(pid, cached));
    pool_.MarkClean(pid);
    dpt_.Remove(pid);
    AdvanceReclaimHorizon();
  }
  return handoff_.RecordShipped(pid);
}

Status Node::HandoffTransfer(PageId pid) {
  std::optional<InflightHandoff> rec = handoff_.Inflight(pid);
  if (!rec.has_value() || rec->phase != HandoffLedgerPhase::kShipped) {
    return Status::FailedPrecondition("handoff not shipped for " +
                                      pid.ToString());
  }
  HandoffOffer offer;
  offer.pid = pid;
  auto page = std::make_shared<Page>();
  CLOG_RETURN_IF_ERROR(ReadDurablePage(pid, page.get()));
  ChargeDiskRead();
  offer.page = page;
  offer.psn = page->psn();
  offer.seed_psn = rec->seed_psn;
  if (auto it = replacers_.find(pid); it != replacers_.end()) {
    offer.replacers.assign(it->second.begin(), it->second.end());
  }
  // Lock residue: every remote holder verbatim, plus this node's own
  // requester-side cached mode (after the handoff it is a plain client).
  for (NodeId holder : global_locks_.HoldersOf(pid)) {
    if (holder == id_) continue;
    offer.holders.push_back(
        HandoffHolderEntry{holder, global_locks_.HeldBy(pid, holder)});
  }
  if (LockMode self = lock_cache_.NodeMode(pid); self != LockMode::kNone) {
    offer.holders.push_back(HandoffHolderEntry{id_, self});
  }
  offer.epoch = directory_ != nullptr ? directory_->epoch() : 0;

  HandoffOfferReply reply;
  Status st = network_->HandoffOfferRpc(id_, rec->target, offer, &reply);
  // Unreachable target: the offer may or may not have landed. Stay
  // kShipped and fenced — ResolvePendingHandoffs settles it later.
  if (!st.ok()) return st;
  if (!reply.accepted) {
    CLOG_RETURN_IF_ERROR(handoff_.AbortHandoff(pid));
    handoff_fenced_.erase(pid);
    metrics_.GetCounter("handoff.refused").Add(1);
    return Status::Busy("handoff target refused " + pid.ToString());
  }
  return Status::OK();
}

Status Node::HandoffComplete(PageId pid) {
  std::optional<InflightHandoff> rec = handoff_.Inflight(pid);
  if (!rec.has_value() || rec->phase != HandoffLedgerPhase::kShipped) {
    return Status::FailedPrecondition("handoff not shipped for " +
                                      pid.ToString());
  }
  CLOG_RETURN_IF_ERROR(handoff_.RecordCeded(pid, rec->target));
  handoff_fenced_.erase(pid);
  replacers_.erase(pid);
  dpt_.Remove(pid);
  for (NodeId holder : global_locks_.HoldersOf(pid)) {
    global_locks_.Release(pid, holder);
  }
  // A cached frame without a requester-side lock would be unreachable and
  // unaccounted; with one it is an ordinary client copy and stays.
  if (lock_cache_.NodeMode(pid) == LockMode::kNone && pool_.Contains(pid)) {
    pool_.Drop(pid);
  }
  AdvanceReclaimHorizon();
  metrics_.GetCounter("handoff.ceded").Add(1);
  return Status::OK();
}

Status Node::ResolvePendingHandoffs(std::size_t* resolved) {
  std::size_t settled = 0;
  for (PageId pid : handoff_.InflightPages()) {
    std::optional<InflightHandoff> rec = handoff_.Inflight(pid);
    if (!rec.has_value()) continue;
    if (rec->phase == HandoffLedgerPhase::kPrepared) {
      // Nothing moved: abort locally and resume ownership.
      CLOG_RETURN_IF_ERROR(handoff_.AbortHandoff(pid));
      handoff_fenced_.erase(pid);
      if (directory_ != nullptr) directory_->SetOwner(pid, id_);
      metrics_.GetCounter("handoff.reentry_aborted").Add(1);
      ++settled;
      continue;
    }
    // Shipped: only the target's durable ledger knows whether the adoption
    // committed.
    HandoffQueryReply reply;
    Status st = network_->HandoffQueryRpc(id_, rec->target, pid, &reply);
    if (!st.ok()) {
      if (directory_ != nullptr) {
        // The target is unreachable (crashed or departed), but the
        // adoption commit point publishes the new owner to the directory
        // in the same halt-atomic step as the durable adopt (HaltNode
        // joins the in-flight handler before stopping a node, so an offer
        // handler either ran whole or not at all, and an offer RPC that
        // reported failure was never delivered). The directory is
        // therefore a sound witness either way: naming someone else means
        // the handoff committed; still naming this node means the offer
        // never landed and the handoff aborts. Waiting instead would
        // deadlock when the target's own restart needs a lock on the
        // fenced page to rebuild its recovery state.
        NodeId current = directory_->OwnerOf(pid);
        if (current != id_) {
          CLOG_RETURN_IF_ERROR(handoff_.RecordCeded(pid, current));
          handoff_fenced_.erase(pid);
          replacers_.erase(pid);
          dpt_.Remove(pid);
          for (NodeId holder : global_locks_.HoldersOf(pid)) {
            global_locks_.Release(pid, holder);
          }
          if (lock_cache_.NodeMode(pid) == LockMode::kNone &&
              pool_.Contains(pid)) {
            pool_.Drop(pid);
          }
          metrics_.GetCounter("handoff.reentry_completed").Add(1);
        } else {
          CLOG_RETURN_IF_ERROR(handoff_.AbortHandoff(pid));
          handoff_fenced_.erase(pid);
          metrics_.GetCounter("handoff.reentry_aborted").Add(1);
        }
        ++settled;
        continue;
      }
      // No directory attached: stay fenced in doubt; a later pass settles.
      continue;
    }
    if (reply.adopted) {
      CLOG_RETURN_IF_ERROR(handoff_.RecordCeded(pid, rec->target));
      handoff_fenced_.erase(pid);
      replacers_.erase(pid);
      dpt_.Remove(pid);
      for (NodeId holder : global_locks_.HoldersOf(pid)) {
        global_locks_.Release(pid, holder);
      }
      if (lock_cache_.NodeMode(pid) == LockMode::kNone &&
          pool_.Contains(pid)) {
        pool_.Drop(pid);
      }
      metrics_.GetCounter("handoff.reentry_completed").Add(1);
    } else {
      CLOG_RETURN_IF_ERROR(handoff_.AbortHandoff(pid));
      handoff_fenced_.erase(pid);
      if (directory_ != nullptr) directory_->SetOwner(pid, id_);
      metrics_.GetCounter("handoff.reentry_aborted").Add(1);
    }
    ++settled;
  }
  AdvanceReclaimHorizon();
  if (resolved != nullptr) *resolved = settled;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Inbound handlers (new-owner side)
// ---------------------------------------------------------------------------

Status Node::HandleHandoffOffer(NodeId from, const HandoffOffer& offer,
                                HandoffOfferReply* reply) {
  reply->accepted = false;
  if (state_ != NodeState::kUp) return Status::OK();  // Refuse, not error.
  if (offer.page == nullptr) {
    return Status::InvalidArgument("handoff offer without a page image");
  }
  const PageId pid = offer.pid;
  if (handoff_.Inflight(pid).has_value()) {
    // This node is itself mid-outbound for the page (shouldn't happen —
    // the source owns it — but a confused retry must not double-adopt).
    return Status::OK();
  }
  // Idempotent re-delivery after a source retry: already adopted at (or
  // past) the offered PSN means the commit point already happened.
  if (pid.owner != id_ ? handoff_.IsAdopted(pid) : !handoff_.IsCeded(pid)) {
    reply->accepted = true;
    return Status::OK();
  }
  // Durable adoption — the protocol's commit point. A page whose home is
  // this node goes back into its (still allocated) home slot; any other
  // page lands in the ledger's adopted store.
  if (pid.owner == id_) {
    Page img;
    img.CopyFrom(*offer.page);
    img.SealChecksum();
    CLOG_RETURN_IF_ERROR(disk_.WritePage(pid.page_no, &img, /*sync=*/true));
    ChargeDiskWrite();
    CLOG_RETURN_IF_ERROR(handoff_.RecordReturned(pid));
  } else {
    CLOG_RETURN_IF_ERROR(
        handoff_.RecordAdopted(pid, *offer.page, offer.seed_psn));
  }
  if (directory_ != nullptr) directory_->SetOwner(pid, id_);
  // Lock residue: the old owner's global table entries, verbatim. This
  // node's own entry (it may have been a client of the page) moves from
  // the source's table into its own.
  for (const HandoffHolderEntry& h : offer.holders) {
    global_locks_.Install(pid, h.node, h.mode);
  }
  // A stale clean cached copy refreshes from the offer; a *newer* cached
  // copy (this node held X and kept updating) stays — it is now the
  // owner's own newest version, still tracked by its DPT entry.
  if (Page* cached = pool_.Lookup(pid);
      cached != nullptr && !pool_.IsDirty(pid) &&
      cached->psn() < offer.psn) {
    cached->CopyFrom(*offer.page);
  }
  // Section 2.5 RedoLSN transfer: the inherited replacers' updates became
  // durable with the source's quiet force; the *new* owner now advances
  // their RedoLSNs by notifying at the shipped PSN.
  for (NodeId r : offer.replacers) {
    if (r == id_) {
      dpt_.OnOwnerFlushed(pid, offer.psn);
      AdvanceReclaimHorizon();
    } else if (options_.send_flush_notifications) {
      network_->FlushNotify(id_, r, pid, offer.psn).ok();
    }
  }
  metrics_.GetCounter("handoff.adopted").Add(1);
  (void)from;
  reply->accepted = true;
  return Status::OK();
}

Status Node::HandleHandoffQuery(NodeId from, PageId pid,
                                HandoffQueryReply* reply) {
  (void)from;
  // "Did your adoption commit?" — answered from durable state only. For a
  // home page the commit point was erasing the ceded tombstone; for any
  // other page it was the adoption record (a later ceded tombstone means
  // it adopted and has since moved the page on — still yes).
  if (pid.owner == id_) {
    reply->adopted = !handoff_.IsCeded(pid);
  } else {
    reply->adopted = handoff_.IsAdopted(pid) || handoff_.IsCeded(pid);
  }
  reply->psn = handoff_.AdoptedPsn(pid);
  return Status::OK();
}

}  // namespace clog
