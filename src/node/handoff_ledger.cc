#include "node/handoff_ledger.h"

#include <utility>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/fsutil.h"

namespace clog {
namespace {

/// "CHND" — handoff ledger blob magic.
constexpr std::uint32_t kHandoffMagic = 0x43484E44u;

}  // namespace

Status HandoffLedger::Open(const std::string& dir) {
  path_ = dir + "/node.handoff";
  inflight_.clear();
  ceded_.clear();
  adopted_.clear();
  std::string blob;
  Status st = ReadFileToString(path_, &blob);
  if (st.IsNotFound()) return Status::OK();  // Never handed off: no file.
  CLOG_RETURN_IF_ERROR(st);
  if (blob.size() < 8) return Status::Corruption("handoff ledger truncated");
  if (crc32c::Value(blob.data(), blob.size() - 4) !=
      [&] {
        std::uint32_t crc = 0;
        std::memcpy(&crc, blob.data() + blob.size() - 4, 4);
        return crc;
      }()) {
    return Status::Corruption("handoff ledger crc mismatch");
  }
  Decoder dec(Slice(blob.data(), blob.size() - 4));
  std::uint32_t magic = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  if (magic != kHandoffMagic) return Status::Corruption("bad handoff magic");
  std::uint64_t n = 0;
  CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t pid = 0;
    std::uint32_t target = 0;
    std::uint8_t phase = 0;
    std::uint64_t seed = 0;
    CLOG_RETURN_IF_ERROR(dec.GetU64(&pid));
    CLOG_RETURN_IF_ERROR(dec.GetU32(&target));
    CLOG_RETURN_IF_ERROR(dec.GetU8(&phase));
    CLOG_RETURN_IF_ERROR(dec.GetU64(&seed));
    inflight_[pid] = InflightHandoff{
        target, static_cast<HandoffLedgerPhase>(phase), seed};
  }
  CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t pid = 0;
    std::uint32_t target = 0;
    CLOG_RETURN_IF_ERROR(dec.GetU64(&pid));
    CLOG_RETURN_IF_ERROR(dec.GetU32(&target));
    ceded_[pid] = target;
  }
  CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t pid = 0, psn = 0, seed = 0;
    CLOG_RETURN_IF_ERROR(dec.GetU64(&pid));
    CLOG_RETURN_IF_ERROR(dec.GetU64(&psn));
    CLOG_RETURN_IF_ERROR(dec.GetU64(&seed));
    std::string image;
    CLOG_RETURN_IF_ERROR(dec.GetRaw(kPageSize, &image));
    adopted_[pid] = Adoption{psn, seed, std::move(image)};
  }
  return Status::OK();
}

Status HandoffLedger::RecordPrepare(PageId pid, NodeId target, Psn seed_psn) {
  inflight_[pid.Pack()] =
      InflightHandoff{target, HandoffLedgerPhase::kPrepared, seed_psn};
  return Persist();
}

Status HandoffLedger::RecordShipped(PageId pid) {
  auto it = inflight_.find(pid.Pack());
  if (it == inflight_.end()) {
    return Status::FailedPrecondition("handoff not prepared");
  }
  it->second.phase = HandoffLedgerPhase::kShipped;
  return Persist();
}

Status HandoffLedger::AbortHandoff(PageId pid) {
  if (inflight_.erase(pid.Pack()) == 0) return Status::OK();
  return Persist();
}

Status HandoffLedger::RecordCeded(PageId pid, NodeId target) {
  inflight_.erase(pid.Pack());
  adopted_.erase(pid.Pack());
  ceded_[pid.Pack()] = target;
  return Persist();
}

Status HandoffLedger::RecordReturned(PageId pid) {
  if (ceded_.erase(pid.Pack()) == 0) return Status::OK();
  return Persist();
}

std::optional<InflightHandoff> HandoffLedger::Inflight(PageId pid) const {
  auto it = inflight_.find(pid.Pack());
  if (it == inflight_.end()) return std::nullopt;
  return it->second;
}

std::vector<PageId> HandoffLedger::InflightPages() const {
  std::vector<PageId> out;
  out.reserve(inflight_.size());
  for (const auto& [packed, rec] : inflight_) {
    out.push_back(PageId::Unpack(packed));
  }
  return out;
}

NodeId HandoffLedger::CededTarget(PageId pid) const {
  auto it = ceded_.find(pid.Pack());
  return it == ceded_.end() ? kInvalidNodeId : it->second;
}

std::vector<PageId> HandoffLedger::CededPages() const {
  std::vector<PageId> out;
  out.reserve(ceded_.size());
  for (const auto& [packed, target] : ceded_) {
    out.push_back(PageId::Unpack(packed));
  }
  return out;
}

Status HandoffLedger::RecordAdopted(PageId pid, const Page& image,
                                    Psn seed_psn) {
  Page sealed;
  sealed.CopyFrom(image);
  sealed.SealChecksum();
  Adoption rec;
  rec.psn = sealed.psn();
  rec.seed_psn = seed_psn;
  rec.image.assign(sealed.data(), kPageSize);
  adopted_[pid.Pack()] = std::move(rec);
  // Adopting a page this node once ceded away (it came back) retires the
  // tombstone: the ledger again claims current ownership.
  ceded_.erase(pid.Pack());
  return Persist();
}

Status HandoffLedger::UpdateAdoptedImage(PageId pid, const Page& image) {
  auto it = adopted_.find(pid.Pack());
  if (it == adopted_.end()) {
    return Status::FailedPrecondition("page not adopted");
  }
  Page sealed;
  sealed.CopyFrom(image);
  sealed.SealChecksum();
  it->second.psn = sealed.psn();
  it->second.image.assign(sealed.data(), kPageSize);
  return Persist();
}

Status HandoffLedger::ReadAdopted(PageId pid, Page* out) const {
  auto it = adopted_.find(pid.Pack());
  if (it == adopted_.end()) return Status::NotFound("page not adopted");
  if (it->second.image.size() != kPageSize) {
    return Status::Corruption("adopted image size");
  }
  std::memcpy(out->data(), it->second.image.data(), kPageSize);
  return out->VerifyChecksum();
}

Psn HandoffLedger::AdoptedPsn(PageId pid) const {
  auto it = adopted_.find(pid.Pack());
  return it == adopted_.end() ? 0 : it->second.psn;
}

Psn HandoffLedger::AdoptedSeedPsn(PageId pid) const {
  auto it = adopted_.find(pid.Pack());
  return it == adopted_.end() ? 0 : it->second.seed_psn;
}

std::vector<PageId> HandoffLedger::AdoptedPages() const {
  std::vector<PageId> out;
  out.reserve(adopted_.size());
  for (const auto& [packed, rec] : adopted_) {
    out.push_back(PageId::Unpack(packed));
  }
  return out;
}

Status HandoffLedger::Persist() const {
  if (empty()) return RemoveFileIfExists(path_);
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kHandoffMagic);
  enc.PutVarint64(inflight_.size());
  for (const auto& [pid, rec] : inflight_) {
    enc.PutU64(pid);
    enc.PutU32(rec.target);
    enc.PutU8(static_cast<std::uint8_t>(rec.phase));
    enc.PutU64(rec.seed_psn);
  }
  enc.PutVarint64(ceded_.size());
  for (const auto& [pid, target] : ceded_) {
    enc.PutU64(pid);
    enc.PutU32(target);
  }
  enc.PutVarint64(adopted_.size());
  for (const auto& [pid, rec] : adopted_) {
    enc.PutU64(pid);
    enc.PutU64(rec.psn);
    enc.PutU64(rec.seed_psn);
    enc.PutRaw(Slice(rec.image.data(), rec.image.size()));
  }
  enc.PutU32(crc32c::Value(blob.data(), blob.size()));
  return AtomicWriteFile(path_, blob);
}

}  // namespace clog
