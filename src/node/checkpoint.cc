#include "node/node.h"
#include "trace/trace_sink.h"

/// \file
/// Fuzzy checkpointing (paper Section 2.2). Checkpoints are entirely local:
/// no page forcing, no communication, no synchronization with other nodes —
/// key advantage (4) in the paper's conclusions. The checkpoint logs the
/// dirty page table and the active-transaction table; the master side file
/// points at the last *complete* checkpoint.

namespace clog {

Status Node::Checkpoint() {
  if (state_ != NodeState::kUp) return Status::NodeDown("node not up");
  if (!options_.has_local_log) {
    return Status::OK();  // Nothing to checkpoint without a local log.
  }

  // Settle the commit group before snapshotting the ATT. A parked commit's
  // COMMIT record lies *before* the checkpoint-begin record this checkpoint
  // installs as the analysis start: if the transaction were checkpointed as
  // live and its END (appended when a later force completes it) did not
  // survive the crash, analysis would miss the commit record entirely and
  // undo an acknowledged commit. Draining first keeps kCommitting
  // transactions out of every durable ATT.
  CLOG_RETURN_IF_ERROR(FlushCommitGroup());

  // Checkpoints bypass the capacity check: they are how a full log gets
  // its reclaim horizon moved, so refusing them would wedge the node.
  LogRecord begin;
  begin.type = LogRecordType::kCheckpointBegin;
  Lsn begin_lsn = kNullLsn;
  CLOG_RETURN_IF_ERROR(
      log_.Append(begin, &begin_lsn, /*enforce_capacity=*/false));
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kCheckpointBegin, begin_lsn);
  }

  LogRecord end;
  end.type = LogRecordType::kCheckpointEnd;
  end.checkpoint_begin_lsn = begin_lsn;
  end.dpt = dpt_.ToEntries();
  end.att = txns_.Snapshot();
  // The seq of the last pass *sealed before this record is written*: the
  // pass below runs after the force, so it cannot be named here. Zero when
  // archiving is off, keeping the record's bytes unchanged.
  end.archive_seq = archive_.is_open() ? archive_.seq() : 0;
  Lsn end_lsn = kNullLsn;
  CLOG_RETURN_IF_ERROR(
      log_.Append(end, &end_lsn, /*enforce_capacity=*/false));

  CLOG_RETURN_IF_ERROR(ForceLog(end_lsn));
  CLOG_RETURN_IF_ERROR(log_.StoreMaster(end_lsn));
  // Durable log-extent mark, on the metadata device: a later restart that
  // finds the log shorter than this knows the log *device* was destroyed,
  // not merely an unforced tail lost (media failure detection).
  CLOG_RETURN_IF_ERROR(log_.StoreMark());

  last_ckpt_begin_ = begin_lsn;
  AdvanceReclaimHorizon();
  metrics_.GetCounter("checkpoints").Add(1);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kCheckpointEnd, end_lsn,
                 static_cast<std::uint64_t>(end.dpt.size()),
                 static_cast<std::uint32_t>(end.att.size()));
  }

  // Fuzzy archive pass, strictly after the force: every update in any page
  // image copied below is covered by a durable log record — locally because
  // the force just ran, remotely because WalBeforePageLeaves held when the
  // page was shipped here. That ordering is the archive's WAL rule.
  if (archive_.is_open() &&
      ++ckpts_since_archive_ >=
          options_.logging_policy.archive.every_checkpoints) {
    ckpts_since_archive_ = 0;
    CLOG_RETURN_IF_ERROR(ArchivePass());
  }
  return Status::OK();
}

}  // namespace clog
