#include "node/node.h"
#include "trace/trace_sink.h"

/// \file
/// Fuzzy checkpointing (paper Section 2.2). Checkpoints are entirely local:
/// no page forcing, no communication, no synchronization with other nodes —
/// key advantage (4) in the paper's conclusions. The checkpoint logs the
/// dirty page table and the active-transaction table; the master side file
/// points at the last *complete* checkpoint.

namespace clog {

Status Node::Checkpoint() {
  if (state_ != NodeState::kUp) return Status::NodeDown("node not up");
  if (!options_.has_local_log) {
    return Status::OK();  // Nothing to checkpoint without a local log.
  }

  // Settle the commit group before snapshotting the ATT. A parked commit's
  // COMMIT record lies *before* the checkpoint-begin record this checkpoint
  // installs as the analysis start: if the transaction were checkpointed as
  // live and its END (appended when a later force completes it) did not
  // survive the crash, analysis would miss the commit record entirely and
  // undo an acknowledged commit. Draining first keeps kCommitting
  // transactions out of every durable ATT.
  CLOG_RETURN_IF_ERROR(FlushCommitGroup());

  // Checkpoints bypass the capacity check: they are how a full log gets
  // its reclaim horizon moved, so refusing them would wedge the node.
  LogRecord begin;
  begin.type = LogRecordType::kCheckpointBegin;
  Lsn begin_lsn = kNullLsn;
  CLOG_RETURN_IF_ERROR(
      log_.Append(begin, &begin_lsn, /*enforce_capacity=*/false));
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kCheckpointBegin, begin_lsn);
  }

  LogRecord end;
  end.type = LogRecordType::kCheckpointEnd;
  end.checkpoint_begin_lsn = begin_lsn;
  end.dpt = dpt_.ToEntries();
  end.att = txns_.Snapshot();
  Lsn end_lsn = kNullLsn;
  CLOG_RETURN_IF_ERROR(
      log_.Append(end, &end_lsn, /*enforce_capacity=*/false));

  CLOG_RETURN_IF_ERROR(ForceLog(end_lsn));
  CLOG_RETURN_IF_ERROR(log_.StoreMaster(end_lsn));

  last_ckpt_begin_ = begin_lsn;
  AdvanceReclaimHorizon();
  metrics_.GetCounter("checkpoints").Add(1);
  if (trace_ != nullptr) {
    trace_->Emit(id_, TraceEventType::kCheckpointEnd, end_lsn,
                 static_cast<std::uint64_t>(end.dpt.size()),
                 static_cast<std::uint32_t>(end.att.size()));
  }
  return Status::OK();
}

}  // namespace clog
