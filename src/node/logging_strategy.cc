#include "node/node.h"
#include "node/options.h"

/// \file
/// Baseline-mode helpers. B1 (kShipToOwner) models ARIES/CSA-style
/// client-server logging: clients accumulate log records and ship them to
/// the owner — before a dirty page travels (WAL-to-owner) and, with a log
/// force, at commit. B2's force-at-transfer logic lives inline in
/// node.cc/page_service.cc (it reuses the local-logging code plus forces).

namespace clog {

std::string_view LoggingModeName(LoggingMode m) {
  switch (m) {
    case LoggingMode::kClientLocal:
      return "client-local";
    case LoggingMode::kShipToOwner:
      return "ship-to-owner";
    case LoggingMode::kForceAtTransfer:
      return "force-at-transfer";
  }
  return "unknown";
}

Status Node::ShipPendingRecords(Transaction* txn, bool force,
                                const PageId* only_page) {
  // Partition the pending records: those covered by the filter ship now,
  // the rest stay pending.
  std::map<NodeId, std::vector<LogRecord>> batches;
  std::vector<LogRecord> keep;
  for (LogRecord& rec : txn->pending_records) {
    bool covered = only_page == nullptr || rec.page == *only_page;
    if (covered) {
      batches[rec.page.owner].push_back(std::move(rec));
    } else {
      keep.push_back(std::move(rec));
    }
  }
  txn->pending_records = std::move(keep);

  if (force) {
    // Commit processing: every involved owner gets the commit record; a
    // read-only transaction ships nothing and stays message-free.
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = txn->id;
    for (auto& [owner, batch] : batches) {
      if (owner != id_) batch.push_back(commit);
    }
  }

  bool logged_locally = false;
  for (auto& [owner, batch] : batches) {
    if (batch.empty()) continue;
    if (owner == id_) {
      // Records for our own pages go straight into the local log (the
      // owner in ARIES/CSA logs normally). At commit the record batch is
      // completed with the commit record and forced — a server's own
      // transactions are durable in its own log.
      Lsn lsn = kNullLsn;
      for (const LogRecord& rec : batch) {
        CLOG_RETURN_IF_ERROR(AppendWithReclaim(rec, &lsn));
      }
      if (force) {
        LogRecord commit;
        commit.type = LogRecordType::kCommit;
        commit.txn = txn->id;
        CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &lsn));
      }
      if (force || only_page != nullptr) {
        // Commit force, or WAL before the page leaves the cache.
        CLOG_RETURN_IF_ERROR(ForceLog(lsn));
      }
      logged_locally = true;
    } else {
      CLOG_RETURN_IF_ERROR(network_->LogShip(id_, owner, batch, force));
      metrics_.GetCounter("b1.records_shipped").Add(batch.size());
    }
  }

  if (force && options_.has_local_log && !logged_locally) {
    // Pure-remote commit: a local commit record for bookkeeping only. The
    // durable copy is the owner's, so ARIES/CSA clients do NOT force
    // their local disk at commit (that is the whole point of the
    // comparison against client-based logging).
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = txn->id;
    Lsn lsn = kNullLsn;
    CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &lsn));
  }
  return Status::OK();
}

}  // namespace clog
