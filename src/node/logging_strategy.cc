#include "node/node.h"
#include "node/options.h"

/// \file
/// Logging-strategy helpers. B1 (kShipToOwner) models ARIES/CSA-style
/// client-server logging: clients accumulate log records and ship them to
/// the owner — before a dirty page travels (WAL-to-owner) and, with a log
/// force, at commit. B2's force-at-transfer logic lives inline in
/// node.cc/page_service.cc (it reuses the local-logging code plus forces).
///
/// The adaptive strategy (LogStrategy::kAdaptive, docs/PROTOCOLS.md) also
/// lives here: single-node transactions emit compact redo-only records and
/// stash their before-images in memory; the first event that could expose
/// those records to recovery without the stash — a cross-node page, a
/// steal, a rollback — upgrades the transaction to physical logging by
/// backfilling the stash into one kUndoBackfill record.

namespace clog {

std::string_view LoggingModeName(LoggingMode m) {
  switch (m) {
    case LoggingMode::kClientLocal:
      return "client-local";
    case LoggingMode::kShipToOwner:
      return "ship-to-owner";
    case LoggingMode::kForceAtTransfer:
      return "force-at-transfer";
  }
  return "unknown";
}

std::string_view LogStrategyName(LogStrategy s) {
  switch (s) {
    case LogStrategy::kPhysical:
      return "physical";
    case LogStrategy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Adaptive logging (tentpole): logical emission gates, upgrade, steal barrier
// ---------------------------------------------------------------------------

bool Node::TxnLogsLogical(const Transaction* txn, PageId pid) const {
  // Logical records are only sound while the transaction's updates are the
  // undisputed tail of each touched page's PSN history: the page is owned
  // here (never shipped mid-transaction), the mode is client-local (records
  // never leave this log), and page-grain X locks exclude interleaved
  // writers (record-grain locking would let another transaction extend the
  // page's history past ours, breaking the redo skip rule).
  return txn->strategy == LogStrategy::kAdaptive && !txn->upgraded &&
         OwnsPage(pid) &&
         options_.logging_mode == LoggingMode::kClientLocal &&
         !options_.local_record_locking;
}

Status Node::UpgradeTxnToPhysical(Transaction* txn) {
  if (txn->upgraded) return Status::OK();
  txn->upgraded = true;
  if (txn->logical_undos.empty()) return Status::OK();
  LogRecord rec;
  rec.type = LogRecordType::kUndoBackfill;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.backfill.reserve(txn->logical_undos.size());
  for (const auto& [covered_lsn, undo_image] : txn->logical_undos) {
    BackfillEntry e;
    e.covered_lsn = covered_lsn;
    e.undo_image = undo_image;
    rec.backfill.push_back(std::move(e));
  }
  Lsn lsn = kNullLsn;
  // Bypasses the capacity check like rollback records: upgrades run inside
  // steals and aborts, where re-entering reclamation could recurse.
  CLOG_RETURN_IF_ERROR(log_.Append(rec, &lsn, /*enforce_capacity=*/false));
  txn->last_lsn = lsn;
  --live_logical_txns_;
  ctr_txn_upgrades_->Add(1);
  return Status::OK();
}

Status Node::PrepareSteal(PageId pid) {
  // Fast path: nothing on this node currently relies on a volatile stash.
  if (live_logical_txns_ == 0 || !OwnsPage(pid)) return Status::OK();
  Lsn fence = kNullLsn;
  auto raise = [&fence](Lsn lsn) {
    if (lsn == kNullLsn) return;
    if (fence == kNullLsn || lsn > fence) fence = lsn;
  };
  for (const Transaction* t : txns_.Active()) {
    if (t->strategy != LogStrategy::kAdaptive || t->upgraded ||
        t->logical_undos.empty()) {
      continue;
    }
    if (t->updated_pages.count(pid) == 0) continue;
    Transaction* txn = txns_.Find(t->id);
    if (txn->state == TxnState::kCommitting) {
      // Parked group commit: its commit record is already appended
      // (last_lsn), so forcing that makes every record replayable — no
      // backfill needed, and appending one after the commit would be
      // malformed anyway.
      raise(txn->last_lsn);
    } else {
      CLOG_RETURN_IF_ERROR(UpgradeTxnToPhysical(txn));
      raise(txn->last_lsn);
    }
  }
  // The page may carry bytes whose undo (or commit) exists only in the
  // unforced tail; make it durable before the page image can hit a disk.
  if (fence != kNullLsn) CLOG_RETURN_IF_ERROR(ForceLog(fence));
  return Status::OK();
}

void Node::FillCommitMeta(const Transaction* txn, LogRecord* commit) const {
  // Physical transactions leave the trailing-optional commit fields empty,
  // keeping their commit bytes identical to the pre-adaptive format (the
  // determinism pin in tests/determinism_test.cc depends on this).
  if (txn->strategy != LogStrategy::kAdaptive) return;
  if (!txn->upgraded && !txn->logical_undos.empty()) {
    commit->commit_flags |= kCommitFlagLogical;
  }
  for (const auto& [dep_txn, dep_lsn] : txn->commit_deps) {
    CommitDep d;
    d.txn = dep_txn;
    d.lsn = dep_lsn;
    commit->commit_deps.push_back(d);
  }
}

void Node::NoteCommittedPages(const Transaction* txn, Lsn commit_lsn) {
  if (options_.logging_mode != LoggingMode::kClientLocal) return;
  for (PageId pid : txn->updated_pages) {
    page_last_commit_[pid] = CommitDep{txn->id, commit_lsn};
  }
}

void Node::ReleaseLogicalState(const Transaction* txn) {
  // Resurrected losers default to kPhysical even when their stash was
  // refilled from a backfill record, so this never underflows the count.
  if (txn->strategy != LogStrategy::kAdaptive) return;
  if (!txn->upgraded && !txn->logical_undos.empty()) --live_logical_txns_;
}

Status Node::ShipPendingRecords(Transaction* txn, bool force,
                                const PageId* only_page) {
  // Partition the pending records: those covered by the filter ship now,
  // the rest stay pending.
  std::map<NodeId, std::vector<LogRecord>> batches;
  std::vector<LogRecord> keep;
  for (LogRecord& rec : txn->pending_records) {
    bool covered = only_page == nullptr || rec.page == *only_page;
    if (covered) {
      batches[OwnerOf(rec.page)].push_back(std::move(rec));
    } else {
      keep.push_back(std::move(rec));
    }
  }
  txn->pending_records = std::move(keep);

  if (force) {
    // Commit processing: every involved owner gets the commit record; a
    // read-only transaction ships nothing and stays message-free.
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = txn->id;
    for (auto& [owner, batch] : batches) {
      if (owner != id_) batch.push_back(commit);
    }
  }

  bool logged_locally = false;
  for (auto& [owner, batch] : batches) {
    if (batch.empty()) continue;
    if (owner == id_) {
      // Records for our own pages go straight into the local log (the
      // owner in ARIES/CSA logs normally). At commit the record batch is
      // completed with the commit record and forced — a server's own
      // transactions are durable in its own log.
      Lsn lsn = kNullLsn;
      for (const LogRecord& rec : batch) {
        CLOG_RETURN_IF_ERROR(AppendWithReclaim(rec, &lsn));
      }
      if (force) {
        LogRecord commit;
        commit.type = LogRecordType::kCommit;
        commit.txn = txn->id;
        CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &lsn));
      }
      if (force || only_page != nullptr) {
        // Commit force, or WAL before the page leaves the cache.
        CLOG_RETURN_IF_ERROR(ForceLog(lsn));
      }
      logged_locally = true;
    } else {
      CLOG_RETURN_IF_ERROR(network_->LogShip(id_, owner, batch, force));
      metrics_.GetCounter("b1.records_shipped").Add(batch.size());
    }
  }

  if (force && options_.has_local_log && !logged_locally) {
    // Pure-remote commit: a local commit record for bookkeeping only. The
    // durable copy is the owner's, so ARIES/CSA clients do NOT force
    // their local disk at commit (that is the whole point of the
    // comparison against client-based logging).
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn = txn->id;
    Lsn lsn = kNullLsn;
    CLOG_RETURN_IF_ERROR(AppendWithReclaim(commit, &lsn));
  }
  return Status::OK();
}

}  // namespace clog
