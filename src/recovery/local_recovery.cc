#include "recovery/local_recovery.h"

#include <algorithm>

#include "wal/log_reader.h"

namespace clog {

Status AnalyzeLog(LogManager* log, AnalysisResult* out) {
  *out = AnalysisResult();

  CLOG_ASSIGN_OR_RETURN(Lsn master, log->LoadMaster());
  Lsn scan_start = LogManager::first_lsn();
  if (master != kNullLsn) {
    LogRecord ckpt;
    CLOG_RETURN_IF_ERROR(log->ReadRecord(master, &ckpt));
    if (ckpt.type != LogRecordType::kCheckpointEnd) {
      return Status::Corruption("master does not point at a checkpoint end");
    }
    for (const DptEntry& e : ckpt.dpt) out->dpt[e.pid] = e;
    for (const AttEntry& e : ckpt.att) {
      out->losers[e.txn] = LoserTxn{kNullLsn, e.last_lsn};
    }
    scan_start = ckpt.checkpoint_begin_lsn;
  }
  out->scan_start = scan_start;

  LogCursor cursor(log, scan_start);
  LogRecord rec;
  Lsn lsn = kNullLsn;
  Status scan_status;
  while (cursor.Next(&rec, &lsn, &scan_status)) {
    switch (rec.type) {
      case LogRecordType::kBegin: {
        LoserTxn& t = out->losers[rec.txn];
        t.first_lsn = lsn;
        t.last_lsn = std::max(t.last_lsn, lsn);
        break;
      }
      case LogRecordType::kUpdate:
      case LogRecordType::kClr:
      case LogRecordType::kLogicalUpdate: {
        // Logical records dirty pages exactly like physical ones; whether
        // their redo is later *skipped* (uncommitted, no backfill) is
        // decided by the PSN-list builder, not analysis — the DPT entry
        // stays conservative either way.
        LoserTxn& t = out->losers[rec.txn];
        t.last_lsn = std::max(t.last_lsn, lsn);
        auto it = out->dpt.find(rec.page);
        if (it == out->dpt.end()) {
          // First sight of the page since the checkpoint: this record is
          // its conservative RedoLSN.
          out->dpt[rec.page] =
              DptEntry{rec.page, rec.psn_before, rec.psn_before + 1, lsn};
        } else {
          it->second.curr_psn =
              std::max(it->second.curr_psn, rec.psn_before + 1);
        }
        break;
      }
      case LogRecordType::kSavepoint:
      case LogRecordType::kUndoBackfill: {
        // Both are links in the transaction's prev_lsn chain; a backfill
        // additionally marks the transaction as upgraded-to-physical, which
        // the undo pass rediscovers on its backward walk.
        LoserTxn& t = out->losers[rec.txn];
        t.last_lsn = std::max(t.last_lsn, lsn);
        break;
      }
      case LogRecordType::kCommit:
      case LogRecordType::kEnd:
        // Winners need no undo. (A commit without an end is still a
        // winner; END is bookkeeping.)
        out->losers.erase(rec.txn);
        break;
      case LogRecordType::kAbort: {
        // Rollback had started; undo continues from the last CLR.
        LoserTxn& t = out->losers[rec.txn];
        t.last_lsn = std::max(t.last_lsn, lsn);
        break;
      }
      case LogRecordType::kCheckpointBegin:
      case LogRecordType::kCheckpointEnd:
        break;
    }
  }
  CLOG_RETURN_IF_ERROR(scan_status);
  out->records_scanned = cursor.records_read();
  return Status::OK();
}

}  // namespace clog
