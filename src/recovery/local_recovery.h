#ifndef CLOG_RECOVERY_LOCAL_RECOVERY_H_
#define CLOG_RECOVERY_LOCAL_RECOVERY_H_

#include <map>

#include "common/status.h"
#include "common/types.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

/// \file
/// The local analysis pass of restart recovery: the ARIES analysis phase
/// over a node's own log, rebuilding (a superset of) the dirty page table
/// and the set of loser transactions (paper Sections 2.3.1 and 2.4: "a
/// superset of each node's DPT can be reconstructed by scanning the node's
/// log file" from the last complete checkpoint).

namespace clog {

/// A transaction left unresolved by the crash.
struct LoserTxn {
  Lsn first_lsn = kNullLsn;  ///< Its kBegin (or first known record).
  Lsn last_lsn = kNullLsn;   ///< Undo starts here.
};

/// Output of the analysis pass.
struct AnalysisResult {
  /// Superset DPT rebuilt from the checkpoint image plus the scan. Entries
  /// are keyed by page; RedoLSN is the earliest record that may need redo.
  std::map<PageId, DptEntry> dpt;
  /// Transactions with no commit/end record: they must be rolled back.
  std::map<TxnId, LoserTxn> losers;
  /// LSN the scan started from (last complete checkpoint's begin).
  Lsn scan_start = kNullLsn;
  /// Records examined (benchmark metric).
  std::uint64_t records_scanned = 0;
};

/// Runs analysis over `log`: loads the master checkpoint pointer, installs
/// the checkpointed DPT/ATT, and scans forward to the end of the log.
Status AnalyzeLog(LogManager* log, AnalysisResult* out);

}  // namespace clog

#endif  // CLOG_RECOVERY_LOCAL_RECOVERY_H_
