#include "recovery/node_psn_list.h"

#include <algorithm>

namespace clog {

std::vector<RecoveryRun> MergePsnLists(
    const std::map<NodeId, std::vector<PsnListEntry>>& lists) {
  std::vector<RecoveryRun> merged;
  for (const auto& [node, entries] : lists) {
    for (const PsnListEntry& e : entries) {
      merged.push_back(RecoveryRun{node, e.psn});
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const RecoveryRun& a, const RecoveryRun& b) {
              // PSNs are unique per page across the cluster (page-level
              // locking totally orders updates); node id breaks ties only
              // for malformed inputs, keeping the sort deterministic.
              return a.psn != b.psn ? a.psn < b.psn : a.node < b.node;
            });
  // Coalesce adjacent runs of the same node (Section 2.3.4 step 1): the
  // earlier PSN — the run minimum — survives.
  std::vector<RecoveryRun> out;
  for (const RecoveryRun& run : merged) {
    if (!out.empty() && out.back().node == run.node) continue;
    out.push_back(run);
  }
  return out;
}

}  // namespace clog
