#ifndef CLOG_RECOVERY_REDO_SCHEDULER_H_
#define CLOG_RECOVERY_REDO_SCHEDULER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"
#include "wal/log_manager.h"

/// \file
/// Dependency-parallel redo (docs/RECOVERY_WALKTHROUGH.md "Parallel
/// redo"). Restart redo of pages whose entire history lives in the local
/// log needs no Section 2.3.4 cross-node bouncing — but the legacy path
/// still replays them one page at a time, rescanning the log per page.
/// The scheduler instead makes ONE raw pass over the log, routes each
/// update frame (undecoded — a 36-byte header peek) to its page, and
/// partitions the work into independent chains: the connected components
/// of the bipartite transaction/page graph, with commit-dependency edges
/// (CommitDep entries on adaptive commit records) merged in. Chains touch
/// disjoint page sets by construction, so workers replay them with no
/// locks: each worker checksums, decodes, and applies its chains' frames
/// onto private page images. Real-threads mode uses a worker pool; the
/// simulation replays chains sequentially in deterministic order.

namespace clog {

/// One page handed to the scheduler. The page image is redone in place;
/// the caller retains ownership and installs/forces it afterwards.
struct RedoPageTask {
  PageId pid;
  Page* page = nullptr;      ///< Base image, mutated by redo.
  Lsn start_lsn = kNullLsn;  ///< First log position that may concern pid
                             ///< (the page's recovery cursor); kNullLsn =
                             ///< nothing to scan for this page.
  std::uint64_t applied = 0;  ///< Out: redo records applied to `page`.
};

struct RedoScheduleStats {
  std::uint64_t chains = 0;          ///< Independent chains formed.
  std::uint64_t records_routed = 0;  ///< Update frames handed to workers.
  std::uint64_t applied = 0;         ///< Redo records applied, total.
};

class RedoScheduler {
 public:
  /// `skip_txns`: transactions whose logical records are redo-skipped
  /// (uncommitted, never backfilled — see docs/PROTOCOLS.md "Redo skip
  /// rule"). Not owned; must outlive Run. `workers` > 1 with
  /// `use_threads` enables the real worker pool.
  RedoScheduler(LogManager* log, const std::set<TxnId>* skip_txns,
                std::uint32_t workers, bool use_threads)
      : log_(log),
        skip_txns_(skip_txns),
        workers_(workers),
        use_threads_(use_threads) {}

  /// Scans, partitions, and replays. On return every task's page image is
  /// redone and `applied` filled in. The caller must be the only thread
  /// touching the log while the (single-threaded) scan runs; workers never
  /// touch the log, only their routed frame copies.
  Status Run(std::vector<RedoPageTask>* tasks, RedoScheduleStats* stats);

 private:
  LogManager* log_;
  const std::set<TxnId>* skip_txns_;
  std::uint32_t workers_;
  bool use_threads_;
};

}  // namespace clog

#endif  // CLOG_RECOVERY_REDO_SCHEDULER_H_
