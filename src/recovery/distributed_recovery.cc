#include "recovery/distributed_recovery.h"

#include <algorithm>
#include <memory>

#include "recovery/redo_scheduler.h"
#include "storage/slotted_page.h"
#include "trace/trace_sink.h"
#include "wal/log_reader.h"

namespace clog {

Status RestartRecovery::Run() {
  std::uint64_t t0 = node_->network()->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(OpenAndAnalyze());
  CLOG_RETURN_IF_ERROR(ExchangeAndRecover());
  CLOG_RETURN_IF_ERROR(UndoLosersAndFinish());
  stats_.sim_ns = node_->network()->clock()->NowNanos() - t0;
  return Status::OK();
}

void RestartRecovery::FinishPhase(std::uint32_t phase, const char* hist_name,
                                  std::uint64_t start_ns) {
  const std::uint64_t dur =
      node_->network_->clock()->NowNanos() - start_ns;
  node_->metrics_.GetHistogram(hist_name).Record(dur);
  if (node_->trace_ != nullptr) {
    node_->trace_->Emit(node_->id_, TraceEventType::kRecoveryPhase, phase,
                        dur);
  }
}

Status RestartRecovery::OpenAndAnalyze() {
  if (node_->state_ != NodeState::kDown) {
    return Status::FailedPrecondition("node is not crashed");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(node_->OpenStorage());
  // Elastic membership: re-fence pages the crash left mid-handoff and
  // publish surviving adoptions into the shared directory before any peer
  // RPC (or recovery phase) can route by ownership.
  node_->RegisterHandoffState();
  if (node_->options_.has_local_log) {
    // Media check before analysis: forced log bytes never shrink, so a log
    // shorter than the durable extent mark written at the last checkpoint
    // cannot be a lost unforced tail — the log device was destroyed and
    // recreated empty. (The mark lives on the metadata device and survives.)
    CLOG_ASSIGN_OR_RETURN(Lsn mark, node_->log_.LoadMark());
    if (mark != kNullLsn && node_->log_.end_lsn() < mark) {
      log_lost_ = true;
      stats_.log_loss_detected = true;
      node_->metrics_.GetCounter("media.log_loss_detected").Add(1);
    }
    CLOG_RETURN_IF_ERROR(AnalyzeLog(&node_->log_, &analysis_));
    // The rebuilt superset DPT (Sections 2.3.1 / 2.4).
    for (const auto& [pid, entry] : analysis_.dpt) {
      node_->dpt_.Install(entry);
    }
    stats_.analysis_records = analysis_.records_scanned;
    node_->metrics_.GetCounter("recovery.analysis_records")
        .Add(analysis_.records_scanned);
  }
  // Reachable for recovery RPCs; normal traffic stays fenced by the state.
  node_->state_ = NodeState::kRecovering;
  node_->network_->RegisterNode(node_->id_, node_);
  node_->network_->SetNodeUp(node_->id_, true);
  FinishPhase(0, "recovery.analyze_ns", t0);
  return Status::OK();
}

Status RestartRecovery::QueryPeers() {
  for (NodeId peer : node_->network_->OperationalNodes(node_->id_)) {
    RecoveryQueryReply reply;
    Status st = node_->network_->RecoveryQuery(node_->id_, peer, &reply);
    if (st.IsNodeDown()) continue;  // Crashed and not yet restarting.
    CLOG_RETURN_IF_ERROR(st);
    peer_replies_[peer] = std::move(reply);
    ++stats_.peers_queried;
  }
  return Status::OK();
}

Status RestartRecovery::ReconstructLocks() {
  // Section 2.3.3: peers report (a) locks they acquired from us — these
  // rebuild our global lock table — and (b) the exclusive locks we held on
  // their pages — retained there, and now re-installed in our lock cache.
  for (const auto& [peer, reply] : peer_replies_) {
    for (const LockListEntry& l : reply.locks_i_hold_on_crashed) {
      node_->global_locks_.Install(l.pid, peer, l.mode);
    }
    for (const LockListEntry& l : reply.x_locks_crashed_held_here) {
      node_->lock_cache_.Install(l.pid, LockMode::kExclusive);
    }
  }
  // "The crashed node needs to acquire exclusive locks for the pages
  // present in its DPT that do not have a lock entry": for owned pages the
  // fence is installed directly; remotely owned DPT pages either still
  // have our retained X (reported above) or their current version lives at
  // an operational node and needs no fence from us.
  for (const auto& [pid, info] : node_->dpt_.entries()) {
    if (!node_->OwnsPage(pid)) continue;
    if (node_->global_locks_.HoldersOf(pid).empty()) {
      node_->global_locks_.Install(pid, node_->id_, LockMode::kExclusive);
      node_->lock_cache_.Install(pid, LockMode::kExclusive);
    }
  }
  return Status::OK();
}

Status RestartRecovery::GatherPsnLists(
    const std::map<NodeId, std::vector<PageId>>& pages_per_node,
    bool full_history,
    std::map<PageId, std::map<NodeId, std::vector<PsnListEntry>>>* out) {
  for (const auto& [peer, pages] : pages_per_node) {
    PsnListReply reply;
    if (peer == node_->id_) {
      CLOG_RETURN_IF_ERROR(node_->HandleBuildPsnList(node_->id_, pages,
                                                     full_history, &reply));
    } else {
      CLOG_RETURN_IF_ERROR(node_->network_->BuildPsnList(
          node_->id_, peer, pages, full_history, &reply));
    }
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (!reply.per_page[i].empty()) {
        (*out)[pages[i]][peer] = std::move(reply.per_page[i]);
      }
    }
  }
  return Status::OK();
}

Status RestartRecovery::RedoRound(NodeId target, PageId pid, const Page& in,
                                  bool has_bound, Psn bound,
                                  RecoverPageReply* reply) {
  ++stats_.redo_rounds;
  if (target == node_->id_) {
    return node_->HandleRecoverPage(node_->id_, pid, in, has_bound, bound,
                                    reply);
  }
  return node_->network_->RecoverPage(node_->id_, target, pid, in, has_bound,
                                      bound, reply);
}

Status RestartRecovery::CoordinatePageRecovery(
    PageId pid, Page* base,
    const std::map<NodeId, std::vector<PsnListEntry>>& lists) {
  // Section 2.3.4 step 1: ascending PSN order, adjacent same-node entries
  // merged.
  std::vector<RecoveryRun> runs = MergePsnLists(lists);

  // Steps 2-4: bounce the page through the involved nodes. Each node
  // applies redo until the next run's PSN would be reached.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Runs wholly below the base image are already-reflected history: an
    // archive or disk base subsumes them (full-history rebuilds ask every
    // log for the page's whole life). No round needed.
    if (i + 1 < runs.size() && runs[i + 1].psn <= base->psn()) continue;
    if (runs[i].psn > base->psn()) {
      // PSN density: every update bumped the PSN by exactly one, so the
      // schedule must tile upward from the base without gaps. A run
      // starting above the page's current PSN proves records existed that
      // no surviving log holds (a destroyed client log). Serving the page
      // would be silent data loss — fence it durably instead. The verdict
      // records the PSN the rebuild needs to reach; a later restart that
      // does reach it (say, that client came back) lifts the fence.
      CLOG_RETURN_IF_ERROR(node_->PoisonOwnPage(pid, runs[i].psn));
      ++stats_.pages_poisoned;
      return Status::OK();
    }
    bool has_bound = i + 1 < runs.size();
    Psn bound = has_bound ? runs[i + 1].psn - 1 : 0;
    RecoverPageReply reply;
    CLOG_RETURN_IF_ERROR(
        RedoRound(runs[i].node, pid, *base, has_bound, bound, &reply));
    if (reply.page) base->CopyFrom(*reply.page);
    stats_.redo_applied += reply.applied;
  }

  // The recovered image lands in our buffer pool; forcing it to disk lets
  // every contributor clear its DPT entry via the flush notification
  // (conservative variant of the Section 2.3.4 DPT adjustments).
  Page* frame = node_->pool_.Lookup(pid);
  if (frame == nullptr) {
    CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(pid));
  }
  frame->CopyFrom(*base);
  node_->pool_.MarkDirty(pid);
  for (const auto& [peer, _] : lists) {
    if (peer != node_->id_) node_->replacers_[pid].insert(peer);
  }
  CLOG_RETURN_IF_ERROR(node_->ForceOwnPage(pid));
  const Psn needed = node_->poison_.NeededPsn(pid);
  if (needed != 0 && needed != kPsnUnrecoverable && base->psn() >= needed) {
    // A previous restart poisoned this page over a PSN hole; this rebuild
    // got past it (a missing client's log came back). The image is durable
    // as of the ForceOwnPage above, so the fence can lift.
    CLOG_RETURN_IF_ERROR(node_->UnpoisonPage(pid));
    node_->metrics_.GetCounter("media.pages_unpoisoned").Add(1);
  }
  ++stats_.own_pages_recovered;
  node_->metrics_.GetCounter("recovery.pages_recovered").Add(1);
  return Status::OK();
}

Status RestartRecovery::RecoverOwnPages() {
  NodeId me = node_->id_;

  // Candidates: every page of ours with a DPT entry anywhere —
  // our rebuilt superset, the peers' replies, and any Section 2.4 staged
  // shipments (Section 2.3.1: the basic ARIES DPT alone is not enough
  // because remote-only updates leave no local log records).
  std::map<PageId, std::map<NodeId, DptEntry>> contributors;
  // Ownership routes through the directory: adopted pages are ours to
  // coordinate, home pages ceded away are not.
  for (const DptEntry& e : node_->dpt_.ToEntries()) {
    if (!node_->OwnsPage(e.pid)) continue;
    contributors[e.pid][me] = e;
  }
  for (const auto& [peer, reply] : peer_replies_) {
    for (const DptEntry& e : reply.dpt_entries_for_crashed) {
      contributors[e.pid][peer] = e;
    }
  }
  for (const auto& [pid, entries] : node_->foreign_dpt_entries_) {
    for (const auto& [sender, e] : entries) contributors[pid][sender] = e;
  }
  node_->foreign_dpt_entries_.clear();

  std::map<PageId, std::vector<NodeId>> cached_at;
  for (const auto& [peer, reply] : peer_replies_) {
    for (PageId pid : reply.cached_pages_of_crashed) {
      cached_at[pid].push_back(peer);
    }
  }
  for (const auto& [pid, holders] : node_->foreign_cached_) {
    for (NodeId h : holders) cached_at[pid].push_back(h);
  }
  node_->foreign_cached_.clear();

  if (log_lost_) {
    // Our log is gone: the DPT-driven redo below has nothing to stand on.
    return RecoverOwnPagesAfterLogLoss(cached_at);
  }

  // Media scan (requires the archive subsystem): flushes only ever extend
  // the database file, so a file shorter than the allocation horizon means
  // the data device was lost and recreated. Every allocated page becomes a
  // probe candidate — even ones with no DPT entry anywhere — and the
  // unreadable ones rebuild below from their newest archived image.
  std::set<PageId> media_probe;
  if (node_->archive_.is_open()) {
    std::uint32_t horizon = 0;
    const std::vector<std::uint32_t> allocated =
        node_->space_map_.AllocatedPages();
    for (std::uint32_t p : allocated) horizon = std::max(horizon, p + 1);
    if (horizon != 0) {
      CLOG_ASSIGN_OR_RETURN(std::uint32_t have, node_->disk_.NumPages());
      if (have < horizon) {
        for (std::uint32_t p : allocated) {
          const PageId probe{me, p};
          // Ceded pages live (durably) at their new owner; the recreated
          // data device owes them nothing.
          if (node_->handoff_.IsCeded(probe)) continue;
          media_probe.insert(probe);
          if (contributors.try_emplace(probe).second) {
            ++stats_.media_candidates;
          }
        }
      }
    }
  }
  // Pages a previous, interrupted instant-restore epoch planned but never
  // finished. On-demand rebuilds run in workload order, so a completed
  // high-numbered page may have re-extended the file — the extent check
  // above can go blind while lower pages are still holes. The durable
  // restore ledger is the authority: its entries are probe candidates
  // regardless of what the extent says.
  for (std::uint64_t packed : node_->restore_.LedgerEntries()) {
    const PageId pid = PageId::Unpack(packed);
    if (pid.owner != me || !node_->space_map_.IsAllocated(pid.page_no)) {
      CLOG_RETURN_IF_ERROR(node_->restore_.Forget(pid));
      continue;
    }
    if (media_probe.insert(pid).second &&
        contributors.try_emplace(pid).second) {
      ++stats_.media_candidates;
    }
  }
  if (stats_.media_candidates != 0) {
    node_->metrics_.GetCounter("media.scan_candidates")
        .Add(stats_.media_candidates);
  }

  struct WorkItem {
    PageId pid;
    std::unique_ptr<Page> base;
    std::map<NodeId, DptEntry> involved;
    bool full_history = false;  ///< Rebuilding a torn page from its seed.
  };
  std::vector<WorkItem> work;
  std::uint64_t deferred = 0, deferred_with_peer = 0;

  for (auto& [pid, contribs] : contributors) {
    auto cit = cached_at.find(pid);
    // Instant restore defers media-lost pages even when a peer caches a
    // copy: the plan records the holder as a peer candidate and the
    // on-demand rebuild fetches it at first touch, so restart itself does
    // no page transfers at all. (If the holder drops the copy first, the
    // rebuild falls back to archive + redo — the contributors' logs stay
    // pinned below either way.)
    const bool defer_to_restore =
        node_->options_.instant_restore.enabled && media_probe.contains(pid);
    if (cit != cached_at.end() && !defer_to_restore) {
      // Section 2.3.1: a copy cached at an operational node carries every
      // update made before the crash; fetch it instead of redoing logs.
      bool fetched = false;
      for (NodeId holder : cit->second) {
        std::shared_ptr<Page> copy;
        Status st =
            node_->network_->FetchCachedPage(me, holder, pid, &copy);
        if (st.ok() && copy) {
          CLOG_RETURN_IF_ERROR(node_->InstallShippedCopy(*copy, holder));
          fetched = true;
          break;
        }
      }
      if (fetched || node_->pool_.Contains(pid)) {
        for (const auto& [n, e] : contribs) {
          if (n != me) node_->replacers_[pid].insert(n);
        }
        ++stats_.own_pages_fetched;
        node_->metrics_.GetCounter("recovery.pages_fetched_from_cache").Add(1);
        const bool device_rebuilding = media_probe.contains(pid);
        if (node_->poison_.Contains(pid) &&
            (device_rebuilding || node_->pool_.IsDirty(pid))) {
          // A surviving cached copy carries every committed update — it
          // supersedes any poison verdict, even a permanent one. Make it
          // durable first, then lift the fence.
          CLOG_RETURN_IF_ERROR(node_->ForceOwnPage(pid));
          CLOG_RETURN_IF_ERROR(node_->UnpoisonPage(pid));
          node_->metrics_.GetCounter("media.pages_unpoisoned").Add(1);
        } else if (device_rebuilding && node_->pool_.IsDirty(pid)) {
          // The fetched copy may be the recreated data device's only image
          // of this page. Force it home now: a fuzzy checkpoint never
          // flushes it, so an ordinary crash later would otherwise find the
          // rebuilt device still holding a hole here — with nothing left to
          // flag the page for redo.
          CLOG_RETURN_IF_ERROR(node_->ForceOwnPage(pid));
        }
        continue;
      }
      // Fall through to the redo path if every fetch failed.
    }

    if (node_->poison_.NeededPsn(pid) == kPsnUnrecoverable) {
      // Permanently fenced with no surviving cache copy: the lost records
      // were at the top of its history, so no redo collection can prove a
      // rebuild complete. Leave the fence standing.
      continue;
    }

    auto base = std::make_unique<Page>();
    Status rd = node_->ReadDurablePage(pid, base.get());
    node_->ChargeDiskRead();

    WorkItem item;
    item.pid = pid;
    if (rd.IsCorruption() || rd.IsNotFound()) {
      if (node_->options_.instant_restore.enabled &&
          media_probe.contains(pid)) {
        // Instant restore: don't rebuild now. Record everything the
        // on-demand rebuild will need — durably, so a crash mid-epoch
        // re-probes this page even after later rebuilds re-extend the
        // file — and open for traffic without it. Only pages *unreadable
        // right now* may defer: anything readable was either never lost or
        // already rebuilt, and the readable-means-restored rule the
        // rebuild relies on holds only under that discipline.
        InstantRestoreManager::Plan plan;
        plan.pid = pid;
        if (cit != cached_at.end()) plan.peer_candidates = cit->second;
        for (const auto& [peer, _] : peer_replies_) {
          plan.redo_sources.push_back(peer);
        }
        plan.priority = static_cast<std::uint32_t>(
            contribs.size() + plan.peer_candidates.size());
        if (!plan.peer_candidates.empty()) ++deferred_with_peer;
        // Pin the contributors' logs: their DPT entries stand until the
        // rebuild's page force sends flush notifications.
        for (const auto& [n, e] : contribs) {
          if (n != me) node_->replacers_[pid].insert(n);
        }
        CLOG_RETURN_IF_ERROR(node_->restore_.Add(std::move(plan)));
        ++deferred;
        ++stats_.pages_deferred;
        continue;
      }
      // Torn page write (the crash interrupted a flush mid-page or
      // half-extended the file) or a lost data device. The on-disk version
      // is gone; start from the newest archived image if one exists, else
      // from the page's space-map PSN seed — the PSN this incarnation
      // started at — and redo the whole history forward from that base.
      bool from_archive = false;
      if (node_->archive_.is_open()) {
        Status ar = node_->archive_.Restore(pid.page_no, base.get());
        if (ar.ok() && base->psn() >= node_->DurableSeedPsn(pid)) {
          // (An image older than the seed is from a prior life of a freed
          // and reallocated slot — useless for this incarnation.)
          from_archive = true;
          ++stats_.archive_restores;
          node_->metrics_.GetCounter("media.archive_restores").Add(1);
        }
      }
      if (!from_archive) {
        base->Format(pid, PageType::kData, node_->DurableSeedPsn(pid));
        SlottedPage(base.get()).InitBody();
        node_->metrics_.GetCounter("recovery.pages_rebuilt_from_seed").Add(1);
      }
      item.full_history = true;
      item.involved = contribs;
    } else {
      CLOG_RETURN_IF_ERROR(rd);
      Psn disk_psn = base->psn();
      // Section 2.3.2: a node whose CurrPSN <= the disk PSN has all its
      // updates on disk already — not involved; its entry can be dropped
      // (the flush notification does exactly that).
      for (const auto& [n, e] : contribs) {
        if (e.curr_psn > disk_psn) {
          item.involved[n] = e;
        } else if (n != me) {
          node_->network_->FlushNotify(me, n, pid, disk_psn).ok();
        } else {
          node_->dpt_.OnOwnerFlushed(pid, disk_psn);
        }
      }
      if (item.involved.empty()) {
        ++stats_.clean_candidates;
        continue;
      }
    }
    item.base = std::move(base);
    work.push_back(std::move(item));
  }

  // Section 2.3.4: one NodePSNList request per involved node, covering all
  // of that node's pages. Full-history rebuilds must hear from *every*
  // reachable node, not just DPT contributors: a node whose flushed
  // updates were acknowledged dropped its entry, yet those updates are
  // part of the history being replayed from the seed.
  std::map<NodeId, std::vector<PageId>> pages_per_node;
  std::map<NodeId, std::vector<PageId>> full_pages_per_node;
  for (const WorkItem& item : work) {
    if (item.full_history) {
      full_pages_per_node[me].push_back(item.pid);
      for (const auto& [peer, _] : peer_replies_) {
        full_pages_per_node[peer].push_back(item.pid);
      }
      continue;
    }
    for (const auto& [n, _] : item.involved) {
      pages_per_node[n].push_back(item.pid);
    }
  }
  std::map<PageId, std::map<NodeId, std::vector<PsnListEntry>>> lists;
  CLOG_RETURN_IF_ERROR(
      GatherPsnLists(pages_per_node, /*full_history=*/false, &lists));
  CLOG_RETURN_IF_ERROR(
      GatherPsnLists(full_pages_per_node, /*full_history=*/true, &lists));

  // Dependency-parallel redo (recovery/redo_scheduler.h): pages whose only
  // contributor is this node need no Section 2.3.4 bouncing — their whole
  // history is in the local log. With redo workers configured they skip
  // the per-page RecoverPage rounds: one raw scan routes their frames into
  // page-disjoint transaction chains, replayed by the worker pool (real
  // mode) or in deterministic chain order (simulation). Everything else —
  // multi-node histories, poisoned-density pages — keeps the bouncing path.
  if (node_->options_.logging_policy.redo_workers > 0 && !work.empty()) {
    std::vector<WorkItem> bounced;
    std::vector<WorkItem> scheduled;
    std::vector<RedoPageTask> tasks;
    for (WorkItem& item : work) {
      const auto& ls = lists[item.pid];
      bool self_only = !item.full_history;
      for (const auto& [n, _] : ls) {
        if (n != me) self_only = false;
      }
      if (!self_only) {
        bounced.push_back(std::move(item));
        continue;
      }
      const std::vector<RecoveryRun> runs = MergePsnLists(ls);
      if (!runs.empty() && runs[0].psn > item.base->psn()) {
        // Same PSN-density verdict the bouncing path would reach: records
        // exist that tile upward from above the base — a destroyed log
        // held the gap. Fence the page durably.
        CLOG_RETURN_IF_ERROR(node_->PoisonOwnPage(item.pid, runs[0].psn));
        ++stats_.pages_poisoned;
        continue;
      }
      RedoPageTask task;
      task.pid = item.pid;
      task.page = item.base.get();
      auto cur = node_->recovery_cursor_.find(item.pid);
      task.start_lsn =
          cur != node_->recovery_cursor_.end() ? cur->second : kNullLsn;
      tasks.push_back(std::move(task));
      scheduled.push_back(std::move(item));
    }

    if (!tasks.empty()) {
      Executor* exec = node_->network_->executor();
      RedoScheduler scheduler(
          &node_->log_, &node_->recovery_skip_txns_,
          node_->options_.logging_policy.redo_workers,
          /*use_threads=*/exec != nullptr && exec->real_threads());
      RedoScheduleStats rstats;
      CLOG_RETURN_IF_ERROR(scheduler.Run(&tasks, &rstats));
      stats_.redo_chains += rstats.chains;
      stats_.parallel_pages += tasks.size();
      stats_.parallel_applied += rstats.applied;
      stats_.redo_applied += rstats.applied;
      node_->metrics_.GetCounter("recovery.parallel_chains")
          .Add(rstats.chains);
      node_->metrics_.GetCounter("recovery.redo_applied")
          .Add(rstats.applied);

      // Install + force each redone page, with the same closing
      // bookkeeping a self redo round would have done.
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        WorkItem& item = scheduled[i];
        node_->recovery_cursor_.erase(item.pid);
        node_->recovery_applied_.erase(item.pid);
        Page* frame = node_->pool_.Lookup(item.pid);
        if (frame == nullptr) {
          CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(item.pid));
        }
        frame->CopyFrom(*item.base);
        node_->pool_.MarkDirty(item.pid);
        CLOG_RETURN_IF_ERROR(node_->ForceOwnPage(item.pid));
        const Psn needed = node_->poison_.NeededPsn(item.pid);
        if (needed != 0 && needed != kPsnUnrecoverable &&
            item.base->psn() >= needed) {
          CLOG_RETURN_IF_ERROR(node_->UnpoisonPage(item.pid));
          node_->metrics_.GetCounter("media.pages_unpoisoned").Add(1);
        }
        ++stats_.own_pages_recovered;
        node_->metrics_.GetCounter("recovery.pages_recovered").Add(1);
      }
    }
    work = std::move(bounced);
  }

  for (WorkItem& item : work) {
    CLOG_RETURN_IF_ERROR(
        CoordinatePageRecovery(item.pid, item.base.get(), lists[item.pid]));
  }

  // Ledger hygiene: any restore-ledger entry without a live plan was
  // handled eagerly above (rescued from a peer cache, readable after all,
  // rebuilt, or poisoned) — durably forget it so later restarts stop
  // re-probing it.
  for (std::uint64_t packed : node_->restore_.LedgerEntries()) {
    const PageId pid = PageId::Unpack(packed);
    if (!node_->restore_.IsRestoring(pid)) {
      CLOG_RETURN_IF_ERROR(node_->restore_.Forget(pid));
    }
  }
  if (deferred != 0) {
    node_->metrics_.GetCounter("restore.pages_planned").Add(deferred);
    if (node_->trace_ != nullptr) {
      node_->trace_->Emit(me, TraceEventType::kRestorePlan, deferred,
                          deferred_with_peer);
    }
  }
  return Status::OK();
}

Status RestartRecovery::RecoverOwnPagesAfterLogLoss(
    const std::map<PageId, std::vector<NodeId>>& cached_at) {
  const NodeId me = node_->id_;
  // With the log destroyed there is no analysis DPT, no redo source, and —
  // decisively — no way to bound which of our own pages had updates whose
  // only trace was here (top of history: local updates to own pages leave
  // no remote record). Exactly one rescue exists per page: a copy still
  // cached at a peer carries every committed update (a cached copy implies
  // a live lock, and any newer update would have called that lock back).
  // Fetch those, flush them durable, and poison everything else.
  std::uint64_t restored = 0;
  std::vector<PageId> sweep;
  for (std::uint32_t page_no : node_->space_map_.AllocatedPages()) {
    const PageId pid{me, page_no};
    if (node_->handoff_.IsCeded(pid)) continue;  // Lives at its new owner.
    sweep.push_back(pid);
  }
  // Adopted pages are ours too: their newest history could be in the lost
  // log just like a home page's.
  for (PageId pid : node_->handoff_.AdoptedPages()) sweep.push_back(pid);
  for (PageId pid : sweep) {
    bool fetched = false;
    auto cit = cached_at.find(pid);
    if (cit != cached_at.end()) {
      for (NodeId holder : cit->second) {
        std::shared_ptr<Page> copy;
        Status st = node_->network_->FetchCachedPage(me, holder, pid, &copy);
        if (st.ok() && copy) {
          CLOG_RETURN_IF_ERROR(node_->InstallShippedCopy(*copy, holder));
          fetched = true;
          break;
        }
      }
    }
    if (fetched) {
      if (node_->pool_.IsDirty(pid)) {
        CLOG_RETURN_IF_ERROR(node_->ForceOwnPage(pid));
      }
      // (Not dirty means the install bypassed a full pool and wrote the
      // copy straight home, synced — durable either way.)
      if (node_->poison_.Contains(pid)) {
        CLOG_RETURN_IF_ERROR(node_->UnpoisonPage(pid));
        node_->metrics_.GetCounter("media.pages_unpoisoned").Add(1);
      }
      ++restored;
      ++stats_.own_pages_fetched;
      node_->metrics_.GetCounter("recovery.pages_fetched_from_cache").Add(1);
      continue;
    }
    CLOG_RETURN_IF_ERROR(node_->PoisonOwnPage(pid, kPsnUnrecoverable));
    ++stats_.pages_poisoned;
  }
  node_->metrics_.GetCounter("media.log_loss_pages_restored").Add(restored);
  // Every allocated page is now durable or poisoned, so any restore-ledger
  // entries from an interrupted earlier epoch are settled too.
  for (std::uint64_t packed : node_->restore_.LedgerEntries()) {
    CLOG_RETURN_IF_ERROR(node_->restore_.Forget(PageId::Unpack(packed)));
  }
  return Status::OK();
}

Status RestartRecovery::RecoverRemotePages() {
  NodeId me = node_->id_;
  // Section 2.3.1 (b): remotely owned pages that were exclusively locked
  // by this node at crash time — their newest version died with our cache.
  for (const DptEntry& e : node_->dpt_.ToEntries()) {
    PageId pid = e.pid;
    if (node_->OwnsPage(pid)) continue;
    if (node_->lock_cache_.NodeMode(pid) != LockMode::kExclusive) {
      continue;  // Current version lives elsewhere; nothing of ours is lost.
    }
    // Base version: the owner's newest copy (cache or disk). If the owner
    // crashed too, it coordinates this page itself (Section 2.4) using the
    // DPT entries and log scans it collects from us.
    LockPageReply reply;
    Status st = node_->network_->LockPage(me, node_->OwnerOf(pid), pid,
                                          LockMode::kExclusive,
                                          /*want_page=*/true, &reply);
    if (st.IsNodeDown()) continue;
    if (st.IsCorruption()) {
      // The owner poisoned the page after a media failure: it refuses to
      // hand out a base version, and our redo would change nothing. Drop
      // our DPT entry — the records it guards redo a page that can never
      // be served again — so the log is not pinned forever.
      node_->dpt_.Remove(pid);
      node_->AdvanceReclaimHorizon();
      continue;
    }
    CLOG_RETURN_IF_ERROR(st);
    if (!reply.granted || !reply.page) continue;
    if (reply.page->psn() >= e.curr_psn) {
      // Owner's version already covers all our updates — but the grant may
      // have demoted the owner's dirty copy to a clean stale home copy, on
      // the strength of the version that just traveled here. Discarding it
      // would let the newest committed state evaporate when the owner
      // evicts; cache it dirty so it ships home like any callback copy.
      Page* frame = node_->pool_.Lookup(pid);
      if (frame == nullptr) {
        CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(pid));
      }
      if (reply.page->psn() > frame->psn()) {
        frame->CopyFrom(*reply.page);
      }
      node_->pool_.MarkDirty(pid);
      continue;
    }
    // Only our log can contain the missing tail (any other node's updates
    // predate our exclusive lock and traveled with the page).
    Page base;
    base.CopyFrom(*reply.page);
    PsnListReply plist;
    CLOG_RETURN_IF_ERROR(
        node_->HandleBuildPsnList(me, {pid}, /*full_history=*/false, &plist));
    RecoverPageReply rreply;
    CLOG_RETURN_IF_ERROR(
        RedoRound(me, pid, base, /*has_bound=*/false, 0, &rreply));
    stats_.redo_applied += rreply.applied;
    Page* frame = node_->pool_.Lookup(pid);
    if (frame == nullptr) {
      CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(pid));
    }
    if (rreply.page) frame->CopyFrom(*rreply.page);
    node_->pool_.MarkDirty(pid);
    ++stats_.remote_pages_recovered;
    node_->metrics_.GetCounter("recovery.remote_pages_recovered").Add(1);
  }
  return Status::OK();
}

Status RestartRecovery::ExchangeAndRecover() {
  CLOG_RETURN_IF_ERROR(ExchangePeerState());
  return RedoPages();
}

Status RestartRecovery::ExchangePeerState() {
  if (node_->state_ != NodeState::kRecovering) {
    return Status::FailedPrecondition("analysis has not run");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(QueryPeers());
  CLOG_RETURN_IF_ERROR(ReconstructLocks());

  // Debts owed to us: pages of ours that a peer's destroyed log left
  // unrecoverable while we were unreachable. The verdict is permanent.
  for (const auto& [peer, reply] : peer_replies_) {
    (void)peer;
    for (PageId pid : reply.log_loss_pages_of_crashed) {
      if (!node_->OwnsPage(pid)) continue;
      CLOG_RETURN_IF_ERROR(node_->PoisonOwnPage(pid, kPsnUnrecoverable));
      ++stats_.pages_poisoned;
    }
  }

  // Debts we owe: verdicts from an earlier log loss whose owners were
  // unreachable then. Retry delivery; the entry is retired once the owner
  // has durably poisoned (its handler does so before replying OK).
  std::map<NodeId, std::vector<PageId>> owed;
  for (const auto& [packed, needed] : node_->poison_.entries()) {
    (void)needed;
    const PageId pid = PageId::Unpack(packed);
    if (!node_->OwnsPage(pid)) owed[node_->OwnerOf(pid)].push_back(pid);
  }
  for (const auto& [owner, pages] : owed) {
    if (node_->network_->LogLossNotice(node_->id_, owner, pages).ok()) {
      for (PageId pid : pages) {
        CLOG_RETURN_IF_ERROR(node_->poison_.Remove(pid));
      }
    }
  }

  if (log_lost_) CLOG_RETURN_IF_ERROR(HandleLogLoss());

  exchange_done_ = true;
  FinishPhase(1, "recovery.exchange_ns", t0);
  return Status::OK();
}

Status RestartRecovery::HandleLogLoss() {
  const NodeId me = node_->id_;
  // In ship-to-owner mode (B1) the destroyed log held records for OUR
  // pages only; remote owners' histories live in their own logs and need
  // no poisoning from us. In the paper's client-local mode, any remote
  // page we held exclusively at the crash had the newest part of its
  // history only in our log — at the very top, where no surviving log can
  // prove a rebuild complete — so its owner must fence it permanently.
  // Every reachable peer is notified even with an empty page list: the
  // notice also triggers the receivers' flush hygiene, pushing surviving
  // dirty copies to disk so no future rebuild needs the destroyed records.
  for (const auto& [peer, reply] : peer_replies_) {
    std::vector<PageId> pages;
    if (node_->options_.logging_mode != LoggingMode::kShipToOwner) {
      for (const LockListEntry& l : reply.x_locks_crashed_held_here) {
        if (node_->OwnerOf(l.pid) == peer) pages.push_back(l.pid);
      }
      std::sort(pages.begin(), pages.end());
      pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    }
    Status st = node_->network_->LogLossNotice(me, peer, pages);
    if (st.ok()) continue;
    if (!st.IsNodeDown() && !st.IsUnavailable()) return st;
    // Owner vanished before the verdict landed: record it as a durable
    // debt, delivered when the owner's own restart queries us (or by the
    // retry sweep above on our next restart).
    for (PageId pid : pages) {
      CLOG_RETURN_IF_ERROR(node_->poison_.Add(pid, kPsnUnrecoverable));
    }
    node_->metrics_.GetCounter("media.debts_recorded").Add(pages.size());
  }
  return Status::OK();
}

Status RestartRecovery::RedoPages() {
  if (node_->state_ != NodeState::kRecovering || !exchange_done_) {
    return Status::FailedPrecondition("peer exchange has not run");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(RecoverOwnPages());
  CLOG_RETURN_IF_ERROR(RecoverRemotePages());
  node_->recovery_redo_done_ = true;
  if (node_->trace_ != nullptr &&
      (log_lost_ || stats_.media_candidates != 0 ||
       stats_.archive_restores != 0 || stats_.pages_poisoned != 0)) {
    node_->trace_->Emit(node_->id_, TraceEventType::kMediaRecovery,
                        stats_.media_candidates, stats_.archive_restores,
                        static_cast<std::uint32_t>(stats_.pages_poisoned));
  }
  FinishPhase(2, "recovery.redo_ns", t0);
  return Status::OK();
}

Status RestartRecovery::UndoLosersAndFinish() {
  if (node_->state_ != NodeState::kRecovering) {
    return Status::FailedPrecondition("recovery phases out of order");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  // Roll back every loser (ARIES undo over the local log only — no log
  // merging, the paper's key property). Exclusive locks reconstructed in
  // Section 2.3.3 fence these pages until the undo completes.
  for (const auto& [txn_id, loser] : analysis_.losers) {
    Transaction* txn =
        node_->txns_.Resurrect(txn_id, loser.first_lsn, loser.last_lsn);
    // Adaptive logging: walk the raw prev_lsn chain first — NOT the undo
    // cursor, whose CLR undo_next jumps can hop over an UNDO_BACKFILL
    // record — to refill the before-image stash and classify the loser.
    // A pure-logical loser (logical records, no backfill) never exposed
    // anything: the steal barrier upgrades before a covered page can leave
    // the cache, so its records were redo-skipped everywhere and there is
    // nothing on any page to compensate. It gets an END record only; its
    // log records stay behind as permanent skip records.
    bool saw_logical = false;
    bool saw_backfill = false;
    for (Lsn walk = loser.last_lsn; walk != kNullLsn;) {
      LogRecord rec;
      CLOG_RETURN_IF_ERROR(node_->log_.ReadRecord(walk, &rec));
      if (rec.type == LogRecordType::kUndoBackfill) {
        saw_backfill = true;
        for (const BackfillEntry& e : rec.backfill) {
          txn->logical_undos.emplace(e.covered_lsn, e.undo_image);
        }
      } else if (rec.type == LogRecordType::kLogicalUpdate) {
        saw_logical = true;
      }
      walk = rec.prev_lsn;
    }
    const bool pure_logical = saw_logical && !saw_backfill;
    if (pure_logical) {
      ++stats_.logical_losers_skipped;
      node_->metrics_.GetCounter("recovery.logical_losers_skipped").Add(1);
    } else if (loser.last_lsn != kNullLsn) {
      CLOG_RETURN_IF_ERROR(node_->RollbackTo(txn, kNullLsn));
    }
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn_id;
    end.prev_lsn = txn->last_lsn;
    Lsn lsn = kNullLsn;
    CLOG_RETURN_IF_ERROR(node_->log_.Append(end, &lsn));
    node_->lock_cache_.ReleaseTxnLocks(txn_id);
    node_->txns_.Remove(txn_id);
    ++stats_.losers_undone;
    node_->metrics_.GetCounter("recovery.losers_undone").Add(1);
  }

  node_->state_ = NodeState::kUp;
  // Elastic membership: settle handoffs the crash interrupted — prepared
  // records abort locally, shipped ones ask the target whether its durable
  // adoption landed. In-doubt records (target unreachable) stay fenced.
  CLOG_RETURN_IF_ERROR(node_->ResolvePendingHandoffs());
  if (node_->restore_.active()) {
    // Open-for-business with rebuilds pending: the next successful commit
    // closes the restore.first_commit_ns measurement.
    node_->restore_.BeginEpoch(node_->network_->clock()->NowNanos());
  }
  if (node_->options_.has_local_log) {
    CLOG_RETURN_IF_ERROR(node_->Checkpoint());
  }
  for (NodeId peer : node_->network_->OperationalNodes(node_->id_)) {
    node_->network_->NodeRecovered(node_->id_, peer, node_->id_).ok();
  }
  node_->metrics_.GetCounter("recovery.restarts").Add(1);
  FinishPhase(3, "recovery.undo_ns", t0);
  return Status::OK();
}

}  // namespace clog
