#include "recovery/distributed_recovery.h"

#include <algorithm>
#include <memory>

#include "storage/slotted_page.h"
#include "trace/trace_sink.h"
#include "wal/log_reader.h"

namespace clog {

Status RestartRecovery::Run() {
  std::uint64_t t0 = node_->network()->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(OpenAndAnalyze());
  CLOG_RETURN_IF_ERROR(ExchangeAndRecover());
  CLOG_RETURN_IF_ERROR(UndoLosersAndFinish());
  stats_.sim_ns = node_->network()->clock()->NowNanos() - t0;
  return Status::OK();
}

void RestartRecovery::FinishPhase(std::uint32_t phase, const char* hist_name,
                                  std::uint64_t start_ns) {
  const std::uint64_t dur =
      node_->network_->clock()->NowNanos() - start_ns;
  node_->metrics_.GetHistogram(hist_name).Record(dur);
  if (node_->trace_ != nullptr) {
    node_->trace_->Emit(node_->id_, TraceEventType::kRecoveryPhase, phase,
                        dur);
  }
}

Status RestartRecovery::OpenAndAnalyze() {
  if (node_->state_ != NodeState::kDown) {
    return Status::FailedPrecondition("node is not crashed");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(node_->OpenStorage());
  if (node_->options_.has_local_log) {
    CLOG_RETURN_IF_ERROR(AnalyzeLog(&node_->log_, &analysis_));
    // The rebuilt superset DPT (Sections 2.3.1 / 2.4).
    for (const auto& [pid, entry] : analysis_.dpt) {
      node_->dpt_.Install(entry);
    }
    stats_.analysis_records = analysis_.records_scanned;
    node_->metrics_.GetCounter("recovery.analysis_records")
        .Add(analysis_.records_scanned);
  }
  // Reachable for recovery RPCs; normal traffic stays fenced by the state.
  node_->state_ = NodeState::kRecovering;
  node_->network_->RegisterNode(node_->id_, node_);
  node_->network_->SetNodeUp(node_->id_, true);
  FinishPhase(0, "recovery.analyze_ns", t0);
  return Status::OK();
}

Status RestartRecovery::QueryPeers() {
  for (NodeId peer : node_->network_->OperationalNodes(node_->id_)) {
    RecoveryQueryReply reply;
    Status st = node_->network_->RecoveryQuery(node_->id_, peer, &reply);
    if (st.IsNodeDown()) continue;  // Crashed and not yet restarting.
    CLOG_RETURN_IF_ERROR(st);
    peer_replies_[peer] = std::move(reply);
    ++stats_.peers_queried;
  }
  return Status::OK();
}

Status RestartRecovery::ReconstructLocks() {
  // Section 2.3.3: peers report (a) locks they acquired from us — these
  // rebuild our global lock table — and (b) the exclusive locks we held on
  // their pages — retained there, and now re-installed in our lock cache.
  for (const auto& [peer, reply] : peer_replies_) {
    for (const LockListEntry& l : reply.locks_i_hold_on_crashed) {
      node_->global_locks_.Install(l.pid, peer, l.mode);
    }
    for (const LockListEntry& l : reply.x_locks_crashed_held_here) {
      node_->lock_cache_.Install(l.pid, LockMode::kExclusive);
    }
  }
  // "The crashed node needs to acquire exclusive locks for the pages
  // present in its DPT that do not have a lock entry": for owned pages the
  // fence is installed directly; remotely owned DPT pages either still
  // have our retained X (reported above) or their current version lives at
  // an operational node and needs no fence from us.
  for (const auto& [pid, info] : node_->dpt_.entries()) {
    if (pid.owner != node_->id_) continue;
    if (node_->global_locks_.HoldersOf(pid).empty()) {
      node_->global_locks_.Install(pid, node_->id_, LockMode::kExclusive);
      node_->lock_cache_.Install(pid, LockMode::kExclusive);
    }
  }
  return Status::OK();
}

Status RestartRecovery::GatherPsnLists(
    const std::map<NodeId, std::vector<PageId>>& pages_per_node,
    bool full_history,
    std::map<PageId, std::map<NodeId, std::vector<PsnListEntry>>>* out) {
  for (const auto& [peer, pages] : pages_per_node) {
    PsnListReply reply;
    if (peer == node_->id_) {
      CLOG_RETURN_IF_ERROR(node_->HandleBuildPsnList(node_->id_, pages,
                                                     full_history, &reply));
    } else {
      CLOG_RETURN_IF_ERROR(node_->network_->BuildPsnList(
          node_->id_, peer, pages, full_history, &reply));
    }
    for (std::size_t i = 0; i < pages.size(); ++i) {
      if (!reply.per_page[i].empty()) {
        (*out)[pages[i]][peer] = std::move(reply.per_page[i]);
      }
    }
  }
  return Status::OK();
}

Status RestartRecovery::RedoRound(NodeId target, PageId pid, const Page& in,
                                  bool has_bound, Psn bound,
                                  RecoverPageReply* reply) {
  ++stats_.redo_rounds;
  if (target == node_->id_) {
    return node_->HandleRecoverPage(node_->id_, pid, in, has_bound, bound,
                                    reply);
  }
  return node_->network_->RecoverPage(node_->id_, target, pid, in, has_bound,
                                      bound, reply);
}

Status RestartRecovery::CoordinatePageRecovery(
    PageId pid, Page* base,
    const std::map<NodeId, std::vector<PsnListEntry>>& lists) {
  // Section 2.3.4 step 1: ascending PSN order, adjacent same-node entries
  // merged.
  std::vector<RecoveryRun> runs = MergePsnLists(lists);

  // Steps 2-4: bounce the page through the involved nodes. Each node
  // applies redo until the next run's PSN would be reached.
  for (std::size_t i = 0; i < runs.size(); ++i) {
    bool has_bound = i + 1 < runs.size();
    Psn bound = has_bound ? runs[i + 1].psn - 1 : 0;
    RecoverPageReply reply;
    CLOG_RETURN_IF_ERROR(
        RedoRound(runs[i].node, pid, *base, has_bound, bound, &reply));
    if (reply.page) base->CopyFrom(*reply.page);
    stats_.redo_applied += reply.applied;
  }

  // The recovered image lands in our buffer pool; forcing it to disk lets
  // every contributor clear its DPT entry via the flush notification
  // (conservative variant of the Section 2.3.4 DPT adjustments).
  Page* frame = node_->pool_.Lookup(pid);
  if (frame == nullptr) {
    CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(pid));
  }
  frame->CopyFrom(*base);
  node_->pool_.MarkDirty(pid);
  for (const auto& [peer, _] : lists) {
    if (peer != node_->id_) node_->replacers_[pid].insert(peer);
  }
  CLOG_RETURN_IF_ERROR(node_->ForceOwnPage(pid));
  ++stats_.own_pages_recovered;
  node_->metrics_.GetCounter("recovery.pages_recovered").Add(1);
  return Status::OK();
}

Status RestartRecovery::RecoverOwnPages() {
  NodeId me = node_->id_;

  // Candidates: every page of ours with a DPT entry anywhere —
  // our rebuilt superset, the peers' replies, and any Section 2.4 staged
  // shipments (Section 2.3.1: the basic ARIES DPT alone is not enough
  // because remote-only updates leave no local log records).
  std::map<PageId, std::map<NodeId, DptEntry>> contributors;
  for (const DptEntry& e : node_->dpt_.ToEntries(me)) {
    contributors[e.pid][me] = e;
  }
  for (const auto& [peer, reply] : peer_replies_) {
    for (const DptEntry& e : reply.dpt_entries_for_crashed) {
      contributors[e.pid][peer] = e;
    }
  }
  for (const auto& [pid, entries] : node_->foreign_dpt_entries_) {
    for (const auto& [sender, e] : entries) contributors[pid][sender] = e;
  }
  node_->foreign_dpt_entries_.clear();

  std::map<PageId, std::vector<NodeId>> cached_at;
  for (const auto& [peer, reply] : peer_replies_) {
    for (PageId pid : reply.cached_pages_of_crashed) {
      cached_at[pid].push_back(peer);
    }
  }
  for (const auto& [pid, holders] : node_->foreign_cached_) {
    for (NodeId h : holders) cached_at[pid].push_back(h);
  }
  node_->foreign_cached_.clear();

  struct WorkItem {
    PageId pid;
    std::unique_ptr<Page> base;
    std::map<NodeId, DptEntry> involved;
    bool full_history = false;  ///< Rebuilding a torn page from its seed.
  };
  std::vector<WorkItem> work;

  for (auto& [pid, contribs] : contributors) {
    auto cit = cached_at.find(pid);
    if (cit != cached_at.end()) {
      // Section 2.3.1: a copy cached at an operational node carries every
      // update made before the crash; fetch it instead of redoing logs.
      bool fetched = false;
      for (NodeId holder : cit->second) {
        std::shared_ptr<Page> copy;
        Status st =
            node_->network_->FetchCachedPage(me, holder, pid, &copy);
        if (st.ok() && copy) {
          CLOG_RETURN_IF_ERROR(node_->InstallShippedCopy(*copy, holder));
          fetched = true;
          break;
        }
      }
      if (fetched || node_->pool_.Contains(pid)) {
        for (const auto& [n, e] : contribs) {
          if (n != me) node_->replacers_[pid].insert(n);
        }
        ++stats_.own_pages_fetched;
        node_->metrics_.GetCounter("recovery.pages_fetched_from_cache").Add(1);
        continue;
      }
      // Fall through to the redo path if every fetch failed.
    }

    auto base = std::make_unique<Page>();
    Status rd = node_->disk_.ReadPage(pid.page_no, base.get());
    node_->ChargeDiskRead();

    WorkItem item;
    item.pid = pid;
    if (rd.IsCorruption() || rd.IsNotFound()) {
      // Torn page write: the crash interrupted a flush mid-page (checksum
      // mismatch), or half-extended the file (short read at EOF). The
      // prior on-disk version is gone, so rebuild from the page's
      // space-map PSN seed — the PSN this incarnation started from — and
      // redo its *entire* history, including updates that were flushed
      // and acknowledged long ago.
      base->Format(pid, PageType::kData,
                   node_->space_map_.PsnSeed(pid.page_no));
      SlottedPage(base.get()).InitBody();
      item.full_history = true;
      item.involved = contribs;
      node_->metrics_.GetCounter("recovery.pages_rebuilt_from_seed").Add(1);
    } else {
      CLOG_RETURN_IF_ERROR(rd);
      Psn disk_psn = base->psn();
      // Section 2.3.2: a node whose CurrPSN <= the disk PSN has all its
      // updates on disk already — not involved; its entry can be dropped
      // (the flush notification does exactly that).
      for (const auto& [n, e] : contribs) {
        if (e.curr_psn > disk_psn) {
          item.involved[n] = e;
        } else if (n != me) {
          node_->network_->FlushNotify(me, n, pid, disk_psn).ok();
        } else {
          node_->dpt_.OnOwnerFlushed(pid, disk_psn);
        }
      }
      if (item.involved.empty()) {
        ++stats_.clean_candidates;
        continue;
      }
    }
    item.base = std::move(base);
    work.push_back(std::move(item));
  }

  // Section 2.3.4: one NodePSNList request per involved node, covering all
  // of that node's pages. Full-history rebuilds must hear from *every*
  // reachable node, not just DPT contributors: a node whose flushed
  // updates were acknowledged dropped its entry, yet those updates are
  // part of the history being replayed from the seed.
  std::map<NodeId, std::vector<PageId>> pages_per_node;
  std::map<NodeId, std::vector<PageId>> full_pages_per_node;
  for (const WorkItem& item : work) {
    if (item.full_history) {
      full_pages_per_node[me].push_back(item.pid);
      for (const auto& [peer, _] : peer_replies_) {
        full_pages_per_node[peer].push_back(item.pid);
      }
      continue;
    }
    for (const auto& [n, _] : item.involved) {
      pages_per_node[n].push_back(item.pid);
    }
  }
  std::map<PageId, std::map<NodeId, std::vector<PsnListEntry>>> lists;
  CLOG_RETURN_IF_ERROR(
      GatherPsnLists(pages_per_node, /*full_history=*/false, &lists));
  CLOG_RETURN_IF_ERROR(
      GatherPsnLists(full_pages_per_node, /*full_history=*/true, &lists));

  for (WorkItem& item : work) {
    CLOG_RETURN_IF_ERROR(
        CoordinatePageRecovery(item.pid, item.base.get(), lists[item.pid]));
  }
  return Status::OK();
}

Status RestartRecovery::RecoverRemotePages() {
  NodeId me = node_->id_;
  // Section 2.3.1 (b): remotely owned pages that were exclusively locked
  // by this node at crash time — their newest version died with our cache.
  for (const DptEntry& e : node_->dpt_.ToEntries()) {
    PageId pid = e.pid;
    if (pid.owner == me) continue;
    if (node_->lock_cache_.NodeMode(pid) != LockMode::kExclusive) {
      continue;  // Current version lives elsewhere; nothing of ours is lost.
    }
    // Base version: the owner's newest copy (cache or disk). If the owner
    // crashed too, it coordinates this page itself (Section 2.4) using the
    // DPT entries and log scans it collects from us.
    LockPageReply reply;
    Status st = node_->network_->LockPage(me, pid.owner, pid,
                                          LockMode::kExclusive,
                                          /*want_page=*/true, &reply);
    if (st.IsNodeDown()) continue;
    CLOG_RETURN_IF_ERROR(st);
    if (!reply.granted || !reply.page) continue;
    if (reply.page->psn() >= e.curr_psn) {
      // Owner's version already covers all our updates — but the grant may
      // have demoted the owner's dirty copy to a clean stale home copy, on
      // the strength of the version that just traveled here. Discarding it
      // would let the newest committed state evaporate when the owner
      // evicts; cache it dirty so it ships home like any callback copy.
      Page* frame = node_->pool_.Lookup(pid);
      if (frame == nullptr) {
        CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(pid));
      }
      if (reply.page->psn() > frame->psn()) {
        frame->CopyFrom(*reply.page);
      }
      node_->pool_.MarkDirty(pid);
      continue;
    }
    // Only our log can contain the missing tail (any other node's updates
    // predate our exclusive lock and traveled with the page).
    Page base;
    base.CopyFrom(*reply.page);
    PsnListReply plist;
    CLOG_RETURN_IF_ERROR(
        node_->HandleBuildPsnList(me, {pid}, /*full_history=*/false, &plist));
    RecoverPageReply rreply;
    CLOG_RETURN_IF_ERROR(
        RedoRound(me, pid, base, /*has_bound=*/false, 0, &rreply));
    stats_.redo_applied += rreply.applied;
    Page* frame = node_->pool_.Lookup(pid);
    if (frame == nullptr) {
      CLOG_ASSIGN_OR_RETURN(frame, node_->pool_.Insert(pid));
    }
    if (rreply.page) frame->CopyFrom(*rreply.page);
    node_->pool_.MarkDirty(pid);
    ++stats_.remote_pages_recovered;
    node_->metrics_.GetCounter("recovery.remote_pages_recovered").Add(1);
  }
  return Status::OK();
}

Status RestartRecovery::ExchangeAndRecover() {
  CLOG_RETURN_IF_ERROR(ExchangePeerState());
  return RedoPages();
}

Status RestartRecovery::ExchangePeerState() {
  if (node_->state_ != NodeState::kRecovering) {
    return Status::FailedPrecondition("analysis has not run");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(QueryPeers());
  CLOG_RETURN_IF_ERROR(ReconstructLocks());
  exchange_done_ = true;
  FinishPhase(1, "recovery.exchange_ns", t0);
  return Status::OK();
}

Status RestartRecovery::RedoPages() {
  if (node_->state_ != NodeState::kRecovering || !exchange_done_) {
    return Status::FailedPrecondition("peer exchange has not run");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  CLOG_RETURN_IF_ERROR(RecoverOwnPages());
  CLOG_RETURN_IF_ERROR(RecoverRemotePages());
  node_->recovery_redo_done_ = true;
  FinishPhase(2, "recovery.redo_ns", t0);
  return Status::OK();
}

Status RestartRecovery::UndoLosersAndFinish() {
  if (node_->state_ != NodeState::kRecovering) {
    return Status::FailedPrecondition("recovery phases out of order");
  }
  const std::uint64_t t0 = node_->network_->clock()->NowNanos();
  // Roll back every loser (ARIES undo over the local log only — no log
  // merging, the paper's key property). Exclusive locks reconstructed in
  // Section 2.3.3 fence these pages until the undo completes.
  for (const auto& [txn_id, loser] : analysis_.losers) {
    Transaction* txn =
        node_->txns_.Resurrect(txn_id, loser.first_lsn, loser.last_lsn);
    if (loser.last_lsn != kNullLsn) {
      CLOG_RETURN_IF_ERROR(node_->RollbackTo(txn, kNullLsn));
    }
    LogRecord end;
    end.type = LogRecordType::kEnd;
    end.txn = txn_id;
    end.prev_lsn = txn->last_lsn;
    Lsn lsn = kNullLsn;
    CLOG_RETURN_IF_ERROR(node_->log_.Append(end, &lsn));
    node_->lock_cache_.ReleaseTxnLocks(txn_id);
    node_->txns_.Remove(txn_id);
    ++stats_.losers_undone;
    node_->metrics_.GetCounter("recovery.losers_undone").Add(1);
  }

  node_->state_ = NodeState::kUp;
  if (node_->options_.has_local_log) {
    CLOG_RETURN_IF_ERROR(node_->Checkpoint());
  }
  for (NodeId peer : node_->network_->OperationalNodes(node_->id_)) {
    node_->network_->NodeRecovered(node_->id_, peer, node_->id_).ok();
  }
  node_->metrics_.GetCounter("recovery.restarts").Add(1);
  FinishPhase(3, "recovery.undo_ns", t0);
  return Status::OK();
}

}  // namespace clog
