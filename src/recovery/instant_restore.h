#ifndef CLOG_RECOVERY_INSTANT_RESTORE_H_
#define CLOG_RECOVERY_INSTANT_RESTORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "node/archive.h"

/// \file
/// Instant restore: serve traffic during media recovery.
///
/// Eager media recovery (docs/RECOVERY_WALKTHROUGH.md) rebuilds every page
/// lost with the data device before the node leaves restart recovery — the
/// node's time-to-first-commit is the full distributed redo collection. In
/// the paper's architecture that is doubly unfortunate: the redo history of
/// an owner's pages lives in *other nodes'* client logs, so the rebuild is
/// network-bound, and meanwhile the node's own log — the only thing commit
/// latency depends on — is perfectly healthy.
///
/// Instant restore splits "when a page becomes servable" from "whether it
/// is provable". Restart recovery builds only a per-page *restore plan*
/// (which peers cache a copy, which peers' logs hold redo) and the node
/// opens for traffic immediately. The first touch of a restoring page
/// rebuilds it synchronously for the toucher — peer cached copy if one
/// survives, else archive image plus the merged cross-log redo schedule —
/// while a background sweeper drains the cold tail in plan-priority order.
/// Poisoned pages stay fenced exactly as in eager recovery: a rebuild that
/// finds a hole in the PSN schedule records the poison verdict durably and
/// the page refuses service, never serving stale data.
///
/// Crash re-entry is the subtle part. Eager recovery re-detects lost pages
/// by a file-extent check (the recreated device is shorter than the
/// allocation horizon). Instant restore rebuilds pages in workload order,
/// so a high-numbered page restored first re-extends the file and the
/// extent check goes blind while low pages are still holes. The manager
/// therefore keeps a durable *restore ledger* ("node.restore", the same
/// crash-atomic machinery as the poison ledger): every planned page is
/// added before the node opens, removed as each page completes, and any
/// entries found at the next restart are re-probed as lost-page candidates
/// regardless of what the extent check says.

namespace clog {

class Node;

/// How a restoring page was finally made durable again; the `c` payload of
/// the kPageRestored trace event.
enum class RestoreSource : std::uint32_t {
  /// A current image was already durable (written earlier in this restore
  /// epoch by a shipped copy, an eviction, or a previous rebuild).
  kAlreadyDurable = 0,
  kPeerCache = 1,     ///< A peer still cached the page; any cached copy is
                      ///< current.
  kArchiveRedo = 2,   ///< Archive image + merged cross-log redo.
  kSeedRedo = 3,      ///< Formatted seed + full-history merged redo.
  kPoisoned = 4,      ///< Rebuild proved a hole; the poison fence stands.
};

/// Per-node restore state. Owned by Node; all calls run in the node's
/// execution context (inline in simulation, on its worker thread in real
/// mode), so the manager needs no locking of its own.
class InstantRestoreManager {
 public:
  /// One page's restore plan, built by restart recovery from the peer
  /// exchange — everything a later on-demand rebuild needs, so the rebuild
  /// itself never depends on recovery-time state that a crash would lose.
  struct Plan {
    PageId pid;
    /// Peers that reported a cached copy of the page at plan time. A cached
    /// copy carries every update ever made (PSNs are totally ordered per
    /// page), so fetching one is a complete restore. Clean copies may be
    /// evicted at any moment — candidates are a fast path, never load-bearing.
    std::vector<NodeId> peer_candidates;
    /// Peers whose client logs may hold redo for this page (everyone that
    /// answered the recovery query, plus ourselves implicitly). The rebuild
    /// re-asks each for a fresh full-history PSN list at touch time.
    std::vector<NodeId> redo_sources;
    /// Plan-time evidence of heat: contributors + cachers. The sweeper
    /// drains hotter pages first; on-demand touches jump the queue anyway.
    std::uint32_t priority = 0;
  };

  /// Loads the durable restore ledger ("node.restore") under `dir` and
  /// clears any volatile plans. Called from Node::OpenStorage.
  Status Open(const std::string& dir);

  /// Drops all volatile state (plans, epoch markers). The ledger file on
  /// disk is untouched — it is exactly what the next restart re-probes.
  void Reset();

  bool active() const { return !plans_.empty(); }
  std::size_t pending() const { return plans_.size(); }
  bool IsRestoring(PageId pid) const {
    return !plans_.empty() && plans_.contains(pid.Pack());
  }

  /// True while RestoreOne for *this page* is on the current call stack;
  /// Node's touch hooks no-op then, so the rebuild's own page forces
  /// cannot recurse into another rebuild of the same page. Per-page on
  /// purpose: in real mode a blocked rebuild conversation re-enters the
  /// node's mailbox at wait points, and an interleaved work item touching
  /// a *different* restoring page must still get its first-touch rebuild
  /// rather than fall through to the hole-ridden device.
  bool in_restore(PageId pid) const {
    for (std::uint64_t packed : in_restore_pids_) {
      if (packed == pid.Pack()) return true;
    }
    return false;
  }

  /// Packed PageIds recorded in the durable ledger — pages a previous,
  /// interrupted restore epoch planned but never finished. Restart recovery
  /// must treat them as lost-page candidates even when the extent check
  /// passes.
  std::vector<std::uint64_t> LedgerEntries() const;

  /// Records `plan` durably (ledger first, then the in-memory plan): a
  /// crash after Plan() re-probes the page, a crash before it re-detects
  /// the loss by extent. Called by recovery's RecoverOwnPages.
  Status Add(Plan plan);

  /// Durably forgets a ledger entry without a rebuild — the eager path
  /// finished this page itself (instant restore disabled on re-entry).
  Status Forget(PageId pid);

  /// Marks the moment the node opened for traffic with restores pending;
  /// the next successful commit records restore.first_commit_ns.
  void BeginEpoch(std::uint64_t now_ns);

  /// Cheap hot-path gate for the first-commit metric.
  bool first_commit_pending() const { return first_commit_pending_; }

  /// Records restore.first_commit_ns once per epoch.
  void NoteCommit(Node* node, std::uint64_t now_ns);

  /// Synchronously rebuilds one page; idempotent (OK if not restoring).
  /// The ladder: already-durable image, peer cached copy, archive image +
  /// merged redo, seed + full-history redo — or a durable poison verdict
  /// when the schedule has a hole. Unavailable (page still restoring, no
  /// data served) when a redo source is down: correctness never yields to
  /// availability.
  Status RestoreOne(Node* node, PageId pid);

  /// Rebuilds up to `max_pages` pending pages in priority order; stops
  /// early if a rebuild blocks on a down peer. Returns pages completed.
  std::size_t Sweep(Node* node, std::size_t max_pages);

 private:
  Status Finish(Node* node, PageId pid, Psn psn, RestoreSource source,
                std::uint64_t t0_ns);

  PoisonLedger ledger_;  ///< Durable "node.restore"; same format as poison.
  std::map<std::uint64_t, Plan> plans_;  ///< Packed PageId -> plan.
  /// Stack of packed PageIds whose RestoreOne is on the current call
  /// stack (nested conversations unwind LIFO, so push/pop suffices).
  std::vector<std::uint64_t> in_restore_pids_;
  bool first_commit_pending_ = false;
  std::uint64_t epoch_start_ns_ = 0;
  std::uint64_t restored_this_epoch_ = 0;
};

}  // namespace clog

#endif  // CLOG_RECOVERY_INSTANT_RESTORE_H_
