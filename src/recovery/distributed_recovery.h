#ifndef CLOG_RECOVERY_DISTRIBUTED_RECOVERY_H_
#define CLOG_RECOVERY_DISTRIBUTED_RECOVERY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "node/node.h"
#include "recovery/local_recovery.h"
#include "recovery/node_psn_list.h"

/// \file
/// Distributed restart recovery: the paper's Sections 2.3 (single node
/// crash) and 2.4 (multiple node crashes). The restarting node:
///
///  1. rebuilds a superset DPT and the loser set by local log analysis,
///  2. queries every operational node for its cache contents, DPT entries,
///     and lock lists relevant to the crashed node,
///  3. reconstructs lock tables (shared locks it held are released by the
///     peers, exclusive ones retained and reported back),
///  4. determines the pages that may require recovery, fetching the ones
///     still cached at a peer and redo-coordinating the rest across the
///     involved nodes in ascending PSN order via NodePSNLists,
///  5. rolls back its loser transactions and takes a fresh checkpoint.
///
/// Log files are never merged; each node only ever scans its own log.
///
/// Multiple simultaneous crashes run the same three phases, staged across
/// the crashed set by the Cluster (every crashed node completes analysis
/// before any exchanges state, exactly the Section 2.4 requirement that
/// rebuilt DPT supersets are available to the owners).

namespace clog {

/// Drives the restart of one crashed node.
class RestartRecovery {
 public:
  /// Counters describing one restart (benchmark currency).
  struct Stats {
    std::uint64_t analysis_records = 0;    ///< Local log records analyzed.
    std::uint64_t peers_queried = 0;
    std::uint64_t own_pages_recovered = 0; ///< Redo-coordinated own pages.
    std::uint64_t own_pages_fetched = 0;   ///< Taken from a peer's cache.
    std::uint64_t remote_pages_recovered = 0;
    std::uint64_t redo_rounds = 0;         ///< RecoverPage calls issued.
    std::uint64_t redo_applied = 0;        ///< Redo records applied, total.
    std::uint64_t losers_undone = 0;
    std::uint64_t clean_candidates = 0;    ///< Candidates already on disk.
    std::uint64_t sim_ns = 0;              ///< Simulated time consumed.
    // --- Adaptive logging / dependency-parallel redo ---
    std::uint64_t logical_losers_skipped = 0;  ///< Pure-logical: END only.
    std::uint64_t redo_chains = 0;         ///< Independent chains scheduled.
    std::uint64_t parallel_pages = 0;      ///< Pages redone by the scheduler.
    std::uint64_t parallel_applied = 0;    ///< Records the scheduler applied.
    // --- Media recovery (data/log device loss) ---
    std::uint64_t media_candidates = 0;    ///< Probe candidates from device scan.
    std::uint64_t archive_restores = 0;    ///< Bases restored from the archive.
    std::uint64_t pages_poisoned = 0;      ///< Pages fenced as unrecoverable.
    std::uint64_t pages_deferred = 0;      ///< Planned for instant restore.
    bool log_loss_detected = false;        ///< Log shorter than its durable mark.
  };

  explicit RestartRecovery(Node* node) : node_(node) {}

  /// Full single-node restart: all three phases in order.
  Status Run();

  // --- Staged interface for multi-crash orchestration (Section 2.4) ---

  /// Phase A: reopen storage, run local analysis, install the rebuilt DPT,
  /// and become reachable for recovery RPCs (state kRecovering).
  Status OpenAndAnalyze();

  /// Phase B: query peers, reconstruct locks, determine pages, coordinate
  /// redo. Requires every other crashed node to have finished phase A.
  /// Equivalent to ExchangePeerState + RedoPages.
  Status ExchangeAndRecover();

  /// Phase B1: query peers and reconstruct lock state (2.3.1/2.3.3).
  Status ExchangePeerState();

  /// Phase B2: determine and redo the pages needing recovery (2.3.4).
  /// Requires ExchangePeerState.
  Status RedoPages();

  /// Phase C: undo losers, checkpoint, go operational, notify peers.
  Status UndoLosersAndFinish();

  /// Every phase boundary is a safe crash point: a node that dies anywhere
  /// in this sequence is simply restarted from OpenAndAnalyze. Analysis is
  /// read-only; peers' recovery handlers are idempotent per conversation
  /// (HandleRecoveryQuery re-releases released locks, HandleBuildPsnList
  /// resets any stale per-page scan state); redo work re-derives from logs
  /// and disk; undo re-entry is covered by CLR undo_next chains. See
  /// docs/availability.md.

  const Stats& stats() const { return stats_; }

 private:
  /// Requests cache/DPT/lock lists from all reachable peers (2.3.1/2.3.3).
  Status QueryPeers();

  /// Rebuilds the global lock table and lock cache from the peer replies,
  /// and takes exclusive locks for unprotected DPT pages (2.3.3).
  Status ReconstructLocks();

  /// Determines and recovers pages owned by this node (2.3.1-2.3.4).
  Status RecoverOwnPages();

  /// Recovers remotely owned pages this node held exclusively (2.3.1 (b)).
  Status RecoverRemotePages();

  /// Log-device loss: tells every reachable peer which of its pages this
  /// node's destroyed log leaves unrecoverable (the pages it held X on, per
  /// the peers' lock tables), recording durable debts for unreachable
  /// owners, and retries debts owed from earlier losses.
  Status HandleLogLoss();

  /// Own-page recovery when this node's log was destroyed: pages still
  /// cached at a peer are fetched and flushed (a cached copy carries every
  /// committed update); everything else is conservatively poisoned — the
  /// lost log may have held the top of their history.
  Status RecoverOwnPagesAfterLogLoss(
      const std::map<PageId, std::vector<NodeId>>& cached_at);

  /// Bounces `pid` between the involved nodes in ascending PSN order
  /// (2.3.4 steps 1-4); `base` is consumed and the final image returned
  /// into the node's pool.
  Status CoordinatePageRecovery(PageId pid, Page* base,
                                const std::map<NodeId, std::vector<PsnListEntry>>& lists);

  /// Issues one redo round to `target` (self targets bypass the network).
  Status RedoRound(NodeId target, PageId pid, const Page& in, bool has_bound,
                   Psn bound, RecoverPageReply* reply);

  /// Batch-builds NodePSNLists: one request per involved node covering all
  /// its pages (2.3.4). `full_history` asks peers to scan their whole log
  /// ignoring their DPT (torn-page rebuild from the space-map PSN seed).
  Status GatherPsnLists(
      const std::map<NodeId, std::vector<PageId>>& pages_per_node,
      bool full_history,
      std::map<PageId, std::map<NodeId, std::vector<PsnListEntry>>>* out);

  /// Records one phase's duration into the node's `hist_name` histogram and
  /// emits a RECOVERY_PHASE trace event (a=phase index, b=duration ns).
  /// Phase indices match the trace exporter: 0=analyze, 1=exchange, 2=redo,
  /// 3=undo+finish.
  void FinishPhase(std::uint32_t phase, const char* hist_name,
                   std::uint64_t start_ns);

  Node* node_;
  AnalysisResult analysis_;
  std::map<NodeId, RecoveryQueryReply> peer_replies_;
  bool exchange_done_ = false;
  bool log_lost_ = false;  ///< Set by OpenAndAnalyze (log mark mismatch).
  Stats stats_;
};

}  // namespace clog

#endif  // CLOG_RECOVERY_DISTRIBUTED_RECOVERY_H_
