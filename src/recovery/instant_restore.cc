#include "recovery/instant_restore.h"

#include <algorithm>

#include "node/node.h"
#include "recovery/node_psn_list.h"
#include "storage/slotted_page.h"
#include "trace/trace_sink.h"

/// \file
/// On-demand page rebuild. RestoreOne is the per-page mirror of eager
/// recovery's CoordinatePageRecovery, with one extra invariant it leans on
/// throughout: the lost data device was recreated *empty*, so during a
/// restore epoch any checksum-valid image readable from it was written
/// after the crash — by a shipped peer copy, an eviction, or an earlier
/// rebuild — and every such source is a complete current version of the
/// page. "Readable on the recreated device" therefore means "restored".
/// Restart recovery keeps that equivalence honest by only planning pages
/// that were unreadable when the plan was built.

namespace clog {

namespace {

/// RAII for the per-page re-entrancy gate: a rebuild's own page forces
/// and disk reads must not loop back into RestoreOne for the same page.
/// Nested rebuild conversations (real-mode reentrant waits) unwind LIFO,
/// so a push/pop stack tracks exactly the pages mid-rebuild on this
/// call stack.
class InRestoreGuard {
 public:
  InRestoreGuard(std::vector<std::uint64_t>* stack, PageId pid)
      : stack_(stack) {
    stack_->push_back(pid.Pack());
  }
  ~InRestoreGuard() { stack_->pop_back(); }
  InRestoreGuard(const InRestoreGuard&) = delete;
  InRestoreGuard& operator=(const InRestoreGuard&) = delete;

 private:
  std::vector<std::uint64_t>* stack_;
};

}  // namespace

Status InstantRestoreManager::Open(const std::string& dir) {
  Reset();
  return ledger_.Open(dir, "node.restore");
}

void InstantRestoreManager::Reset() {
  plans_.clear();
  in_restore_pids_.clear();
  first_commit_pending_ = false;
  epoch_start_ns_ = 0;
  restored_this_epoch_ = 0;
}

std::vector<std::uint64_t> InstantRestoreManager::LedgerEntries() const {
  std::vector<std::uint64_t> out;
  out.reserve(ledger_.size());
  for (const auto& [packed, needed] : ledger_.entries()) {
    (void)needed;
    out.push_back(packed);
  }
  return out;
}

Status InstantRestoreManager::Add(Plan plan) {
  // Ledger first: a crash between the two writes re-probes the page (safe),
  // the reverse order would forget it was ever lost.
  CLOG_RETURN_IF_ERROR(ledger_.Add(plan.pid, 0));
  const std::uint64_t packed = plan.pid.Pack();
  plans_[packed] = std::move(plan);
  return Status::OK();
}

Status InstantRestoreManager::Forget(PageId pid) {
  return ledger_.Remove(pid);
}

void InstantRestoreManager::BeginEpoch(std::uint64_t now_ns) {
  epoch_start_ns_ = now_ns;
  restored_this_epoch_ = 0;
  first_commit_pending_ = active();
}

void InstantRestoreManager::NoteCommit(Node* node, std::uint64_t now_ns) {
  if (!first_commit_pending_) return;
  first_commit_pending_ = false;
  node->metrics_.GetHistogram("restore.first_commit_ns")
      .Record(now_ns - epoch_start_ns_);
}

Status InstantRestoreManager::Finish(Node* node, PageId pid, Psn psn,
                                     RestoreSource source,
                                     std::uint64_t t0_ns) {
  plans_.erase(pid.Pack());
  // Durable before return: completion must survive the next crash, or the
  // re-probe would rebuild a page whose disk image is already current —
  // wasteful but sound. The reverse (forgetting an *unfinished* page) is
  // what the ledger exists to prevent, so Remove comes after the page's
  // image is durable, never before.
  CLOG_RETURN_IF_ERROR(ledger_.Remove(pid));
  ++restored_this_epoch_;
  const std::uint64_t now = node->network_->clock()->NowNanos();
  node->metrics_.GetHistogram("restore.page_rebuild_ns").Record(now - t0_ns);
  if (node->trace_ != nullptr) {
    node->trace_->Emit(node->id_, TraceEventType::kPageRestored, pid.Pack(),
                       psn, static_cast<std::uint32_t>(source));
  }
  if (plans_.empty()) {
    node->metrics_.GetCounter("restore.epochs_drained").Add(1);
    if (node->trace_ != nullptr) {
      node->trace_->Emit(node->id_, TraceEventType::kRestoreDone,
                         restored_this_epoch_, now - epoch_start_ns_);
    }
  }
  return Status::OK();
}

Status InstantRestoreManager::RestoreOne(Node* node, PageId pid) {
  auto it = plans_.find(pid.Pack());
  if (it == plans_.end()) return Status::OK();  // Already restored.
  const Plan plan = it->second;  // Copy: Finish erases the entry.
  const std::uint64_t t0 = node->network_->clock()->NowNanos();
  InRestoreGuard guard(&in_restore_pids_, pid);

  auto lift_poison = [&]() -> Status {
    // The image just made durable descends from a complete current copy;
    // it supersedes any poison verdict, even a permanent one (same rescue
    // eager recovery applies to surviving cached copies).
    if (!node->poison_.Contains(pid)) return Status::OK();
    CLOG_RETURN_IF_ERROR(node->UnpoisonPage(pid));
    node->metrics_.GetCounter("media.pages_unpoisoned").Add(1);
    return Status::OK();
  };

  // 1. A cached copy already here. During a restore epoch the only way an
  //    own page enters the pool is a peer shipping it (install) or a
  //    finished rebuild — both complete. Partially-redone images never
  //    touch the pool (the redo ladder below works on a local scratch
  //    page), so this copy is current; make it durable and be done.
  if (Page* cached = node->pool_.Lookup(pid)) {
    const Psn psn = cached->psn();
    if (node->pool_.IsDirty(pid)) {
      CLOG_RETURN_IF_ERROR(node->ForceOwnPage(pid));
    }
    CLOG_RETURN_IF_ERROR(lift_poison());
    node->metrics_.GetCounter("restore.pages_already_durable").Add(1);
    return Finish(node, pid, psn, RestoreSource::kAlreadyDurable, t0);
  }

  // 2. A readable image on the recreated device (restore-epoch invariant:
  //    it was written post-crash from a complete source — a shipped copy
  //    forced through a full pool, an eviction write-back).
  {
    Page probe;
    if (node->ReadOwnPage(pid.page_no, &probe).ok()) {
      node->ChargeDiskRead();
      CLOG_RETURN_IF_ERROR(lift_poison());
      node->metrics_.GetCounter("restore.pages_already_durable").Add(1);
      return Finish(node, pid, probe.psn(), RestoreSource::kAlreadyDurable,
                    t0);
    }
  }

  // 3. Fast path: a peer from the plan still caches the page. Any cached
  //    copy carries the page's entire committed history.
  for (NodeId holder : plan.peer_candidates) {
    std::shared_ptr<Page> copy;
    Status st = node->network_->FetchCachedPage(node->id_, holder, pid, &copy);
    if (!st.ok() || !copy) continue;  // Down or evicted: next candidate.
    const Psn psn = copy->psn();
    CLOG_RETURN_IF_ERROR(node->InstallShippedCopy(*copy, holder));
    // Dirty in the pool, or bypass-written to disk by a full pool — either
    // way ForceOwnPage leaves it durable and flush-notifies the plan-time
    // contributors waiting on this page.
    CLOG_RETURN_IF_ERROR(node->ForceOwnPage(pid));
    CLOG_RETURN_IF_ERROR(lift_poison());
    node->metrics_.GetCounter("restore.pages_from_peer").Add(1);
    return Finish(node, pid, psn, RestoreSource::kPeerCache, t0);
  }

  // 4. No complete copy anywhere, and a destroyed client log already proved
  //    the top of this page's history unrecoverable: the fence stands. The
  //    page leaves the restoring set — its rebuild verdict is the poison
  //    entry, and service paths refuse it with Corruption as in eager mode.
  if (node->poison_.NeededPsn(pid) == kPsnUnrecoverable) {
    node->metrics_.GetCounter("restore.pages_poisoned").Add(1);
    return Finish(node, pid, 0, RestoreSource::kPoisoned, t0);
  }

  // 5. Slow path: newest archived image (or the space-map PSN seed) plus
  //    the merged full-history redo schedule across every planned source's
  //    client log — the per-page core of eager media recovery.
  Page base;
  bool from_archive = false;
  if (node->archive_.is_open()) {
    Status ar = node->archive_.Restore(pid.page_no, &base);
    if (ar.ok() && base.psn() >= node->space_map_.PsnSeed(pid.page_no)) {
      from_archive = true;
      node->metrics_.GetCounter("media.archive_restores").Add(1);
    }
  }
  if (!from_archive) {
    base.Format(pid, PageType::kData, node->space_map_.PsnSeed(pid.page_no));
    SlottedPage(&base).InitBody();
    node->metrics_.GetCounter("recovery.pages_rebuilt_from_seed").Add(1);
  }

  // Fresh full-history PSN lists at touch time. BuildPsnList starts a new
  // conversation (it clears stale resume cursors), so a rebuild interrupted
  // by a crash or a down peer re-enters cleanly. An unreachable source is
  // fatal for *this attempt* only: without its list the schedule could hide
  // a hole, and a maybe-stale page must never be served.
  std::map<NodeId, std::vector<PsnListEntry>> lists;
  {
    PsnListReply reply;
    CLOG_RETURN_IF_ERROR(node->HandleBuildPsnList(
        node->id_, {pid}, /*full_history=*/true, &reply));
    if (!reply.per_page[0].empty()) {
      lists[node->id_] = std::move(reply.per_page[0]);
    }
  }
  for (NodeId peer : plan.redo_sources) {
    if (peer == node->id_) continue;
    PsnListReply reply;
    Status st = node->network_->BuildPsnList(node->id_, peer, {pid},
                                             /*full_history=*/true, &reply);
    if (!st.ok()) {
      node->metrics_.GetCounter("restore.blocked_on_peer").Add(1);
      return Status::Unavailable("restore of " + pid.ToString() +
                                 " blocked: redo source " +
                                 std::to_string(peer) + " unreachable");
    }
    if (!reply.per_page[0].empty()) {
      lists[peer] = std::move(reply.per_page[0]);
    }
  }

  const std::vector<RecoveryRun> runs = MergePsnLists(lists);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    // Runs wholly below the base image are already-reflected history.
    if (i + 1 < runs.size() && runs[i + 1].psn <= base.psn()) continue;
    if (runs[i].psn > base.psn()) {
      // PSN density: a run starting above the page's current PSN proves
      // records existed that no surviving log holds. Fence durably; the
      // needed PSN lets a later rebuild that does reach it lift the fence.
      CLOG_RETURN_IF_ERROR(node->PoisonOwnPage(pid, runs[i].psn));
      node->metrics_.GetCounter("restore.pages_poisoned").Add(1);
      return Finish(node, pid, base.psn(), RestoreSource::kPoisoned, t0);
    }
    const bool has_bound = i + 1 < runs.size();
    const Psn bound = has_bound ? runs[i + 1].psn - 1 : 0;
    RecoverPageReply reply;
    Status st;
    if (runs[i].node == node->id_) {
      st = node->HandleRecoverPage(node->id_, pid, base, has_bound, bound,
                                   &reply);
    } else {
      st = node->network_->RecoverPage(node->id_, runs[i].node, pid, base,
                                       has_bound, bound, &reply);
    }
    if (st.IsNodeDown() || st.IsUnavailable()) {
      node->metrics_.GetCounter("restore.blocked_on_peer").Add(1);
      return Status::Unavailable("restore of " + pid.ToString() +
                                 " blocked: redo source " +
                                 std::to_string(runs[i].node) +
                                 " unreachable");
    }
    CLOG_RETURN_IF_ERROR(st);
    if (reply.page) base.CopyFrom(*reply.page);
  }

  // Land the rebuilt image and force it durable, exactly as eager
  // CoordinatePageRecovery does: every contributor clears its DPT entry
  // via the flush notification.
  //
  // Landing is PSN-monotonic. Two rebuild conversations for the same page
  // can interleave at re-entrant wait points (a background sweeper and a
  // first-touch rebuild): the per-page recovery cursors on the redo
  // sources alias across conversations, so the conversation that resumes
  // after the other finished may have replayed nothing and still hold the
  // bare base image. A rebuilt image therefore never replaces a newer
  // pool or durable version — the interleaved duplicate becomes wasted
  // work instead of a silent rollback of committed history.
  Page* frame = node->pool_.Lookup(pid);
  if (frame != nullptr && frame->psn() >= base.psn()) {
    CLOG_RETURN_IF_ERROR(lift_poison());
    return Finish(node, pid, frame->psn(), RestoreSource::kAlreadyDurable, t0);
  }
  if (frame == nullptr) {
    Page durable;
    if (node->ReadOwnPage(pid.page_no, &durable).ok() &&
        durable.psn() >= base.psn()) {
      node->ChargeDiskRead();
      CLOG_RETURN_IF_ERROR(lift_poison());
      return Finish(node, pid, durable.psn(), RestoreSource::kAlreadyDurable,
                    t0);
    }
    CLOG_ASSIGN_OR_RETURN(frame, node->pool_.Insert(pid));
  }
  frame->CopyFrom(base);
  node->pool_.MarkDirty(pid);
  for (const auto& [peer, list] : lists) {
    (void)list;
    if (peer != node->id_) node->replacers_[pid].insert(peer);
  }
  CLOG_RETURN_IF_ERROR(node->ForceOwnPage(pid));
  const Psn needed = node->poison_.NeededPsn(pid);
  if (needed != 0 && needed != kPsnUnrecoverable && base.psn() >= needed) {
    CLOG_RETURN_IF_ERROR(node->UnpoisonPage(pid));
    node->metrics_.GetCounter("media.pages_unpoisoned").Add(1);
  }
  node->metrics_
      .GetCounter(from_archive ? "restore.pages_from_archive"
                               : "restore.pages_from_seed")
      .Add(1);
  node->metrics_.GetCounter("recovery.pages_recovered").Add(1);
  return Finish(node, pid, base.psn(),
                from_archive ? RestoreSource::kArchiveRedo
                             : RestoreSource::kSeedRedo,
                t0);
}

std::size_t InstantRestoreManager::Sweep(Node* node, std::size_t max_pages) {
  std::size_t done = 0;
  while (done < max_pages && !plans_.empty()) {
    // Hottest plan first (ties by PageId for determinism); on-demand
    // touches already jumped the queue, this drains the cold tail.
    auto best = plans_.begin();
    for (auto pit = plans_.begin(); pit != plans_.end(); ++pit) {
      if (pit->second.priority > best->second.priority) best = pit;
    }
    const PageId pid = best->second.pid;
    Status st = RestoreOne(node, pid);
    if (!st.ok()) {
      // A blocked or failed rebuild leaves the page restoring; later
      // sweeps (or a touch once the peer returns) retry. Stop the pass:
      // the same dead peer likely blocks the rest too.
      node->metrics_.GetCounter("restore.sweep_blocked").Add(1);
      break;
    }
    ++done;
  }
  if (done > 0) node->metrics_.GetCounter("restore.sweep_passes").Add(1);
  return done;
}

}  // namespace clog
