#ifndef CLOG_RECOVERY_NODE_PSN_LIST_H_
#define CLOG_RECOVERY_NODE_PSN_LIST_H_

#include <map>
#include <vector>

#include "common/types.h"
#include "net/message.h"

/// \file
/// Coordinator-side NodePSNList machinery (paper Section 2.3.4). Each
/// involved node reports, per page, the PSN stored in the first log record
/// of every transaction run it executed against the page. The coordinator
/// merges the per-node lists into a single ascending schedule, coalescing
/// adjacent runs of the same node, and then bounces the page between the
/// nodes in that order.

namespace clog {

/// One step of the per-page recovery schedule: `node` applies its redo
/// starting at PSN `psn` until the next step's PSN is reached.
struct RecoveryRun {
  NodeId node = kInvalidNodeId;
  Psn psn = 0;

  friend bool operator==(const RecoveryRun&, const RecoveryRun&) = default;
};

/// Merges per-node PSN lists into the ascending, same-node-coalesced
/// schedule of Section 2.3.4 step 1.
std::vector<RecoveryRun> MergePsnLists(
    const std::map<NodeId, std::vector<PsnListEntry>>& lists);

}  // namespace clog

#endif  // CLOG_RECOVERY_NODE_PSN_LIST_H_
