#include "recovery/redo_scheduler.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <numeric>
#include <thread>

#include "common/crc32c.h"
#include "storage/slotted_page.h"
#include "wal/log_record.h"

namespace clog {

namespace {

/// Little-endian u64 at `p` — matches the update-record header layout
/// (wal/log_record.cc): type u8 | txn u64 | prev u64 | page u64 |
/// psn_before u64 | op u8 | slot u16.
inline std::uint64_t LoadU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}
constexpr std::size_t kUpdateHeaderSize = 36;
constexpr std::size_t kTxnOffset = 1;
constexpr std::size_t kPageOffset = 17;

inline bool IsUpdateType(std::uint8_t t) {
  return t == static_cast<std::uint8_t>(LogRecordType::kUpdate) ||
         t == static_cast<std::uint8_t>(LogRecordType::kClr) ||
         t == static_cast<std::uint8_t>(LogRecordType::kLogicalUpdate);
}

/// Union-find over chain vertices: tasks (pages) first, transactions
/// appended lazily behind them.
class Dsu {
 public:
  explicit Dsu(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Add() {
    parent_.push_back(parent_.size());
    return parent_.size() - 1;
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// One routed frame: still raw — the worker checksums and decodes it.
struct RoutedFrame {
  Lsn lsn = kNullLsn;
  std::uint32_t crc = 0;
  std::size_t task = 0;  ///< Index into *tasks.
  std::string body;
};

/// Same redo semantics as Node::ApplyRedo, free of Node so workers can run
/// it off the node's thread (pure page-bytes mutation).
Status ApplyFrame(const LogRecord& rec, Page* page) {
  SlottedPage sp(page);
  switch (rec.op) {
    case RecordOp::kInsert:
      CLOG_RETURN_IF_ERROR(sp.InsertAt(rec.slot, rec.redo_image));
      break;
    case RecordOp::kUpdate:
      CLOG_RETURN_IF_ERROR(sp.Update(rec.slot, rec.redo_image));
      break;
    case RecordOp::kDelete:
      CLOG_RETURN_IF_ERROR(sp.Delete(rec.slot));
      break;
    case RecordOp::kFormat:
      page->Format(rec.page, PageType::kData, rec.psn_before);
      sp.InitBody();
      break;
  }
  page->BumpPsn();
  return Status::OK();
}

/// Replays one chain: CRC check, decode, apply-when-PSN-matches, in LSN
/// order. Tasks are page-disjoint across chains, so no synchronization.
Status ReplayChain(const std::vector<RoutedFrame*>& frames,
                   std::vector<RedoPageTask>* tasks) {
  for (const RoutedFrame* f : frames) {
    if (crc32c::Value(f->body.data(), f->body.size()) != f->crc) {
      return Status::Corruption("log record crc mismatch at lsn " +
                                std::to_string(f->lsn));
    }
    LogRecord rec;
    CLOG_RETURN_IF_ERROR(LogRecord::DecodeFrom(f->body, &rec));
    RedoPageTask& task = (*tasks)[f->task];
    if (rec.psn_before == task.page->psn()) {
      CLOG_RETURN_IF_ERROR(ApplyFrame(rec, task.page));
      ++task.applied;
    }
    // Below the page's PSN: already reflected in the base image. Above it
    // cannot occur — self-only pages have no other contributor to fill
    // the gap, and a gapped history was poisoned before scheduling.
  }
  return Status::OK();
}

}  // namespace

Status RedoScheduler::Run(std::vector<RedoPageTask>* tasks,
                          RedoScheduleStats* stats) {
  *stats = RedoScheduleStats();
  if (tasks->empty()) return Status::OK();

  std::map<PageId, std::size_t> task_of_page;
  Lsn scan_start = kNullLsn;
  for (std::size_t i = 0; i < tasks->size(); ++i) {
    const RedoPageTask& t = (*tasks)[i];
    task_of_page[t.pid] = i;
    if (t.start_lsn == kNullLsn) continue;
    if (scan_start == kNullLsn || t.start_lsn < scan_start) {
      scan_start = t.start_lsn;
    }
  }

  // --- Single raw pass: route frames, grow the dependency graph. ---
  Dsu dsu(tasks->size());
  std::map<TxnId, std::size_t> txn_vertex;
  auto vertex_of = [&](TxnId txn) {
    auto [it, inserted] = txn_vertex.try_emplace(txn, 0);
    if (inserted) it->second = dsu.Add();
    return it->second;
  };
  std::vector<RoutedFrame> routed;
  const Lsn end = log_->end_lsn();
  for (Lsn lsn = scan_start; lsn != kNullLsn && lsn < end;) {
    RoutedFrame f;
    Lsn next = kNullLsn;
    CLOG_RETURN_IF_ERROR(log_->ReadRawFrame(lsn, &f.body, &f.crc, &next));
    if (f.body.empty()) {
      return Status::Corruption("empty log frame at lsn " +
                                std::to_string(lsn));
    }
    const std::uint8_t type8 = static_cast<std::uint8_t>(f.body[0]);
    if (IsUpdateType(type8)) {
      if (f.body.size() < kUpdateHeaderSize) {
        return Status::Corruption("short update frame at lsn " +
                                  std::to_string(lsn));
      }
      const PageId pid =
          PageId::Unpack(LoadU64(f.body.data() + kPageOffset));
      const TxnId txn = LoadU64(f.body.data() + kTxnOffset);
      auto it = task_of_page.find(pid);
      if (it != task_of_page.end() &&
          (*tasks)[it->second].start_lsn != kNullLsn &&
          lsn >= (*tasks)[it->second].start_lsn) {
        const bool skip =
            type8 ==
                static_cast<std::uint8_t>(LogRecordType::kLogicalUpdate) &&
            skip_txns_->count(txn) != 0;
        if (!skip) {
          dsu.Union(it->second, vertex_of(txn));
          f.lsn = lsn;
          f.task = it->second;
          routed.push_back(std::move(f));
        }
      }
    } else if (type8 == static_cast<std::uint8_t>(LogRecordType::kCommit)) {
      // Dependency edges ride on adaptive commit records: the committing
      // transaction follows its predecessors, so their chains must not
      // split. (Cheap decode: commit bodies are a few dozen bytes.)
      LogRecord rec;
      CLOG_RETURN_IF_ERROR(LogRecord::DecodeFrom(f.body, &rec));
      if (!rec.commit_deps.empty()) {
        const std::size_t me = vertex_of(rec.txn);
        for (const CommitDep& d : rec.commit_deps) {
          dsu.Union(me, vertex_of(d.txn));
        }
      }
    }
    lsn = next;
  }
  stats->records_routed = routed.size();

  // --- Partition into chains (stable: scan order == LSN order). ---
  std::map<std::size_t, std::vector<RoutedFrame*>> chains;
  for (RoutedFrame& f : routed) {
    chains[dsu.Find(f.task)].push_back(&f);
  }
  stats->chains = chains.size();

  // Deterministic replay order: by each chain's first frame LSN. Chains
  // are page-disjoint so the order cannot change any page's bytes; it
  // keeps the simulation schedule reproducible and spreads long chains
  // first across the real worker pool.
  std::vector<std::vector<RoutedFrame*>*> order;
  order.reserve(chains.size());
  for (auto& [root, frames] : chains) order.push_back(&frames);
  std::sort(order.begin(), order.end(),
            [](const auto* a, const auto* b) {
              return a->front()->lsn < b->front()->lsn;
            });

  // --- Replay: worker pool in real mode, sequential in simulation. ---
  Status first_error;
  const std::uint32_t pool =
      std::min<std::uint32_t>(workers_,
                              static_cast<std::uint32_t>(order.size()));
  if (use_threads_ && pool > 1) {
    std::vector<Status> results(order.size());
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::uint32_t w = 0; w < pool; ++w) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= order.size()) return;
          results[i] = ReplayChain(*order[i], tasks);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Status& st : results) {
      if (!st.ok()) {
        first_error = st;
        break;
      }
    }
  } else {
    for (auto* frames : order) {
      first_error = ReplayChain(*frames, tasks);
      if (!first_error.ok()) break;
    }
  }
  CLOG_RETURN_IF_ERROR(first_error);

  for (const RedoPageTask& t : *tasks) stats->applied += t.applied;
  return Status::OK();
}

}  // namespace clog
