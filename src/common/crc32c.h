#ifndef CLOG_COMMON_CRC32C_H_
#define CLOG_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

#include "common/slice.h"

namespace clog::crc32c {

/// Returns the CRC-32C (Castagnoli) of the byte range. Used to detect torn
/// or corrupted pages and log records after a crash.
std::uint32_t Value(const char* data, std::size_t n);

inline std::uint32_t Value(Slice s) { return Value(s.data(), s.size()); }

/// Extends a running CRC with more bytes.
std::uint32_t Extend(std::uint32_t crc, const char* data, std::size_t n);

}  // namespace clog::crc32c

#endif  // CLOG_COMMON_CRC32C_H_
