#ifndef CLOG_COMMON_CRC32C_H_
#define CLOG_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/slice.h"

/// \file
/// CRC-32C (Castagnoli). Sits on the hottest paths in the system — every
/// WAL frame, checkpoint master record, and page image is covered by one —
/// so the implementation is dispatched at startup: SSE4.2 `crc32` on
/// x86-64, the ARMv8 CRC32 extension on aarch64, and a slice-by-8 table
/// walk everywhere else. All paths produce bit-identical results (tested
/// against the RFC 3720 vectors and against each other).

namespace clog::crc32c {

/// Returns the CRC-32C (Castagnoli) of the byte range. Used to detect torn
/// or corrupted pages and log records after a crash.
std::uint32_t Value(const char* data, std::size_t n);

inline std::uint32_t Value(Slice s) { return Value(s.data(), s.size()); }

/// Extends a running CRC with more bytes.
std::uint32_t Extend(std::uint32_t crc, const char* data, std::size_t n);

/// The portable slice-by-8 software path, bypassing dispatch. Exposed so
/// tests can prove hardware/software agreement and benchmarks can report
/// both constants.
std::uint32_t ExtendPortable(std::uint32_t crc, const char* data,
                             std::size_t n);

inline std::uint32_t ValuePortable(const char* data, std::size_t n) {
  return ExtendPortable(0, data, n);
}

/// True when runtime dispatch selected a hardware-accelerated path.
bool IsHardwareAccelerated();

/// Name of the dispatched implementation ("sse4.2", "armv8", "sw").
std::string_view ImplName();

}  // namespace clog::crc32c

#endif  // CLOG_COMMON_CRC32C_H_
