#include "common/codec.h"

#include <cstring>

namespace clog {

Status Decoder::Need(std::size_t n) const {
  if (remaining() < n) {
    return Status::Corruption("decode past end of buffer");
  }
  return Status::OK();
}

Status Decoder::GetU8(std::uint8_t* v) {
  CLOG_RETURN_IF_ERROR(Need(1));
  *v = static_cast<std::uint8_t>(input_[pos_++]);
  return Status::OK();
}

Status Decoder::GetU16(std::uint16_t* v) {
  CLOG_RETURN_IF_ERROR(Need(2));
  std::uint16_t r = 0;
  for (int i = 0; i < 2; ++i) {
    r |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(input_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 2;
  *v = r;
  return Status::OK();
}

Status Decoder::GetU32(std::uint32_t* v) {
  CLOG_RETURN_IF_ERROR(Need(4));
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(input_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *v = r;
  return Status::OK();
}

Status Decoder::GetU64(std::uint64_t* v) {
  CLOG_RETURN_IF_ERROR(Need(8));
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(input_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *v = r;
  return Status::OK();
}

Status Decoder::GetVarint64(std::uint64_t* v) {
  std::uint64_t r = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) return Status::Corruption("varint too long");
    CLOG_RETURN_IF_ERROR(Need(1));
    std::uint8_t byte = static_cast<std::uint8_t>(input_[pos_++]);
    r |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = r;
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string* out) {
  std::uint64_t n = 0;
  CLOG_RETURN_IF_ERROR(GetVarint64(&n));
  return GetRaw(static_cast<std::size_t>(n), out);
}

Status Decoder::GetRaw(std::size_t n, std::string* out) {
  CLOG_RETURN_IF_ERROR(Need(n));
  out->assign(input_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace clog
