#include "common/codec.h"

#include <cstring>

namespace clog {

void Encoder::PutU8(std::uint8_t v) {
  out_->push_back(static_cast<char>(v));
}

void Encoder::PutU16(std::uint16_t v) {
  char buf[2];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  out_->append(buf, 2);
}

void Encoder::PutU32(std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 4);
}

void Encoder::PutU64(std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 8);
}

void Encoder::PutVarint64(std::uint64_t v) {
  while (v >= 0x80) {
    out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_->push_back(static_cast<char>(v));
}

void Encoder::PutLengthPrefixed(Slice s) {
  PutVarint64(s.size());
  PutRaw(s);
}

void Encoder::PutRaw(Slice s) { out_->append(s.data(), s.size()); }

Status Decoder::Need(std::size_t n) const {
  if (remaining() < n) {
    return Status::Corruption("decode past end of buffer");
  }
  return Status::OK();
}

Status Decoder::GetU8(std::uint8_t* v) {
  CLOG_RETURN_IF_ERROR(Need(1));
  *v = static_cast<std::uint8_t>(input_[pos_++]);
  return Status::OK();
}

Status Decoder::GetU16(std::uint16_t* v) {
  CLOG_RETURN_IF_ERROR(Need(2));
  std::uint16_t r = 0;
  for (int i = 0; i < 2; ++i) {
    r |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(input_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 2;
  *v = r;
  return Status::OK();
}

Status Decoder::GetU32(std::uint32_t* v) {
  CLOG_RETURN_IF_ERROR(Need(4));
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(input_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *v = r;
  return Status::OK();
}

Status Decoder::GetU64(std::uint64_t* v) {
  CLOG_RETURN_IF_ERROR(Need(8));
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(input_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *v = r;
  return Status::OK();
}

Status Decoder::GetVarint64(std::uint64_t* v) {
  std::uint64_t r = 0;
  int shift = 0;
  while (true) {
    if (shift > 63) return Status::Corruption("varint too long");
    CLOG_RETURN_IF_ERROR(Need(1));
    std::uint8_t byte = static_cast<std::uint8_t>(input_[pos_++]);
    r |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *v = r;
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string* out) {
  std::uint64_t n = 0;
  CLOG_RETURN_IF_ERROR(GetVarint64(&n));
  return GetRaw(static_cast<std::size_t>(n), out);
}

Status Decoder::GetRaw(std::size_t n, std::string* out) {
  CLOG_RETURN_IF_ERROR(Need(n));
  out->assign(input_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace clog
