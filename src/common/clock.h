#ifndef CLOG_COMMON_CLOCK_H_
#define CLOG_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

/// \file
/// Time source abstraction behind the dual-mode execution engine
/// (docs/architecture_modes.md). The deterministic simulation advances a
/// SimClock by charging modeled costs; the real-threads runtime reads a
/// WallClock that nobody can advance — real time passes on its own. Every
/// consumer (Network, Node charge helpers, TraceSink stamps, benchmarks)
/// talks to this interface so the same code runs under both.

namespace clog {

/// Nanosecond clock. Advance() is the cost-charging hook: meaningful on the
/// simulated clock, a no-op on the wall clock (the fsync the charge models
/// already took real time).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since cluster start.
  virtual std::uint64_t NowNanos() const = 0;

  /// Advances time by `ns` (simulation only; wall time ignores it).
  virtual void Advance(std::uint64_t ns) = 0;

  /// Resets to time zero.
  virtual void Reset() = 0;

  /// True for the deterministic simulated clock.
  virtual bool is_simulated() const = 0;
};

/// Real monotonic time, reported relative to construction (or the last
/// Reset) so readings look like the simulated clock's "nanoseconds since
/// cluster start". Thread-safe: reads race only against Reset, and both
/// sides go through one atomic origin.
class WallClock final : public Clock {
 public:
  WallClock();

  std::uint64_t NowNanos() const override;
  void Advance(std::uint64_t ns) override {}  // Real time is not chargeable.
  void Reset() override;
  bool is_simulated() const override { return false; }

 private:
  static std::uint64_t SteadyNanos();

  std::atomic<std::uint64_t> origin_ns_;
};

}  // namespace clog

#endif  // CLOG_COMMON_CLOCK_H_
