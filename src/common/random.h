#ifndef CLOG_COMMON_RANDOM_H_
#define CLOG_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace clog {

/// Small deterministic PRNG (xorshift128+). Workloads, property tests, and
/// benchmarks all take an explicit seed so every run is reproducible.
class Random {
 public:
  explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform value in [0, n). n must be > 0.
  std::uint64_t Uniform(std::uint64_t n);

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t Range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability p (0 <= p <= 1).
  bool Bernoulli(double p);

  /// Zipfian-ish skewed pick in [0, n): 80% of draws land in the first 20%.
  std::uint64_t Skewed(std::uint64_t n);

  /// Random printable payload of exactly `len` bytes.
  std::string Bytes(std::size_t len);

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

}  // namespace clog

#endif  // CLOG_COMMON_RANDOM_H_
