#ifndef CLOG_COMMON_METRICS_H_
#define CLOG_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace clog {

/// Monotonic counter identified by name. Cheap to bump on hot paths, and
/// safe to bump from concurrent node threads in real-threads mode: one
/// relaxed atomic add, no ordering anyone depends on (counters are read
/// after quiesce).
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-boundary histogram for latency-like quantities. A Record updates
/// five fields together, so unlike Counter it takes a real (per-histogram)
/// mutex; the critical section is a handful of arithmetic ops.
class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t v);
  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;
  std::uint64_t max() const;
  double Mean() const;
  /// Approximate quantile in [0,1] from bucket interpolation.
  double Quantile(double q) const;
  void Reset();

 private:
  static constexpr int kNumBuckets = 64;

  double QuantileLocked(double q) const;

  mutable std::mutex mu_;
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Point-in-time summary of one named histogram. Quantiles come from
/// bucket interpolation (deterministic for deterministic inputs), so bench
/// harnesses can gate on them directly.
struct HistogramStat {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::uint64_t max = 0;
};

/// Named metrics registry. Each node and the network own one; benchmark
/// harnesses snapshot and diff them across phases.
///
/// Storage is unordered_map — emit paths pay one string hash, no ordered
/// tree walk — and element references are stable across rehash, so hot
/// call sites may cache `&GetCounter(...)` / `&GetHistogram(...)` once and
/// bump through the pointer (Node does this for its steady-state metrics).
/// All snapshot/dump output is sorted by name for stable diffs.
///
/// The registry maps are mutex-guarded (Get* may rehash under concurrent
/// first-touches in real-threads mode); the returned references stay valid
/// and lock-free to use, so cached handles keep their zero-lookup cost.
class Metrics {
 public:
  /// Returns the counter with the given name, creating it on first use.
  /// The reference stays valid for the life of this registry.
  Counter& GetCounter(const std::string& name);
  /// Returns the histogram with the given name, creating it on first use.
  /// The reference stays valid for the life of this registry.
  Histogram& GetHistogram(const std::string& name);

  /// Counter value or 0 if never touched.
  std::uint64_t CounterValue(const std::string& name) const;

  /// Histogram summary, or a zeroed stat (count == 0) if never touched.
  HistogramStat HistogramValue(const std::string& name) const;

  /// All counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot() const;

  /// All histograms, sorted by name.
  std::vector<HistogramStat> HistogramSnapshot() const;

  void Reset();

  /// Multi-line dump: "name = value" for counters, then
  /// "name: count=… mean=… p50=… p95=… p99=… max=…" per histogram.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, Counter> counters_;
  std::unordered_map<std::string, Histogram> histograms_;
};

}  // namespace clog

#endif  // CLOG_COMMON_METRICS_H_
