#ifndef CLOG_COMMON_METRICS_H_
#define CLOG_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clog {

/// Monotonic counter identified by name. Cheap to bump on hot paths.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-boundary histogram for latency-like quantities.
class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t v);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double Mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0; }
  /// Approximate quantile in [0,1] from bucket interpolation.
  double Quantile(double q) const;
  void Reset();

 private:
  static constexpr int kNumBuckets = 64;
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Named metrics registry. Each node and the network own one; benchmark
/// harnesses snapshot and diff them across phases.
class Metrics {
 public:
  /// Returns the counter with the given name, creating it on first use.
  Counter& GetCounter(const std::string& name);
  /// Returns the histogram with the given name, creating it on first use.
  Histogram& GetHistogram(const std::string& name);

  /// Counter value or 0 if never touched.
  std::uint64_t CounterValue(const std::string& name) const;

  /// All counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot() const;

  void Reset();

  /// Multi-line "name = value" dump (counters only).
  std::string ToString() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace clog

#endif  // CLOG_COMMON_METRICS_H_
