#ifndef CLOG_COMMON_METRICS_H_
#define CLOG_COMMON_METRICS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace clog {

/// Monotonic counter identified by name. Cheap to bump on hot paths.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Fixed-boundary histogram for latency-like quantities.
class Histogram {
 public:
  Histogram();

  void Record(std::uint64_t v);
  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double Mean() const { return count_ ? static_cast<double>(sum_) / count_ : 0; }
  /// Approximate quantile in [0,1] from bucket interpolation.
  double Quantile(double q) const;
  void Reset();

 private:
  static constexpr int kNumBuckets = 64;
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Point-in-time summary of one named histogram. Quantiles come from
/// bucket interpolation (deterministic for deterministic inputs), so bench
/// harnesses can gate on them directly.
struct HistogramStat {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  std::uint64_t max = 0;
};

/// Named metrics registry. Each node and the network own one; benchmark
/// harnesses snapshot and diff them across phases.
///
/// Storage is unordered_map — emit paths pay one string hash, no ordered
/// tree walk — and element references are stable across rehash, so hot
/// call sites may cache `&GetCounter(...)` / `&GetHistogram(...)` once and
/// bump through the pointer (Node does this for its steady-state metrics).
/// All snapshot/dump output is sorted by name for stable diffs.
class Metrics {
 public:
  /// Returns the counter with the given name, creating it on first use.
  /// The reference stays valid for the life of this registry.
  Counter& GetCounter(const std::string& name);
  /// Returns the histogram with the given name, creating it on first use.
  /// The reference stays valid for the life of this registry.
  Histogram& GetHistogram(const std::string& name);

  /// Counter value or 0 if never touched.
  std::uint64_t CounterValue(const std::string& name) const;

  /// Histogram summary, or a zeroed stat (count == 0) if never touched.
  HistogramStat HistogramValue(const std::string& name) const;

  /// All counters, sorted by name.
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot() const;

  /// All histograms, sorted by name.
  std::vector<HistogramStat> HistogramSnapshot() const;

  void Reset();

  /// Multi-line dump: "name = value" for counters, then
  /// "name: count=… mean=… p50=… p95=… p99=… max=…" per histogram.
  std::string ToString() const;

 private:
  std::unordered_map<std::string, Counter> counters_;
  std::unordered_map<std::string, Histogram> histograms_;
};

}  // namespace clog

#endif  // CLOG_COMMON_METRICS_H_
