#include "common/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__)
#define CLOG_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define CLOG_CRC32C_ARM 1
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif
#endif

namespace clog::crc32c {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

// Slice-by-8: table[0] is the classic byte table; table[k][b] advances byte
// b through k additional zero bytes, so eight table lookups consume eight
// input bytes per iteration instead of one.
using SliceTables = std::array<std::array<std::uint32_t, 256>, 8>;

SliceTables MakeTables() {
  SliceTables t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = t[0][t[k - 1][i] & 0xFF] ^ (t[k - 1][i] >> 8);
    }
  }
  return t;
}

const SliceTables& Tables() {
  static const SliceTables tables = MakeTables();
  return tables;
}

#if defined(CLOG_CRC32C_X86)
__attribute__((target("sse4.2"))) std::uint32_t ExtendSse42(std::uint32_t crc,
                                                            const char* data,
                                                            std::size_t n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  std::uint64_t c64 = c;
  while (n >= 32) {
    std::uint64_t v0, v1, v2, v3;
    std::memcpy(&v0, p, 8);
    std::memcpy(&v1, p + 8, 8);
    std::memcpy(&v2, p + 16, 8);
    std::memcpy(&v3, p + 24, 8);
    c64 = _mm_crc32_u64(c64, v0);
    c64 = _mm_crc32_u64(c64, v1);
    c64 = _mm_crc32_u64(c64, v2);
    c64 = _mm_crc32_u64(c64, v3);
    p += 32;
    n -= 32;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c64 = _mm_crc32_u64(c64, v);
    p += 8;
    n -= 8;
  }
  c = static_cast<std::uint32_t>(c64);
  while (n > 0) {
    c = _mm_crc32_u8(c, *p++);
    --n;
  }
  return ~c;
}
#endif  // CLOG_CRC32C_X86

#if defined(CLOG_CRC32C_ARM)
std::uint32_t ExtendArmv8(std::uint32_t crc, const char* data, std::size_t n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    c = __crc32cd(c, v);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    c = __crc32cb(c, *p++);
    --n;
  }
  return ~c;
}
#endif  // CLOG_CRC32C_ARM

using ExtendFn = std::uint32_t (*)(std::uint32_t, const char*, std::size_t);

struct Dispatch {
  ExtendFn fn;
  std::string_view name;
};

Dispatch Choose() {
#if defined(CLOG_CRC32C_X86)
  if (__builtin_cpu_supports("sse4.2")) return {ExtendSse42, "sse4.2"};
#elif defined(CLOG_CRC32C_ARM)
#if defined(__linux__)
  if ((getauxval(AT_HWCAP) & HWCAP_CRC32) != 0) return {ExtendArmv8, "armv8"};
#else
  return {ExtendArmv8, "armv8"};
#endif
#endif
  return {ExtendPortable, "sw"};
}

const Dispatch& Impl() {
  static const Dispatch dispatch = Choose();
  return dispatch;
}

}  // namespace

std::uint32_t ExtendPortable(std::uint32_t crc, const char* data,
                             std::size_t n) {
  const SliceTables& t = Tables();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  std::uint32_t c = ~crc;
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7) != 0) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    --n;
  }
  while (n >= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    v ^= c;
    c = t[7][v & 0xFF] ^ t[6][(v >> 8) & 0xFF] ^ t[5][(v >> 16) & 0xFF] ^
        t[4][(v >> 24) & 0xFF] ^ t[3][(v >> 32) & 0xFF] ^
        t[2][(v >> 40) & 0xFF] ^ t[1][(v >> 48) & 0xFF] ^ t[0][v >> 56];
    p += 8;
    n -= 8;
  }
#endif
  while (n > 0) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
    --n;
  }
  return ~c;
}

std::uint32_t Extend(std::uint32_t crc, const char* data, std::size_t n) {
  return Impl().fn(crc, data, n);
}

std::uint32_t Value(const char* data, std::size_t n) {
  return Impl().fn(0, data, n);
}

bool IsHardwareAccelerated() { return Impl().name != "sw"; }

std::string_view ImplName() { return Impl().name; }

}  // namespace clog::crc32c
