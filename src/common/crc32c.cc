#include "common/crc32c.h"

#include <array>

namespace clog::crc32c {
namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected CRC-32C polynomial

std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

std::uint32_t Extend(std::uint32_t crc, const char* data, std::size_t n) {
  const auto& table = Table();
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ static_cast<std::uint8_t>(data[i])) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint32_t Value(const char* data, std::size_t n) {
  return Extend(0, data, n);
}

}  // namespace clog::crc32c
