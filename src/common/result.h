#ifndef CLOG_COMMON_RESULT_H_
#define CLOG_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace clog {

/// A Status plus a value of type T on success. Mirrors arrow::Result /
/// absl::StatusOr. The value may only be accessed when `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define CLOG_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto CLOG_RESULT_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!CLOG_RESULT_CONCAT_(_res_, __LINE__).ok())      \
    return CLOG_RESULT_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(CLOG_RESULT_CONCAT_(_res_, __LINE__)).value()

#define CLOG_RESULT_CONCAT_INNER_(a, b) a##b
#define CLOG_RESULT_CONCAT_(a, b) CLOG_RESULT_CONCAT_INNER_(a, b)

}  // namespace clog

#endif  // CLOG_COMMON_RESULT_H_
