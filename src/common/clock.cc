#include "common/clock.h"

#include <chrono>

namespace clog {

std::uint64_t WallClock::SteadyNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

WallClock::WallClock() : origin_ns_(SteadyNanos()) {}

std::uint64_t WallClock::NowNanos() const {
  return SteadyNanos() - origin_ns_.load(std::memory_order_relaxed);
}

void WallClock::Reset() {
  origin_ns_.store(SteadyNanos(), std::memory_order_relaxed);
}

}  // namespace clog
