#ifndef CLOG_COMMON_CODEC_H_
#define CLOG_COMMON_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

/// \file
/// Little-endian binary encoding helpers used by the log-record format, the
/// checkpoint payloads, and every network message body. All multi-byte
/// integers are fixed-width little-endian unless the Varint forms are used.

namespace clog {

/// Appends primitive values to a growable byte buffer. The fixed-width
/// putters are inline: log-record encoding is on the append hot path
/// (docs/performance.md "WAL front-end"), where a dozen out-of-line
/// calls per record were a measurable share of the budget. The shift
/// loop compiles to a single store on little-endian targets; the wire
/// format is unchanged on every host.
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutU8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(std::uint16_t v) { PutFixed(v); }
  void PutU32(std::uint32_t v) { PutFixed(v); }
  void PutU64(std::uint64_t v) { PutFixed(v); }
  /// Unsigned LEB128.
  void PutVarint64(std::uint64_t v) {
    while (v >= 0x80) {
      out_->push_back(static_cast<char>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    out_->push_back(static_cast<char>(v));
  }
  /// Length-prefixed (varint) byte string.
  void PutLengthPrefixed(Slice s) {
    PutVarint64(s.size());
    PutRaw(s);
  }
  /// Raw bytes with no length prefix.
  void PutRaw(Slice s) { out_->append(s.data(), s.size()); }

  std::size_t size() const { return out_->size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    char buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    out_->append(buf, sizeof(T));
  }

  std::string* out_;
};

/// Reads primitive values from a byte buffer; every getter reports malformed
/// input through Status rather than crashing, because decode inputs come
/// from disk and are untrusted after a crash.
class Decoder {
 public:
  explicit Decoder(Slice input) : input_(input) {}

  Status GetU8(std::uint8_t* v);
  Status GetU16(std::uint16_t* v);
  Status GetU32(std::uint32_t* v);
  Status GetU64(std::uint64_t* v);
  Status GetVarint64(std::uint64_t* v);
  /// Reads a varint length then that many bytes into *out (copies).
  Status GetLengthPrefixed(std::string* out);
  /// Reads exactly n raw bytes into *out (copies).
  Status GetRaw(std::size_t n, std::string* out);

  /// Bytes not yet consumed.
  std::size_t remaining() const { return input_.size() - pos_; }
  bool Done() const { return remaining() == 0; }

 private:
  Status Need(std::size_t n) const;

  Slice input_;
  std::size_t pos_ = 0;
};

}  // namespace clog

#endif  // CLOG_COMMON_CODEC_H_
