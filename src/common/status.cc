#include "common/status.h"

namespace clog {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kIOError:
      return "io error";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kBusy:
      return "busy";
    case StatusCode::kDeadlock:
      return "deadlock";
    case StatusCode::kAborted:
      return "aborted";
    case StatusCode::kLogFull:
      return "log full";
    case StatusCode::kNodeDown:
      return "node down";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kNotSupported:
      return "not supported";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace clog
