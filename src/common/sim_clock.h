#ifndef CLOG_COMMON_SIM_CLOCK_H_
#define CLOG_COMMON_SIM_CLOCK_H_

#include <cstdint>

#include "common/clock.h"

namespace clog {

/// Simulated time, in nanoseconds. The cluster in simulation mode is a
/// deterministic single-process program: instead of sleeping, components
/// charge costs (network hops, disk I/O, log forces) to this clock.
/// Benchmarks report simulated elapsed time alongside message/byte
/// counters, which is what makes the 1996 paper's performance arguments
/// reproducible on any host. Single-threaded by design — the simulation
/// never reads or advances it concurrently.
class SimClock final : public Clock {
 public:
  /// Current simulated time in nanoseconds since cluster start.
  std::uint64_t NowNanos() const override { return now_ns_; }

  /// Advances time by `ns` nanoseconds.
  void Advance(std::uint64_t ns) override { now_ns_ += ns; }

  /// Resets to time zero.
  void Reset() override { now_ns_ = 0; }

  bool is_simulated() const override { return true; }

 private:
  std::uint64_t now_ns_ = 0;
};

/// Cost model charged to the SimClock by the network and disk substrates.
/// Defaults approximate a mid-90s LAN + disk, matching the environment the
/// paper assumes; ratios (not absolutes) drive every experiment's shape.
struct CostModel {
  std::uint64_t network_msg_ns = 500'000;   ///< Fixed cost per message hop.
  std::uint64_t network_byte_ns = 100;      ///< Cost per payload byte.
  std::uint64_t disk_read_ns = 10'000'000;  ///< Random page read.
  std::uint64_t disk_write_ns = 10'000'000; ///< Random page write.
  std::uint64_t log_force_ns = 5'000'000;   ///< Sequential log force (fsync).
  std::uint64_t log_append_byte_ns = 20;    ///< Per-byte log append (buffered).
  std::uint64_t cpu_op_ns = 50'000;         ///< Fixed per record operation.
};

}  // namespace clog

#endif  // CLOG_COMMON_SIM_CLOCK_H_
