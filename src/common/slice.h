#ifndef CLOG_COMMON_SLICE_H_
#define CLOG_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace clog {

/// A non-owning view of a byte range, in the RocksDB tradition. Used for
/// record payloads and log-record bodies to avoid copies on hot paths.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, std::size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(std::string_view s) : data_(s.data()), size_(s.size()) {}    // NOLINT
  Slice(const std::vector<char>& v)                                  // NOLINT
      : data_(v.data()), size_(v.size()) {}
  Slice(const char* cstr) : data_(cstr), size_(std::strlen(cstr)) {}  // NOLINT

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](std::size_t i) const { return data_[i]; }

  /// Copies the bytes into an owning string.
  std::string ToString() const { return std::string(data_, size_); }

  std::string_view view() const { return std::string_view(data_, size_); }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  const char* data_;
  std::size_t size_;
};

}  // namespace clog

#endif  // CLOG_COMMON_SLICE_H_
