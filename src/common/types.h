#ifndef CLOG_COMMON_TYPES_H_
#define CLOG_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

/// \file
/// Fundamental identifier and sequence-number types shared by every clog
/// subsystem. The vocabulary follows the ICDE'96 paper: nodes, pages owned
/// by nodes, page sequence numbers (PSN), and log sequence numbers (LSN).

namespace clog {

/// Size in bytes of every database page (header included).
inline constexpr std::size_t kPageSize = 4096;

/// Identifier of a processing node in the cluster.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFFu;

/// Log sequence number: the byte offset of a log record in a node's local
/// log file. Each node has its own LSN space; LSNs from different nodes are
/// never compared (the paper orders cross-node updates by PSN, not LSN).
using Lsn = std::uint64_t;

/// Null LSN. Log files begin with a fixed-size header, so offset 0 is never
/// a valid record address.
inline constexpr Lsn kNullLsn = 0;

/// Page sequence number: a per-page update counter stored in the page header
/// and incremented by one on every update (paper Section 2.1). PSNs give the
/// total order of updates to a page across all nodes because locking is at
/// page granularity.
using Psn = std::uint64_t;

/// Sentinel for "no PSN recorded".
inline constexpr Psn kInvalidPsn = ~0ull;

/// Globally unique transaction identifier. The owning node id is encoded in
/// the top 16 bits so ids allocated by different nodes never collide and a
/// log record's transaction can be attributed to its executing node.
using TxnId = std::uint64_t;

/// Sentinel for "no transaction".
inline constexpr TxnId kInvalidTxnId = 0;

/// Builds a TxnId from the executing node and a node-local counter.
constexpr TxnId MakeTxnId(NodeId node, std::uint64_t local_seq) {
  return (static_cast<TxnId>(node) << 48) | (local_seq & 0xFFFFFFFFFFFFull);
}

/// Extracts the node that started the given transaction.
constexpr NodeId TxnNode(TxnId txn) {
  return static_cast<NodeId>(txn >> 48);
}

/// Identifier of a database page. The owner node is part of the id: every
/// page is stored in exactly one node's database (data-shipping model), and
/// any node can route requests for the page to `owner`.
struct PageId {
  NodeId owner = kInvalidNodeId;   ///< Node whose database stores the page.
  std::uint32_t page_no = 0;       ///< Page number within the owner database.

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;

  /// True iff this id refers to a real page.
  bool Valid() const { return owner != kInvalidNodeId; }

  /// Packs the id into one 64-bit integer (for maps and wire encoding).
  std::uint64_t Pack() const {
    return (static_cast<std::uint64_t>(owner) << 32) | page_no;
  }

  /// Inverse of Pack().
  static PageId Unpack(std::uint64_t v) {
    return PageId{static_cast<NodeId>(v >> 32),
                  static_cast<std::uint32_t>(v & 0xFFFFFFFFu)};
  }

  /// Human-readable "owner:page_no" form for logs and test failures.
  std::string ToString() const {
    return std::to_string(owner) + ":" + std::to_string(page_no);
  }
};

/// Sentinel invalid page id.
inline constexpr PageId kInvalidPageId{};

/// Identifier of a record within a page (slot number).
using SlotId = std::uint16_t;

/// Identifier of a record in the distributed database: page + slot.
struct RecordId {
  PageId page;
  SlotId slot = 0;

  friend bool operator==(const RecordId&, const RecordId&) = default;
  friend auto operator<=>(const RecordId&, const RecordId&) = default;

  std::string ToString() const {
    return page.ToString() + "." + std::to_string(slot);
  }
};

}  // namespace clog

namespace std {
template <>
struct hash<clog::PageId> {
  size_t operator()(const clog::PageId& id) const noexcept {
    return std::hash<std::uint64_t>()(id.Pack());
  }
};
template <>
struct hash<clog::RecordId> {
  size_t operator()(const clog::RecordId& id) const noexcept {
    return std::hash<std::uint64_t>()(id.page.Pack() * 1000003u ^ id.slot);
  }
};
}  // namespace std

#endif  // CLOG_COMMON_TYPES_H_
