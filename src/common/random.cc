#include "common/random.h"

namespace clog {

Random::Random(std::uint64_t seed) {
  // SplitMix64 to spread the seed across both words.
  auto mix = [&seed]() {
    seed += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  s0_ = mix();
  s1_ = mix();
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

std::uint64_t Random::Next() {
  std::uint64_t x = s0_;
  const std::uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

std::uint64_t Random::Uniform(std::uint64_t n) { return Next() % n; }

std::uint64_t Random::Range(std::uint64_t lo, std::uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

bool Random::Bernoulli(double p) {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
}

std::uint64_t Random::Skewed(std::uint64_t n) {
  if (n == 0) return 0;
  if (Bernoulli(0.8)) {
    std::uint64_t hot = n / 5;
    if (hot == 0) hot = 1;
    return Uniform(hot);
  }
  return Uniform(n);
}

std::string Random::Bytes(std::size_t len) {
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

}  // namespace clog
