#ifndef CLOG_COMMON_LOCK_MODE_H_
#define CLOG_COMMON_LOCK_MODE_H_

#include <cstdint>
#include <string_view>

namespace clog {

/// Page lock modes. The paper assumes page-granularity shared/exclusive
/// locking with strict two-phase locking and callback locking for cache
/// consistency (Section 2.1); the fine-granularity extension is noted as
/// the EDBT'96 follow-up paper [16].
enum class LockMode : std::uint8_t {
  kNone = 0,
  kShared = 1,
  kExclusive = 2,
};

/// True iff a holder in mode `held` permits another party in mode `want`.
constexpr bool Compatible(LockMode held, LockMode want) {
  return held == LockMode::kNone || want == LockMode::kNone ||
         (held == LockMode::kShared && want == LockMode::kShared);
}

constexpr std::string_view LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNone:
      return "N";
    case LockMode::kShared:
      return "S";
    case LockMode::kExclusive:
      return "X";
  }
  return "?";
}

}  // namespace clog

#endif  // CLOG_COMMON_LOCK_MODE_H_
