#ifndef CLOG_COMMON_STATUS_H_
#define CLOG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

/// \file
/// Status / Result error handling (no exceptions), in the style the RocksDB
/// and Arrow guides recommend for database engines.

namespace clog {

/// Machine-readable error category.
enum class StatusCode : int {
  kOk = 0,
  kNotFound,            ///< Page, record, or entry does not exist.
  kInvalidArgument,     ///< Caller passed something malformed.
  kIOError,             ///< File read/write/fsync failed.
  kCorruption,          ///< Checksum mismatch or malformed on-disk data.
  kBusy,                ///< Lock conflict; the caller may retry later.
  kDeadlock,            ///< Waits-for cycle; victim must abort.
  kAborted,             ///< Transaction was rolled back.
  kLogFull,             ///< Bounded log has no reclaimable space left.
  kNodeDown,            ///< Target node is crashed / unreachable.
  kFailedPrecondition,  ///< Operation illegal in the current state.
  kNotSupported,        ///< Feature not available in this configuration.
  kUnavailable,         ///< Target is recovering; request parked, retry soon.
};

/// Returns the canonical lower-case name of a code ("ok", "io error", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: a code plus an optional context message.
/// Statuses are cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status LogFull(std::string msg = "") {
    return Status(StatusCode::kLogFull, std::move(msg));
  }
  static Status NodeDown(std::string msg = "") {
    return Status(StatusCode::kNodeDown, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsLogFull() const { return code_ == StatusCode::kLogFull; }
  bool IsNodeDown() const { return code_ == StatusCode::kNodeDown; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "ok" or "<code name>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// Evaluates `expr`; if the resulting Status is not OK, returns it.
#define CLOG_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::clog::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                      \
  } while (0)

}  // namespace clog

#endif  // CLOG_COMMON_STATUS_H_
