#include "common/fsutil.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

namespace clog {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& blob) {
  std::string tmp = path + ".tmp";
  {
    int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (tfd < 0) return Status::IOError(Errno("open " + tmp));
    if (::pwrite(tfd, blob.data(), blob.size(), 0) !=
        static_cast<ssize_t>(blob.size())) {
      Status st = Status::IOError(Errno("write " + tmp));
      ::close(tfd);
      return st;
    }
    if (::fsync(tfd) != 0) {
      Status st = Status::IOError(Errno("fsync " + tmp));
      ::close(tfd);
      return st;
    }
    ::close(tfd);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError(Errno("rename " + path));
  }
  std::string dir = ".";
  if (std::size_t slash = path.find_last_of('/'); slash != std::string::npos) {
    dir = path.substr(0, slash);
  }
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Status::IOError(Errno("open dir " + dir));
  if (::fsync(dfd) != 0) {
    Status st = Status::IOError(Errno("fsync dir " + dir));
    ::close(dfd);
    return st;
  }
  ::close(dfd);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return Status::NotFound("no such file: " + path);
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IOError(Errno("unlink " + path));
  }
  return Status::OK();
}

}  // namespace clog
