#include "common/metrics.h"

#include <algorithm>
#include <cmath>

namespace clog {
namespace {

// Bucket i covers [2^(i/4-ish)] — geometric boundaries via bit width halves.
int BucketFor(std::uint64_t v) {
  if (v == 0) return 0;
  int hi = 63 - __builtin_clzll(v);
  return std::min(hi, 63);
}

std::uint64_t BucketLow(int b) { return b == 0 ? 0 : (1ull << b); }
std::uint64_t BucketHigh(int b) { return b >= 63 ? ~0ull : (1ull << (b + 1)); }

}  // namespace

Histogram::Histogram() = default;

void Histogram::Record(std::uint64_t v) {
  ++buckets_[BucketFor(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(q * count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (seen + buckets_[b] >= rank + 1 && buckets_[b] > 0) {
      double frac = buckets_[b] == 0
                        ? 0
                        : static_cast<double>(rank - seen) / buckets_[b];
      return static_cast<double>(BucketLow(b)) +
             frac * static_cast<double>(BucketHigh(b) - BucketLow(b));
    }
    seen += buckets_[b];
  }
  return static_cast<double>(max_);
}

void Histogram::Reset() { *this = Histogram(); }

Counter& Metrics::GetCounter(const std::string& name) {
  return counters_[name];
}

Histogram& Metrics::GetHistogram(const std::string& name) {
  return histograms_[name];
}

std::uint64_t Metrics::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::Snapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

void Metrics::Reset() {
  for (auto& [_, c] : counters_) c.Reset();
  for (auto& [_, h] : histograms_) h.Reset();
}

std::string Metrics::ToString() const {
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name;
    out += " = ";
    out += std::to_string(c.value());
    out += "\n";
  }
  return out;
}

}  // namespace clog
