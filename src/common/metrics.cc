#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace clog {
namespace {

// Bucket i covers [2^(i/4-ish)] — geometric boundaries via bit width halves.
int BucketFor(std::uint64_t v) {
  if (v == 0) return 0;
  int hi = 63 - __builtin_clzll(v);
  return std::min(hi, 63);
}

std::uint64_t BucketLow(int b) { return b == 0 ? 0 : (1ull << b); }
std::uint64_t BucketHigh(int b) { return b >= 63 ? ~0ull : (1ull << (b + 1)); }

HistogramStat StatOf(const std::string& name, const Histogram& h) {
  HistogramStat s;
  s.name = name;
  s.count = h.count();
  s.mean = h.Mean();
  s.p50 = h.Quantile(0.50);
  s.p95 = h.Quantile(0.95);
  s.p99 = h.Quantile(0.99);
  s.max = h.max();
  return s;
}

}  // namespace

Histogram::Histogram() = default;

void Histogram::Record(std::uint64_t v) {
  std::lock_guard<std::mutex> lk(mu_);
  ++buckets_[BucketFor(v)];
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_;
}

std::uint64_t Histogram::sum() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sum_;
}

std::uint64_t Histogram::min() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_ ? min_ : 0;
}

std::uint64_t Histogram::max() const {
  std::lock_guard<std::mutex> lk(mu_);
  return max_;
}

double Histogram::Mean() const {
  std::lock_guard<std::mutex> lk(mu_);
  return count_ ? static_cast<double>(sum_) / count_ : 0;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lk(mu_);
  return QuantileLocked(q);
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(q * count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (seen + buckets_[b] >= rank + 1 && buckets_[b] > 0) {
      double frac = buckets_[b] == 0
                        ? 0
                        : static_cast<double>(rank - seen) / buckets_[b];
      return static_cast<double>(BucketLow(b)) +
             frac * static_cast<double>(BucketHigh(b) - BucketLow(b));
    }
    seen += buckets_[b];
  }
  return static_cast<double>(max_);
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::uint64_t& b : buckets_) b = 0;
  count_ = 0;
  sum_ = 0;
  min_ = ~0ull;
  max_ = 0;
}

Counter& Metrics::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_[name];
}

Histogram& Metrics::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return histograms_[name];
}

std::uint64_t Metrics::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

HistogramStat Metrics::HistogramValue(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramStat s;
    s.name = name;
    return s;
  }
  return StatOf(name, it->second);
}

std::vector<std::pair<std::string, std::uint64_t>> Metrics::Snapshot() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<HistogramStat> Metrics::HistogramSnapshot() const {
  std::vector<HistogramStat> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.push_back(StatOf(name, h));
  std::sort(out.begin(), out.end(),
            [](const HistogramStat& a, const HistogramStat& b) {
              return a.name < b.name;
            });
  return out;
}

void Metrics::Reset() {
  // Values reset in place; entries (and cached element pointers) survive.
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [_, c] : counters_) c.Reset();
  for (auto& [_, h] : histograms_) h.Reset();
}

std::string Metrics::ToString() const {
  std::string out;
  for (const auto& [name, value] : Snapshot()) {
    out += name;
    out += " = ";
    out += std::to_string(value);
    out += "\n";
  }
  for (const HistogramStat& s : HistogramSnapshot()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ": count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                  "max=%llu\n",
                  static_cast<unsigned long long>(s.count), s.mean, s.p50,
                  s.p95, s.p99, static_cast<unsigned long long>(s.max));
    out += s.name;
    out += buf;
  }
  return out;
}

}  // namespace clog
