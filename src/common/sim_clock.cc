#include "common/sim_clock.h"

// SimClock and CostModel are header-only; this translation unit exists so the
// target has a stable archive member for the build graph.
