#ifndef CLOG_COMMON_FSUTIL_H_
#define CLOG_COMMON_FSUTIL_H_

#include <string>

#include "common/status.h"

/// \file
/// Small durable-file helpers shared by every side file the system keeps
/// next to its database (log master pointer, archive metadata, poison
/// ledger). They all follow the same crash-atomic discipline, so the dance
/// lives in one place.

namespace clog {

/// Crash-atomically replaces `path` with `blob`: write + fsync a temp file
/// (rename must never publish a name whose *contents* are still in the page
/// cache), rename it over `path`, then fsync the directory so the rename
/// itself survives a crash. After OK the old or the new contents are on
/// disk — never a mix, never a torn file.
Status AtomicWriteFile(const std::string& path, const std::string& blob);

/// Reads all of `path` into `*out`. NotFound if the file does not exist.
Status ReadFileToString(const std::string& path, std::string* out);

/// Removes `path` if it exists; absence is not an error.
Status RemoveFileIfExists(const std::string& path);

}  // namespace clog

#endif  // CLOG_COMMON_FSUTIL_H_
