#include "txn/transaction.h"

// Transaction is a plain data holder; logic lives in the node engine.
