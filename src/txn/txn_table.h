#ifndef CLOG_TXN_TXN_TABLE_H_
#define CLOG_TXN_TXN_TABLE_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "txn/transaction.h"
#include "wal/log_record.h"

namespace clog {

/// The node's table of live transactions. Checkpoints snapshot it (the ATT
/// part of the checkpoint record); restart analysis rebuilds it from the
/// log to find loser transactions.
class TxnTable {
 public:
  explicit TxnTable(NodeId node) : node_(node) {}

  /// Creates a new active transaction with a globally unique id.
  Transaction* Begin();

  /// Re-installs a transaction found by restart analysis (a loser being
  /// rolled back). Bumps the id allocator past it so new transactions
  /// never collide with pre-crash ids.
  Transaction* Resurrect(TxnId id, Lsn first_lsn, Lsn last_lsn);

  /// Finds a live transaction (nullptr if unknown).
  Transaction* Find(TxnId id);
  const Transaction* Find(TxnId id) const;

  /// Removes a finished transaction.
  void Remove(TxnId id);

  /// All live transactions.
  std::vector<const Transaction*> Active() const;
  std::size_t ActiveCount() const { return txns_.size(); }

  /// Checkpoint form: every live transaction and its last LSN.
  std::vector<AttEntry> Snapshot() const;

  /// Earliest first_lsn over live transactions (log truncation barrier);
  /// kNullLsn when idle.
  Lsn MinFirstLsn() const;

  /// Loses everything (node crash).
  void Clear() { txns_.clear(); }

 private:
  NodeId node_;
  std::uint64_t next_seq_ = 1;
  std::map<TxnId, Transaction> txns_;
};

}  // namespace clog

#endif  // CLOG_TXN_TXN_TABLE_H_
