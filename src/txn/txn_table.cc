#include "txn/txn_table.h"

namespace clog {

Transaction* TxnTable::Begin() {
  TxnId id = MakeTxnId(node_, next_seq_++);
  Transaction txn;
  txn.id = id;
  auto [it, _] = txns_.emplace(id, std::move(txn));
  return &it->second;
}

Transaction* TxnTable::Resurrect(TxnId id, Lsn first_lsn, Lsn last_lsn) {
  Transaction txn;
  txn.id = id;
  txn.first_lsn = first_lsn;
  txn.last_lsn = last_lsn;
  if (TxnNode(id) == node_) {
    std::uint64_t seq = id & 0xFFFFFFFFFFFFull;
    if (seq >= next_seq_) next_seq_ = seq + 1;
  }
  auto [it, _] = txns_.insert_or_assign(id, std::move(txn));
  return &it->second;
}

Transaction* TxnTable::Find(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

const Transaction* TxnTable::Find(TxnId id) const {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

void TxnTable::Remove(TxnId id) { txns_.erase(id); }

std::vector<const Transaction*> TxnTable::Active() const {
  std::vector<const Transaction*> out;
  for (const auto& [_, txn] : txns_) out.push_back(&txn);
  return out;
}

std::vector<AttEntry> TxnTable::Snapshot() const {
  std::vector<AttEntry> out;
  for (const auto& [id, txn] : txns_) {
    out.push_back(AttEntry{id, txn.last_lsn});
  }
  return out;
}

Lsn TxnTable::MinFirstLsn() const {
  Lsn min = kNullLsn;
  for (const auto& [_, txn] : txns_) {
    if (txn.first_lsn == kNullLsn) continue;
    if (min == kNullLsn || txn.first_lsn < min) min = txn.first_lsn;
  }
  return min;
}

}  // namespace clog
