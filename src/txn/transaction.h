#ifndef CLOG_TXN_TRANSACTION_H_
#define CLOG_TXN_TRANSACTION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "node/options.h"
#include "wal/log_record.h"

/// \file
/// Per-transaction volatile state. Transactions execute entirely on the
/// node that started them (paper Section 2.1); this struct is bookkeeping
/// only — the node engine drives logging, locking, and rollback.

namespace clog {

/// Lifecycle of a transaction.
enum class TxnState : std::uint8_t {
  kActive = 0,
  kCommitted,
  kAborted,
  /// Group commit: the commit record is appended (and the transaction can
  /// no longer be aborted) but not yet durable; the transaction is parked
  /// until a shared log force covers its commit LSN. Never acknowledged to
  /// the caller while in this state.
  kCommitting,
};

/// A savepoint a partial rollback can return to (paper Section 2.2).
struct Savepoint {
  std::string name;
  Lsn lsn = kNullLsn;  ///< LSN of the kSavepoint log record.
};

/// Volatile descriptor of one transaction.
struct Transaction {
  TxnId id = kInvalidTxnId;
  TxnState state = TxnState::kActive;

  Lsn first_lsn = kNullLsn;  ///< LSN of kBegin (log truncation barrier).
  Lsn last_lsn = kNullLsn;   ///< Most recent record (undo chain head).

  std::vector<Savepoint> savepoints;

  /// Pages this transaction updated (commit processing in the baseline
  /// modes forces/ships them; statistics otherwise).
  std::set<PageId> updated_pages;

  /// Baseline B1 (ship-to-owner) only: log records not yet shipped.
  std::vector<LogRecord> pending_records;

  /// Transactions that blocked this one on its last Busy result; feeds the
  /// cluster deadlock detector.
  std::vector<TxnId> last_blockers;

  std::uint64_t updates = 0;  ///< Logged update count (metrics).

  // --- Adaptive logging (LogStrategy::kAdaptive) ---

  /// Strategy resolved at Begin (node policy, possibly overridden per-txn).
  LogStrategy strategy = LogStrategy::kPhysical;
  /// True once the transaction has been upgraded to physical logging (its
  /// stashed before-images were backfilled into the log, or it had none).
  /// Upgraded transactions never emit another logical record.
  bool upgraded = false;
  /// Volatile before-images of this transaction's kLogicalUpdate records,
  /// keyed by record LSN. Discarded at commit; written into one
  /// kUndoBackfill record on upgrade; consulted by rollback (and refilled
  /// from the backfill record when a resurrected loser rolls back).
  std::map<Lsn, std::string> logical_undos;
  /// Committed predecessors whose pages this (adaptive) transaction
  /// touched: txn id -> commit LSN. Encoded into the commit record so
  /// dependency-aware redo keeps the chains ordered.
  std::map<TxnId, Lsn> commit_deps;
};

}  // namespace clog

#endif  // CLOG_TXN_TRANSACTION_H_
