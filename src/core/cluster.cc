#include "core/cluster.h"

#include <sys/stat.h>

#include "trace/trace_sink.h"

namespace clog {
namespace {

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + path);
  }
  return Status::OK();
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      clock_(options_.execution_mode == ExecutionMode::kRealThreads
                 ? std::unique_ptr<Clock>(std::make_unique<WallClock>())
                 : std::unique_ptr<Clock>(std::make_unique<SimClock>())),
      executor_(options_.execution_mode == ExecutionMode::kRealThreads
                    ? std::unique_ptr<Executor>(
                          std::make_unique<ThreadPerNodeExecutor>())
                    : std::unique_ptr<Executor>(
                          std::make_unique<InlineExecutor>())),
      network_(clock_.get(), options_.cost) {
  network_.set_executor(executor_.get());
  network_.set_fault_injector(options_.fault_injector);
  network_.set_retry_policy(options_.retry_policy);
  if (options_.trace_sink != nullptr) {
    options_.trace_sink->BindClock(clock_.get());
    network_.set_trace_sink(options_.trace_sink);
  }
}

Cluster::~Cluster() {
  // Sweepers go first: they run through Execute, which needs live workers.
  JoinRestoreSweepers();
  // Join every node worker before nodes_ (and the network they message
  // through) start destructing.
  executor_->StopAll();
}

void Cluster::JoinRestoreSweepers() {
  for (std::thread& t : restore_sweepers_) {
    if (t.joinable()) t.join();
  }
  restore_sweepers_.clear();
}

Result<Node*> Cluster::AddNode(std::optional<NodeOptions> overrides) {
  NodeId id = next_id_++;
  NodeOptions opts = overrides.value_or(options_.node_defaults);
  opts.dir = options_.dir + "/node" + std::to_string(id);
  if (opts.fault_injector == nullptr) {
    opts.fault_injector = options_.fault_injector;
  }
  // Unified-policy inheritance: a node override that customized nothing
  // takes the cluster policy wholesale.
  if (opts.logging_policy.strategy == LogStrategy::kPhysical &&
      opts.logging_policy.redo_workers == 0 &&
      !opts.logging_policy.group_commit.enabled &&
      !opts.logging_policy.archive.enabled) {
    opts.logging_policy = options_.logging_policy;
  }
  if (opts.trace_sink == nullptr) {
    opts.trace_sink = options_.trace_sink;
  }
  CLOG_RETURN_IF_ERROR(EnsureDir(options_.dir));
  CLOG_RETURN_IF_ERROR(EnsureDir(opts.dir));
  auto node = std::make_unique<Node>(id, opts, &network_, &detector_);
  // Before Start: restart-time handoff registration publishes adopted
  // pages into the shared directory.
  node->set_directory(&directory_);
  CLOG_RETURN_IF_ERROR(node->Start());
  executor_->StartNode(id);
  Node* raw = node.get();
  // Real mode runs the lock-free WAL front end: appends go to per-thread
  // staging buffers and a background drainer assembles them. Sim keeps the
  // inline drain (deterministic, byte-identical schedules).
  if (executor_->real_threads() && opts.has_local_log) {
    raw->log().StartDrainer();
  }
  nodes_[id] = std::move(node);
  return raw;
}

Node* Cluster::node(NodeId id) {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> Cluster::NodeIds() const {
  std::vector<NodeId> out;
  for (const auto& [id, _] : nodes_) {
    if (departed_.count(id) != 0) continue;
    out.push_back(id);
  }
  return out;
}

Status Cluster::CrashNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->state() == NodeState::kDown) {
    return Status::FailedPrecondition("node already down");
  }
  HaltNode(n);
  return Status::OK();
}

void Cluster::HaltNode(Node* n) {
  if (n->state() == NodeState::kDown) return;
  if (executor_->real_threads()) {
    // Peers must stop routing to the victim before its worker is joined:
    // StopNode waits for the in-flight handler, and a peer that kept
    // enqueueing against a full mailbox would deadlock the join.
    network_.SetNodeUp(n->id(), false);
    executor_->StopNode(n->id());
  }
  n->Crash();
}

Status Cluster::RestartNode(NodeId id) {
  return RestartNodes({id});
}

Status Cluster::RestartNodes(const std::vector<NodeId>& ids) {
  // Sweepers from an earlier round first: one may target a node in `ids`
  // (it exits on NodeDown), and unbounded accumulation helps nobody.
  JoinRestoreSweepers();
  recovery_stats_.clear();
  struct Entry {
    NodeId id = kInvalidNodeId;
    std::unique_ptr<RestartRecovery> rec;
    bool abandoned = false;
  };
  std::vector<Entry> entries;
  std::uint64_t t0 = clock_->NowNanos();
  for (NodeId id : ids) {
    Node* n = node(id);
    if (n == nullptr) return Status::NotFound("no such node");
    if (departed_.count(id) != 0) {
      return Status::FailedPrecondition("node departed the cluster");
    }
    if (n->state() != NodeState::kDown) {
      return Status::FailedPrecondition("node not crashed");
    }
    entries.push_back(Entry{id, std::make_unique<RestartRecovery>(n), false});
  }
  // Real mode: each restarting node needs a live execution context before
  // its recovery phases (and peer RPCs targeting it) can run.
  for (const Entry& e : entries) executor_->StartNode(e.id);

  // Losing any participant voids the whole round: Section 2.4 recovery is
  // only correct when every crashed node's analysis state (its DPT
  // supersets, its exclusive-lock claims, its log's redo runs) is visible
  // to the others, and a node that dies mid-round takes that state with
  // it — survivors that kept going would finish recovery with pages
  // silently missing the dead node's updates. So the first abandonment
  // fail-stops every entry that has not already gone operational; the
  // caller re-enters the full set in a later RestartNodes.
  auto abandon_round = [&]() {
    for (Entry& e : entries) {
      if (e.abandoned) continue;
      Node* n = node(e.id);
      if (n->state() == NodeState::kUp) continue;  // Finished before the loss.
      HaltNode(n);
      e.abandoned = true;
    }
  };

  // One phase across every node still in the round. Two ways a node drops
  // out mid-restart, both fail-stop (crash back to kDown, partial restart
  // discarded, a later RestartNodes re-enters from scratch):
  //  - the phase itself hit NodeDown — a peer its recovery depended on
  //    vanished mid-conversation;
  //  - the phase hook crashed the node at this boundary
  //    (crash-during-recovery torture).
  auto run_phase = [&](Status (RestartRecovery::*phase)(),
                       RecoveryPhase boundary) -> Status {
    for (Entry& e : entries) {
      if (e.abandoned) continue;
      Node* n = node(e.id);
      RestartRecovery* rec = e.rec.get();
      Status st;
      Status run = Execute(e.id, [rec, phase, &st] { st = ((*rec).*phase)(); });
      if (!run.ok()) st = run;
      if (st.IsNodeDown()) {
        HaltNode(n);
        e.abandoned = true;
        abandon_round();
        continue;
      }
      CLOG_RETURN_IF_ERROR(st);
      if (recovery_phase_hook_) recovery_phase_hook_(e.id, boundary);
      if (n->state() == NodeState::kDown) {
        e.abandoned = true;
        abandon_round();
      }
    }
    return Status::OK();
  };

  // Section 2.4 staging: every crashed node rebuilds its superset DPT by
  // local analysis before any node exchanges recovery state, then all
  // exchange, all redo, all undo and resume.
  CLOG_RETURN_IF_ERROR(
      run_phase(&RestartRecovery::OpenAndAnalyze, RecoveryPhase::kAnalyzed));
  CLOG_RETURN_IF_ERROR(run_phase(&RestartRecovery::ExchangePeerState,
                                 RecoveryPhase::kExchanged));
  CLOG_RETURN_IF_ERROR(
      run_phase(&RestartRecovery::RedoPages, RecoveryPhase::kRedone));
  CLOG_RETURN_IF_ERROR(run_phase(&RestartRecovery::UndoLosersAndFinish,
                                 RecoveryPhase::kFinished));

  // A node that abandoned mid-round is down again; its worker must not
  // outlive the round.
  for (Entry& e : entries) {
    if (e.abandoned && executor_->real_threads()) executor_->StopNode(e.id);
  }

  std::uint64_t elapsed = clock_->NowNanos() - t0;
  for (Entry& e : entries) {
    if (e.abandoned) continue;
    RestartRecovery::Stats stats = e.rec->stats();
    if (stats.sim_ns == 0) stats.sim_ns = elapsed;
    recovery_stats_[e.id] = stats;
  }

  // Recovery itself appends inline (Open resets the log to inline mode;
  // the phases run single-threaded per node). Once a node is operational
  // again, real mode switches its WAL back to the lock-free front end.
  if (executor_->real_threads()) {
    for (const Entry& e : entries) {
      if (e.abandoned) continue;
      Node* n = node(e.id);
      if (n->options().has_local_log) n->log().StartDrainer();
    }
  }

  // Real mode: a node that came up with instant-restore work pending gets a
  // dedicated sweeper draining the cold tail through its execution context,
  // concurrently with client traffic. (Sim mode sweeps inline per committed
  // RunTransaction instead — no extra thread, no schedule perturbation.)
  if (executor_->real_threads()) {
    for (const Entry& e : entries) {
      if (e.abandoned) continue;
      Node* n = node(e.id);
      if (n->RestorePendingCount() == 0) continue;
      NodeId id = e.id;
      restore_sweepers_.emplace_back([this, n, id] {
        for (;;) {
          std::size_t before = 0, after = 0;
          Status st = Execute(id, [&] {
            before = n->RestorePendingCount();
            after = n->SweepRestore();
          });
          // Stop when drained, the node went down, or a pass made no
          // progress (rebuild blocked on a down peer — an on-demand touch
          // or the next restart finishes the job).
          if (!st.ok() || after == 0 || after >= before) return;
        }
      });
    }
  }
  return Status::OK();
}

Status Cluster::DisconnectNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->state() != NodeState::kUp) {
    return Status::FailedPrecondition("node not up");
  }
  network_.SetNodeUp(id, false);
  return Status::OK();
}

Status Cluster::ReconnectNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (n->state() != NodeState::kUp) {
    return Status::FailedPrecondition("node not up (crashed nodes restart)");
  }
  network_.SetNodeUp(id, true);
  return Status::OK();
}

Status Cluster::ReplaceAndRestartNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return Status::NotFound("no such node");
  if (departed_.count(id) != 0) {
    return Status::FailedPrecondition("node departed the cluster");
  }
  if (it->second->state() != NodeState::kDown) {
    return Status::FailedPrecondition("node not crashed");
  }
  NodeOptions opts = it->second->options();
  // The old process is gone; the standby attaches to the same files.
  it->second = std::make_unique<Node>(id, opts, &network_, &detector_);
  it->second->set_directory(&directory_);
  return RestartNodes({id});
}

// ---------------------------------------------------------------------------
// Elastic membership (docs/PROTOCOLS.md, "Membership & ownership handoff")
// ---------------------------------------------------------------------------

Result<Node*> Cluster::JoinNode(std::optional<NodeOptions> overrides) {
  CLOG_ASSIGN_OR_RETURN(Node * n, AddNode(std::move(overrides)));
  directory_.BumpEpoch();
  return n;
}

Status Cluster::HandoffPage(PageId pid, NodeId to) {
  const NodeId from = directory_.OwnerOf(pid);
  if (from == to) return Status::OK();
  Node* src = node(from);
  Node* dst = node(to);
  if (src == nullptr || dst == nullptr) return Status::NotFound("no such node");
  if (departed_.count(from) != 0 || departed_.count(to) != 0) {
    return Status::FailedPrecondition("handoff endpoint departed");
  }

  // After every durable boundary the hook may crash either endpoint; the
  // ledgers carry the handoff from there (restart re-entry or a later
  // ResolveHandoffs), so a dead endpoint just ends this driver early.
  auto boundary = [&](HandoffPhase phase) -> Status {
    if (handoff_phase_hook_) handoff_phase_hook_(pid, phase);
    if (src->state() != NodeState::kUp) {
      return Status::NodeDown("handoff source crashed at boundary");
    }
    if (dst->state() != NodeState::kUp) {
      return Status::NodeDown("handoff target crashed at boundary");
    }
    return Status::OK();
  };
  auto run = [&]() -> Status {
    Status st;
    CLOG_RETURN_IF_ERROR(
        Execute(from, [&] { st = src->HandoffPrepare(pid, to); }));
    CLOG_RETURN_IF_ERROR(st);
    CLOG_RETURN_IF_ERROR(boundary(HandoffPhase::kPrepared));
    CLOG_RETURN_IF_ERROR(Execute(from, [&] { st = src->HandoffShip(pid); }));
    CLOG_RETURN_IF_ERROR(st);
    CLOG_RETURN_IF_ERROR(boundary(HandoffPhase::kShipped));
    CLOG_RETURN_IF_ERROR(
        Execute(from, [&] { st = src->HandoffTransfer(pid); }));
    CLOG_RETURN_IF_ERROR(st);
    CLOG_RETURN_IF_ERROR(boundary(HandoffPhase::kTransferred));
    CLOG_RETURN_IF_ERROR(
        Execute(from, [&] { st = src->HandoffComplete(pid); }));
    CLOG_RETURN_IF_ERROR(st);
    return boundary(HandoffPhase::kCompleted);
  };
  Status out = run();
  if (!out.ok() && src->state() == NodeState::kUp) {
    // Best effort: a live source should not stay fenced behind a doomed
    // handoff (a prepared record aborts; an in-doubt shipped one queries).
    Execute(from, [&] { src->ResolvePendingHandoffs(nullptr).ok(); }).ok();
  }
  return out;
}

Status Cluster::LeaveNode(NodeId id) {
  Node* n = node(id);
  if (n == nullptr) return Status::NotFound("no such node");
  if (departed_.count(id) != 0) {
    return Status::FailedPrecondition("node already departed");
  }
  if (n->state() != NodeState::kUp) {
    return Status::FailedPrecondition("node not up (crashed nodes cannot "
                                      "leave gracefully)");
  }
  std::vector<NodeId> recipients;
  for (auto& [nid, other] : nodes_) {
    if (nid == id || departed_.count(nid) != 0) continue;
    if (other->state() == NodeState::kUp) recipients.push_back(nid);
  }
  if (recipients.empty()) {
    return Status::FailedPrecondition("no live recipient to drain to");
  }
  std::vector<PageId> owned;
  CLOG_RETURN_IF_ERROR(Execute(id, [&] { owned = n->OwnedPages(); }));
  std::size_t rr = 0;
  for (PageId pid : owned) {
    // A failed drain handoff (Busy page, endpoint crash) aborts the leave;
    // pages already moved stay moved and the caller may retry later.
    CLOG_RETURN_IF_ERROR(HandoffPage(pid, recipients[rr++ % recipients.size()]));
  }
  // Owned pages are gone; now hand back every lock this node cached on
  // other owners' pages (forcing its remote dirt durable at the owners
  // first), so no global lock table remembers a node that will never
  // answer a callback again.
  Status depart;
  CLOG_RETURN_IF_ERROR(Execute(id, [&] { depart = n->PrepareDeparture(); }));
  CLOG_RETURN_IF_ERROR(depart);
  network_.SetNodeDeparted(id);
  HaltNode(n);
  departed_.insert(id);
  directory_.BumpEpoch();
  return Status::OK();
}

Status Cluster::ResolveHandoffs(std::size_t* resolved) {
  std::size_t total = 0;
  for (auto& [id, n] : nodes_) {
    if (departed_.count(id) != 0) continue;
    if (n->state() != NodeState::kUp) continue;
    Status st;
    std::size_t count = 0;
    CLOG_RETURN_IF_ERROR(
        Execute(id, [&] { st = n->ResolvePendingHandoffs(&count); }));
    CLOG_RETURN_IF_ERROR(st);
    total += count;
  }
  if (resolved != nullptr) *resolved = total;
  return Status::OK();
}

Status Cluster::RunTransaction(NodeId node_id,
                               const std::function<Status(TxnHandle&)>& body,
                               int max_attempts) {
  // The retry loop calls straight into Node, so in real-threads mode the
  // whole attempt sequence hops onto the node's own worker; client threads
  // block here until their transaction resolves.
  Status out;
  CLOG_RETURN_IF_ERROR(Execute(
      node_id, [&] { out = RunTransactionImpl(node_id, body, max_attempts); }));
  return out;
}

Status Cluster::Execute(NodeId id, const std::function<void()>& fn) {
  if (!executor_->real_threads()) {
    fn();
    return Status::OK();
  }
  if (!executor_->Run(id, fn)) {
    return Status::NodeDown("node " + std::to_string(id) +
                            " execution context stopped");
  }
  return Status::OK();
}

Status Cluster::RunTransactionImpl(
    NodeId node_id, const std::function<Status(TxnHandle&)>& body,
    int max_attempts) {
  Node* n = node(node_id);
  if (n == nullptr) return Status::NotFound("no such node");
  Status last = Status::Busy("not attempted");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    CLOG_ASSIGN_OR_RETURN(TxnId txn, n->Begin());
    TxnHandle handle(n, txn);
    Status st = body(handle);
    if (st.ok()) {
      st = handle.Commit();
      if (st.ok()) {
        detector_.RemoveTxn(txn);
        // Sim-mode instant restore: committed client work also advances
        // the background drain by one batch. No-op unless restoring.
        n->SweepRestore();
        return Status::OK();
      }
    }
    // Busy: register the wait; a cycle (or any terminal error) aborts.
    if (st.IsBusy()) {
      NoteBusyAndCheckDeadlock(txn, n->LastBlockers(txn));
    }
    detector_.RemoveTxn(txn);
    handle.Abort().ok();  // Best effort; the txn may be gone already.
    last = st;
    if (!st.IsBusy() && !st.IsDeadlock()) return st;
  }
  return last;
}

bool Cluster::NoteBusyAndCheckDeadlock(TxnId waiter,
                                       const std::vector<TxnId>& blockers) {
  detector_.AddWaits(waiter, blockers);
  if (detector_.CyclesThrough(waiter)) {
    detector_.ClearWaits(waiter);
    if (options_.trace_sink != nullptr) {
      options_.trace_sink->Emit(TxnNode(waiter), TraceEventType::kDeadlock,
                                waiter);
    }
    return true;
  }
  return false;
}

std::uint64_t Cluster::SumCounter(const std::string& name) {
  std::uint64_t total = 0;
  for (auto& [_, n] : nodes_) total += n->metrics().CounterValue(name);
  return total;
}

}  // namespace clog
