#include "core/workload.h"

namespace clog {

Status PopulatePage(Cluster* cluster, NodeId owner_node, PageId pid,
                    std::size_t records, std::size_t payload_bytes,
                    Random* rng) {
  return cluster->RunTransaction(owner_node, [&](TxnHandle& txn) -> Status {
    for (std::size_t i = 0; i < records; ++i) {
      Result<RecordId> rid = txn.Insert(pid, rng->Bytes(payload_bytes));
      if (!rid.ok()) return rid.status();
    }
    return Status::OK();
  });
}

Result<std::vector<PageId>> AllocatePopulatedPages(Cluster* cluster,
                                                   NodeId owner,
                                                   std::size_t count,
                                                   std::size_t records,
                                                   std::size_t payload_bytes,
                                                   std::uint64_t seed) {
  Node* n = cluster->node(owner);
  if (n == nullptr) return Status::NotFound("no such node");
  Random rng(seed);
  std::vector<PageId> pages;
  pages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CLOG_ASSIGN_OR_RETURN(PageId pid, n->AllocatePage());
    CLOG_RETURN_IF_ERROR(
        PopulatePage(cluster, owner, pid, records, payload_bytes, &rng));
    pages.push_back(pid);
  }
  return pages;
}

WorkloadDriver::WorkloadDriver(
    Cluster* cluster, WorkloadConfig config,
    std::vector<std::pair<NodeId, std::vector<PageId>>> sessions)
    : cluster_(cluster), config_(config) {
  std::uint64_t salt = 0;
  for (auto& [node, pages] : sessions) {
    Session s;
    s.node = node;
    s.pages = std::move(pages);
    s.rng = Random(config_.seed ^ (0x9E37 * ++salt));
    sessions_.push_back(std::move(s));
  }
}

Status WorkloadDriver::AbortAndRetry(Session* s, bool count_deadlock) {
  Node* n = cluster_->node(s->node);
  cluster_->detector().RemoveTxn(s->txn);
  n->Abort(s->txn).ok();
  s->txn = kInvalidTxnId;
  s->ops_done = 0;
  if (count_deadlock) ++stats_.aborted_deadlock;
  ++s->attempts;
  if (s->attempts > config_.max_txn_attempts) {
    // Give up on this transaction; move to the next one so the run always
    // terminates.
    ++s->txns_done;
    s->attempts = 0;
  }
  return Status::OK();
}

Status WorkloadDriver::Step(Session* s) {
  if (s->finished) return Status::OK();
  if (s->txns_done >= config_.txns_per_session) {
    s->finished = true;
    return Status::OK();
  }
  Node* n = cluster_->node(s->node);

  if (s->txn == kInvalidTxnId) {
    Result<TxnId> txn = n->Begin();
    if (!txn.ok()) return txn.status();
    s->txn = *txn;
    s->ops_done = 0;
    return Status::OK();
  }

  if (s->ops_done >= config_.ops_per_txn) {
    Status st = n->Commit(s->txn);
    if (!st.ok()) return st;
    cluster_->detector().RemoveTxn(s->txn);
    s->txn = kInvalidTxnId;
    s->attempts = 0;
    ++s->txns_done;
    ++stats_.committed;
    return Status::OK();
  }

  // One record operation.
  std::size_t page_idx = config_.skewed
                             ? s->rng.Skewed(s->pages.size())
                             : s->rng.Uniform(s->pages.size());
  RecordId rid{s->pages[page_idx],
               static_cast<SlotId>(s->rng.Uniform(config_.records_per_page))};
  Status st;
  if (s->rng.Bernoulli(config_.update_fraction)) {
    st = n->Update(s->txn, rid, s->rng.Bytes(config_.payload_bytes));
  } else {
    st = n->Read(s->txn, rid).status();
  }
  if (st.ok()) {
    ++s->ops_done;
    ++stats_.ops;
    return Status::OK();
  }
  if (st.IsBusy()) {
    ++stats_.busy_waits;
    bool deadlock =
        cluster_->NoteBusyAndCheckDeadlock(s->txn, n->LastBlockers(s->txn));
    if (deadlock) return AbortAndRetry(s, /*count_deadlock=*/true);
    // Otherwise stay blocked; the holder finishes in a later round.
    ++s->attempts;
    if (s->attempts > config_.max_txn_attempts) {
      return AbortAndRetry(s, /*count_deadlock=*/false);
    }
    return Status::OK();
  }
  if (st.IsDeadlock() || st.IsNodeDown()) {
    return AbortAndRetry(s, st.IsDeadlock());
  }
  return st;
}

Status WorkloadDriver::Run() {
  std::uint64_t t0 = cluster_->clock().NowNanos();
  bool all_done = false;
  // Round-robin until every session completes. Each full round with no
  // progress at all would mean a livelock; the attempt caps guarantee
  // termination regardless.
  while (!all_done) {
    all_done = true;
    for (Session& s : sessions_) {
      CLOG_RETURN_IF_ERROR(Step(&s));
      if (!s.finished) all_done = false;
    }
  }
  stats_.sim_ns = cluster_->clock().NowNanos() - t0;
  return Status::OK();
}

}  // namespace clog
