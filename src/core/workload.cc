#include "core/workload.h"

namespace clog {

Status PopulatePage(Cluster* cluster, NodeId owner_node, PageId pid,
                    std::size_t records, std::size_t payload_bytes,
                    Random* rng) {
  return cluster->RunTransaction(owner_node, [&](TxnHandle& txn) -> Status {
    for (std::size_t i = 0; i < records; ++i) {
      Result<RecordId> rid = txn.Insert(pid, rng->Bytes(payload_bytes));
      if (!rid.ok()) return rid.status();
    }
    return Status::OK();
  });
}

Result<std::vector<PageId>> AllocatePopulatedPages(Cluster* cluster,
                                                   NodeId owner,
                                                   std::size_t count,
                                                   std::size_t records,
                                                   std::size_t payload_bytes,
                                                   std::uint64_t seed) {
  Node* n = cluster->node(owner);
  if (n == nullptr) return Status::NotFound("no such node");
  Random rng(seed);
  std::vector<PageId> pages;
  pages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CLOG_ASSIGN_OR_RETURN(PageId pid, n->AllocatePage());
    CLOG_RETURN_IF_ERROR(
        PopulatePage(cluster, owner, pid, records, payload_bytes, &rng));
    pages.push_back(pid);
  }
  return pages;
}

WorkloadDriver::WorkloadDriver(
    Cluster* cluster, WorkloadConfig config,
    std::vector<std::pair<NodeId, std::vector<PageId>>> sessions)
    : cluster_(cluster), config_(config) {
  std::uint64_t salt = 0;
  for (auto& [node, pages] : sessions) {
    Session s;
    s.node = node;
    s.pages = std::move(pages);
    s.rng = Random(config_.seed ^ (0x9E37 * ++salt));
    sessions_.push_back(std::move(s));
  }
}

Status WorkloadDriver::AbortAndRetry(Session* s, bool count_deadlock) {
  Node* n = cluster_->node(s->node);
  cluster_->detector().RemoveTxn(s->txn);
  TxnHandle(n, s->txn).Abort().ok();
  s->txn = kInvalidTxnId;
  s->ops_done = 0;
  s->commit_parked = false;
  if (count_deadlock) {
    ++stats_.aborted_deadlock;
    n->metrics().GetCounter("workload.aborted_contention").Add(1);
  }
  ++s->attempts;
  if (s->attempts > config_.max_txn_attempts) {
    // Give up on this transaction; move to the next one so the run always
    // terminates.
    ++s->txns_done;
    ++stats_.gave_up;
    s->attempts = 0;
    s->availability_retries = 0;
  }
  return Status::OK();
}

Status WorkloadDriver::AvailabilityAbort(Session* s, bool txn_lost) {
  Node* n = cluster_->node(s->node);
  if (s->txn != kInvalidTxnId) {
    cluster_->detector().RemoveTxn(s->txn);
    // A transaction that died with its own node cannot be aborted — its
    // volatile state is already gone; recovery undoes it from the log.
    if (!txn_lost) TxnHandle(n, s->txn).Abort().ok();
    s->txn = kInvalidTxnId;
  }
  s->ops_done = 0;
  s->commit_parked = false;
  ++stats_.aborted_availability;
  n->metrics().GetCounter("workload.aborted_availability").Add(1);
  ++s->availability_retries;
  if (s->availability_retries > config_.max_availability_retries) {
    // Clean abort: the cluster never came back for this transaction.
    ++s->txns_done;
    ++stats_.gave_up;
    s->attempts = 0;
    s->availability_retries = 0;
  }
  return Status::OK();
}

Status WorkloadDriver::Step(Session* s) {
  if (s->finished) return Status::OK();
  if (s->txns_done >= config_.txns_per_session) {
    s->finished = true;
    return Status::OK();
  }
  Node* n = cluster_->node(s->node);

  // The session's own node is down or mid-recovery: any in-flight
  // transaction died with it. Wait out the restart instead of failing the
  // run — a crash is a wait, not an error (docs/availability.md) — but
  // bound the wait so Run terminates even if nobody restarts the node.
  if (n->state() != NodeState::kUp) {
    if (s->txn != kInvalidTxnId) {
      CLOG_RETURN_IF_ERROR(AvailabilityAbort(s, /*txn_lost=*/true));
    }
    ++stats_.down_waits;
    if (++s->down_polls > config_.max_down_polls) {
      stats_.gave_up += config_.txns_per_session - s->txns_done;
      s->finished = true;
      return Status::OK();
    }
    cluster_->clock().Advance(config_.down_poll_ns);
    return Status::OK();
  }
  s->down_polls = 0;

  if (s->txn == kInvalidTxnId) {
    Result<TxnHandle> txn = TxnHandle::Begin(n);
    if (!txn.ok()) return txn.status();
    s->txn = txn->id();
    s->ops_done = 0;
    return Status::OK();
  }

  TxnHandle handle(n, s->txn);
  if (s->ops_done >= config_.ops_per_txn) {
    // CommitRequest is plain Commit when group commit is off (returns
    // durable=true); with the policy on, the first call parks the
    // transaction and later rounds poll until the shared force lands.
    Result<bool> r =
        s->commit_parked ? handle.PollCommit() : handle.CommitRequest();
    Status st = r.status();
    if (st.IsNodeDown() || st.IsUnavailable()) {
      // Commit-time communication (ship-to-owner baselines) hit a crashed
      // or recovering peer: re-run the transaction.
      return AvailabilityAbort(s, /*txn_lost=*/false);
    }
    if (!st.ok()) return st;
    if (!*r) {
      if (!s->commit_parked) {
        s->commit_parked = true;
        ++stats_.commit_parks;
      }
      // Waiting in the commit group is simulated time: charge a poll tick
      // so the coalescing window expires even when every session is parked.
      ++stats_.group_waits;
      cluster_->clock().Advance(config_.group_poll_ns);
      return Status::OK();
    }
    s->commit_parked = false;
    cluster_->detector().RemoveTxn(s->txn);
    s->txn = kInvalidTxnId;
    s->attempts = 0;
    s->availability_retries = 0;
    ++s->txns_done;
    ++stats_.committed;
    return Status::OK();
  }

  // One record operation.
  std::size_t page_idx = config_.skewed
                             ? s->rng.Skewed(s->pages.size())
                             : s->rng.Uniform(s->pages.size());
  RecordId rid{s->pages[page_idx],
               static_cast<SlotId>(s->rng.Uniform(config_.records_per_page))};
  Status st;
  if (s->rng.Bernoulli(config_.update_fraction)) {
    st = handle.Update(rid, s->rng.Bytes(config_.payload_bytes));
  } else {
    st = handle.Read(rid).status();
  }
  if (st.ok()) {
    ++s->ops_done;
    ++stats_.ops;
    return Status::OK();
  }
  if (st.IsBusy()) {
    ++stats_.busy_waits;
    bool deadlock =
        cluster_->NoteBusyAndCheckDeadlock(s->txn, n->LastBlockers(s->txn));
    if (deadlock) return AbortAndRetry(s, /*count_deadlock=*/true);
    // Otherwise stay blocked; the holder finishes in a later round.
    ++s->attempts;
    if (s->attempts > config_.max_txn_attempts) {
      return AbortAndRetry(s, /*count_deadlock=*/false);
    }
    return Status::OK();
  }
  if (st.IsDeadlock()) {
    return AbortAndRetry(s, /*count_deadlock=*/true);
  }
  if (st.IsNodeDown() || st.IsUnavailable()) {
    // Availability, not contention: a page owner is crashed or recovering.
    // Formerly conflated with deadlock aborts; they answer a different
    // question (how the cluster rides through failures, not how it locks).
    return AvailabilityAbort(s, /*txn_lost=*/false);
  }
  return st;
}

Status WorkloadDriver::Run() {
  std::uint64_t t0 = cluster_->clock().NowNanos();
  bool all_done = false;
  std::uint64_t round = 0;
  // Round-robin until every session completes. Each full round with no
  // progress at all would mean a livelock; the attempt caps guarantee
  // termination regardless.
  while (!all_done) {
    if (round_hook_) round_hook_(round);
    ++round;
    all_done = true;
    for (Session& s : sessions_) {
      CLOG_RETURN_IF_ERROR(Step(&s));
      if (!s.finished) all_done = false;
    }
  }
  stats_.sim_ns = cluster_->clock().NowNanos() - t0;
  return Status::OK();
}

}  // namespace clog
