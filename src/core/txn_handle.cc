#include "core/cluster.h"

// TxnHandle is header-only forwarding; this file anchors the target.
