#ifndef CLOG_CORE_MEMBERSHIP_H_
#define CLOG_CORE_MEMBERSHIP_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

/// \file
/// Elastic membership: the cluster-shared ownership directory.
///
/// A PageId bakes its *home* node into the identity (`pid.owner`) — that
/// never changes, because log records, lock tables, DPT entries, and the
/// model in every test key off it. What elastic membership moves is the
/// *current owner*: the node that stores the durable copy, runs the global
/// lock table for the page, and answers FlushRequests. The directory maps
/// pid -> current owner for the (typically few) pages that have moved;
/// every page not listed is owned by its home node, so a cluster that never
/// hands a page off pays nothing and behaves byte-identically to before.
///
/// The directory itself is volatile routing state. Ground truth is the
/// durable per-node handoff ledgers (node/handoff_ledger.h): an adoption
/// record at the new owner, a ceded tombstone at the old one. Nodes
/// re-register their adopted pages here when they (re)start, so the
/// directory converges to the ledgers after any crash.

namespace clog {

/// Thread-safe pid -> current-owner map plus the membership epoch. One per
/// Cluster; nodes hold a pointer (may be null in single-node unit tests, in
/// which case every page is owned by its home).
class OwnershipDirectory {
 public:
  /// Current owner of `pid`: the directory entry, or the home node.
  NodeId OwnerOf(PageId pid) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = moved_.find(pid.Pack());
    return it == moved_.end() ? pid.owner : it->second;
  }

  /// Registers `node` as the current owner. Registering the home node
  /// erases the entry (the page moved back). Bumps the epoch when the
  /// effective owner actually changes.
  void SetOwner(PageId pid, NodeId node) {
    std::lock_guard<std::mutex> g(mu_);
    auto it = moved_.find(pid.Pack());
    NodeId prev = it == moved_.end() ? pid.owner : it->second;
    if (prev == node) return;
    if (node == pid.owner) {
      moved_.erase(pid.Pack());
    } else {
      moved_[pid.Pack()] = node;
    }
    ++epoch_;
  }

  /// Membership epoch: bumped on every ownership change and on every
  /// join/leave (BumpEpoch). Carried in handoff offers for observability.
  std::uint64_t epoch() const {
    std::lock_guard<std::mutex> g(mu_);
    return epoch_;
  }

  void BumpEpoch() {
    std::lock_guard<std::mutex> g(mu_);
    ++epoch_;
  }

  /// Every page whose current owner is not its home node.
  std::vector<std::pair<PageId, NodeId>> Moved() const {
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::pair<PageId, NodeId>> out;
    out.reserve(moved_.size());
    for (const auto& [packed, node] : moved_) {
      out.emplace_back(PageId::Unpack(packed), node);
    }
    return out;
  }

  std::size_t MovedCount() const {
    std::lock_guard<std::mutex> g(mu_);
    return moved_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, NodeId> moved_;
  std::uint64_t epoch_ = 0;
};

}  // namespace clog

#endif  // CLOG_CORE_MEMBERSHIP_H_
