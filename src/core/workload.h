#ifndef CLOG_CORE_WORKLOAD_H_
#define CLOG_CORE_WORKLOAD_H_

#include <functional>
#include <map>
#include <vector>

#include "common/random.h"
#include "core/cluster.h"

/// \file
/// Deterministic workload machinery shared by the benchmark harness, the
/// examples, and the property tests: page population helpers and a
/// round-robin multi-session driver that interleaves transactions across
/// nodes (creating real lock contention, callbacks, and deadlocks) while
/// remaining fully reproducible from a seed.

namespace clog {

/// Fills `pid` (owned by `owner_node`) with `records` records of
/// `payload_bytes` each, in one committed transaction.
Status PopulatePage(Cluster* cluster, NodeId owner_node, PageId pid,
                    std::size_t records, std::size_t payload_bytes,
                    Random* rng);

/// Allocates `count` pages on `owner` and populates each with `records`
/// records of `payload_bytes`.
Result<std::vector<PageId>> AllocatePopulatedPages(Cluster* cluster,
                                                   NodeId owner,
                                                   std::size_t count,
                                                   std::size_t records,
                                                   std::size_t payload_bytes,
                                                   std::uint64_t seed);

/// Tunables of the interleaved driver.
struct WorkloadConfig {
  std::uint64_t seed = 1;
  std::size_t txns_per_session = 50;   ///< Transactions each session runs.
  std::size_t ops_per_txn = 8;         ///< Record operations per txn.
  double update_fraction = 0.8;        ///< Rest are reads.
  std::size_t payload_bytes = 100;     ///< Update payload size.
  std::size_t records_per_page = 8;    ///< Slots assumed populated.
  bool skewed = false;                 ///< 80/20 page choice if true.
  int max_txn_attempts = 32;           ///< Busy/deadlock retries per txn.

  // Availability (crashes are waits, not failures; docs/availability.md).
  /// Re-runs of a transaction killed by a crash/recovering node before the
  /// driver gives it up as a clean abort. Separate from max_txn_attempts:
  /// an unavailable owner is nobody's contention.
  int max_availability_retries = 64;
  /// Simulated wait per round while the session's own node is down.
  std::uint64_t down_poll_ns = 1'000'000;
  /// Rounds a session waits for its own node to come back before
  /// abandoning its remaining work (keeps Run terminating when a node is
  /// never restarted).
  std::size_t max_down_polls = 10'000;

  /// Group commit: simulated wait charged per poll of a parked commit, so
  /// a round of all-parked sessions still advances the clock and the
  /// coalescing window deterministically expires.
  std::uint64_t group_poll_ns = 100'000;
};

/// Aggregate outcome of a driver run.
struct WorkloadStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted_deadlock = 0;      ///< Contention: waits-for cycle.
  std::uint64_t aborted_availability = 0;  ///< Crash/recovery killed a run.
  std::uint64_t gave_up = 0;      ///< Txns abandoned after budget exhaustion.
  std::uint64_t busy_waits = 0;   ///< Steps postponed on Busy.
  std::uint64_t down_waits = 0;   ///< Rounds waited on the session's node.
  std::uint64_t commit_parks = 0; ///< Commits parked by group commit.
  std::uint64_t group_waits = 0;  ///< Poll rounds spent parked.
  std::uint64_t ops = 0;
  std::uint64_t sim_ns = 0;       ///< Simulated time the run consumed.
};

/// Runs one session (a sequence of transactions) per entry of
/// `access_sets`: the session executes on the map key's node and touches
/// only the pages in its value (which may be owned by any node). Sessions
/// advance one operation at a time, round-robin, so transactions from
/// different nodes genuinely interleave.
class WorkloadDriver {
 public:
  WorkloadDriver(Cluster* cluster, WorkloadConfig config,
                 std::vector<std::pair<NodeId, std::vector<PageId>>> sessions);

  /// Drives every session to completion.
  Status Run();

  const WorkloadStats& stats() const { return stats_; }

  /// Called at the top of every round-robin round with the round number.
  /// Tests use it to crash/restart nodes mid-workload and assert the
  /// driver rides through (liveness).
  void set_round_hook(std::function<void(std::uint64_t)> hook) {
    round_hook_ = std::move(hook);
  }

 private:
  struct Session {
    NodeId node = kInvalidNodeId;
    std::vector<PageId> pages;
    Random rng{1};
    std::size_t txns_done = 0;
    // Active transaction state.
    TxnId txn = kInvalidTxnId;
    std::size_t ops_done = 0;
    int attempts = 0;
    int availability_retries = 0;
    std::size_t down_polls = 0;
    bool finished = false;
    /// Group commit: the commit record is appended and the transaction is
    /// parked; poll until the shared force completes it.
    bool commit_parked = false;
  };

  /// Advances one session by one step; returns false if it just finished.
  Status Step(Session* s);

  /// Contention path: aborts the transaction and schedules a re-run,
  /// charged against max_txn_attempts.
  Status AbortAndRetry(Session* s, bool count_deadlock);

  /// Availability path: the transaction was killed by a crash or a
  /// recovering owner, not by contention. Re-run it transparently under
  /// its own (larger) budget. `txn_lost` means the session's node itself
  /// went down, taking the transaction's volatile state with it.
  Status AvailabilityAbort(Session* s, bool txn_lost);

  Cluster* cluster_;
  WorkloadConfig config_;
  std::vector<Session> sessions_;
  WorkloadStats stats_;
  std::function<void(std::uint64_t)> round_hook_;
};

}  // namespace clog

#endif  // CLOG_CORE_WORKLOAD_H_
