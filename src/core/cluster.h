#ifndef CLOG_CORE_CLUSTER_H_
#define CLOG_CORE_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/types.h"
#include "core/membership.h"
#include "lock/deadlock_detector.h"
#include "net/executor.h"
#include "net/network.h"
#include "node/node.h"
#include "recovery/distributed_recovery.h"

/// \file
/// Public entry point: a Cluster owns the simulated interconnect, the
/// shared clock, the deadlock detector, and the set of nodes (paper
/// Figure 1). Applications create nodes, allocate pages on owner nodes,
/// run transactions anywhere, and crash/restart nodes at will.

namespace clog {

class TxnHandle;

/// Cluster-wide configuration.
struct ClusterOptions {
  /// Base directory; node k lives in "<dir>/node<k>".
  std::string dir;
  /// Execution backend (docs/architecture_modes.md). kSimulation (the
  /// default) is the deterministic single-threaded engine on a SimClock —
  /// every pre-existing test and bench runs unchanged. kRealThreads gives
  /// each node a worker thread, a mutex-guarded mailbox network, a wall
  /// clock, and real fsync latencies on log force.
  ExecutionMode execution_mode = ExecutionMode::kSimulation;
  /// Simulated network/disk cost model (DESIGN.md Section 2).
  CostModel cost;
  /// Defaults applied to every node unless overridden in AddNode.
  NodeOptions node_defaults;
  /// Optional fault injector (not owned; must outlive the cluster). Wired
  /// into the network and every node; see src/fault/fault_injector.h.
  FaultInjector* fault_injector = nullptr;
  /// Availability layer (docs/availability.md): retry envelope, heartbeat
  /// failure detector, and request parking. Disabled by default so
  /// fail-fast crash semantics stay exactly as before unless opted in.
  RetryPolicy retry_policy;
  /// Unified logging policy applied to every node (unless a node's AddNode
  /// override already set its own). Strategy selection, group commit,
  /// archive cadence, and redo parallelism in one value; see
  /// node/options.h. Defaults preserve the classic behavior exactly.
  LoggingPolicy logging_policy;
  /// Optional structured-event trace sink (not owned; must outlive the
  /// cluster). The cluster binds its SimClock to the sink and wires it
  /// into the network and every node; see docs/observability.md. nullptr
  /// (the default) disables tracing at zero cost.
  TraceSink* trace_sink = nullptr;
};

/// Phase boundaries of a node's restart recovery, in execution order.
/// RestartNodes reports each one through the recovery phase hook; a hook
/// that crashes the node there exercises crash-during-recovery restart.
enum class RecoveryPhase : int {
  kAnalyzed = 0,   ///< Local log analysis done; node now kRecovering.
  kExchanged = 1,  ///< Peer state queried, lock tables reconstructed.
  kRedone = 2,     ///< Redo pass over its pages complete.
  kFinished = 3,   ///< Losers undone; node is up.
};

/// Phase boundaries of a page-ownership handoff (docs/PROTOCOLS.md,
/// "Membership & ownership handoff"), in execution order. HandoffPage
/// reports each one through the handoff phase hook; a hook that crashes
/// either endpoint there exercises crash-during-handoff re-entry.
enum class HandoffPhase : int {
  kPrepared = 0,     ///< Page fenced, durable intent at the source.
  kShipped = 1,      ///< Source's durable copy is the latest version.
  kTransferred = 2,  ///< Target durably adopted (the commit point).
  kCompleted = 3,    ///< Source durably ceded; volatile state dropped.
};

/// The distributed system under test. In simulation mode, deterministic
/// and single-threaded: identical seeds and call sequences reproduce
/// identical histories, including crash/recovery interleavings. In
/// real-threads mode the same API runs on per-node worker threads: public
/// entry points that touch node state route through the executor so node
/// internals stay thread-confined.
class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Creates and starts the next node (ids are assigned 0,1,2,...).
  /// `overrides` replaces the default NodeOptions except for the directory,
  /// which is always derived from the cluster directory.
  Result<Node*> AddNode(
      std::optional<NodeOptions> overrides = std::nullopt);

  /// Node accessor (nullptr if unknown).
  Node* node(NodeId id);

  /// All node ids, in creation order.
  std::vector<NodeId> NodeIds() const;

  /// Crashes a node: volatile state lost, files intact, peers see it down.
  Status CrashNode(NodeId id);

  /// Restarts one crashed node through the full Section 2.3 protocol.
  Status RestartNode(NodeId id);

  /// Restarts several crashed nodes together (Section 2.4): every node
  /// completes log analysis before any exchanges recovery state.
  ///
  /// Crash-during-recovery (docs/availability.md): a node that crashes at
  /// a phase boundary — the phase hook fired, or a peer it depended on
  /// vanished mid-phase (NodeDown) — is *abandoned*, not an error, and the
  /// loss voids the whole round: every entry that has not yet gone
  /// operational is fail-stopped back to kDown (Section 2.4 recovery is
  /// only sound when all participants' exchanged state survives to the
  /// end) and a later RestartNodes re-enters the set from scratch.
  /// Callers that need every node up loop until no node remains down.
  Status RestartNodes(const std::vector<NodeId>& ids);

  /// Installs (or clears, with nullptr) the per-phase recovery callback.
  /// Called as hook(node, phase) after each node completes each phase; the
  /// hook may CrashNode(node) to simulate dying at that boundary.
  void set_recovery_phase_hook(
      std::function<void(NodeId, RecoveryPhase)> hook) {
    recovery_phase_hook_ = std::move(hook);
  }

  /// Takes a node off the network WITHOUT crashing it (paper Section 1.2:
  /// orderly disconnection, "a rare event [that] can be handled in an
  /// orderly fashion"). Volatile state survives: the node keeps executing
  /// and committing transactions against its cached, locked pages; peers
  /// see it as unreachable.
  Status DisconnectNode(NodeId id);

  /// Reattaches a disconnected node. No recovery runs — nothing was lost.
  Status ReconnectNode(NodeId id);

  /// Replaces the crashed node's process entirely — a fresh Node object
  /// (think hot standby or a rebooted machine) attaches to the same
  /// database/log directory and runs restart recovery. Exercises the
  /// paper's Section 2.3 remark that "any node that has access to the
  /// database and the log file of the crashed node" can perform recovery:
  /// nothing of the old in-memory object survives.
  Status ReplaceAndRestartNode(NodeId id);

  /// Stats of the most recent restart (per node id).
  const std::map<NodeId, RestartRecovery::Stats>& recovery_stats() const {
    return recovery_stats_;
  }

  // --- Elastic membership (docs/PROTOCOLS.md) ---------------------------

  /// Adds a node to a LIVE cluster (same as AddNode; the epoch bump marks
  /// the membership change for observers).
  Result<Node*> JoinNode(std::optional<NodeOptions> overrides = std::nullopt);

  /// Gracefully retires a node: every page it currently owns is handed off
  /// round-robin to the remaining up members, then the node is marked
  /// departed (permanent — it can never be restarted) and halted. Fails
  /// without departing if a drain handoff cannot run (Busy page, no
  /// recipient); pages already moved stay moved and the caller may retry.
  Status LeaveNode(NodeId id);

  /// Moves one page from its current owner to `to` via the four-phase
  /// crash-restartable protocol. The handoff phase hook fires after each
  /// durable boundary; if a hook crashes an endpoint the call returns
  /// NodeDown and the ledgers re-enter the handoff at the next restart /
  /// ResolveHandoffs.
  Status HandoffPage(PageId pid, NodeId to);

  /// Re-enters any in-flight handoffs on all up nodes (the live-node
  /// counterpart of the restart-time resolution). `resolved` (optional)
  /// returns how many ledger records were settled.
  Status ResolveHandoffs(std::size_t* resolved = nullptr);

  /// Current owner of `pid` per the shared directory (the home node unless
  /// the page was handed off).
  NodeId CurrentOwner(PageId pid) const { return directory_.OwnerOf(pid); }

  /// The cluster-shared ownership directory.
  OwnershipDirectory& directory() { return directory_; }

  /// True if `id` left the cluster through LeaveNode.
  bool IsDeparted(NodeId id) const { return departed_.count(id) != 0; }

  /// Installs (or clears, with nullptr) the per-phase handoff callback.
  /// Called as hook(pid, phase) after each completed handoff phase; the
  /// hook may CrashNode either endpoint to simulate dying at that boundary.
  void set_handoff_phase_hook(
      std::function<void(PageId, HandoffPhase)> hook) {
    handoff_phase_hook_ = std::move(hook);
  }

  // --- Transaction convenience -----------------------------------------

  /// Runs `body` as a transaction on `node_id` with automatic retry on
  /// Busy and abort-and-retry on deadlock (at most `max_attempts`). The
  /// body returning non-OK aborts the transaction and stops.
  ///
  /// Commit/abort are driven by the cluster through the handle; bodies
  /// should use the TxnHandle lifecycle API (`Commit()`, `Abort()`,
  /// `CommitRequest()`/`PollCommit()`) for any manual control. Reaching
  /// through the handle (`handle.node()->Commit(handle.id())`) is
  /// deprecated: it bypasses the handle's own lifecycle surface.
  Status RunTransaction(NodeId node_id,
                        const std::function<Status(TxnHandle&)>& body,
                        int max_attempts = 8);

  /// Registers a Busy result in the waits-for graph; returns true when the
  /// wait closes a cycle (caller must abort its transaction).
  bool NoteBusyAndCheckDeadlock(TxnId waiter,
                                const std::vector<TxnId>& blockers);

  /// Runs `fn` in `id`'s execution context: inline in simulation mode, on
  /// the node's worker thread (blocking for completion) in real-threads
  /// mode. The escape hatch for tests/benchmarks that poke node state
  /// directly — direct Node method calls from foreign threads would race
  /// with the node's worker. NodeDown if the worker is stopped.
  Status Execute(NodeId id, const std::function<void()>& fn);

  // --- Infrastructure ----------------------------------------------------

  Network& network() { return network_; }
  Clock& clock() { return *clock_; }
  Executor& executor() { return *executor_; }
  ExecutionMode execution_mode() const { return options_.execution_mode; }
  DeadlockDetector& detector() { return detector_; }

  /// Sum of a metrics counter across all nodes.
  std::uint64_t SumCounter(const std::string& name);

 private:
  /// Fail-stops one node, real-threads aware: peers see it down, its
  /// worker is stopped and joined, then Crash() drops volatile state.
  /// No-op if already down.
  void HaltNode(Node* n);

  /// RunTransaction's retry loop; runs on the node's execution context.
  Status RunTransactionImpl(NodeId node_id,
                            const std::function<Status(TxnHandle&)>& body,
                            int max_attempts);

  /// Joins and discards every background restore sweeper thread.
  void JoinRestoreSweepers();

  ClusterOptions options_;
  std::unique_ptr<Clock> clock_;
  std::unique_ptr<Executor> executor_;
  Network network_;
  DeadlockDetector detector_;
  std::map<NodeId, std::unique_ptr<Node>> nodes_;
  NodeId next_id_ = 0;
  std::map<NodeId, RestartRecovery::Stats> recovery_stats_;
  std::function<void(NodeId, RecoveryPhase)> recovery_phase_hook_;
  std::function<void(PageId, HandoffPhase)> handoff_phase_hook_;
  /// Cluster-shared volatile ownership directory; every node routes
  /// OwnerOf through it. Ground truth is the per-node durable ledgers.
  OwnershipDirectory directory_;
  /// Nodes retired via LeaveNode. Permanent: excluded from NodeIds and
  /// refused by RestartNodes.
  std::set<NodeId> departed_;
  /// Real-threads mode: one background thread per restart that left a node
  /// with instant-restore work pending, draining the cold tail through the
  /// node's execution context. Sim mode drains inline instead (each
  /// successful RunTransaction sweeps a batch).
  std::vector<std::thread> restore_sweepers_;
};

/// Ergonomic wrapper binding (node, transaction id); used by examples and
/// the RunTransaction body callback.
class TxnHandle {
 public:
  TxnHandle(Node* node, TxnId id) : node_(node), id_(id) {}

  /// Begins a new transaction on `node` and wraps it in a handle — the
  /// usual way to obtain one outside RunTransaction.
  static Result<TxnHandle> Begin(Node* node) {
    CLOG_ASSIGN_OR_RETURN(TxnId id, node->Begin());
    return TxnHandle(node, id);
  }

  /// Begins a transaction with per-transaction options — most notably a
  /// LogStrategy override trumping the node's LoggingPolicy for this one
  /// transaction (adaptive logging, docs/PROTOCOLS.md).
  static Result<TxnHandle> Begin(Node& node, TxnOptions opts) {
    CLOG_ASSIGN_OR_RETURN(TxnId id, node.Begin(opts));
    return TxnHandle(&node, id);
  }

  TxnId id() const { return id_; }
  Node* node() { return node_; }

  // --- Lifecycle ---------------------------------------------------------

  /// Commits this transaction (forces the log per the node's LoggingMode;
  /// with group commit enabled, parks until a covering force completes).
  Status Commit() { return node_->Commit(id_); }

  /// Aborts this transaction, undoing all of its updates.
  Status Abort() { return node_->Abort(id_); }

  /// Group-commit split commit: appends the commit record and parks.
  /// Returns true if already durable (covered immediately), false if
  /// parked — drive with PollCommit() until it reports durable.
  Result<bool> CommitRequest() { return node_->CommitRequest(id_); }

  /// Polls a parked commit; forces the group when the coalescing window
  /// has expired. Returns true once the commit is durable.
  Result<bool> PollCommit() { return node_->PollCommit(id_); }

  // --- Data operations ---------------------------------------------------

  Result<RecordId> Insert(PageId pid, Slice payload) {
    return node_->Insert(id_, pid, payload);
  }
  Result<std::string> Read(RecordId rid) { return node_->Read(id_, rid); }
  Status Update(RecordId rid, Slice payload) {
    return node_->Update(id_, rid, payload);
  }
  Status Delete(RecordId rid) { return node_->Delete(id_, rid); }
  Result<std::vector<std::string>> ScanPage(PageId pid) {
    return node_->ScanPage(id_, pid);
  }
  Status SetSavepoint(const std::string& name) {
    return node_->SetSavepoint(id_, name);
  }
  Status RollbackToSavepoint(const std::string& name) {
    return node_->RollbackToSavepoint(id_, name);
  }

 private:
  Node* node_;
  TxnId id_;
};

}  // namespace clog

#endif  // CLOG_CORE_CLUSTER_H_
