#ifndef CLOG_CORE_HEAP_TABLE_H_
#define CLOG_CORE_HEAP_TABLE_H_

#include <string>
#include <vector>

#include "core/cluster.h"

/// \file
/// A transactional multi-page heap table on top of the public page API —
/// what a real application (the CAD/OIS workloads of the paper's
/// introduction) would build. One catalog page lists the table's data
/// pages; catalog growth is a normal logged record insert, so table
/// extension is exactly as crash-safe as any other update and recovers
/// through the ordinary Section 2.3 machinery with no extra code.

namespace clog {

/// Handle to a heap table. Copyable; state lives in the database.
class HeapTable {
 public:
  /// Creates a new table owned by `owner` (allocates the catalog page).
  /// Owner-side DDL: runs on the owner node, outside any transaction.
  static Result<HeapTable> Create(Cluster* cluster, NodeId owner);

  /// Opens an existing table from its catalog page id.
  static Result<HeapTable> Open(Cluster* cluster, PageId catalog);

  /// The catalog page id — persist this to re-Open the table.
  PageId catalog() const { return catalog_; }
  NodeId owner() const { return catalog_.owner; }

  /// Inserts a record somewhere in the table, extending it with a fresh
  /// page when no existing page fits. Runs inside the caller's
  /// transaction; the catalog update (if any) is part of the same
  /// transaction and rolls back with it.
  Result<RecordId> Insert(TxnHandle& txn, Slice payload);

  /// Reads every live record, in (page, slot) order.
  Result<std::vector<std::string>> Scan(TxnHandle& txn);

  /// Number of live records (full scan).
  Result<std::size_t> Count(TxnHandle& txn);

  /// Current data pages, in insertion order (reads the catalog under the
  /// caller's transaction: repeatable within it).
  Result<std::vector<PageId>> DataPages(TxnHandle& txn);

  // Updates/deletes address records directly: txn.Update(rid, ...),
  // txn.Delete(rid) — RecordIds returned by Insert stay stable.

 private:
  HeapTable(Cluster* cluster, PageId catalog)
      : cluster_(cluster), catalog_(catalog) {}

  /// Appends a fresh data page to the catalog within `txn`.
  Result<PageId> Extend(TxnHandle& txn);

  Cluster* cluster_;
  PageId catalog_;
};

/// Encodes a page id as a catalog record payload.
std::string EncodeCatalogEntry(PageId pid);

/// Decodes a catalog record payload (Corruption on malformed input).
Result<PageId> DecodeCatalogEntry(Slice payload);

}  // namespace clog

#endif  // CLOG_CORE_HEAP_TABLE_H_
