#include "core/heap_table.h"

#include "common/codec.h"

namespace clog {

std::string EncodeCatalogEntry(PageId pid) {
  std::string out;
  Encoder enc(&out);
  enc.PutU64(pid.Pack());
  return out;
}

Result<PageId> DecodeCatalogEntry(Slice payload) {
  Decoder dec(payload);
  std::uint64_t packed = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU64(&packed));
  PageId pid = PageId::Unpack(packed);
  if (!pid.Valid()) return Status::Corruption("bad catalog entry");
  return pid;
}

Result<HeapTable> HeapTable::Create(Cluster* cluster, NodeId owner) {
  Node* node = cluster->node(owner);
  if (node == nullptr) return Status::NotFound("no such node");
  CLOG_ASSIGN_OR_RETURN(PageId catalog, node->AllocatePage());
  return HeapTable(cluster, catalog);
}

Result<HeapTable> HeapTable::Open(Cluster* cluster, PageId catalog) {
  if (cluster->node(catalog.owner) == nullptr) {
    return Status::NotFound("owner node unknown");
  }
  return HeapTable(cluster, catalog);
}

Result<std::vector<PageId>> HeapTable::DataPages(TxnHandle& txn) {
  CLOG_ASSIGN_OR_RETURN(std::vector<std::string> entries,
                        txn.ScanPage(catalog_));
  std::vector<PageId> pages;
  pages.reserve(entries.size());
  for (const std::string& e : entries) {
    CLOG_ASSIGN_OR_RETURN(PageId pid, DecodeCatalogEntry(e));
    pages.push_back(pid);
  }
  return pages;
}

Result<PageId> HeapTable::Extend(TxnHandle& txn) {
  // Owner-side DDL for the page allocation itself; the catalog insert is
  // part of the caller's transaction, so an abort unlinks the page (the
  // allocated-but-unlinked page is garbage a vacuum pass could reclaim —
  // the classic trade systems make to keep allocation out of the redo
  // path).
  Node* owner_node = cluster_->node(owner());
  if (owner_node == nullptr) return Status::NotFound("owner node unknown");
  CLOG_ASSIGN_OR_RETURN(PageId fresh, owner_node->AllocatePage());
  CLOG_RETURN_IF_ERROR(
      txn.Insert(catalog_, EncodeCatalogEntry(fresh)).status());
  return fresh;
}

Result<RecordId> HeapTable::Insert(TxnHandle& txn, Slice payload) {
  CLOG_ASSIGN_OR_RETURN(std::vector<PageId> pages, DataPages(txn));
  for (PageId pid : pages) {
    Result<RecordId> rid = txn.Insert(pid, payload);
    if (rid.ok()) return rid;
    if (rid.status().code() == StatusCode::kFailedPrecondition) {
      continue;  // Page full; try the next one.
    }
    return rid;  // Busy/Deadlock/NodeDown etc. propagate.
  }
  CLOG_ASSIGN_OR_RETURN(PageId fresh, Extend(txn));
  return txn.Insert(fresh, payload);
}

Result<std::vector<std::string>> HeapTable::Scan(TxnHandle& txn) {
  CLOG_ASSIGN_OR_RETURN(std::vector<PageId> pages, DataPages(txn));
  std::vector<std::string> out;
  for (PageId pid : pages) {
    CLOG_ASSIGN_OR_RETURN(std::vector<std::string> records,
                          txn.ScanPage(pid));
    for (std::string& r : records) out.push_back(std::move(r));
  }
  return out;
}

Result<std::size_t> HeapTable::Count(TxnHandle& txn) {
  CLOG_ASSIGN_OR_RETURN(std::vector<std::string> all, Scan(txn));
  return all.size();
}

}  // namespace clog
