#ifndef CLOG_TRACE_TRACE_EXPORT_H_
#define CLOG_TRACE_TRACE_EXPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "trace/trace_event.h"
#include "trace/trace_sink.h"

namespace clog {

/// Formatting hooks. The trace library sits below the network layer, so it
/// cannot name RPC message types itself; callers that link the full stack
/// (tracedump, torture) pass `MsgTypeName` through `msg_name`.
struct TraceFormatOptions {
  std::function<std::string_view(std::uint32_t)> msg_name;
};

/// One event as a human-readable line (no trailing newline), e.g.
///   `t=12.345ms seq=42 TXN_COMMIT txn=0:7`.
std::string FormatTraceEvent(const TraceEvent& e,
                             const TraceFormatOptions& opts = {});

/// Whole sink as text: per node (ascending), retained events oldest first.
/// `tail` > 0 limits output to the newest `tail` events per node.
std::string FormatTrace(const TraceSink& sink, std::size_t tail = 0,
                        const TraceFormatOptions& opts = {});

/// Chrome `trace_event` JSON (load via chrome://tracing or Perfetto).
/// One pid per node; transactions and recovery phases become spans,
/// everything else instant events.
std::string ChromeTraceJson(const TraceSink& sink,
                            const TraceFormatOptions& opts = {});

}  // namespace clog

#endif  // CLOG_TRACE_TRACE_EXPORT_H_
