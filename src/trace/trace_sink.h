#ifndef CLOG_TRACE_TRACE_SINK_H_
#define CLOG_TRACE_TRACE_SINK_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "trace/trace_event.h"

namespace clog {

/// Deterministic structured-event trace: one fixed-capacity ring buffer of
/// TraceEvents per node, stamped with the simulated clock and a per-node
/// monotonic sequence number. Identical seeds produce byte-identical event
/// streams; `Hash()` folds the *entire* stream (not just the retained
/// window) through FNV-1a so tests can assert trace determinism even after
/// the ring has wrapped.
///
/// Wiring: set `ClusterOptions::trace_sink` (or per-node
/// `NodeOptions::trace_sink`) to a sink owned by the caller. The Cluster
/// binds its SimClock; every subsystem emit point is guarded by a branch on
/// the raw pointer, so a null sink (the default) costs nothing.
///
/// Emitting never touches the clock or any RNG — attaching a sink cannot
/// perturb a deterministic schedule. In real-threads mode node threads
/// emit concurrently, so the ring map is guarded by one internal mutex;
/// the zero-overhead-when-off property is untouched because every emit
/// call site still branches on the raw sink pointer before calling in.
class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacityPerNode = 4096;

  explicit TraceSink(std::size_t capacity_per_node = kDefaultCapacityPerNode);

  /// Clock used to stamp events. Unbound (events stamped 0) until the
  /// owning Cluster calls this from its constructor.
  void BindClock(const Clock* clock) { clock_ = clock; }

  /// Records one event in `node`'s ring. The newest events win: once a
  /// ring holds `capacity_per_node` events the oldest is overwritten.
  void Emit(NodeId node, TraceEventType type, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint32_t c = 0);

  /// Nodes that have emitted at least one event, ascending.
  std::vector<NodeId> Nodes() const;

  /// Retained events for `node`, oldest first.
  std::vector<TraceEvent> Events(NodeId node) const;

  /// Total events ever emitted by `node` (>= Events(node).size()).
  std::uint64_t emitted(NodeId node) const;
  std::uint64_t total_emitted() const;
  std::size_t capacity_per_node() const { return capacity_; }

  /// FNV-1a over every event `node` ever emitted (including overwritten
  /// ones), field by field. 0 only for a node that never emitted.
  std::uint64_t Hash(NodeId node) const;

  /// Combined hash over all nodes in ascending id order.
  std::uint64_t Hash() const;

  /// Drops all events and hashes; keeps the clock binding.
  void Clear() {
    std::lock_guard<std::mutex> lk(mu_);
    rings_.clear();
  }

  /// Binary trace file I/O, for `tools/tracedump`. The format is
  /// little-endian, fixed-width fields (docs/observability.md).
  Status WriteBinaryFile(const std::string& path) const;
  Status ReadBinaryFile(const std::string& path);

 private:
  struct Ring {
    std::vector<TraceEvent> buf;  // grows to capacity_, then wraps
    std::uint64_t emitted = 0;
    std::uint64_t hash = 0;  // running FNV-1a, seeded at first emit
  };

  std::vector<NodeId> NodesLocked() const;
  std::vector<TraceEvent> EventsLocked(NodeId node) const;
  std::uint64_t HashLocked(NodeId node) const;

  const Clock* clock_ = nullptr;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<NodeId, Ring> rings_;
};

}  // namespace clog

#endif  // CLOG_TRACE_TRACE_SINK_H_
