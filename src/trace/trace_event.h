#ifndef CLOG_TRACE_TRACE_EVENT_H_
#define CLOG_TRACE_TRACE_EVENT_H_

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace clog {

/// Typed protocol events. One entry per observable step of the paper's
/// protocols: transaction lifecycle, the WAL commit path, page traffic
/// (Section 2.2), locking, RPCs, and restart recovery (Sections 2.3/2.4).
///
/// The numeric values are part of the on-disk trace format and of the
/// deterministic trace hash — append new types at the end, never renumber.
enum class TraceEventType : std::uint16_t {
  kNone = 0,
  // Transaction lifecycle. a = txn id.
  kTxnBegin = 1,
  kTxnCommit = 2,   // sync commit acked durable
  kTxnAbort = 3,
  // WAL. kLogAppend: a = lsn, b = encoded bytes, c = record type.
  // kLogForce: a = flushed-up-to lsn, b = bytes written by this force.
  kLogAppend = 4,
  kLogForce = 5,
  // Group commit. a = txn id, b = commit lsn.
  kGroupCommitPark = 6,
  kGroupCommitCover = 7,  // parked commit completed by a covering force
  // Page traffic. a = PageId::Pack(), b = psn, c = peer node
  // (fetch: source; ship: the other endpoint; evict: dirty flag).
  kPageFetch = 8,
  kPageShip = 9,
  kPageEvict = 10,
  kFlushNotify = 11,  // received FlushNotify; b = flushed psn, c = owner
  // Locking. kLockWait: a = PageId::Pack(), b = requester node, c = mode.
  // kDeadlock: a = waiting txn id (emitted on the waiter's node).
  kLockWait = 12,
  kDeadlock = 13,
  // RPC envelope. send/recv: a = peer, b = bytes, c = MsgType.
  // retry: a = destination, b = backoff ns, c = attempt number.
  // park: a = recovering owner the request parked on.
  kRpcSend = 14,
  kRpcRecv = 15,
  kRpcRetry = 16,
  kRpcPark = 17,
  // Restart recovery. a = RecoveryPhase value, b = phase duration ns.
  kRecoveryPhase = 18,
  // Checkpoint. a = begin/end record lsn.
  kCheckpointBegin = 19,
  kCheckpointEnd = 20,
  // Node crash (fault injection or Cluster::CrashNode).
  kNodeCrash = 21,
  // Fuzzy archive pass sealed. a = pass seq, b = pages written this pass,
  // c = total pages in the archive.
  kArchivePass = 22,
  // Page poisoned: its committed state is unrecoverable (media failure).
  // a = PageId::Pack(), b = needed PSN (max u64 = permanent).
  kPagePoison = 23,
  // Media recovery summary for one restart. a = lost-page candidates,
  // b = pages restored from archive images, c = pages poisoned.
  kMediaRecovery = 24,
  // Instant restore: restart recovery deferred the media rebuild and the
  // node opened for traffic with pages still restoring. a = pages planned,
  // b = pages with at least one peer-cache candidate.
  kRestorePlan = 25,
  // One restoring page finished rebuilding (on demand or by the sweeper).
  // a = PageId::Pack(), b = resulting psn, c = source (0 = already durable,
  // 1 = peer cache, 2 = archive + redo, 3 = seed + redo, 4 = poisoned).
  kPageRestored = 26,
  // The restore backlog drained: the node left degraded mode.
  // a = pages restored this epoch, b = epoch duration ns.
  kRestoreDone = 27,
};

/// Stable upper-case name, for tracedump and torture tails.
std::string_view TraceEventTypeName(TraceEventType type);

/// One fixed-width trace record. Stamped by TraceSink with the SimClock
/// time and a per-node monotonic sequence number, so a deterministic run
/// produces a byte-identical event stream.
///
/// Serialization and hashing walk the fields explicitly (never memcpy the
/// struct): padding bytes are not part of the format.
struct TraceEvent {
  std::uint64_t time_ns = 0;  // SimClock::NowNanos() at emit
  std::uint64_t seq = 0;      // per-node emit index, starts at 0
  std::uint64_t a = 0;        // per-type payload, see TraceEventType
  std::uint64_t b = 0;
  std::uint32_t c = 0;
  NodeId node = kInvalidNodeId;       // ring this event belongs to
  TraceEventType type = TraceEventType::kNone;
  std::uint16_t reserved = 0;
};

}  // namespace clog

#endif  // CLOG_TRACE_TRACE_EVENT_H_
