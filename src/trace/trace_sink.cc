#include "trace/trace_sink.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace clog {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t MixEvent(std::uint64_t h, const TraceEvent& e) {
  // Field by field — struct padding is not part of the hash.
  h = FnvMix64(h, e.time_ns);
  h = FnvMix64(h, e.seq);
  h = FnvMix64(h, e.a);
  h = FnvMix64(h, e.b);
  h = FnvMix64(h, e.c);
  h = FnvMix64(h, e.node);
  h = FnvMix64(h, static_cast<std::uint64_t>(e.type));
  return h;
}

// Trace file layout (all little-endian):
//   u32 magic "CLTR", u32 version, u64 capacity_per_node, u32 node_count
//   per node: u32 node, u64 emitted, u64 hash, u64 retained,
//             retained * { u64 time_ns, seq, a, b; u32 c, node; u16 type,
//             reserved }
constexpr std::uint32_t kTraceMagic = 0x52544C43u;  // "CLTR"
constexpr std::uint32_t kTraceVersion = 1;

void Put32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (i * 8)));
}

void Put64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (i * 8)));
}

bool Get32(const std::string& in, std::size_t* pos, std::uint32_t* v) {
  if (*pos + 4 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<std::uint32_t>(
              static_cast<unsigned char>(in[*pos + i]))
          << (i * 8);
  }
  *pos += 4;
  return true;
}

bool Get64(const std::string& in, std::size_t* pos, std::uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(
              static_cast<unsigned char>(in[*pos + i]))
          << (i * 8);
  }
  *pos += 8;
  return true;
}

}  // namespace

std::string_view TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kNone: return "NONE";
    case TraceEventType::kTxnBegin: return "TXN_BEGIN";
    case TraceEventType::kTxnCommit: return "TXN_COMMIT";
    case TraceEventType::kTxnAbort: return "TXN_ABORT";
    case TraceEventType::kLogAppend: return "LOG_APPEND";
    case TraceEventType::kLogForce: return "LOG_FORCE";
    case TraceEventType::kGroupCommitPark: return "GC_PARK";
    case TraceEventType::kGroupCommitCover: return "GC_COVER";
    case TraceEventType::kPageFetch: return "PAGE_FETCH";
    case TraceEventType::kPageShip: return "PAGE_SHIP";
    case TraceEventType::kPageEvict: return "PAGE_EVICT";
    case TraceEventType::kFlushNotify: return "FLUSH_NOTIFY";
    case TraceEventType::kLockWait: return "LOCK_WAIT";
    case TraceEventType::kDeadlock: return "DEADLOCK";
    case TraceEventType::kRpcSend: return "RPC_SEND";
    case TraceEventType::kRpcRecv: return "RPC_RECV";
    case TraceEventType::kRpcRetry: return "RPC_RETRY";
    case TraceEventType::kRpcPark: return "RPC_PARK";
    case TraceEventType::kRecoveryPhase: return "RECOVERY_PHASE";
    case TraceEventType::kCheckpointBegin: return "CKPT_BEGIN";
    case TraceEventType::kCheckpointEnd: return "CKPT_END";
    case TraceEventType::kNodeCrash: return "NODE_CRASH";
    case TraceEventType::kArchivePass: return "ARCHIVE_PASS";
    case TraceEventType::kPagePoison: return "PAGE_POISON";
    case TraceEventType::kMediaRecovery: return "MEDIA_RECOVERY";
    case TraceEventType::kRestorePlan: return "RESTORE_PLAN";
    case TraceEventType::kPageRestored: return "PAGE_RESTORED";
    case TraceEventType::kRestoreDone: return "RESTORE_DONE";
  }
  return "UNKNOWN";
}

TraceSink::TraceSink(std::size_t capacity_per_node)
    : capacity_(capacity_per_node == 0 ? 1 : capacity_per_node) {}

void TraceSink::Emit(NodeId node, TraceEventType type, std::uint64_t a,
                     std::uint64_t b, std::uint32_t c) {
  std::lock_guard<std::mutex> lk(mu_);
  Ring& ring = rings_[node];
  if (ring.emitted == 0) {
    ring.hash = kFnvOffset;
    ring.buf.reserve(std::min<std::size_t>(capacity_, 64));
  }
  TraceEvent e;
  e.time_ns = clock_ != nullptr ? clock_->NowNanos() : 0;
  e.seq = ring.emitted;
  e.a = a;
  e.b = b;
  e.c = c;
  e.node = node;
  e.type = type;
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(e);
  } else {
    ring.buf[ring.emitted % capacity_] = e;
  }
  ++ring.emitted;
  ring.hash = MixEvent(ring.hash, e);
}

std::vector<NodeId> TraceSink::Nodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return NodesLocked();
}

std::vector<NodeId> TraceSink::NodesLocked() const {
  std::vector<NodeId> out;
  out.reserve(rings_.size());
  for (const auto& [node, ring] : rings_) out.push_back(node);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<TraceEvent> TraceSink::Events(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return EventsLocked(node);
}

std::vector<TraceEvent> TraceSink::EventsLocked(NodeId node) const {
  std::vector<TraceEvent> out;
  auto it = rings_.find(node);
  if (it == rings_.end()) return out;
  const Ring& ring = it->second;
  out.reserve(ring.buf.size());
  if (ring.emitted <= capacity_) {
    out = ring.buf;
  } else {
    const std::size_t start = ring.emitted % capacity_;
    out.insert(out.end(), ring.buf.begin() + start, ring.buf.end());
    out.insert(out.end(), ring.buf.begin(), ring.buf.begin() + start);
  }
  return out;
}

std::uint64_t TraceSink::emitted(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = rings_.find(node);
  return it == rings_.end() ? 0 : it->second.emitted;
}

std::uint64_t TraceSink::total_emitted() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [node, ring] : rings_) total += ring.emitted;
  return total;
}

std::uint64_t TraceSink::HashLocked(NodeId node) const {
  auto it = rings_.find(node);
  return it == rings_.end() ? 0 : it->second.hash;
}

std::uint64_t TraceSink::Hash(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  return HashLocked(node);
}

std::uint64_t TraceSink::Hash() const {
  std::lock_guard<std::mutex> lk(mu_);
  if (rings_.empty()) return 0;  // Nothing emitted anywhere.
  std::uint64_t h = kFnvOffset;
  for (NodeId node : NodesLocked()) {
    h = FnvMix64(h, node);
    h = FnvMix64(h, HashLocked(node));
  }
  return h;
}

Status TraceSink::WriteBinaryFile(const std::string& path) const {
  std::string out;
  Put32(&out, kTraceMagic);
  Put32(&out, kTraceVersion);
  std::lock_guard<std::mutex> lk(mu_);
  Put64(&out, capacity_);
  const std::vector<NodeId> nodes = NodesLocked();
  Put32(&out, static_cast<std::uint32_t>(nodes.size()));
  for (NodeId node : nodes) {
    const Ring& ring = rings_.at(node);
    const std::vector<TraceEvent> events = EventsLocked(node);
    Put32(&out, node);
    Put64(&out, ring.emitted);
    Put64(&out, ring.hash);
    Put64(&out, events.size());
    for (const TraceEvent& e : events) {
      Put64(&out, e.time_ns);
      Put64(&out, e.seq);
      Put64(&out, e.a);
      Put64(&out, e.b);
      Put32(&out, e.c);
      Put32(&out, e.node);
      Put32(&out, static_cast<std::uint32_t>(e.type));
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("open " + path);
  const bool ok =
      std::fwrite(out.data(), 1, out.size(), f) == out.size() &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) return Status::IOError("write " + path);
  return Status::OK();
}

Status TraceSink::ReadBinaryFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("open " + path);
  std::string in;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) in.append(buf, n);
  std::fclose(f);

  std::lock_guard<std::mutex> lk(mu_);
  std::size_t pos = 0;
  std::uint32_t magic = 0, version = 0, node_count = 0;
  std::uint64_t capacity = 0;
  if (!Get32(in, &pos, &magic) || magic != kTraceMagic) {
    return Status::Corruption("not a clog trace file: " + path);
  }
  if (!Get32(in, &pos, &version) || version != kTraceVersion) {
    return Status::Corruption("unsupported trace version");
  }
  if (!Get64(in, &pos, &capacity) || !Get32(in, &pos, &node_count)) {
    return Status::Corruption("truncated trace header");
  }
  capacity_ = capacity == 0 ? 1 : static_cast<std::size_t>(capacity);
  rings_.clear();
  for (std::uint32_t i = 0; i < node_count; ++i) {
    std::uint32_t node = 0;
    std::uint64_t emitted = 0, hash = 0, retained = 0;
    if (!Get32(in, &pos, &node) || !Get64(in, &pos, &emitted) ||
        !Get64(in, &pos, &hash) || !Get64(in, &pos, &retained)) {
      return Status::Corruption("truncated trace node header");
    }
    Ring& ring = rings_[node];
    ring.emitted = emitted;
    ring.hash = hash;
    ring.buf.reserve(static_cast<std::size_t>(retained));
    for (std::uint64_t j = 0; j < retained; ++j) {
      TraceEvent e;
      std::uint32_t c = 0, enode = 0, type = 0;
      if (!Get64(in, &pos, &e.time_ns) || !Get64(in, &pos, &e.seq) ||
          !Get64(in, &pos, &e.a) || !Get64(in, &pos, &e.b) ||
          !Get32(in, &pos, &c) || !Get32(in, &pos, &enode) ||
          !Get32(in, &pos, &type)) {
        return Status::Corruption("truncated trace event");
      }
      e.c = c;
      e.node = enode;
      e.type = static_cast<TraceEventType>(type);
      ring.buf.push_back(e);
    }
    // Events() reconstructs oldest-first from the wrap position, so store
    // the retained window back in ring order.
    if (ring.emitted > capacity_ && ring.buf.size() == capacity_) {
      std::rotate(ring.buf.begin(),
                  ring.buf.begin() + static_cast<std::ptrdiff_t>(
                                         ring.buf.size() -
                                         ring.emitted % capacity_),
                  ring.buf.end());
    }
  }
  return Status::OK();
}

}  // namespace clog
