#include "trace/trace_export.h"

#include <cinttypes>
#include <cstdio>

namespace clog {

namespace {

std::string TxnStr(std::uint64_t txn) {
  // TxnIds pack the coordinating node into the top 16 bits (types.h).
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ":%" PRIu64,
                static_cast<std::uint64_t>(txn >> 48),
                static_cast<std::uint64_t>(txn & 0xFFFFFFFFFFFFull));
  return buf;
}

std::string PageStr(std::uint64_t packed) {
  const PageId pid = PageId::Unpack(packed);
  return pid.ToString();
}

std::string MsgStr(std::uint32_t type, const TraceFormatOptions& opts) {
  if (opts.msg_name) return std::string(opts.msg_name(type));
  return "msg#" + std::to_string(type);
}

const char* RecoveryPhaseStr(std::uint64_t phase) {
  // Values of core/cluster.h RecoveryPhase.
  switch (phase) {
    case 0: return "analyze";
    case 1: return "exchange";
    case 2: return "redo";
    case 3: return "undo+finish";
  }
  return "phase?";
}

std::string Args(const TraceEvent& e, const TraceFormatOptions& opts) {
  char buf[96];
  switch (e.type) {
    case TraceEventType::kTxnBegin:
    case TraceEventType::kTxnCommit:
    case TraceEventType::kTxnAbort:
      return "txn=" + TxnStr(e.a);
    case TraceEventType::kLogAppend:
      std::snprintf(buf, sizeof(buf),
                    "lsn=%" PRIu64 " bytes=%" PRIu64 " rec=%u", e.a, e.b, e.c);
      return buf;
    case TraceEventType::kLogForce:
      std::snprintf(buf, sizeof(buf), "up_to=%" PRIu64 " bytes=%" PRIu64, e.a,
                    e.b);
      return buf;
    case TraceEventType::kGroupCommitPark:
    case TraceEventType::kGroupCommitCover:
      std::snprintf(buf, sizeof(buf), " commit_lsn=%" PRIu64, e.b);
      return "txn=" + TxnStr(e.a) + buf;
    case TraceEventType::kPageFetch:
      std::snprintf(buf, sizeof(buf), " psn=%" PRIu64 " from=%u", e.b, e.c);
      return "page=" + PageStr(e.a) + buf;
    case TraceEventType::kPageShip:
      std::snprintf(buf, sizeof(buf), " psn=%" PRIu64 " peer=%u", e.b, e.c);
      return "page=" + PageStr(e.a) + buf;
    case TraceEventType::kPageEvict:
      return "page=" + PageStr(e.a) + (e.c != 0 ? " dirty" : " clean");
    case TraceEventType::kFlushNotify:
      std::snprintf(buf, sizeof(buf), " flushed_psn=%" PRIu64 " owner=%u",
                    e.b, e.c);
      return "page=" + PageStr(e.a) + buf;
    case TraceEventType::kLockWait:
      std::snprintf(buf, sizeof(buf), " requester=%" PRIu64 " mode=%u", e.b,
                    e.c);
      return "page=" + PageStr(e.a) + buf;
    case TraceEventType::kDeadlock:
      return "txn=" + TxnStr(e.a);
    case TraceEventType::kRpcSend:
      std::snprintf(buf, sizeof(buf), "to=%" PRIu64 " bytes=%" PRIu64 " ",
                    e.a, e.b);
      return buf + MsgStr(e.c, opts);
    case TraceEventType::kRpcRecv:
      std::snprintf(buf, sizeof(buf), "from=%" PRIu64 " bytes=%" PRIu64 " ",
                    e.a, e.b);
      return buf + MsgStr(e.c, opts);
    case TraceEventType::kRpcRetry:
      std::snprintf(buf, sizeof(buf),
                    "to=%" PRIu64 " backoff_ns=%" PRIu64 " attempt=%u", e.a,
                    e.b, e.c);
      return buf;
    case TraceEventType::kRpcPark:
      std::snprintf(buf, sizeof(buf), "owner=%" PRIu64, e.a);
      return buf;
    case TraceEventType::kRecoveryPhase:
      std::snprintf(buf, sizeof(buf), "%s dur_ns=%" PRIu64,
                    RecoveryPhaseStr(e.a), e.b);
      return buf;
    case TraceEventType::kCheckpointBegin:
    case TraceEventType::kCheckpointEnd:
      std::snprintf(buf, sizeof(buf), "lsn=%" PRIu64, e.a);
      return buf;
    case TraceEventType::kArchivePass:
      std::snprintf(buf, sizeof(buf),
                    "seq=%" PRIu64 " written=%" PRIu64 " total=%u", e.a, e.b,
                    e.c);
      return buf;
    case TraceEventType::kPagePoison:
      std::snprintf(buf, sizeof(buf), "page=%" PRIu64 " needed_psn=%" PRIu64,
                    e.a, e.b);
      return buf;
    case TraceEventType::kMediaRecovery:
      std::snprintf(buf, sizeof(buf),
                    "candidates=%" PRIu64 " from_archive=%" PRIu64
                    " poisoned=%u",
                    e.a, e.b, e.c);
      return buf;
    case TraceEventType::kNodeCrash:
    case TraceEventType::kNone:
      return "";
  }
  return "";
}

}  // namespace

std::string FormatTraceEvent(const TraceEvent& e,
                             const TraceFormatOptions& opts) {
  char head[64];
  std::snprintf(head, sizeof(head), "t=%.3fms seq=%" PRIu64 " ",
                static_cast<double>(e.time_ns) / 1e6, e.seq);
  std::string out = head;
  out += TraceEventTypeName(e.type);
  const std::string args = Args(e, opts);
  if (!args.empty()) {
    out += ' ';
    out += args;
  }
  return out;
}

std::string FormatTrace(const TraceSink& sink, std::size_t tail,
                        const TraceFormatOptions& opts) {
  std::string out;
  for (NodeId node : sink.Nodes()) {
    const std::vector<TraceEvent> events = sink.Events(node);
    const std::size_t start =
        (tail != 0 && events.size() > tail) ? events.size() - tail : 0;
    out += "node " + std::to_string(node) + ": " +
           std::to_string(sink.emitted(node)) + " events";
    if (start != 0 || sink.emitted(node) > events.size()) {
      out += " (showing newest " + std::to_string(events.size() - start) + ")";
    }
    out += '\n';
    for (std::size_t i = start; i < events.size(); ++i) {
      out += "  " + FormatTraceEvent(events[i], opts) + '\n';
    }
  }
  return out;
}

namespace {

void AppendJsonEvent(std::string* out, bool* first, NodeId node,
                     const char* ph, std::uint64_t tid, double ts_us,
                     const std::string& name, const std::string& args_json) {
  if (!*first) *out += ",\n";
  *first = false;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"pid\":%u,\"tid\":%" PRIu64
                ",\"ph\":\"%s\",\"ts\":%.3f,\"name\":\"%s\"",
                node, tid, ph, ts_us, name.c_str());
  *out += buf;
  if (!args_json.empty()) *out += ",\"args\":{" + args_json + "}";
  if (ph[0] == 'i') *out += ",\"s\":\"t\"";
  *out += "}";
}

}  // namespace

std::string ChromeTraceJson(const TraceSink& sink,
                            const TraceFormatOptions& opts) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (NodeId node : sink.Nodes()) {
    for (const TraceEvent& e : sink.Events(node)) {
      const double ts = static_cast<double>(e.time_ns) / 1000.0;
      switch (e.type) {
        case TraceEventType::kTxnBegin:
          AppendJsonEvent(&out, &first, node, "B", e.a & 0xFFFFFFFFFFFFull,
                          ts, "txn " + TxnStr(e.a), "");
          break;
        case TraceEventType::kTxnCommit:
        case TraceEventType::kGroupCommitCover:
          AppendJsonEvent(&out, &first, node, "E", e.a & 0xFFFFFFFFFFFFull,
                          ts, "txn " + TxnStr(e.a), "");
          break;
        case TraceEventType::kTxnAbort:
          AppendJsonEvent(&out, &first, node, "E", e.a & 0xFFFFFFFFFFFFull,
                          ts, "txn " + TxnStr(e.a), "\"abort\":true");
          break;
        case TraceEventType::kRecoveryPhase: {
          // Complete ("X") event spanning the phase duration.
          const double dur = static_cast<double>(e.b) / 1000.0;
          char args[64];
          std::snprintf(args, sizeof(args), "\"dur_ns\":%" PRIu64, e.b);
          if (!first) out += ",\n";
          first = false;
          char buf[200];
          std::snprintf(buf, sizeof(buf),
                        "{\"pid\":%u,\"tid\":0,\"ph\":\"X\",\"ts\":%.3f,"
                        "\"dur\":%.3f,\"name\":\"recovery %s\",\"args\":{%s}}",
                        node, ts - dur, dur, RecoveryPhaseStr(e.a), args);
          out += buf;
          break;
        }
        default: {
          std::string detail = Args(e, opts);
          // Escape is unnecessary: Args emits only [A-Za-z0-9:=#._ ]+.
          AppendJsonEvent(&out, &first, node, "i", 0, ts,
                          std::string(TraceEventTypeName(e.type)),
                          "\"detail\":\"" + detail + "\"");
          break;
        }
      }
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace clog
