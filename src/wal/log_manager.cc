#include "wal/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/fsutil.h"
#include "fault/fault_injector.h"
#include "trace/trace_sink.h"
#include "wal/drainer.h"
#include "wal/staging_buffer.h"

namespace clog {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Record framing: u32 body_len | u32 crc32c(body) | body.
constexpr std::size_t kFrameOverhead = 8;

/// Globally monotonic registration epoch (see LogManager::staging_epoch_):
/// every Open stamps a fresh value, so a thread-local cache entry can
/// never confuse a reopened (or address-reused) LogManager with the one
/// it registered against.
std::atomic<std::uint64_t> g_staging_epoch{0};

/// Thread-local staging-buffer cache: one entry per (LogManager, epoch)
/// this thread has appended to. Tiny (a thread talks to one or two logs),
/// so a linear scan beats any map on the hot path.
struct TlsStaging {
  const LogManager* log = nullptr;
  std::uint64_t epoch = 0;
  StagingBuffer* buffer = nullptr;
};
thread_local std::vector<TlsStaging> t_staging;

}  // namespace

LogManager::LogManager() = default;

LogManager::~LogManager() {
  // The drain thread holds a raw `this`; it must be joined before any
  // member dies. Like the old destructor, no flush: losing the volatile
  // tail at destruction is the crash-consistency contract.
  if (drainer_ != nullptr) drainer_->Stop();
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) return Status::FailedPrecondition("already open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(Errno("open " + path));
  fd_ = fd;
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Status::IOError(Errno("fstat"));
  if (st.st_size == 0) {
    CLOG_RETURN_IF_ERROR(WriteHeader());
    end_lsn_ = kHeaderSize;
    flushed_lsn_ = kHeaderSize;
  } else {
    CLOG_RETURN_IF_ERROR(RecoverTail());
  }
  buffer_start_ = end_lsn_.load(std::memory_order_relaxed);
  published_lsn_.store(buffer_start_, std::memory_order_relaxed);
  reclaimable_lsn_ = kHeaderSize;
  buffer_.clear();
  flushing_chunk_.clear();
  flushing_start_ = buffer_start_;
  {
    // Previous-epoch staging buffers (and any records a crash stranded in
    // them) die here; producer threads re-register on their next append
    // because the epoch moved. Their append statistics are folded into
    // the base counters first — stats are cumulative across reopens.
    std::lock_guard<std::mutex> slk(staging_mu_);
    for (const auto& sb : staging_) {
      appended_records_.fetch_add(sb->records(), std::memory_order_relaxed);
      appended_bytes_.fetch_add(sb->bytes(), std::memory_order_relaxed);
    }
    staging_.clear();
    staging_count_.store(0, std::memory_order_release);
    // The drain-role snapshot would otherwise dangle into the old epoch
    // (no drainer runs during Open — lifecycle methods are quiesced).
    drain_scratch_.clear();
    staging_epoch_ = g_staging_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  concurrent_.store(false, std::memory_order_release);
  open_.store(true, std::memory_order_release);
  return Status::OK();
}

Status LogManager::WriteHeader() {
  std::string hdr;
  Encoder enc(&hdr);
  enc.PutU32(kLogMagic);
  enc.PutU32(1);  // version
  hdr.resize(kHeaderSize, '\0');
  if (::pwrite(fd_, hdr.data(), hdr.size(), 0) !=
      static_cast<ssize_t>(hdr.size())) {
    return Status::IOError(Errno("pwrite log header"));
  }
  if (::fdatasync(fd_) != 0) return Status::IOError(Errno("fdatasync"));
  return Status::OK();
}

Status LogManager::RecoverTail() {
  // Walk whole frames from the header until a torn/invalid frame or EOF;
  // the end LSN is the end of the last valid frame. A torn tail (crash in
  // mid-write) is expected and silently truncated, per standard WAL
  // practice: anything past the last complete frame was never acknowledged.
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Status::IOError(Errno("fstat"));
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  std::uint64_t pos = kHeaderSize;
  char frame_hdr[kFrameOverhead];
  std::string body;
  while (pos + kFrameOverhead <= size) {
    if (::pread(fd_, frame_hdr, kFrameOverhead, static_cast<off_t>(pos)) !=
        static_cast<ssize_t>(kFrameOverhead)) {
      break;
    }
    std::uint32_t len, crc;
    std::memcpy(&len, frame_hdr, 4);
    std::memcpy(&crc, frame_hdr + 4, 4);
    if (len == 0 || pos + kFrameOverhead + len > size) break;
    body.resize(len);
    if (::pread(fd_, body.data(), len,
                static_cast<off_t>(pos + kFrameOverhead)) !=
        static_cast<ssize_t>(len)) {
      break;
    }
    if (crc32c::Value(body.data(), len) != crc) break;
    pos += kFrameOverhead + len;
  }
  end_lsn_ = pos;
  flushed_lsn_ = pos;
  if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
    return Status::IOError(Errno("ftruncate torn log tail"));
  }
  return Status::OK();
}

Status LogManager::Close() {
  Status st;
  {
    std::lock_guard<std::mutex> io_lk(flush_mu_);
    std::unique_lock<std::mutex> lk(mu_);
    if (fd_ < 0) return Status::OK();
    // Publication barrier: every appended record must reach the tail
    // before the final flush covers it. (Callers have quiesced producers,
    // so end_lsn_ is stable here.)
    AwaitPublished(end_lsn_.load(std::memory_order_acquire), lk);
    st = FlushLocked(end_lsn_.load(std::memory_order_acquire), lk);
    open_.store(false, std::memory_order_release);
    ::close(fd_);
    fd_ = -1;
  }
  StopDrainer();
  return st;
}

void LogManager::Abandon() {
  // Crash semantics: stop accepting work, then kill the drainer wherever
  // it is. Records it had not yet assembled stay in their staging buffers
  // and are simply lost — the unpublished suffix — exactly as an
  // in-flight encode would be lost by a real process death.
  open_.store(false, std::memory_order_release);
  if (drainer_ != nullptr) drainer_->Stop();
  published_cv_.notify_all();  // Release flushers stuck in AwaitPublished.
  // flush_mu_ before mu_ (the lock order): an in-flight flush I/O section
  // must finish before the fd goes away beneath it.
  std::lock_guard<std::mutex> io_lk(flush_mu_);
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return;
  if (fault_ != nullptr && !buffer_.empty()) {
    // A real crash can leave any prefix of the in-flight tail on the
    // platter, possibly garbled. None of these bytes were ever covered by
    // a successful Flush, so whatever survives is legal under WAL: reopen
    // scans whole frames and truncates at the first torn one.
    FaultInjector::TornTail tear = fault_->OnAbandon(node_, buffer_.size());
    if (tear.tear && tear.keep_bytes > 0) {
      std::string tail = buffer_.substr(0, tear.keep_bytes);
      if (tear.corrupt_last) tail.back() ^= 0x5A;
      // Best effort, like the crash it simulates.
      ::pwrite(fd_, tail.data(), tail.size(),
               static_cast<off_t>(buffer_start_));
    }
  }
  ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void LogManager::StartDrainer() {
  if (drainer_ == nullptr) drainer_ = std::make_unique<LogDrainer>(this);
  if (drainer_->running()) return;
  concurrent_.store(true, std::memory_order_release);
  drainer_->Start();
}

void LogManager::StopDrainer() {
  if (!concurrent_.load(std::memory_order_acquire)) return;
  {
    // Drain barrier: the thread is only retired once everything staged has
    // been assembled, so flipping back to inline mode never strands bytes.
    std::unique_lock<std::mutex> lk(mu_);
    while (published_lsn_.load(std::memory_order_acquire) <
           end_lsn_.load(std::memory_order_acquire)) {
      if (drainer_ == nullptr || !drainer_->running()) break;
      drainer_->Nudge();
      published_cv_.wait_for(lk, std::chrono::milliseconds(1));
    }
  }
  if (drainer_ != nullptr) drainer_->Stop();
  concurrent_.store(false, std::memory_order_release);
}

Status LogManager::ReserveLsn(std::uint64_t frame_size, bool enforce_capacity,
                              Lsn* lsn) {
  // The whole multi-producer admission protocol: one CAS loop. Folding the
  // capacity check into the loop makes LogFull exact — two producers can
  // never both pass a stale WouldOverflow and jointly overshoot, because
  // whoever loses the CAS re-evaluates against the winner's reservation.
  Lsn end = end_lsn_.load(std::memory_order_relaxed);
  for (;;) {
    if (enforce_capacity) {
      std::uint64_t cap = capacity_.load(std::memory_order_relaxed);
      if (cap != 0 &&
          end + frame_size -
                  reclaimable_lsn_.load(std::memory_order_acquire) >
              cap) {
        return Status::LogFull("log capacity " + std::to_string(cap) +
                               " bytes exhausted");
      }
    }
    if (end_lsn_.compare_exchange_weak(end, end + frame_size,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      *lsn = end;
      return Status::OK();
    }
  }
}

StagingBuffer* LogManager::ThreadStaging() {
  for (const TlsStaging& e : t_staging) {
    if (e.log == this && e.epoch == staging_epoch_) return e.buffer;
  }
  // First append from this thread (or first since a reopen): register a
  // fresh buffer, pre-sized so the first records pay no allocation.
  auto owned = std::make_unique<StagingBuffer>();
  owned->Reserve();
  StagingBuffer* raw = owned.get();
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lk(staging_mu_);
    staging_.push_back(std::move(owned));
    staging_count_.store(staging_.size(), std::memory_order_release);
    epoch = staging_epoch_;
  }
  std::erase_if(t_staging,
                [this](const TlsStaging& e) { return e.log == this; });
  t_staging.push_back(TlsStaging{this, epoch, raw});
  return raw;
}

Status LogManager::Append(const LogRecord& rec, Lsn* lsn,
                          bool enforce_capacity) {
  if (!open_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("log not open");
  }
  if (concurrent_.load(std::memory_order_acquire)) {
    return AppendStaged(rec, lsn, enforce_capacity);
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("log not open");
  return AppendInline(rec, lsn, enforce_capacity);
}

Status LogManager::AppendInline(const LogRecord& rec, Lsn* lsn,
                                bool enforce_capacity) {
  // Zero-copy append: reserve the 8-byte frame header, encode the body
  // directly into the tail buffer, then backfill len + crc. No per-record
  // temporary string, no second memcpy; the on-disk frame format is
  // byte-for-byte what the old encode-then-copy path produced.
  const std::size_t base = buffer_.size();
  buffer_.append(kFrameOverhead, '\0');
  rec.EncodeTo(&buffer_);
  const std::size_t body_size = buffer_.size() - base - kFrameOverhead;
  const std::uint64_t frame_size = body_size + kFrameOverhead;
  Status reserved = ReserveLsn(frame_size, enforce_capacity, lsn);
  if (!reserved.ok()) {
    buffer_.resize(base);  // The refused record leaves no trace.
    return reserved;
  }
  std::uint32_t len = static_cast<std::uint32_t>(body_size);
  std::uint32_t crc =
      crc32c::Value(buffer_.data() + base + kFrameOverhead, body_size);
  std::memcpy(buffer_.data() + base, &len, 4);
  std::memcpy(buffer_.data() + base + 4, &crc, 4);
  // Inline drain: the record is assembled the instant it is appended.
  published_lsn_.store(*lsn + frame_size, std::memory_order_release);
  appended_records_.fetch_add(1, std::memory_order_relaxed);
  appended_bytes_.fetch_add(frame_size, std::memory_order_relaxed);
  if (trace_ != nullptr) {
    trace_->Emit(trace_node_, TraceEventType::kLogAppend, *lsn, frame_size,
                 static_cast<std::uint32_t>(rec.type));
  }
  return Status::OK();
}

Status LogManager::AppendStaged(const LogRecord& rec, Lsn* lsn,
                                bool enforce_capacity) {
  StagingBuffer* sb = ThreadStaging();
  StagingBuffer::Slot* slot;
  while ((slot = sb->AcquireSlot()) == nullptr) {
    // Ring full: backpressure until the drainer frees a slot. Yield, not
    // park or sleep: a parked producer needs a futex round-trip (and a
    // precisely raced notify) to resume, and a sleeping producer leaves
    // the drainer starved for input the moment it catches up — both
    // measured worse than handing the scheduler the core, especially on
    // small hosts where the drainer needs exactly this CPU to make room.
    // A log that closed (crash) underneath us releases the spin instead
    // of wedging the producer.
    if (!open_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("log not open");
    }
    std::this_thread::yield();
  }
  // Same zero-copy framing as the inline path, into this thread's own
  // slot: reserve the header, encode in place, backfill len + crc.
  std::string* frame = &slot->frame;
  frame->clear();
  frame->append(kFrameOverhead, '\0');
  rec.EncodeTo(frame);
  const std::size_t body_size = frame->size() - kFrameOverhead;
  const std::uint64_t frame_size = body_size + kFrameOverhead;
  // The frame is completed (len + crc backfill) *before* the reservation:
  // between ReserveLsn and Publish this producer is the head-of-line
  // blocker for the entire LSN-ordered assembly, so that window must be
  // as close to nothing as possible — two plain stores — or a producer
  // preempted inside it stalls every other ring for a scheduler quantum.
  // Reservation still precedes publication, so a LogFull refusal leaves
  // nothing behind: the unpublished slot is recycled by the next append.
  std::uint32_t len = static_cast<std::uint32_t>(body_size);
  std::uint32_t crc =
      crc32c::Value(frame->data() + kFrameOverhead, body_size);
  std::memcpy(frame->data(), &len, 4);
  std::memcpy(frame->data() + 4, &crc, 4);
  CLOG_RETURN_IF_ERROR(ReserveLsn(frame_size, enforce_capacity, lsn));
  slot->lsn = *lsn;
  // The release store that hands the record to the drainer. After this,
  // the slot is untouchable until the drainer consumes it.
  sb->Publish();
  sb->CountAppend(frame_size);
  if (trace_ != nullptr) {
    trace_->Emit(trace_node_, TraceEventType::kLogAppend, *lsn, frame_size,
                 static_cast<std::uint32_t>(rec.type));
  }
  return Status::OK();
}

std::size_t LogManager::DrainPublishedBatch() {
  // The lock makes the caller *the* drain role for the duration (the
  // background drainer, or an AwaitPublished waiter assembling its own
  // backlog), so published_lsn_ has a single writer inside and the rings
  // stay SPSC on the consumer side.
  std::lock_guard<std::mutex> role(drain_role_mu_);
  return DrainBatchRoleHeld();
}

std::size_t LogManager::DrainBatchRoleHeld() {
  // Merge published staging records into the tail in LSN order.
  constexpr std::size_t kMaxBatchBytes = 1024 * 1024;
  // A drainer that keeps pace with its producers finds only a record or
  // two per sweep, and the fixed sweep cost (registry snapshot, tail-lock
  // splice) then dominates — throughput becomes sweeps/s, not records/s.
  // So a sweep that came up small lingers briefly (bounded spin) to let
  // producers publish more before paying the splice. Publication delay is
  // a few µs at worst; appenders never wait on it.
  constexpr std::size_t kMinSpliceBytes = 16 * 1024;
  constexpr int kGatherYields = 16;
  Lsn expected = published_lsn_.load(std::memory_order_acquire);
  // The scratch buffers are members: a busy drainer sweeps millions of
  // times a second, and a heap allocation (plus string growth reallocs)
  // per sweep was the dominant cost of small sweeps. The registry
  // snapshot is refreshed only when the registry grew — it only changes
  // between Opens or by growing, and entries stay valid until Open.
  std::vector<StagingBuffer*>& buffers = drain_scratch_;
  if (buffers.size() != staging_count_.load(std::memory_order_acquire)) {
    buffers.clear();
    std::lock_guard<std::mutex> lk(staging_mu_);
    for (const auto& sb : staging_) buffers.push_back(sb.get());
  }
  // Assemble off the tail lock: the merge (peeks + memcpys) touches only
  // SPSC state, so producers and flushers run undisturbed until the final
  // splice.
  std::string& batch = drain_batch_;
  batch.clear();
  int spins = 0;
  while (batch.size() < kMaxBatchBytes) {
    bool progress = false;
    for (StagingBuffer* sb : buffers) {
      const StagingBuffer::Slot* s = sb->Peek();
      if (s == nullptr || s->lsn != expected) continue;
      // A run of contiguous records from one producer: consume the whole
      // run before rescanning, since per-thread LSNs are monotonic.
      do {
        batch.append(s->frame);
        expected += s->frame.size();
        sb->Consume();
        s = sb->Peek();
      } while (s != nullptr && s->lsn == expected &&
               batch.size() < kMaxBatchBytes);
      progress = true;
      break;  // The next LSN may live in any buffer: rescan.
    }
    if (!progress) {
      if (batch.empty() || batch.size() >= kMinSpliceBytes ||
          ++spins > kGatherYields) {
        break;
      }
      // Gather only while somebody is actually mid-append (reserved but
      // not yet published); a quiet log splices immediately.
      if (end_lsn_.load(std::memory_order_acquire) == expected) break;
      // Yield, not pause: the producer holding up `expected` may need
      // this very core to finish its encode (think single-CPU hosts —
      // spinning here would steal cycles from the thread being waited
      // on). On a busy box one yield often buys a whole producer
      // timeslice of records, which is exactly the batch we want.
      std::this_thread::yield();
    }
  }
  if (batch.empty()) return 0;
  const std::size_t batch_bytes = batch.size();
  bool wake;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (buffer_.empty()) {
      // The flusher steals buffer_ on every force, so between forces it is
      // usually empty — swapping the batch in hands over the bytes without
      // re-copying them (the second memcpy of every logged byte otherwise).
      std::swap(buffer_, batch);
    } else {
      buffer_.append(batch);
    }
    published_lsn_.store(expected, std::memory_order_release);
    // Wake waiters only when the watermark actually crossed one's
    // threshold: a busy drainer splices thousands of times a second, and
    // an unconditional notify is a futex syscall per sweep whenever a
    // flusher is parked. Waiters this leaves unsatisfied re-register
    // (AwaitPublished loops under mu_), and every wait is bounded, so a
    // skipped notify costs at most one poll interval, never a wedge.
    wake = min_awaited_ <= expected;
    if (wake) min_awaited_ = kNoAwaiter;
  }
  if (wake) published_cv_.notify_all();
  return batch_bytes;
}

void LogManager::AwaitPublished(Lsn up_to, std::unique_lock<std::mutex>& lk) {
  // Inline mode publishes at append time: nothing to wait for.
  while (concurrent_.load(std::memory_order_acquire)) {
    Lsn pub = published_lsn_.load(std::memory_order_acquire);
    if (pub > up_to || pub >= end_lsn_.load(std::memory_order_acquire)) {
      return;
    }
    // Abandon kills the drainer with reservations possibly still staged;
    // the watermark can never cover them, so waiting would wedge the
    // caller forever. Give up — the caller observes the crashed log.
    if (!open_.load(std::memory_order_acquire)) return;
    // Drain-helper: if the drain role is free, assemble the published
    // backlog ourselves instead of waiting for the drainer thread to be
    // scheduled (a commit force used to eat the drainer's idle-sleep
    // interval just to get a few hundred bytes memcpy'd — most of its
    // latency). Try-lock only: when the drainer is actively mid-sweep,
    // barging in would just fragment its batches — it will splice and
    // notify soon. mu_ is dropped across the drain per the lock order
    // (drain_role_mu_ before mu_).
    lk.unlock();
    std::size_t drained = 0;
    {
      std::unique_lock<std::mutex> role(drain_role_mu_, std::try_to_lock);
      if (role.owns_lock()) drained = DrainBatchRoleHeld();
    }
    lk.lock();
    if (drained > 0) continue;
    // Nothing assembled: the missing records are still in some producer's
    // hands (reserved, not yet published) — now we really must wait.
    // Register this wait's threshold so the drainer knows when a splice is
    // worth a notify (mu_ is held here and at the splice: no lost wakeup).
    if (up_to < min_awaited_) min_awaited_ = up_to;
    if (drainer_ != nullptr) drainer_->Nudge();
    // Timed wait: publication is signalled under mu_, but a drainer racing
    // a shutdown could stop without one last notify.
    published_cv_.wait_for(lk, std::chrono::microseconds(200));
  }
}

Status LogManager::Flush(Lsn up_to) {
  std::lock_guard<std::mutex> io_lk(flush_mu_);
  std::unique_lock<std::mutex> lk(mu_);
  return FlushLocked(up_to, lk);
}

Status LogManager::FlushLocked(Lsn up_to, std::unique_lock<std::mutex>& lk) {
  if (fd_ < 0) return Status::FailedPrecondition("log not open");
  // flushed_lsn_ is the end of the durable prefix: a record is durable iff
  // its start LSN lies strictly before it. (A flush that waited on
  // flush_mu_ behind one that covered its up_to is absorbed here — group
  // commit.)
  if (up_to < flushed_lsn_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  // Group commit meets the publication watermark: wait until every record
  // with start LSN <= up_to is assembled, then one write, one fsync.
  AwaitPublished(up_to, lk);
  if (buffer_.empty()) return Status::OK();
  if (fault_ != nullptr && fault_->OnLogSync(node_)) {
    // Fails before any byte reaches the file: the records stay buffered
    // and flushed_lsn_ is unchanged, so a later retry is sound — but the
    // harness fail-stops the node instead (I/O errors on the WAL are not
    // survivable in place).
    return Status::IOError("fault injection: log force failed");
  }
  // Steal the assembled prefix (O(1) swap — copying megabytes under mu_
  // would stall the drainer's splice and back up every producer ring) and
  // release the tail lock for the I/O: producers keep appending and the
  // drainer keeps splicing into the emptied buffer_ while the disk syncs.
  // flush_mu_ (held by the caller) keeps concurrent flush I/O serial, so
  // flushed_lsn_ only ever advances over a fully durable prefix; fd_ is
  // stable because teardown (Close and Abandon) also takes flush_mu_
  // before closing it. While the chunk is in flight its bytes live in
  // neither buffer_ nor the durable file — ReadRecord serves them from
  // flushing_chunk_.
  std::swap(flushing_chunk_, buffer_);
  buffer_.clear();
  flushing_start_ = buffer_start_;
  const std::size_t n = flushing_chunk_.size();
  const Lsn write_start = flushing_start_;
  buffer_start_ = write_start + n;
  const int fd = fd_;
  lk.unlock();
  Status io = Status::OK();
  if (::pwrite(fd, flushing_chunk_.data(), n,
               static_cast<off_t>(write_start)) != static_cast<ssize_t>(n)) {
    io = Status::IOError(Errno("pwrite log"));
  } else if (::fdatasync(fd) != 0) {
    io = Status::IOError(Errno("fdatasync log"));
  }
  lk.lock();
  if (!io.ok()) {
    // Put the unwritten chunk back in front of whatever the drainer
    // spliced meanwhile; a later retry is sound.
    flushing_chunk_.append(buffer_);
    std::swap(buffer_, flushing_chunk_);
    flushing_chunk_.clear();
    buffer_start_ = flushing_start_;
    return io;
  }
  flushing_chunk_.clear();  // Keeps its capacity for the next flush.
  const Lsn assembled_end = write_start + n;
  if (trace_ != nullptr) {
    trace_->Emit(trace_node_, TraceEventType::kLogForce, assembled_end, n);
  }
  flushed_lsn_.store(assembled_end, std::memory_order_release);
  forces_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn) {
  std::string body;
  std::uint32_t crc = 0;
  CLOG_RETURN_IF_ERROR(ReadRawFrame(lsn, &body, &crc, next_lsn));
  if (crc32c::Value(body.data(), body.size()) != crc) {
    return Status::Corruption("log record crc mismatch at lsn " +
                              std::to_string(lsn));
  }
  return LogRecord::DecodeFrom(body, rec);
}

Status LogManager::ReadRawFrame(Lsn lsn, std::string* body,
                                std::uint32_t* crc, Lsn* next_lsn) {
  std::unique_lock<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("log not open");
  if (lsn < kHeaderSize || lsn >= end_lsn_.load(std::memory_order_acquire)) {
    return Status::NotFound("lsn " + std::to_string(lsn) + " out of range");
  }
  // A reserved LSN may still be in its producer's staging buffer; readers
  // (recovery scans, peer redo collection) wait for its publication.
  AwaitPublished(lsn, lk);
  char frame_hdr[kFrameOverhead];
  if (lsn >= buffer_start_) {
    // Still in the assembled tail buffer.
    std::size_t off = static_cast<std::size_t>(lsn - buffer_start_);
    if (off + kFrameOverhead > buffer_.size()) {
      return Status::Corruption("buffered frame header out of range");
    }
    std::memcpy(frame_hdr, buffer_.data() + off, kFrameOverhead);
    std::uint32_t len;
    std::memcpy(&len, frame_hdr, 4);
    if (off + kFrameOverhead + len > buffer_.size()) {
      return Status::Corruption("buffered frame body out of range");
    }
    body->assign(buffer_.data() + off + kFrameOverhead, len);
  } else if (!flushing_chunk_.empty() && lsn >= flushing_start_) {
    // In the chunk a concurrent Flush is writing right now: not in
    // buffer_ any more, not yet durable on disk. Read-only access races
    // nothing — the flusher only mutates the chunk under mu_.
    std::size_t off = static_cast<std::size_t>(lsn - flushing_start_);
    if (off + kFrameOverhead > flushing_chunk_.size()) {
      return Status::Corruption("in-flight frame header out of range");
    }
    std::memcpy(frame_hdr, flushing_chunk_.data() + off, kFrameOverhead);
    std::uint32_t len;
    std::memcpy(&len, frame_hdr, 4);
    if (off + kFrameOverhead + len > flushing_chunk_.size()) {
      return Status::Corruption("in-flight frame body out of range");
    }
    body->assign(flushing_chunk_.data() + off + kFrameOverhead, len);
  } else {
    if (::pread(fd_, frame_hdr, kFrameOverhead, static_cast<off_t>(lsn)) !=
        static_cast<ssize_t>(kFrameOverhead)) {
      return Status::IOError(Errno("pread log frame"));
    }
    std::uint32_t len;
    std::memcpy(&len, frame_hdr, 4);
    body->resize(len);
    if (::pread(fd_, body->data(), len,
                static_cast<off_t>(lsn + kFrameOverhead)) !=
        static_cast<ssize_t>(len)) {
      return Status::IOError(Errno("pread log body"));
    }
  }
  std::memcpy(crc, frame_hdr + 4, 4);
  if (next_lsn != nullptr) *next_lsn = lsn + kFrameOverhead + body->size();
  return Status::OK();
}

std::uint64_t LogManager::appended_records() const {
  std::uint64_t n = appended_records_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(staging_mu_);
  for (const auto& sb : staging_) n += sb->records();
  return n;
}

std::uint64_t LogManager::appended_bytes() const {
  std::uint64_t n = appended_bytes_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lk(staging_mu_);
  for (const auto& sb : staging_) n += sb->bytes();
  return n;
}

void LogManager::SetReclaimableLsn(Lsn lsn) {
  // Monotonic max; the CAS loop makes concurrent advances keep the larger.
  Lsn cur = reclaimable_lsn_.load(std::memory_order_relaxed);
  while (lsn > cur && !reclaimable_lsn_.compare_exchange_weak(
                          cur, lsn, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
}

Status LogManager::StoreMaster(Lsn checkpoint_end_lsn) {
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kLogMagic);
  enc.PutU64(checkpoint_end_lsn);
  std::uint32_t crc = crc32c::Value(blob.data(), blob.size());
  enc.PutU32(crc);
  // Crash-atomic replace: recovery trusts this pointer; a torn or vanished
  // master would silently discard the checkpoint.
  return AtomicWriteFile(path_ + ".master", blob);
}

Result<Lsn> LogManager::LoadMaster() const {
  std::ifstream in(path_ + ".master", std::ios::binary);
  if (!in.good()) return kNullLsn;  // No checkpoint taken yet.
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Decoder dec(blob);
  std::uint32_t magic = 0, crc = 0;
  std::uint64_t lsn = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  CLOG_RETURN_IF_ERROR(dec.GetU64(&lsn));
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (magic != kLogMagic ||
      crc32c::Value(blob.data(), blob.size() - 4) != crc) {
    return Status::Corruption("bad master record");
  }
  return lsn;
}

Status LogManager::StoreMark() {
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kLogMagic);
  enc.PutU64(flushed_lsn_.load(std::memory_order_acquire));
  std::uint32_t crc = crc32c::Value(blob.data(), blob.size());
  enc.PutU32(crc);
  return AtomicWriteFile(path_ + ".mark", blob);
}

Result<Lsn> LogManager::LoadMark() const {
  std::string blob;
  Status st = ReadFileToString(path_ + ".mark", &blob);
  if (st.IsNotFound()) return kNullLsn;  // Mark never written.
  CLOG_RETURN_IF_ERROR(st);
  Decoder dec(blob);
  std::uint32_t magic = 0, crc = 0;
  std::uint64_t lsn = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  CLOG_RETURN_IF_ERROR(dec.GetU64(&lsn));
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (magic != kLogMagic ||
      crc32c::Value(blob.data(), blob.size() - 4) != crc) {
    return Status::Corruption("bad log mark");
  }
  return lsn;
}

}  // namespace clog
