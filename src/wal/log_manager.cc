#include "wal/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/codec.h"
#include "common/crc32c.h"
#include "common/fsutil.h"
#include "trace/trace_sink.h"
#include "fault/fault_injector.h"

namespace clog {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Record framing: u32 body_len | u32 crc32c(body) | body.
constexpr std::size_t kFrameOverhead = 8;

}  // namespace

LogManager::~LogManager() {
  if (fd_ >= 0) ::close(fd_);
}

Status LogManager::Open(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ >= 0) return Status::FailedPrecondition("already open");
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Status::IOError(Errno("open " + path));
  fd_ = fd;
  path_ = path;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Status::IOError(Errno("fstat"));
  if (st.st_size == 0) {
    CLOG_RETURN_IF_ERROR(WriteHeader());
    end_lsn_ = kHeaderSize;
    flushed_lsn_ = kHeaderSize;
  } else {
    CLOG_RETURN_IF_ERROR(RecoverTail());
  }
  buffer_start_ = end_lsn_;
  reclaimable_lsn_ = kHeaderSize;
  buffer_.clear();
  return Status::OK();
}

Status LogManager::WriteHeader() {
  std::string hdr;
  Encoder enc(&hdr);
  enc.PutU32(kLogMagic);
  enc.PutU32(1);  // version
  hdr.resize(kHeaderSize, '\0');
  if (::pwrite(fd_, hdr.data(), hdr.size(), 0) !=
      static_cast<ssize_t>(hdr.size())) {
    return Status::IOError(Errno("pwrite log header"));
  }
  if (::fdatasync(fd_) != 0) return Status::IOError(Errno("fdatasync"));
  return Status::OK();
}

Status LogManager::RecoverTail() {
  // Walk whole frames from the header until a torn/invalid frame or EOF;
  // the end LSN is the end of the last valid frame. A torn tail (crash in
  // mid-write) is expected and silently truncated, per standard WAL
  // practice: anything past the last complete frame was never acknowledged.
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Status::IOError(Errno("fstat"));
  std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  std::uint64_t pos = kHeaderSize;
  char frame_hdr[kFrameOverhead];
  std::string body;
  while (pos + kFrameOverhead <= size) {
    if (::pread(fd_, frame_hdr, kFrameOverhead, static_cast<off_t>(pos)) !=
        static_cast<ssize_t>(kFrameOverhead)) {
      break;
    }
    std::uint32_t len, crc;
    std::memcpy(&len, frame_hdr, 4);
    std::memcpy(&crc, frame_hdr + 4, 4);
    if (len == 0 || pos + kFrameOverhead + len > size) break;
    body.resize(len);
    if (::pread(fd_, body.data(), len,
                static_cast<off_t>(pos + kFrameOverhead)) !=
        static_cast<ssize_t>(len)) {
      break;
    }
    if (crc32c::Value(body.data(), len) != crc) break;
    pos += kFrameOverhead + len;
  }
  end_lsn_ = pos;
  flushed_lsn_ = pos;
  if (::ftruncate(fd_, static_cast<off_t>(pos)) != 0) {
    return Status::IOError(Errno("ftruncate torn log tail"));
  }
  return Status::OK();
}

Status LogManager::Close() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::OK();
  Status st = FlushLocked(end_lsn_);
  ::close(fd_);
  fd_ = -1;
  return st;
}

void LogManager::Abandon() {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return;
  if (fault_ != nullptr && !buffer_.empty()) {
    // A real crash can leave any prefix of the in-flight tail on the
    // platter, possibly garbled. None of these bytes were ever covered by
    // a successful Flush, so whatever survives is legal under WAL: reopen
    // scans whole frames and truncates at the first torn one.
    FaultInjector::TornTail tear = fault_->OnAbandon(node_, buffer_.size());
    if (tear.tear && tear.keep_bytes > 0) {
      std::string tail = buffer_.substr(0, tear.keep_bytes);
      if (tear.corrupt_last) tail.back() ^= 0x5A;
      // Best effort, like the crash it simulates.
      ::pwrite(fd_, tail.data(), tail.size(),
               static_cast<off_t>(buffer_start_));
    }
  }
  ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

Status LogManager::Append(const LogRecord& rec, Lsn* lsn,
                          bool enforce_capacity) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("log not open");
  // Zero-copy append: reserve the 8-byte frame header, encode the body
  // directly into the tail buffer, then backfill len + crc. No per-record
  // temporary string, no second memcpy; the on-disk frame format is
  // byte-for-byte what the old encode-then-copy path produced.
  const std::size_t base = buffer_.size();
  buffer_.append(kFrameOverhead, '\0');
  rec.EncodeTo(&buffer_);
  const std::size_t body_size = buffer_.size() - base - kFrameOverhead;
  const std::uint64_t frame_size = body_size + kFrameOverhead;
  if (enforce_capacity && WouldOverflow(frame_size)) {
    buffer_.resize(base);  // The refused record leaves no trace.
    return Status::LogFull("log capacity " + std::to_string(capacity_) +
                           " bytes exhausted");
  }
  std::uint32_t len = static_cast<std::uint32_t>(body_size);
  std::uint32_t crc =
      crc32c::Value(buffer_.data() + base + kFrameOverhead, body_size);
  std::memcpy(buffer_.data() + base, &len, 4);
  std::memcpy(buffer_.data() + base + 4, &crc, 4);
  *lsn = end_lsn_;
  end_lsn_ += frame_size;
  ++appended_records_;
  appended_bytes_ += frame_size;
  if (trace_ != nullptr) {
    trace_->Emit(trace_node_, TraceEventType::kLogAppend, *lsn, frame_size,
                 static_cast<std::uint32_t>(rec.type));
  }
  return Status::OK();
}

Status LogManager::Flush(Lsn up_to) {
  std::lock_guard<std::mutex> lk(mu_);
  return FlushLocked(up_to);
}

Status LogManager::FlushLocked(Lsn up_to) {
  if (fd_ < 0) return Status::FailedPrecondition("log not open");
  // flushed_lsn_ is the end of the durable prefix: a record is durable iff
  // its start LSN lies strictly before it.
  if (up_to < flushed_lsn_) return Status::OK();
  if (buffer_.empty()) return Status::OK();
  if (fault_ != nullptr && fault_->OnLogSync(node_)) {
    // Fails before any byte reaches the file: the records stay buffered
    // and flushed_lsn_ is unchanged, so a later retry is sound — but the
    // harness fail-stops the node instead (I/O errors on the WAL are not
    // survivable in place).
    return Status::IOError("fault injection: log force failed");
  }
  if (::pwrite(fd_, buffer_.data(), buffer_.size(),
               static_cast<off_t>(buffer_start_)) !=
      static_cast<ssize_t>(buffer_.size())) {
    return Status::IOError(Errno("pwrite log"));
  }
  if (::fdatasync(fd_) != 0) return Status::IOError(Errno("fdatasync log"));
  if (trace_ != nullptr) {
    trace_->Emit(trace_node_, TraceEventType::kLogForce, end_lsn_,
                 buffer_.size());
  }
  buffer_start_ = end_lsn_.load(std::memory_order_relaxed);
  flushed_lsn_.store(buffer_start_, std::memory_order_release);
  buffer_.clear();
  ++forces_;
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn) {
  std::lock_guard<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::FailedPrecondition("log not open");
  if (lsn < kHeaderSize || lsn >= end_lsn_) {
    return Status::NotFound("lsn " + std::to_string(lsn) + " out of range");
  }
  char frame_hdr[kFrameOverhead];
  std::string body;
  if (lsn >= buffer_start_) {
    // Still in the append buffer.
    std::size_t off = static_cast<std::size_t>(lsn - buffer_start_);
    if (off + kFrameOverhead > buffer_.size()) {
      return Status::Corruption("buffered frame header out of range");
    }
    std::memcpy(frame_hdr, buffer_.data() + off, kFrameOverhead);
    std::uint32_t len;
    std::memcpy(&len, frame_hdr, 4);
    if (off + kFrameOverhead + len > buffer_.size()) {
      return Status::Corruption("buffered frame body out of range");
    }
    body.assign(buffer_.data() + off + kFrameOverhead, len);
  } else {
    if (::pread(fd_, frame_hdr, kFrameOverhead, static_cast<off_t>(lsn)) !=
        static_cast<ssize_t>(kFrameOverhead)) {
      return Status::IOError(Errno("pread log frame"));
    }
    std::uint32_t len;
    std::memcpy(&len, frame_hdr, 4);
    body.resize(len);
    if (::pread(fd_, body.data(), len,
                static_cast<off_t>(lsn + kFrameOverhead)) !=
        static_cast<ssize_t>(len)) {
      return Status::IOError(Errno("pread log body"));
    }
  }
  std::uint32_t crc;
  std::memcpy(&crc, frame_hdr + 4, 4);
  if (crc32c::Value(body.data(), body.size()) != crc) {
    return Status::Corruption("log record crc mismatch at lsn " +
                              std::to_string(lsn));
  }
  CLOG_RETURN_IF_ERROR(LogRecord::DecodeFrom(body, rec));
  if (next_lsn != nullptr) *next_lsn = lsn + kFrameOverhead + body.size();
  return Status::OK();
}

void LogManager::SetReclaimableLsn(Lsn lsn) {
  // Monotonic max; the CAS loop makes concurrent advances keep the larger.
  Lsn cur = reclaimable_lsn_.load(std::memory_order_relaxed);
  while (lsn > cur && !reclaimable_lsn_.compare_exchange_weak(
                          cur, lsn, std::memory_order_release,
                          std::memory_order_relaxed)) {
  }
}

Status LogManager::StoreMaster(Lsn checkpoint_end_lsn) {
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kLogMagic);
  enc.PutU64(checkpoint_end_lsn);
  std::uint32_t crc = crc32c::Value(blob.data(), blob.size());
  enc.PutU32(crc);
  // Crash-atomic replace: recovery trusts this pointer; a torn or vanished
  // master would silently discard the checkpoint.
  return AtomicWriteFile(path_ + ".master", blob);
}

Result<Lsn> LogManager::LoadMaster() const {
  std::ifstream in(path_ + ".master", std::ios::binary);
  if (!in.good()) return kNullLsn;  // No checkpoint taken yet.
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Decoder dec(blob);
  std::uint32_t magic = 0, crc = 0;
  std::uint64_t lsn = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  CLOG_RETURN_IF_ERROR(dec.GetU64(&lsn));
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (magic != kLogMagic ||
      crc32c::Value(blob.data(), blob.size() - 4) != crc) {
    return Status::Corruption("bad master record");
  }
  return lsn;
}

Status LogManager::StoreMark() {
  std::string blob;
  Encoder enc(&blob);
  enc.PutU32(kLogMagic);
  enc.PutU64(flushed_lsn_);
  std::uint32_t crc = crc32c::Value(blob.data(), blob.size());
  enc.PutU32(crc);
  return AtomicWriteFile(path_ + ".mark", blob);
}

Result<Lsn> LogManager::LoadMark() const {
  std::string blob;
  Status st = ReadFileToString(path_ + ".mark", &blob);
  if (st.IsNotFound()) return kNullLsn;  // Mark never written.
  CLOG_RETURN_IF_ERROR(st);
  Decoder dec(blob);
  std::uint32_t magic = 0, crc = 0;
  std::uint64_t lsn = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU32(&magic));
  CLOG_RETURN_IF_ERROR(dec.GetU64(&lsn));
  CLOG_RETURN_IF_ERROR(dec.GetU32(&crc));
  if (magic != kLogMagic ||
      crc32c::Value(blob.data(), blob.size() - 4) != crc) {
    return Status::Corruption("bad log mark");
  }
  return lsn;
}

}  // namespace clog
