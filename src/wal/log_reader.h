#ifndef CLOG_WAL_LOG_READER_H_
#define CLOG_WAL_LOG_READER_H_

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"

/// \file
/// Scans over a node's local log: a forward cursor (analysis, redo,
/// NodePSNList construction) and a backward per-transaction cursor
/// (rollback / undo via prev_lsn chains).

namespace clog {

/// Forward sequential scan starting at a given LSN.
class LogCursor {
 public:
  /// Positions the cursor at `start`. `log` must outlive the cursor.
  LogCursor(LogManager* log, Lsn start) : log_(log), next_(start) {}

  /// Reads the next record. Returns false at end of log; `*status` (if
  /// non-null) distinguishes clean end (OK) from corruption.
  bool Next(LogRecord* rec, Lsn* lsn, Status* status = nullptr);

  /// LSN the next call to Next() would read.
  Lsn position() const { return next_; }

  /// Records returned so far (benchmark metric: log records scanned).
  std::uint64_t records_read() const { return records_read_; }

 private:
  LogManager* log_;
  Lsn next_;
  std::uint64_t records_read_ = 0;
};

/// Backward walk of one transaction's records via prev_lsn pointers.
/// Undo uses this; when a CLR is met the walk jumps to its undo_next_lsn so
/// already-compensated work is skipped (ARIES).
class TxnBackwardCursor {
 public:
  /// Starts at the transaction's most recent record.
  TxnBackwardCursor(LogManager* log, Lsn last_lsn)
      : log_(log), next_(last_lsn) {}

  /// Reads the previous record in the chain. Returns false when the chain
  /// is exhausted (reached kBegin or null LSN).
  bool Prev(LogRecord* rec, Lsn* lsn, Status* status = nullptr);

  /// True if positioned past the beginning.
  bool Done() const { return next_ == kNullLsn; }

 private:
  LogManager* log_;
  Lsn next_;
};

}  // namespace clog

#endif  // CLOG_WAL_LOG_READER_H_
