#include "wal/drainer.h"

#include <chrono>

#include "wal/log_manager.h"

namespace clog {

void LogDrainer::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void LogDrainer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void LogDrainer::Nudge() {
  if (!sleeping_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lk(mu_);
  cv_.notify_all();
}

void LogDrainer::Loop() {
  // Busy sweeps while records flow; a bounded yield phase bridges short
  // gaps, then the cv sleep (with timeout, so a missed Nudge costs at most
  // one poll interval) caps the idle burn.
  constexpr int kYieldRounds = 64;
  int idle = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    if (log_->DrainPublishedBatch() > 0) {
      idle = 0;
      continue;
    }
    if (++idle < kYieldRounds) {
      std::this_thread::yield();
      continue;
    }
    std::unique_lock<std::mutex> lk(mu_);
    if (stop_.load(std::memory_order_acquire)) break;
    sleeping_.store(true, std::memory_order_release);
    cv_.wait_for(lk, std::chrono::microseconds(200));
    sleeping_.store(false, std::memory_order_release);
    idle = 0;
  }
}

}  // namespace clog
