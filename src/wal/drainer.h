#ifndef CLOG_WAL_DRAINER_H_
#define CLOG_WAL_DRAINER_H_

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

/// \file
/// Background drainer of the lock-free WAL front end. One thread per
/// LogManager in concurrent mode: it merges records published in the
/// producers' staging buffers into the durable tail in LSN order and
/// advances the published watermark (docs/performance.md "WAL front-end").
/// Flush and Close wait on that watermark; producers never do.

namespace clog {

class LogManager;

/// Owns the drain thread for one LogManager. Started by
/// LogManager::StartDrainer, stopped by StopDrainer/Close/Abandon. The
/// loop polls DrainPublishedBatch; when a sweep finds nothing it yields a
/// few rounds, then sleeps on a condition variable with a short timeout.
/// Nudge() wakes it immediately — Flush calls it before waiting so a
/// sleeping drainer never adds its poll interval to a force.
class LogDrainer {
 public:
  explicit LogDrainer(LogManager* log) : log_(log) {}
  ~LogDrainer() { Stop(); }

  LogDrainer(const LogDrainer&) = delete;
  LogDrainer& operator=(const LogDrainer&) = delete;

  void Start();

  /// Signals the thread to exit after its current sweep and joins it.
  /// Does NOT drain remaining staged records: Close drains to a barrier
  /// first; Abandon deliberately leaves them unpublished (crash
  /// semantics — the unpublished suffix is lost). Idempotent.
  void Stop();

  /// Wakes a sleeping drainer (lock-free fast path when it is awake).
  void Nudge();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void Loop();

  LogManager* log_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  /// True while the loop is in its cv sleep; Nudge skips the mutex+notify
  /// when the drainer is busy sweeping anyway.
  std::atomic<bool> sleeping_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace clog

#endif  // CLOG_WAL_DRAINER_H_
