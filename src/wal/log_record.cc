#include "wal/log_record.h"

namespace clog {

std::string_view LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kBegin:
      return "BEGIN";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
    case LogRecordType::kEnd:
      return "END";
    case LogRecordType::kUpdate:
      return "UPDATE";
    case LogRecordType::kClr:
      return "CLR";
    case LogRecordType::kSavepoint:
      return "SAVEPOINT";
    case LogRecordType::kCheckpointBegin:
      return "CKPT_BEGIN";
    case LogRecordType::kCheckpointEnd:
      return "CKPT_END";
    case LogRecordType::kLogicalUpdate:
      return "LOGICAL_UPDATE";
    case LogRecordType::kUndoBackfill:
      return "UNDO_BACKFILL";
  }
  return "UNKNOWN";
}

namespace {

/// Little-endian stores into a stack scratch buffer. The update-record
/// encode is on the lock-free append hot path; staging the fixed-width
/// header fields here and appending them in ONE string operation (instead
/// of a size/capacity check per field) is worth tens of nanoseconds per
/// record. Byte-for-byte identical to the Encoder it bypasses.
inline char* StoreU8(char* p, std::uint8_t v) {
  *p++ = static_cast<char>(v);
  return p;
}
inline char* StoreU16(char* p, std::uint16_t v) {
  for (std::size_t i = 0; i < 2; ++i) {
    *p++ = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  return p;
}
inline char* StoreU64(char* p, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    *p++ = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  return p;
}

}  // namespace

void LogRecord::EncodeTo(std::string* out) const {
  Encoder enc(out);
  switch (type) {
    case LogRecordType::kUpdate:
    case LogRecordType::kClr:
    case LogRecordType::kLogicalUpdate: {
      // type | txn | prev_lsn | page | psn_before | op | slot = 36 bytes.
      char hdr[36];
      char* p = hdr;
      p = StoreU8(p, static_cast<std::uint8_t>(type));
      p = StoreU64(p, txn);
      p = StoreU64(p, prev_lsn);
      p = StoreU64(p, page.Pack());
      p = StoreU64(p, psn_before);
      p = StoreU8(p, static_cast<std::uint8_t>(op));
      p = StoreU16(p, slot);
      out->append(hdr, static_cast<std::size_t>(p - hdr));
      enc.PutLengthPrefixed(redo_image);
      // The whole point of a logical record: no before-image on disk.
      if (type != LogRecordType::kLogicalUpdate) {
        enc.PutLengthPrefixed(undo_image);
      }
      if (type == LogRecordType::kClr) enc.PutU64(undo_next_lsn);
      return;
    }
    default:
      break;
  }
  enc.PutU8(static_cast<std::uint8_t>(type));
  enc.PutU64(txn);
  enc.PutU64(prev_lsn);
  switch (type) {
    case LogRecordType::kUpdate:
    case LogRecordType::kClr:
    case LogRecordType::kLogicalUpdate:
      break;  // Handled above.
    case LogRecordType::kSavepoint:
      enc.PutLengthPrefixed(savepoint_name);
      break;
    case LogRecordType::kUndoBackfill:
      enc.PutVarint64(backfill.size());
      for (const BackfillEntry& e : backfill) {
        enc.PutU64(e.covered_lsn);
        enc.PutLengthPrefixed(e.undo_image);
      }
      break;
    case LogRecordType::kCommit:
      // Trailing optional block: present only for adaptive transactions,
      // so commit records from the physical strategy (and older builds)
      // keep their exact bytes.
      if (commit_flags != 0 || !commit_deps.empty()) {
        enc.PutU8(commit_flags);
        enc.PutVarint64(commit_deps.size());
        for (const CommitDep& d : commit_deps) {
          enc.PutU64(d.txn);
          enc.PutU64(d.lsn);
        }
      }
      break;
    case LogRecordType::kCheckpointEnd:
      enc.PutU64(checkpoint_begin_lsn);
      enc.PutVarint64(dpt.size());
      for (const DptEntry& e : dpt) {
        enc.PutU64(e.pid.Pack());
        enc.PutU64(e.psn);
        enc.PutU64(e.curr_psn);
        enc.PutU64(e.redo_lsn);
      }
      enc.PutVarint64(att.size());
      for (const AttEntry& e : att) {
        enc.PutU64(e.txn);
        enc.PutU64(e.last_lsn);
      }
      // Trailing optional field: present only when a sealed archive pass
      // exists, so checkpoints written with archiving off (or by older
      // builds) keep their exact bytes.
      if (archive_seq != 0) enc.PutU64(archive_seq);
      break;
    default:
      break;
  }
}

Status LogRecord::DecodeFrom(Slice body, LogRecord* out) {
  *out = LogRecord();
  Decoder dec(body);
  std::uint8_t type8 = 0;
  CLOG_RETURN_IF_ERROR(dec.GetU8(&type8));
  if (type8 < 1 || type8 > 11) {
    return Status::Corruption("bad log record type");
  }
  out->type = static_cast<LogRecordType>(type8);
  CLOG_RETURN_IF_ERROR(dec.GetU64(&out->txn));
  CLOG_RETURN_IF_ERROR(dec.GetU64(&out->prev_lsn));
  switch (out->type) {
    case LogRecordType::kUpdate:
    case LogRecordType::kClr:
    case LogRecordType::kLogicalUpdate: {
      std::uint64_t packed = 0;
      std::uint8_t op8 = 0;
      CLOG_RETURN_IF_ERROR(dec.GetU64(&packed));
      out->page = PageId::Unpack(packed);
      CLOG_RETURN_IF_ERROR(dec.GetU64(&out->psn_before));
      CLOG_RETURN_IF_ERROR(dec.GetU8(&op8));
      if (op8 < 1 || op8 > 4) return Status::Corruption("bad record op");
      out->op = static_cast<RecordOp>(op8);
      CLOG_RETURN_IF_ERROR(dec.GetU16(&out->slot));
      CLOG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->redo_image));
      if (out->type != LogRecordType::kLogicalUpdate) {
        CLOG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->undo_image));
      }
      if (out->type == LogRecordType::kClr) {
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->undo_next_lsn));
      }
      break;
    }
    case LogRecordType::kSavepoint:
      CLOG_RETURN_IF_ERROR(dec.GetLengthPrefixed(&out->savepoint_name));
      break;
    case LogRecordType::kUndoBackfill: {
      std::uint64_t n = 0;
      CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
      out->backfill.resize(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->backfill[i].covered_lsn));
        CLOG_RETURN_IF_ERROR(
            dec.GetLengthPrefixed(&out->backfill[i].undo_image));
      }
      break;
    }
    case LogRecordType::kCommit:
      if (!dec.Done()) {
        CLOG_RETURN_IF_ERROR(dec.GetU8(&out->commit_flags));
        std::uint64_t n = 0;
        CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
        out->commit_deps.resize(n);
        for (std::uint64_t i = 0; i < n; ++i) {
          CLOG_RETURN_IF_ERROR(dec.GetU64(&out->commit_deps[i].txn));
          CLOG_RETURN_IF_ERROR(dec.GetU64(&out->commit_deps[i].lsn));
        }
      }
      break;
    case LogRecordType::kCheckpointEnd: {
      CLOG_RETURN_IF_ERROR(dec.GetU64(&out->checkpoint_begin_lsn));
      std::uint64_t n = 0;
      CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
      out->dpt.resize(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t packed = 0;
        CLOG_RETURN_IF_ERROR(dec.GetU64(&packed));
        out->dpt[i].pid = PageId::Unpack(packed);
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->dpt[i].psn));
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->dpt[i].curr_psn));
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->dpt[i].redo_lsn));
      }
      CLOG_RETURN_IF_ERROR(dec.GetVarint64(&n));
      out->att.resize(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->att[i].txn));
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->att[i].last_lsn));
      }
      if (!dec.Done()) {
        CLOG_RETURN_IF_ERROR(dec.GetU64(&out->archive_seq));
      }
      break;
    }
    default:
      break;
  }
  return Status::OK();
}

std::string LogRecord::ToString() const {
  std::string out(LogRecordTypeName(type));
  out += " txn=" + std::to_string(txn & 0xFFFFFFFFFFFFull);
  if (IsPageUpdate()) {
    out += " page=" + page.ToString();
    out += " psn_before=" + std::to_string(psn_before);
    out += " slot=" + std::to_string(slot);
  }
  if (type == LogRecordType::kUndoBackfill) {
    out += " covers=" + std::to_string(backfill.size());
  }
  if (type == LogRecordType::kCommit && !commit_deps.empty()) {
    out += " deps=" + std::to_string(commit_deps.size());
  }
  return out;
}

}  // namespace clog
