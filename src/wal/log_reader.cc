#include "wal/log_reader.h"

namespace clog {

bool LogCursor::Next(LogRecord* rec, Lsn* lsn, Status* status) {
  if (status != nullptr) *status = Status::OK();
  if (next_ >= log_->end_lsn()) return false;
  Lsn here = next_;
  Lsn after = kNullLsn;
  Status st = log_->ReadRecord(here, rec, &after);
  if (!st.ok()) {
    if (status != nullptr) *status = st;
    return false;
  }
  next_ = after;
  if (lsn != nullptr) *lsn = here;
  ++records_read_;
  return true;
}

bool TxnBackwardCursor::Prev(LogRecord* rec, Lsn* lsn, Status* status) {
  if (status != nullptr) *status = Status::OK();
  if (next_ == kNullLsn) return false;
  Lsn here = next_;
  Status st = log_->ReadRecord(here, rec);
  if (!st.ok()) {
    if (status != nullptr) *status = st;
    return false;
  }
  if (lsn != nullptr) *lsn = here;
  // CLRs skip over the compensated suffix.
  next_ = rec->type == LogRecordType::kClr ? rec->undo_next_lsn
                                           : rec->prev_lsn;
  return true;
}

}  // namespace clog
