#ifndef CLOG_WAL_STAGING_BUFFER_H_
#define CLOG_WAL_STAGING_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

/// \file
/// Per-producer staging buffer of the lock-free WAL front end (NanoLog
/// architecture, docs/performance.md "WAL front-end"). Each producer thread
/// that appends to a LogManager in concurrent (drainer) mode owns one
/// StagingBuffer: a single-producer/single-consumer ring of record slots.
/// The producer encodes a framed record into a slot and publishes it with
/// one release store; the background drainer consumes published slots in
/// LSN order and assembles them into the durable tail. Producers never take
/// a lock and never touch another thread's buffer.

namespace clog {

/// SPSC slot ring. The producer is the registered appender thread; the
/// consumer is the LogManager's drainer (or whoever holds the drain role
/// during Close). Indices are monotonic 64-bit counters; the slot array
/// size is a power of two so `counter & mask` addresses the slot.
///
/// Each slot owns a std::string holding one complete on-disk frame
/// (u32 body_len | u32 crc | body). Strings keep their capacity across
/// laps, so a warmed-up ring appends with zero allocation; Reserve()
/// pre-sizes every slot once at registration to kill first-append jitter.
/// Variable-length records need no wrap handling — the string grows.
class StagingBuffer {
 public:
  /// Slots per ring. 2048 in-flight records (~half a megabyte of staged
  /// frames at update-record sizes) balance two pressures measured on a
  /// small host: a deep ring lets the drainer fall a whole scheduling
  /// quantum behind without producers noticing (shallow rings turn every
  /// drainer absence into a p99.9 spike of ring-full spinning), while the
  /// rings' combined cache footprint scales with the producer count, and
  /// past ~half the L2 per ring the drainer's reads go cold and
  /// multi-producer throughput drops. Beyond capacity the producer spins
  /// in AcquireSlot — backpressure, not loss.
  static constexpr std::size_t kSlots = 2048;
  static constexpr std::uint64_t kMask = kSlots - 1;
  static_assert((kSlots & kMask) == 0, "kSlots must be a power of two");

  /// Bytes pre-reserved per slot string by Reserve(). Covers the common
  /// update-record frame without any first-lap allocation.
  static constexpr std::size_t kSlotInitialBytes = 256;

  /// A slot string that grew past this (one giant checkpoint record) is
  /// reset on reacquisition so a single outlier does not pin kSlots
  /// multiples of its size forever.
  static constexpr std::size_t kSlotShrinkBytes = 256 * 1024;

  struct Slot {
    Lsn lsn = kNullLsn;
    std::string frame;  ///< Complete frame: u32 len | u32 crc | body.
  };

  StagingBuffer() : slots_(kSlots) {}

  StagingBuffer(const StagingBuffer&) = delete;
  StagingBuffer& operator=(const StagingBuffer&) = delete;

  /// Pre-sizes every slot string (registration-time warmup).
  void Reserve() {
    for (Slot& s : slots_) s.frame.reserve(kSlotInitialBytes);
  }

  // --- Producer side (one thread) ---

  /// Next free slot, or nullptr when the ring is full (caller spins; the
  /// drainer frees slots). The returned slot stays owned by the producer
  /// until Publish() — aborting an append (LogFull) is simply not
  /// publishing.
  Slot* AcquireSlot() {
    std::uint64_t p = produced_.load(std::memory_order_relaxed);
    // The consumer's counter lives on the drainer's cache line; reading it
    // on every append would bounce that line between cores. The cached
    // copy is refreshed only when the ring *looks* full — a stale value
    // can only under-report free slots, never hand out an occupied one.
    if (p - cached_consumed_ >= kSlots) {
      cached_consumed_ = consumed_.load(std::memory_order_acquire);
      if (p - cached_consumed_ >= kSlots) return nullptr;
    }
    Slot* s = &slots_[p & kMask];
    if (s->frame.capacity() > kSlotShrinkBytes) {
      std::string().swap(s->frame);
      s->frame.reserve(kSlotInitialBytes);
    }
    return s;
  }

  /// Publishes the slot last returned by AcquireSlot: the release store
  /// is what makes the slot's lsn and frame bytes visible to the drainer.
  void Publish() {
    produced_.store(produced_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

  /// Producer-side append statistics. Plain single-writer stores on the
  /// producer's own cache line — LogManager's aggregate counters would be
  /// two more contended fetch_adds per append otherwise.
  void CountAppend(std::uint64_t frame_bytes) {
    records_.store(records_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    bytes_.store(bytes_.load(std::memory_order_relaxed) + frame_bytes,
                 std::memory_order_relaxed);
  }
  std::uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  // --- Consumer side (one thread: the drainer / Close) ---

  /// Oldest published, unconsumed slot; nullptr when drained. Mirror of
  /// the producer-side trick: the producer's counter is only re-read when
  /// the cached copy says the ring is empty, so a drainer consuming a run
  /// of records does not bounce the producer's cache line per record.
  const Slot* Peek() const {
    std::uint64_t c = consumed_.load(std::memory_order_relaxed);
    if (cached_produced_ == c) {
      cached_produced_ = produced_.load(std::memory_order_acquire);
      if (cached_produced_ == c) return nullptr;
    }
    return &slots_[c & kMask];
  }

  /// Returns the slot from Peek to the producer.
  void Consume() {
    consumed_.store(consumed_.load(std::memory_order_relaxed) + 1,
                    std::memory_order_release);
  }

  /// True when every published record has been consumed. Racy by nature;
  /// exact once the producer has quiesced.
  bool Drained() const {
    return produced_.load(std::memory_order_acquire) ==
           consumed_.load(std::memory_order_acquire);
  }

 private:
  /// Producer- and consumer-owned counters on their own cache lines so a
  /// publishing producer never bounces the drainer's line (false sharing
  /// is the classic multi-producer log-append killer).
  alignas(64) std::atomic<std::uint64_t> produced_{0};
  /// Producer-owned; shares the producer's line with produced_ on purpose
  /// (the producer dirties that line every Publish anyway).
  std::uint64_t cached_consumed_ = 0;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> bytes_{0};
  alignas(64) std::atomic<std::uint64_t> consumed_{0};
  /// Consumer-owned (see Peek); shares the consumer's line with consumed_.
  mutable std::uint64_t cached_produced_ = 0;
  alignas(64) std::vector<Slot> slots_;
};

}  // namespace clog

#endif  // CLOG_WAL_STAGING_BUFFER_H_
