#ifndef CLOG_WAL_LOG_RECORD_H_
#define CLOG_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec.h"
#include "common/status.h"
#include "common/types.h"

/// \file
/// Log record model. Recovery is ARIES redo-undo over a local write-ahead
/// log (paper Section 2.1). Update records are *physiological*: redo is
/// page-oriented and ordered by the PSN the page had just before the update
/// (stored in every update record, as the paper requires), undo is a
/// record-level logical operation (insert is undone by delete, etc.).

namespace clog {

/// Discriminates log record kinds.
enum class LogRecordType : std::uint8_t {
  kBegin = 1,            ///< Transaction started.
  kCommit = 2,           ///< Transaction committed (force point).
  kAbort = 3,            ///< Rollback has started.
  kEnd = 4,              ///< Transaction fully finished (after commit/undo).
  kUpdate = 5,           ///< Record operation on a page.
  kClr = 6,              ///< Compensation record written during undo.
  kSavepoint = 7,        ///< Named savepoint (partial rollback target).
  kCheckpointBegin = 8,  ///< Fuzzy checkpoint start.
  kCheckpointEnd = 9,    ///< Fuzzy checkpoint body (DPT + active txns).
  /// Adaptive logging (LogStrategy::kAdaptive): a record operation logged
  /// redo-only — no before-image. Emitted only by single-node transactions
  /// updating pages they own; the before-image stays volatile on the node
  /// until commit discards it or an upgrade backfills it (kUndoBackfill).
  /// Participates in the per-page PSN order exactly like kUpdate.
  kLogicalUpdate = 10,
  /// Adaptive-logging upgrade point: the moment a transaction's logical
  /// records might need durable undo (page steal, cross-node dependency,
  /// rollback), one kUndoBackfill carries every stashed before-image,
  /// keyed by the LSN of the kLogicalUpdate it covers. No page, no PSN
  /// effect; skipped by redo and PSN-list construction.
  kUndoBackfill = 11,
};

/// Record-level operation logged by kUpdate / compensated by kClr.
enum class RecordOp : std::uint8_t {
  kInsert = 1,
  kUpdate = 2,
  kDelete = 3,
  kFormat = 4,  ///< Page formatted/allocated (redo formats the page).
};

/// Entry of the dirty page table as logged in checkpoints and exchanged
/// during distributed recovery (paper Section 2.2).
struct DptEntry {
  PageId pid;
  Psn psn = 0;        ///< Page PSN the *first* time the node dirtied it.
  Psn curr_psn = 0;   ///< Page PSN after the node's *last* update.
  Lsn redo_lsn = kNullLsn;  ///< Earliest local log record that may need redo.

  friend bool operator==(const DptEntry&, const DptEntry&) = default;
};

/// Active-transaction-table entry logged in checkpoints.
struct AttEntry {
  TxnId txn = kInvalidTxnId;
  Lsn last_lsn = kNullLsn;  ///< Most recent log record of the transaction.

  friend bool operator==(const AttEntry&, const AttEntry&) = default;
};

/// One stashed before-image carried by a kUndoBackfill record.
struct BackfillEntry {
  Lsn covered_lsn = kNullLsn;  ///< LSN of the kLogicalUpdate this undoes.
  std::string undo_image;      ///< Before-image (empty for inserts).

  friend bool operator==(const BackfillEntry&, const BackfillEntry&) = default;
};

/// Dependency edge recorded in an adaptive transaction's commit record:
/// the committed predecessor whose effects this transaction read or
/// overwrote, so dependency-aware redo keeps their chains ordered.
struct CommitDep {
  TxnId txn = kInvalidTxnId;  ///< Predecessor transaction.
  Lsn lsn = kNullLsn;         ///< Predecessor's commit LSN.

  friend bool operator==(const CommitDep&, const CommitDep&) = default;
};

/// kCommit flag bits (commit_flags).
inline constexpr std::uint8_t kCommitFlagLogical = 0x1;  ///< Logged logical.

/// A fully decoded log record. One struct covers all types; unused fields
/// stay at their defaults. Encoding is explicit (no in-memory layout
/// dependence) so logs are portable and fuzzable.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  TxnId txn = kInvalidTxnId;
  Lsn prev_lsn = kNullLsn;  ///< Previous record of the same transaction.

  // --- kUpdate / kClr ---
  PageId page;
  Psn psn_before = 0;  ///< PSN the page had just before this update.
  RecordOp op = RecordOp::kInsert;
  SlotId slot = 0;
  std::string redo_image;  ///< After-image (insert/update) or empty.
  std::string undo_image;  ///< Before-image (update/delete) or empty.

  // --- kClr only ---
  Lsn undo_next_lsn = kNullLsn;  ///< Next record to undo after this CLR.

  // --- kUndoBackfill only ---
  std::vector<BackfillEntry> backfill;

  // --- kCommit only (adaptive logging; both default-empty so commit
  // records written by the physical strategy keep their exact bytes) ---
  std::uint8_t commit_flags = 0;
  std::vector<CommitDep> commit_deps;

  // --- kSavepoint only ---
  std::string savepoint_name;

  // --- kCheckpointEnd only ---
  Lsn checkpoint_begin_lsn = kNullLsn;
  std::vector<DptEntry> dpt;
  std::vector<AttEntry> att;
  /// Sequence number of the last *sealed* fuzzy archive pass at checkpoint
  /// time (0 = archiving off or no pass yet). Informational horizon for
  /// media recovery; encoded only when nonzero, so logs written with
  /// archiving disabled stay byte-identical to pre-archive builds.
  std::uint64_t archive_seq = 0;

  /// Serializes the record body (no framing; the log manager adds
  /// length + CRC framing).
  void EncodeTo(std::string* out) const;

  /// Decodes a record body produced by EncodeTo.
  static Status DecodeFrom(Slice body, LogRecord* out);

  /// Short human-readable form for traces and test failures.
  std::string ToString() const;

  /// True for types that belong to a transaction's undo chain.
  bool IsTransactional() const {
    return type == LogRecordType::kBegin || type == LogRecordType::kCommit ||
           type == LogRecordType::kAbort || type == LogRecordType::kEnd ||
           type == LogRecordType::kUpdate || type == LogRecordType::kClr ||
           type == LogRecordType::kSavepoint ||
           type == LogRecordType::kLogicalUpdate ||
           type == LogRecordType::kUndoBackfill;
  }

  /// True for the page-mutating types that participate in the per-page PSN
  /// order (redo candidates). kUndoBackfill is transactional but carries no
  /// page effect and is never a member.
  bool IsPageUpdate() const {
    return type == LogRecordType::kUpdate || type == LogRecordType::kClr ||
           type == LogRecordType::kLogicalUpdate;
  }
};

/// Name of a log record type ("UPDATE", "CLR", ...).
std::string_view LogRecordTypeName(LogRecordType t);

}  // namespace clog

#endif  // CLOG_WAL_LOG_RECORD_H_
