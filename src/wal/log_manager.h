#ifndef CLOG_WAL_LOG_MANAGER_H_
#define CLOG_WAL_LOG_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "wal/log_record.h"

/// \file
/// Per-node write-ahead log. Every node with a local disk has exactly one
/// log file holding *all* log records the node writes — for updates to its
/// own pages and to remotely owned pages alike (the paper's core idea). LSNs
/// are byte offsets into this file; LSN spaces of different nodes are
/// disjoint and never compared.

namespace clog {

class FaultInjector;
class TraceSink;

/// Append/flush interface over one log file.
///
/// Durability contract (WAL, paper Section 2.1): a log record is durable
/// once Flush() has covered its LSN. The buffer pool calls Flush(page_lsn)
/// before an updated page leaves the cache, and the transaction manager
/// calls Flush(commit_lsn) at commit.
///
/// Bounded log space (paper Section 2.5): the log has a configurable
/// capacity. Live space is `end_lsn - reclaimable_lsn`, where the
/// reclaimable LSN is the minimum RedoLSN any local DPT entry still needs
/// (advanced by the node as pages are forced and flush notifications
/// arrive). Append fails with LogFull when capacity would be exceeded,
/// triggering the node's log-space pressure protocol. The file itself is
/// append-only; reclaimed prefixes simply stop counting against capacity,
/// which preserves the paper-visible behaviour without wraparound framing.
///
/// Thread safety (real-threads mode): Append/Flush/ReadRecord and the
/// lifecycle methods serialize on one internal mutex — the log tail is the
/// shared-state hot spot the multi-producer bench measures — and the LSN
/// watermarks are atomics so lock-free readers (space accounting, bench
/// observers) see consistent values. Single-threaded simulation pays one
/// uncontended lock per call.
class LogManager {
 public:
  LogManager() = default;
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Opens (creating if absent) the log at `path`. On reopen after a crash
  /// the tail is scanned so appends continue after the last whole record.
  Status Open(const std::string& path);

  Status Close();
  bool is_open() const {
    std::lock_guard<std::mutex> lk(mu_);
    return fd_ >= 0;
  }

  /// Closes without flushing the append buffer — simulates losing the
  /// volatile log tail in a crash (unforced records were never durable).
  void Abandon();

  /// Appends `rec`, assigning its LSN (returned through `*lsn`). The record
  /// is buffered; it becomes durable on the next covering Flush. Fails with
  /// LogFull if the bounded log has no room — unless `enforce_capacity` is
  /// false, which rollback paths use: compensation and end records must
  /// always be appendable or a full log could never drain (the classic
  /// ARIES rollback reservation).
  Status Append(const LogRecord& rec, Lsn* lsn, bool enforce_capacity = true);

  /// Forces all records with LSN <= `up_to` to disk (group commit: the
  /// entire buffer is written, one fsync). No-op if already durable.
  Status Flush(Lsn up_to);

  /// Reads the record at `lsn` (possibly still unflushed). Returns the LSN
  /// of the following record via `*next_lsn` if non-null.
  Status ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn = nullptr);

  /// LSN that the *next* appended record will get (current logical end).
  Lsn end_lsn() const { return end_lsn_.load(std::memory_order_acquire); }

  /// Highest LSN known durable.
  Lsn flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }

  /// LSN of the first valid record (after the file header).
  static constexpr Lsn first_lsn() { return kHeaderSize; }

  // --- Bounded space accounting (Section 2.5) ---

  /// Sets the capacity in bytes; 0 (default) means unbounded.
  void set_capacity(std::uint64_t bytes) { capacity_ = bytes; }
  std::uint64_t capacity() const { return capacity_; }

  /// Advances the reclaim horizon: all records before `lsn` are no longer
  /// needed for crash recovery (min RedoLSN moved past them).
  void SetReclaimableLsn(Lsn lsn);
  Lsn reclaimable_lsn() const {
    return reclaimable_lsn_.load(std::memory_order_acquire);
  }

  /// Bytes currently counted against capacity.
  std::uint64_t LiveBytes() const { return end_lsn() - reclaimable_lsn(); }

  /// True if appending `bytes` more would exceed a bounded capacity.
  bool WouldOverflow(std::uint64_t bytes) const {
    return capacity_ != 0 && LiveBytes() + bytes > capacity_;
  }

  // --- Checkpoint master record ---

  /// Durably records the LSN of the last *complete* checkpoint's
  /// kCheckpointEnd record (atomic rename of a side file).
  Status StoreMaster(Lsn checkpoint_end_lsn);

  /// Reads the master pointer; kNullLsn if no checkpoint completed yet.
  Result<Lsn> LoadMaster() const;

  // --- Durable log-extent mark (media failure detection) ---

  /// Durably records the current flushed LSN in a side file that is modeled
  /// as living on the node's *metadata* device (with the space map), not on
  /// the log device. Written at every checkpoint. If a restart finds the
  /// log shorter than this mark, the log device was destroyed — not merely
  /// missing an unforced tail — and media recovery must treat every update
  /// the log ever held as potentially lost.
  Status StoreMark();

  /// Reads the durable mark; kNullLsn if never written.
  Result<Lsn> LoadMark() const;

  // --- Counters for benchmarks ---
  std::uint64_t appended_records() const {
    return appended_records_.load(std::memory_order_relaxed);
  }
  std::uint64_t appended_bytes() const {
    return appended_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t forces() const {
    return forces_.load(std::memory_order_relaxed);
  }

  /// Attaches a fault injector consulted on Flush (fsync failure) and
  /// Abandon (torn tail) as `node` (nullptr detaches). Not owned.
  void set_fault_injector(FaultInjector* fault, NodeId node) {
    fault_ = fault;
    node_ = node;
  }

  /// Attaches a trace sink emitting LOG_APPEND/LOG_FORCE events as `node`
  /// (nullptr detaches). Not owned.
  void set_trace_sink(TraceSink* trace, NodeId node) {
    trace_ = trace;
    trace_node_ = node;
  }

 private:
  static constexpr std::uint64_t kHeaderSize = 64;
  static constexpr std::uint32_t kLogMagic = 0x434C4F4C;  // "CLOL"

  Status WriteHeader();
  Status RecoverTail();

  /// Flush body with mu_ already held; Close() reuses it without
  /// re-locking (std::mutex is not recursive).
  Status FlushLocked(Lsn up_to);

  /// Guards fd_, buffer_, buffer_start_, and every multi-field transition
  /// of the watermarks below.
  mutable std::mutex mu_;

  std::string path_;
  int fd_ = -1;
  std::atomic<Lsn> end_lsn_{kHeaderSize};  ///< Next LSN to assign.
  std::atomic<Lsn> flushed_lsn_{0};  ///< All records < this are durable.
  Lsn buffer_start_ = kHeaderSize;   ///< LSN of first byte in `buffer_`.
  std::string buffer_;               ///< Appended-but-unflushed bytes.

  std::uint64_t capacity_ = 0;
  std::atomic<Lsn> reclaimable_lsn_{kHeaderSize};

  std::atomic<std::uint64_t> appended_records_{0};
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> forces_{0};

  FaultInjector* fault_ = nullptr;
  NodeId node_ = kInvalidNodeId;
  TraceSink* trace_ = nullptr;
  NodeId trace_node_ = kInvalidNodeId;
};

}  // namespace clog

#endif  // CLOG_WAL_LOG_MANAGER_H_
