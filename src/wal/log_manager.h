#ifndef CLOG_WAL_LOG_MANAGER_H_
#define CLOG_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "wal/log_record.h"

/// \file
/// Per-node write-ahead log. Every node with a local disk has exactly one
/// log file holding *all* log records the node writes — for updates to its
/// own pages and to remotely owned pages alike (the paper's core idea). LSNs
/// are byte offsets into this file; LSN spaces of different nodes are
/// disjoint and never compared.

namespace clog {

class FaultInjector;
class LogDrainer;
class StagingBuffer;
class TraceSink;

/// Append/flush interface over one log file.
///
/// Durability contract (WAL, paper Section 2.1): a log record is durable
/// once Flush() has covered its LSN. The buffer pool calls Flush(page_lsn)
/// before an updated page leaves the cache, and the transaction manager
/// calls Flush(commit_lsn) at commit.
///
/// Bounded log space (paper Section 2.5): the log has a configurable
/// capacity. Live space is `end_lsn - reclaimable_lsn`, where the
/// reclaimable LSN is the minimum RedoLSN any local DPT entry still needs
/// (advanced by the node as pages are forced and flush notifications
/// arrive). Append fails with LogFull when capacity would be exceeded,
/// triggering the node's log-space pressure protocol. The file itself is
/// append-only; reclaimed prefixes simply stop counting against capacity,
/// which preserves the paper-visible behaviour without wraparound framing.
///
/// Thread safety — the lock-free front end (docs/performance.md "WAL
/// front-end"): Append never takes a lock. LSN/space reservation is one
/// CAS loop on the logical end (the capacity check is folded into the same
/// loop, so LogFull is exact under any producer count), the record body is
/// encoded into the calling thread's own staging buffer slot, and a single
/// release store publishes it. Three watermarks order everything:
///
///     flushed_lsn_  <=  published_lsn_  <=  end_lsn_
///
/// `end_lsn_` is the reserved logical end; `published_lsn_` is the end of
/// the contiguous prefix the drainer has assembled, in LSN order, into the
/// tail buffer; `flushed_lsn_` is the end of the durable prefix. The
/// invariant every caller may rely on: **records are durable only up to
/// min(published watermark, flushed LSN)** — and since Flush(up_to) first
/// waits for publication to cover `up_to`, then writes once and fsyncs
/// once, `flushed_lsn_` never overtakes `published_lsn_`. Reserved-but-
/// unpublished bytes (a producer mid-encode) are invisible to Flush, to
/// readers, and — like any unforced suffix — to crash recovery.
///
/// Two drain modes share that contract:
///  - **Inline (default; deterministic simulation).** No drainer thread:
///    Append assembles the record directly into the tail under the
///    internal mutex (uncontended: sim is single-threaded) and publication
///    is immediate, so the schedule and the produced bytes are identical
///    to the pre-front-end implementation.
///  - **Concurrent (StartDrainer; real-threads mode).** Producers are
///    lock-free as above and a background LogDrainer assembles published
///    records into the tail. Flush/ReadRecord/Close wait on the published
///    watermark; Abandon (crash) drops exactly the unpublished and
///    unforced suffix.
///
/// Orderly lifecycle methods (Open/Close/StartDrainer/StopDrainer) must
/// not run concurrently with appends — callers quiesce producers first,
/// exactly as a process shutdown does. Abandon is the exception by
/// design: it is the crash, and may race live producers and flushers —
/// they observe the closed log and fail cleanly (in-flight staged
/// records land in the lost suffix).
class LogManager {
 public:
  LogManager();
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Opens (creating if absent) the log at `path`. On reopen after a crash
  /// the tail is scanned so appends continue after the last whole record.
  Status Open(const std::string& path);

  Status Close();

  /// Lock-free: observers (assertions, space accounting, benches) must not
  /// perturb the append hot path.
  bool is_open() const { return open_.load(std::memory_order_relaxed); }

  /// Closes without flushing the append buffer — simulates losing the
  /// volatile log tail in a crash (unforced records were never durable).
  /// In concurrent mode the drainer is stopped mid-stream first: staged
  /// records it never assembled are lost with the crash, exactly like the
  /// assembled-but-unforced tail.
  void Abandon();

  // --- Drain mode (docs/architecture_modes.md) ---

  /// Switches to concurrent mode and starts the background drainer.
  /// Idempotent. Real-threads mode only; the simulation must never call
  /// this (an extra thread would perturb nothing *logically*, but inline
  /// drain is what keeps sim behaviour byte-identical and deterministic).
  void StartDrainer();

  /// Drains staged records to a barrier (published == end), stops the
  /// thread, and returns to inline mode. Called implicitly by Close.
  void StopDrainer();

  /// One drainer sweep: merges published staging records into the tail in
  /// LSN order, taking the drain role (drain_role_mu_) for the duration.
  /// Returns the number of bytes assembled (0 = nothing available).
  /// Public for the LogDrainer thread and for tests.
  std::size_t DrainPublishedBatch();

  /// Appends `rec`, assigning its LSN (returned through `*lsn`). The record
  /// is buffered; it becomes durable on the next covering Flush. Fails with
  /// LogFull if the bounded log has no room — unless `enforce_capacity` is
  /// false, which rollback paths use: compensation and end records must
  /// always be appendable or a full log could never drain (the classic
  /// ARIES rollback reservation).
  Status Append(const LogRecord& rec, Lsn* lsn, bool enforce_capacity = true);

  /// Forces all records with LSN <= `up_to` to disk (group commit: the
  /// entire assembled buffer is written, one fsync). Waits for publication
  /// up to `up_to` first in concurrent mode. No-op if already durable.
  Status Flush(Lsn up_to);

  /// Reads the record at `lsn` (possibly still unflushed; waits for its
  /// publication in concurrent mode). Returns the LSN of the following
  /// record via `*next_lsn` if non-null.
  Status ReadRecord(Lsn lsn, LogRecord* rec, Lsn* next_lsn = nullptr);

  /// Reads the raw frame at `lsn`: the undecoded record body plus the CRC
  /// the frame header stores for it, verifying neither. The parallel redo
  /// scheduler uses this to move checksum + decode work off the
  /// coordinating thread; callers must check crc32c::Value(body) == crc
  /// before decoding.
  Status ReadRawFrame(Lsn lsn, std::string* body, std::uint32_t* crc,
                      Lsn* next_lsn = nullptr);

  /// LSN that the *next* appended record will get (current logical end).
  Lsn end_lsn() const { return end_lsn_.load(std::memory_order_acquire); }

  /// End of the contiguous prefix assembled into the tail buffer. Equals
  /// end_lsn() whenever producers are quiet; lags it only transiently in
  /// concurrent mode.
  Lsn published_lsn() const {
    return published_lsn_.load(std::memory_order_acquire);
  }

  /// Highest LSN known durable.
  Lsn flushed_lsn() const {
    return flushed_lsn_.load(std::memory_order_acquire);
  }

  /// LSN of the first valid record (after the file header).
  static constexpr Lsn first_lsn() { return kHeaderSize; }

  // --- Bounded space accounting (Section 2.5) ---

  /// Sets the capacity in bytes; 0 (default) means unbounded.
  void set_capacity(std::uint64_t bytes) {
    capacity_.store(bytes, std::memory_order_relaxed);
  }
  std::uint64_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Advances the reclaim horizon: all records before `lsn` are no longer
  /// needed for crash recovery (min RedoLSN moved past them).
  void SetReclaimableLsn(Lsn lsn);
  Lsn reclaimable_lsn() const {
    return reclaimable_lsn_.load(std::memory_order_acquire);
  }

  /// Bytes currently counted against capacity.
  std::uint64_t LiveBytes() const { return end_lsn() - reclaimable_lsn(); }

  /// True if appending `bytes` more would exceed a bounded capacity.
  /// Advisory under concurrency (the log-space pressure protocol polls
  /// it); the append path itself folds this check into the reservation
  /// CAS, so admission is exact even when observers race.
  bool WouldOverflow(std::uint64_t bytes) const {
    std::uint64_t cap = capacity();
    return cap != 0 && LiveBytes() + bytes > cap;
  }

  // --- Checkpoint master record ---

  /// Durably records the LSN of the last *complete* checkpoint's
  /// kCheckpointEnd record (atomic rename of a side file).
  Status StoreMaster(Lsn checkpoint_end_lsn);

  /// Reads the master pointer; kNullLsn if no checkpoint completed yet.
  Result<Lsn> LoadMaster() const;

  // --- Durable log-extent mark (media failure detection) ---

  /// Durably records the current flushed LSN in a side file that is modeled
  /// as living on the node's *metadata* device (with the space map), not on
  /// the log device. Written at every checkpoint. If a restart finds the
  /// log shorter than this mark, the log device was destroyed — not merely
  /// missing an unforced tail — and media recovery must treat every update
  /// the log ever held as potentially lost.
  Status StoreMark();

  /// Reads the durable mark; kNullLsn if never written.
  Result<Lsn> LoadMark() const;

  // --- Counters for benchmarks ---
  // Append counts live with each producer's staging buffer (two shared
  // fetch_adds per append otherwise); the accessors aggregate them over
  // the base counters, so reads are approximate while producers run and
  // exact once they quiesce.
  std::uint64_t appended_records() const;
  std::uint64_t appended_bytes() const;
  std::uint64_t forces() const {
    return forces_.load(std::memory_order_relaxed);
  }

  /// Attaches a fault injector consulted on Flush (fsync failure) and
  /// Abandon (torn tail) as `node` (nullptr detaches). Not owned.
  void set_fault_injector(FaultInjector* fault, NodeId node) {
    fault_ = fault;
    node_ = node;
  }

  /// Attaches a trace sink emitting LOG_APPEND/LOG_FORCE events as `node`
  /// (nullptr detaches). Not owned.
  void set_trace_sink(TraceSink* trace, NodeId node) {
    trace_ = trace;
    trace_node_ = node;
  }

 private:
  static constexpr std::uint64_t kHeaderSize = 64;
  static constexpr std::uint32_t kLogMagic = 0x434C4F4C;  // "CLOL"

  Status WriteHeader();
  Status RecoverTail();

  /// Reserves `frame_size` bytes of LSN space: one CAS loop on end_lsn_
  /// with the capacity check folded in, so concurrent producers can never
  /// jointly overshoot a bounded log. Returns the record's LSN through
  /// `*lsn`; LogFull refusals reserve nothing.
  Status ReserveLsn(std::uint64_t frame_size, bool enforce_capacity,
                    Lsn* lsn);

  /// Inline-mode append body (mu_ held): encode into the tail, reserve,
  /// publish immediately. Byte-identical to the pre-front-end path.
  Status AppendInline(const LogRecord& rec, Lsn* lsn, bool enforce_capacity);

  /// Concurrent-mode append body: lock-free staging-buffer path.
  Status AppendStaged(const LogRecord& rec, Lsn* lsn, bool enforce_capacity);

  /// The calling thread's staging buffer for this log, registering (and
  /// warming) one on first use.
  StagingBuffer* ThreadStaging();

  /// DrainPublishedBatch body; caller holds drain_role_mu_.
  std::size_t DrainBatchRoleHeld();

  /// Ensures the published watermark covers every record with start LSN
  /// <= `up_to`: first by draining the backlog itself (taking the drain
  /// role), then — only when the missing records are still unpublished in
  /// a producer's hands — by waiting. Caller holds mu_ via `lk`; it is
  /// released while draining/waiting. No-op inline.
  void AwaitPublished(Lsn up_to, std::unique_lock<std::mutex>& lk);

  /// Flush body; caller holds flush_mu_ and mu_ (via `lk`). The
  /// write+fsync itself runs with mu_ RELEASED, so producers keep
  /// appending and the drainer keeps splicing while the disk syncs;
  /// flush_mu_ keeps the I/O sections serial so flushed_lsn_ only ever
  /// advances over a fully durable prefix.
  Status FlushLocked(Lsn up_to, std::unique_lock<std::mutex>& lk);

  /// Serializes flush I/O sections (and fd teardown against them).
  /// Lock order: flush_mu_ before drain_role_mu_ before mu_, always.
  std::mutex flush_mu_;

  /// Whoever holds this *is* the drain role: the background drainer and
  /// any AwaitPublished waiter that drains the backlog itself (a commit
  /// force should not wait for another thread to be scheduled just to
  /// memcpy a few hundred bytes). The staging rings stay SPSC because
  /// consumers are serialized here; the mutex hand-off orders the
  /// consumer-side counter caches between them.
  std::mutex drain_role_mu_;

  /// Guards fd_, buffer_, buffer_start_ — the assembled tail. Producers
  /// never take it; only the drainer (briefly, per assembled batch),
  /// Flush, ReadRecord, and the lifecycle methods do. Never held across
  /// disk I/O.
  mutable std::mutex mu_;

  /// Signalled under mu_ when published_lsn_ crosses a registered waiter's
  /// threshold (see min_awaited_), and unconditionally on Abandon.
  std::condition_variable published_cv_;

  /// Lowest LSN any AwaitPublished waiter is parked on; kNoAwaiter when
  /// none. Guarded by mu_. Lets the drainer skip the per-splice notify
  /// (a futex syscall whenever a flusher is parked) until a splice
  /// actually satisfies somebody.
  static constexpr Lsn kNoAwaiter = ~static_cast<Lsn>(0);
  Lsn min_awaited_ = kNoAwaiter;


  std::string path_;
  int fd_ = -1;
  std::atomic<bool> open_{false};
  /// Concurrent (drainer) mode flag; flipped only by StartDrainer/
  /// StopDrainer with producers quiesced.
  std::atomic<bool> concurrent_{false};

  std::atomic<Lsn> end_lsn_{kHeaderSize};        ///< Reserved logical end.
  std::atomic<Lsn> published_lsn_{kHeaderSize};  ///< Assembled prefix end.
  std::atomic<Lsn> flushed_lsn_{0};  ///< All records < this are durable.
  Lsn buffer_start_ = kHeaderSize;   ///< LSN of first byte in `buffer_`.
  std::string buffer_;               ///< Assembled-but-unflushed bytes.
  /// The prefix a running Flush stole from buffer_ (O(1) swap) and is
  /// writing with mu_ released; covers [flushing_start_, buffer_start_).
  /// Non-empty only while that I/O section is in flight — i.e. only while
  /// some thread holds flush_mu_ — so teardown, which takes flush_mu_
  /// first, never sees one. ReadRecord serves these bytes from here.
  std::string flushing_chunk_;
  Lsn flushing_start_ = kHeaderSize;

  std::atomic<std::uint64_t> capacity_{0};
  std::atomic<Lsn> reclaimable_lsn_{kHeaderSize};

  std::atomic<std::uint64_t> appended_records_{0};
  std::atomic<std::uint64_t> appended_bytes_{0};
  std::atomic<std::uint64_t> forces_{0};

  /// Registered producer staging buffers. Owned here (a producer thread
  /// may exit while its records are still staged); cleared on Open. The
  /// registry only grows between Opens, so the drainer can scan it with a
  /// brief lock per sweep.
  mutable std::mutex staging_mu_;
  std::vector<std::unique_ptr<StagingBuffer>> staging_;
  /// == staging_.size(); lets the drain role detect registry growth
  /// without taking staging_mu_ every sweep.
  std::atomic<std::size_t> staging_count_{0};
  /// Registration epoch: thread-local caches of (log, buffer) pairs are
  /// keyed by this, so a reopened or re-created LogManager never sees a
  /// stale buffer pointer. Globally monotonic.
  std::uint64_t staging_epoch_ = 0;

  std::unique_ptr<LogDrainer> drainer_;

  /// Drain-role-only scratch (DrainPublishedBatch, guarded by
  /// drain_role_mu_): reused across sweeps so a sweep allocates nothing
  /// once warm.
  std::vector<StagingBuffer*> drain_scratch_;
  std::string drain_batch_;

  FaultInjector* fault_ = nullptr;
  NodeId node_ = kInvalidNodeId;
  TraceSink* trace_ = nullptr;
  NodeId trace_node_ = kInvalidNodeId;
};

}  // namespace clog

#endif  // CLOG_WAL_LOG_MANAGER_H_
