#ifndef CLOG_FAULT_TORTURE_H_
#define CLOG_FAULT_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_injector.h"

/// \file
/// Seeded crash-schedule torture harness. One call runs a whole cluster
/// lifetime — workload, crashes, partitions, torn writes, recoveries —
/// driven entirely by a single uint64 seed, and checks four global
/// invariants throughout:
///
///  1. every committed transaction's effects are durable,
///  2. no aborted (or never-committed) transaction's effects survive,
///  3. per-page PSNs are monotone over time and consistent across caches,
///  4. NodePSNList reconstruction agrees with a ground-truth log scan.
///
/// The same function backs tests/torture_test.cc and the tools/torture
/// CLI, so `tools/torture --seed=N` replays exactly the schedule a failing
/// test names. The schedule hash is a stable FNV-1a over the event trace
/// (no filesystem paths), so two runs of one seed can be diffed cheaply.

namespace clog {

struct TortureOptions {
  std::uint64_t seed = 0;
  int num_nodes = 3;
  int pages_per_node = 2;
  int records_per_page = 4;
  int steps = 40;
  /// Retain the full event trace in the report (CLI --verbose replay).
  bool keep_events = true;
  /// Force a crash-during-recovery event in every repair pass: one
  /// restarting node dies at a seeded phase boundary and must be recovered
  /// from scratch in a later round (docs/availability.md). When false the
  /// schedule still injects these with a small seeded probability.
  bool crash_during_recovery = false;
  /// Run every node with GroupCommitPolicy enabled: commits park and
  /// coalesce forces. The harness polls parked commits each step, never
  /// counts one as committed before its ACK, and treats a crash while
  /// parked as an indeterminate commit (resolved at the next restart).
  bool group_commit = false;
  /// Adaptive-logging mode: the cluster runs with
  /// LoggingPolicy strategy=kAdaptive and dependency-parallel redo
  /// (redo_workers=2; in simulation the chains replay sequentially in
  /// deterministic order), and each harness transaction draws a seeded
  /// per-transaction strategy override so compact logical records,
  /// physical records, upgrades, and backfills all interleave in one log.
  /// Two extra checks ride on top of the base invariant set: the invariant
  /// 4 ground-truth scan mirrors the redo skip rule (docs/PROTOCOLS.md),
  /// and the final phase captures every recoverable page's bytes before
  /// the full-cluster crash and requires the joint recovery — logical
  /// replay included — to reconstruct them byte-identically.
  bool adaptive = false;
  /// Media-failure mode: every node runs with fuzzy page archives enabled
  /// (a pass per checkpoint), the scheduled-crash branch sometimes arms a
  /// whole-device loss (data or log) consumed at the crash point, and the
  /// armed I/O fault mix gains transient page-read failures. The harness
  /// then tracks the poison ledger: records on pages fenced as
  /// unrecoverable must read back Corruption — never silent stale data —
  /// and a fifth invariant (archive self-consistency) is checked at the
  /// end. Off by default; healthy-mode schedules are unchanged.
  bool media_failure = false;
  /// Instant-restore hammer: everything media-failure mode does, plus
  /// instant restore enabled on every node — a node that lost its data
  /// device opens for traffic immediately and rebuilds pages on first
  /// touch, with a sweeper draining one page per harness step. Post-restart
  /// model verification samples records (instead of reading all of them)
  /// so restore backlogs survive into the following steps and crashes land
  /// mid-restore. Two invariants ride on top of the media set: a restoring
  /// page never serves stale data (every on-demand rebuild is checked
  /// against the model), and restore completion is crash-re-enterable
  /// without PSN regression (watermarks + the durable restore ledger). The
  /// final phase drains every backlog and asserts nothing is left pending
  /// or recorded in the ledger.
  bool hammer_restore = false;
  /// Elastic-membership mode: a seeded fraction of the steps runs a
  /// membership operation on top of the normal workload — a page handoff
  /// to a random up node via the four-phase crash-restartable protocol, a
  /// JoinNode (the newcomer then receives pages through later handoffs),
  /// or a graceful LeaveNode that drains every owned page round-robin.
  /// Handoffs are sometimes armed to crash one endpoint (source or
  /// target, seeded) at a seeded phase boundary, so the durable handoff
  /// ledgers must re-enter cleanly at the next restart. Three invariants
  /// ride on top of the usual four: every page has exactly one durable
  /// owner claim (never zero, never two), no committed update is lost
  /// across a transfer (every record on a moved page is re-verified from
  /// the new owner), and the durable PSN at the new owner never regresses
  /// below the page's watermark. Off by default; non-elastic schedules
  /// draw nothing extra from the RNG, so their hashes are untouched.
  bool elastic = false;
  /// Force every elastic handoff to crash one endpoint at a seeded phase
  /// boundary (instead of the default seeded probability), so whole
  /// schedules consist of interrupted handoffs and ledger re-entries.
  bool crash_during_handoff = false;
  /// Scratch directory; empty = fresh mkdtemp, removed afterwards.
  std::string scratch_dir;
  /// Per-node capacity of the structured trace ring (newest events win).
  /// The trace hash covers every event ever emitted, not just the ring.
  std::size_t trace_events_per_node = 512;
};

struct TortureReport {
  std::uint64_t seed = 0;
  bool ok = false;
  /// First invariant violation or unexpected error; empty when ok.
  std::string failure;
  /// FNV-1a64 over the event trace; equal hashes = identical schedules.
  std::uint64_t schedule_hash = 0;
  /// Combined TraceSink hash over every node's structured event stream.
  /// Like schedule_hash, equal seeds must produce equal trace hashes.
  std::uint64_t trace_hash = 0;
  /// On failure: the newest structured trace events per node, formatted
  /// for humans. Empty when the run passed.
  std::string trace_tail;
  std::vector<std::string> events;

  std::uint64_t txns_committed = 0;
  std::uint64_t txns_aborted = 0;
  std::uint64_t txns_indeterminate = 0;  ///< Commit interrupted by a fault.
  std::uint64_t txns_parked = 0;         ///< Group commit: commits that parked.
  std::uint64_t txns_adaptive = 0;       ///< Begun under LogStrategy::kAdaptive.
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t recovery_crashes = 0;    ///< Crashes at a recovery phase boundary.
  std::uint64_t partitions = 0;
  std::uint64_t reads_checked = 0;       ///< Reads compared to the model.
  std::uint64_t device_losses = 0;       ///< Device faults armed (media mode).
  std::uint64_t log_losses = 0;          ///< Of which destroyed a log device.
  std::uint64_t pages_poisoned = 0;      ///< Pages fenced unrecoverable at the end.
  // Instant-restore counters (hammer mode; summed across nodes):
  std::uint64_t restore_planned = 0;     ///< Pages deferred to instant restore.
  std::uint64_t restore_from_peer = 0;   ///< Rebuilt from a peer's cached copy.
  std::uint64_t restore_from_archive = 0;///< Rebuilt from archive + redo.
  std::uint64_t restore_from_seed = 0;   ///< Rebuilt from seed + full redo.
  std::uint64_t restore_already_durable = 0;  ///< Durable again before touch.
  // Elastic-membership counters (elastic mode):
  std::uint64_t handoffs = 0;         ///< Page handoffs that completed.
  std::uint64_t handoff_crashes = 0;  ///< Crashes at a handoff phase boundary.
  std::uint64_t joins = 0;            ///< Nodes that joined mid-run.
  std::uint64_t leaves = 0;           ///< Nodes that departed gracefully.
  FaultInjector::Counters faults;

  // Availability-envelope counters (mirrored from the network's metrics):
  // admission retries issued, retries that eventually got through, budgets
  // that ran dry, and heartbeat probes sent.
  std::uint64_t rpc_retries = 0;
  std::uint64_t rpc_retry_success = 0;
  std::uint64_t rpc_retry_exhausted = 0;
  std::uint64_t hb_probes = 0;

  /// One-line "seed=… verdict=… hash=…" summary for reports and logs.
  std::string Summary() const;
};

/// Runs one complete seeded schedule; never throws, never aborts the
/// process — all violations land in the returned report.
TortureReport RunTortureSchedule(const TortureOptions& options);

}  // namespace clog

#endif  // CLOG_FAULT_TORTURE_H_
