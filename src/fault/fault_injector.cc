#include "fault/fault_injector.h"

#include <algorithm>

namespace clog {
namespace {

std::pair<NodeId, NodeId> NormalizedLink(NodeId a, NodeId b) {
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed, FaultConfig config)
    : seed_(seed), config_(config), rng_(seed ^ 0xFA171F17ull) {}

bool FaultInjector::LinkBlocked(NodeId a, NodeId b) const {
  if (!enabled_) return false;
  return blocked_links_.contains(NormalizedLink(a, b));
}

bool FaultInjector::DropMessage(NodeId from, NodeId to) {
  if (!enabled_ || config_.net_drop_p <= 0.0) return false;
  if (!rng_.Bernoulli(config_.net_drop_p)) return false;
  ++counters_.dropped_msgs;
  return true;
}

std::uint64_t FaultInjector::DelayNanos(NodeId from, NodeId to) {
  if (!enabled_ || config_.net_delay_p <= 0.0) return 0;
  if (!rng_.Bernoulli(config_.net_delay_p)) return 0;
  ++counters_.delayed_msgs;
  return rng_.Range(config_.net_delay_min_ns, config_.net_delay_max_ns);
}

bool FaultInjector::DuplicateNotice(NodeId from, NodeId to) {
  if (!enabled_ || config_.net_duplicate_p <= 0.0) return false;
  if (!rng_.Bernoulli(config_.net_duplicate_p)) return false;
  ++counters_.duplicated_msgs;
  return true;
}

void FaultInjector::BlockLink(NodeId a, NodeId b) {
  blocked_links_.insert(NormalizedLink(a, b));
}

void FaultInjector::HealLink(NodeId a, NodeId b) {
  blocked_links_.erase(NormalizedLink(a, b));
}

void FaultInjector::HealAllLinks() { blocked_links_.clear(); }

void FaultInjector::ArmIoFault(NodeId node, IoFault fault) {
  if (fault == IoFault::kNone) {
    armed_.erase(node);
  } else {
    armed_[node] = fault;
  }
}

IoFault FaultInjector::OnPageWrite(NodeId node) {
  if (!enabled_) return IoFault::kNone;
  auto it = armed_.find(node);
  if (it == armed_.end()) return IoFault::kNone;
  IoFault f = it->second;
  if (f != IoFault::kFailPageWrite && f != IoFault::kTornPageWrite) {
    return IoFault::kNone;
  }
  armed_.erase(it);
  fired_nodes_.insert(node);
  if (f == IoFault::kTornPageWrite) {
    ++counters_.torn_page_writes;
  } else {
    ++counters_.failed_page_writes;
  }
  return f;
}

bool FaultInjector::OnPageRead(NodeId node) {
  if (!enabled_) return false;
  auto it = armed_.find(node);
  if (it == armed_.end() || it->second != IoFault::kFailPageRead) return false;
  armed_.erase(it);
  ++counters_.failed_page_reads;
  return true;
}

bool FaultInjector::OnDiskSync(NodeId node) {
  if (!enabled_) return false;
  auto it = armed_.find(node);
  if (it == armed_.end() || it->second != IoFault::kFailDiskSync) return false;
  armed_.erase(it);
  fired_nodes_.insert(node);
  ++counters_.failed_syncs;
  return true;
}

bool FaultInjector::OnLogSync(NodeId node) {
  if (!enabled_) return false;
  auto it = armed_.find(node);
  if (it == armed_.end() || it->second != IoFault::kFailLogSync) return false;
  armed_.erase(it);
  fired_nodes_.insert(node);
  ++counters_.failed_syncs;
  return true;
}

FaultInjector::TornTail FaultInjector::OnAbandon(NodeId node,
                                                std::size_t buffered_bytes) {
  TornTail out;
  if (!enabled_ || buffered_bytes == 0 || config_.torn_tail_p <= 0.0) {
    return out;
  }
  if (!rng_.Bernoulli(config_.torn_tail_p)) return out;
  // Any prefix of the unacknowledged tail may have reached the platter
  // before the crash — including all of it (records that survive without
  // ever having been acknowledged are legal under WAL semantics).
  out.tear = true;
  out.keep_bytes =
      static_cast<std::size_t>(rng_.Uniform(buffered_bytes + 1));
  out.corrupt_last =
      out.keep_bytes > 0 && rng_.Bernoulli(config_.torn_tail_corrupt_p);
  if (out.keep_bytes > 0) ++counters_.torn_tails;
  return out;
}

void FaultInjector::ArmDeviceFault(NodeId node, DeviceFault fault) {
  if (fault == DeviceFault::kNone) {
    armed_device_.erase(node);
  } else {
    armed_device_[node] = fault;
  }
}

DeviceFault FaultInjector::OnCrash(NodeId node) {
  auto it = armed_device_.find(node);
  if (it == armed_device_.end()) return DeviceFault::kNone;
  DeviceFault f = it->second;
  armed_device_.erase(it);
  if (f == DeviceFault::kDestroyDataFile) {
    ++counters_.data_devices_lost;
  } else {
    ++counters_.log_devices_lost;
  }
  return f;
}

std::vector<NodeId> FaultInjector::TakeFiredNodes() {
  std::vector<NodeId> out(fired_nodes_.begin(), fired_nodes_.end());
  fired_nodes_.clear();
  return out;
}

}  // namespace clog
